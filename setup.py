"""Setup shim for environments without the `wheel` package (offline installs).

`pip install -e . --no-build-isolation` requires bdist_wheel; this shim lets
`python setup.py develop` work as a fallback.
"""
from setuptools import setup

setup()
