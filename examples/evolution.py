#!/usr/bin/env python
"""Post-deployment evolution (§6, Table 1 row 2, Fig 13).

The paper's operational reality: weekly binary rollouts, a hundred-plus
protocol changes, all absorbed by self-validating responses and client
retries. This example performs a live rolling upgrade of a serving cell
— every backend migrated to a warm spare, "rebuilt" with a new binary
that adds response fields and a higher protocol version, and handed the
shard back — while a client keeps reading, and prints what the client
experienced.

Run:  python examples/evolution.py
"""

from repro.analysis import render_table, snapshot_cell
from repro.core import (Cell, CellSpec, ClientConfig, GetStatus,
                        LookupStrategy, MaintenanceConfig, ReplicationMode)
from repro.rpc import ProtocolVersion

KEYS = 40


def main():
    cell = Cell(CellSpec(
        name="evolution", mode=ReplicationMode.R3_2, num_shards=3,
        num_spares=1, transport="pony",
        maintenance_config=MaintenanceConfig(restart_delay=0.2)))
    client = cell.connect_client(
        strategy=LookupStrategy.TWO_R,
        client_config=ClientConfig(touch_enabled=False))
    sim = cell.sim

    def seed():
        for i in range(KEYS):
            yield from client.set(b"key-%d" % i, b"value-%d" % i)

    sim.run(until=sim.process(seed()))
    print(f"corpus seeded: {KEYS} keys, config generation "
          f"{cell.config_store.peek('evolution').config_id}")

    outcomes = {"total": 0, "retried": 0, "failed": 0}
    done = [False]

    def load():
        i = 0
        while not done[0]:
            result = yield from client.get(b"key-%d" % (i % KEYS))
            outcomes["total"] += 1
            if result.attempts > 1:
                outcomes["retried"] += 1
            if result.status is not GetStatus.HIT:
                outcomes["failed"] += 1
            i += 1
            yield sim.timeout(1e-4)

    def rollout():
        for shard in range(3):
            print(f"  upgrading shard {shard} "
                  f"(migrate -> spare, restart, migrate back) ...")
            yield from cell.maintenance.planned_restart(shard)
            backend = cell.backend_by_task(cell.task_for_shard(shard))
            # The "new binary": richer Info response + higher version.
            original = backend._handle_info

            def upgraded(payload, context, _orig=original):
                info = yield from _orig(payload, context)
                info["build"] = "cm-2.0"
                info["features"] = ["compression", "append"]
                return info

            backend.rpc_server.register("Info", upgraded)
            backend.rpc_server.max_version = ProtocolVersion(2, 0)
        done[0] = True

    loader = sim.process(load())
    upgrade = sim.process(rollout())
    sim.run(until=upgrade)
    done[0] = True
    sim.run(until=loader)

    config = cell.config_store.peek("evolution")
    print()
    print(render_table(
        "rolling upgrade, as the client experienced it",
        ["metric", "value"],
        [["GETs issued during rollout", outcomes["total"]],
         ["GETs that needed a retry", outcomes["retried"]],
         ["GETs that failed", outcomes["failed"]],
         ["config generations consumed",
          config.config_id - 1],
         ["degraded fraction",
          f"{(outcomes['retried'] + outcomes['failed']) / max(1, outcomes['total']):.5f}"]]))
    print()
    print(snapshot_cell(cell, clients=[client]).render())


if __name__ == "__main__":
    main()
