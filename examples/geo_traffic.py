#!/usr/bin/env python
"""Geo-style serving: diurnal road-traffic lookups (§7.1, Fig 9).

An R=3.2 cell serving road-segment utilization records. GET traffic
swings ~3x over a (compressed) day while updater jobs refresh the model
at a steady rate. The paper's takeaway to look for in the output: the
GET rate varies strongly, the tail latency barely moves.

Run:  python examples/geo_traffic.py
"""

from repro.analysis import render_percentile_lines, render_series, render_table
from repro.workloads import GeoScenario, GeoWorkload


def main():
    scenario = GeoScenario(num_shards=6, num_clients=5, num_updaters=2,
                           num_keys=1500, base_get_rate_per_client=2500.0,
                           day_length=4.0, duration=8.0,
                           update_rate_per_client=200.0)
    workload = GeoWorkload(scenario)
    print("preloading road-segment corpus ...")
    workload.preload()
    print(f"driving diurnal GET traffic for {scenario.duration:.0f}s "
          f"(two compressed days)")
    metrics = workload.run()

    rates = metrics.get_timeline.rate_series()
    p999 = [(t, v * 1e6) for t, v in metrics.get_timeline.series(99.9)]

    print(render_table(
        "Geo workload summary", ["metric", "value"],
        [["GETs", metrics.gets],
         ["hit rate", f"{metrics.hit_rate * 100:.1f}%"],
         ["SET updates", metrics.sets],
         ["peak GET/s", max(r for _t, r in rates)],
         ["trough GET/s", min(r for _t, r in rates)],
         ["rate swing", f"{max(r for _, r in rates) / max(1e-9, min(r for _, r in rates)):.1f}x"],
         ["p99.9 max (us)", max(v for _t, v in p999)],
         ["p99.9 min (us)", min(v for _t, v in p999)]]))

    print()
    print(render_series("Geo: diurnal GET rate", rates,
                        x_label="t (s)", y_label="GET/s"))
    print()
    print(render_percentile_lines(
        "Geo: latency percentiles over time (us)",
        [("50p", [(t, v * 1e6) for t, v in metrics.get_timeline.series(50)]),
         ("99p", [(t, v * 1e6) for t, v in metrics.get_timeline.series(99)]),
         ("99.9p", p999)],
        x_label="t (s)"))


if __name__ == "__main__":
    main()
