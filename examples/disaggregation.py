#!/usr/bin/env python
"""Disaggregating local state (§6.5): stateless serving over CliqueMap.

The paper's surprise second act: CliqueMap's latency turned out low
enough that serving stacks which used to keep data shards in *local*
memory could fetch them from CliqueMap instead — making the serving
tasks stateless, so compute scales independently of DRAM.

This example contrasts the two architectures on the same query stream:

* **stateful**: every serving task holds a full copy of the corpus in
  local DRAM (fast lookups, DRAM cost scales with task count);
* **disaggregated**: serving tasks are stateless and GET from an
  R=2/Immutable CliqueMap cell loaded from a system of record.

Run:  python examples/disaggregation.py
"""

from repro.analysis import render_table
from repro.core import Cell, CellSpec, ReplicationMode
from repro.sim import RandomStream, ZipfSampler
from repro.storage import CorpusLoader, SystemOfRecord

NUM_KEYS = 1500
VALUE_BYTES = 2000
SERVING_TASKS = 12
QUERIES_PER_TASK = 100


def build_corpus():
    return {b"shard-key-%d" % i: bytes([i % 256]) * VALUE_BYTES
            for i in range(NUM_KEYS)}


def run_disaggregated():
    cell = Cell(CellSpec(mode=ReplicationMode.R2_IMMUTABLE, num_shards=4,
                         transport="pony"))
    sor_host = cell.fabric.add_host("host/sor")
    sor = SystemOfRecord(cell.sim, sor_host)
    sor.load(build_corpus())
    sor.freeze()
    loader = CorpusLoader(cell, sor)
    cell.sim.run(until=cell.sim.process(loader.load()))

    clients = [cell.connect_client() for _ in range(SERVING_TASKS)]
    stream = RandomStream(11, "queries")
    zipf = ZipfSampler(stream, NUM_KEYS)
    latencies = []

    def serving_task(client):
        for _ in range(QUERIES_PER_TASK):
            key = b"shard-key-%d" % zipf.sample()
            start = cell.sim.now
            result = yield from client.get(key)
            assert result.hit
            latencies.append(cell.sim.now - start)
            yield cell.sim.timeout(50e-6)

    procs = [cell.sim.process(serving_task(c)) for c in clients]
    cell.sim.run(until=cell.sim.all_of(procs))

    # DRAM: the cell's backends only (serving tasks hold nothing).
    cache_dram = cell.total_dram_bytes()
    latencies.sort()
    return cache_dram, latencies[len(latencies) // 2]


def run_stateful():
    # Each serving task holds the full corpus locally: lookups are a
    # local memory access (sub-microsecond), but DRAM is multiplied by
    # the number of tasks.
    corpus = build_corpus()
    corpus_bytes = sum(len(k) + len(v) for k, v in corpus.items())
    dram = corpus_bytes * SERVING_TASKS
    local_lookup_latency = 0.3e-6
    return dram, local_lookup_latency


def main():
    disagg_dram, disagg_latency = run_disaggregated()
    stateful_dram, stateful_latency = run_stateful()
    print(render_table(
        "Disaggregation (§6.5): stateful vs stateless serving",
        ["architecture", "DRAM for data (MB)", "median lookup (us)",
         "compute scaling"],
        [["stateful (local shards)", f"{stateful_dram / 1e6:.2f}",
          f"{stateful_latency * 1e6:.2f}",
          "adds a full corpus copy per task"],
         ["disaggregated (CliqueMap R=2)", f"{disagg_dram / 1e6:.2f}",
          f"{disagg_latency * 1e6:.2f}",
          "stateless tasks; DRAM fixed"]]))
    print(f"\nDRAM saved by disaggregation: "
          f"{(1 - disagg_dram / stateful_dram) * 100:.0f}% "
          f"(at {SERVING_TASKS} serving tasks; grows with fleet size)")
    print("Remote lookups cost microseconds instead of nanoseconds — "
          "low enough for serving stacks (the paper's §6.5 observation).")


if __name__ == "__main__":
    main()
