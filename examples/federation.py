#!/usr/bin/env python
"""Fleet view: one corpus, many datacenters (§1).

CliqueMap serves ~150M QPS from ~50 clusters across 20 datacenters. This
example builds a three-zone federation — one cell per datacenter on one
simulated world — and shows the access patterns that fall out:

* intra-zone GETs ride RMA at microseconds;
* a key present only in a remote zone is fetched over WAN RPC at
  milliseconds, then *filled* into the local cell so the next access is
  fast again;
* writes fan out so every zone serves locally.

Run:  python examples/federation.py
"""

from repro.analysis import render_table
from repro.core import CellSpec, Federation, FederationSpec, ReplicationMode
from repro.net import FabricConfig

ZONES = ["us-central", "europe-west", "asia-east"]


def main():
    federation = Federation(FederationSpec(
        zones=ZONES,
        cell_spec=CellSpec(mode=ReplicationMode.R3_2, num_shards=3,
                           transport="pony"),
        fabric_config=FabricConfig(inter_zone_delay=40e-3)))  # ~80ms RTT
    sim = federation.sim

    clients = {}
    for zone in ZONES:
        client = federation.make_client(zone)
        sim.run(until=sim.process(client.connect()))
        clients[zone] = client

    rows = []

    def scenario():
        us = clients["us-central"]
        eu = clients["europe-west"]

        # 1. A fanned-out write: every zone gets a copy.
        yield from us.set(b"campaign-1", b"creative-bytes" * 10)
        local = yield from eu.get(b"campaign-1")
        rows.append(["fanned-out write, read in another zone",
                     f"{local.latency * 1e6:.0f} us", "local RMA"])

        # 2. A zone-local write, first read from far away: WAN fetch + fill.
        yield from us.local.set(b"us-only", b"regional-data")
        first = yield from eu.get(b"us-only")
        rows.append(["first read of a remote-only key",
                     f"{first.latency * 1e3:.1f} ms", "WAN RPC + fill"])
        second = yield from eu.get(b"us-only")
        rows.append(["second read (after cache fill)",
                     f"{second.latency * 1e6:.0f} us", "local RMA"])

    sim.run(until=sim.process(scenario()))

    print(render_table(
        "three-zone federation: where each read was served",
        ["operation", "latency", "served by"], rows))
    print()
    for zone, client in clients.items():
        print(f"  {zone:13s} local_hits={client.stats['local_hits']} "
              f"remote_hits={client.stats['remote_hits']} "
              f"misses={client.stats['misses']}")


if __name__ == "__main__":
    main()
