#!/usr/bin/env python
"""Quickstart: stand up a CliqueMap cell and run basic operations.

Builds a small R=3.2 cell over the Pony Express transport, writes and
reads a few keys, demonstrates versioned overwrites, CAS, and erase, and
prints the latency/CPU numbers that motivate the whole design: RMA-path
GETs cost a tiny fraction of an RPC.

Run:  python examples/quickstart.py
"""

from repro import Cell, CellSpec, GetStatus, LookupStrategy, ReplicationMode


def main():
    # A six-shard R=3.2 cell: every key lives on three adjacent backends
    # and reads take a client-side quorum of two. Clients are context
    # managers: on exit they flush buffered touch batches and release
    # their telemetry series.
    with Cell(CellSpec(name="quickstart", mode=ReplicationMode.R3_2,
                       num_shards=6, transport="pony")) as cell, \
            cell.connect_client() as client, \
            cell.connect_client(strategy=LookupStrategy.RPC) as rpc_client:
        run(cell, client, rpc_client)


def run(cell, client, rpc_client):
    sim = cell.sim

    def app():
        # -- basic SET / GET -------------------------------------------------
        result = yield from client.set(b"greeting", b"hello cliquemap")
        print(f"SET applied at {result.replicas_applied} replicas "
              f"(version {result.version})")

        got = yield from client.get(b"greeting")
        assert got.status is GetStatus.HIT
        print(f"GET hit: {got.value!r}  latency={got.latency * 1e6:.1f}us "
              f"attempts={got.attempts}")

        # -- versioned overwrite -----------------------------------------------
        yield from client.set(b"greeting", b"hello again")
        got = yield from client.get(b"greeting")
        print(f"after overwrite: {got.value!r} (version {got.version})")

        # -- compare-and-set ---------------------------------------------------
        cas = yield from client.cas(b"greeting", b"cas-won", got.version)
        print(f"CAS with matching version: {cas.status.name}")
        stale_cas = yield from client.cas(b"greeting", b"cas-lost",
                                          got.version)
        print(f"CAS with stale version:    {stale_cas.status.name}")

        # -- erase (tombstoned: late SETs cannot resurrect) ------------------
        yield from client.erase(b"greeting")
        gone = yield from client.get(b"greeting")
        print(f"after ERASE: {gone.status.name}")

        # -- the efficiency story ------------------------------------------------
        yield from client.set(b"hot-key", b"x" * 256)
        rma = yield from client.get(b"hot-key")
        rpc = yield from rpc_client.get(b"hot-key")
        print(f"\nlatency, RMA (SCAR) GET: {rma.latency * 1e6:7.1f} us")
        print(f"latency, RPC GET:        {rpc.latency * 1e6:7.1f} us")

    sim.run(until=sim.process(app()))

    client_cpu = client.host.ledger.total()
    backend_cpu = sum(b.host.ledger.total() for b in cell.backends.values())
    print(f"\ntotal simulated CPU: client={client_cpu * 1e6:.1f}us "
          f"backends={backend_cpu * 1e6:.1f}us")
    print(f"simulated wall time: {sim.now * 1e3:.2f} ms")


if __name__ == "__main__":
    main()
