#!/usr/bin/env python
"""Ads-style serving: batched, latency-critical lookups (§7.1, Fig 8).

Reproduces the shape of the paper's Ads workload at laptop scale: an
R=3.2 cell serving highly-batched topic lookups for ad auctions, with a
steady write rate plus periodic backfill bursts. Prints the same series
Figure 8 plots: GET/SET rates and latency percentiles over time.

Run:  python examples/ads_serving.py
"""

from repro.analysis import render_percentile_lines, render_table
from repro.workloads import AdsScenario, AdsWorkload


def main():
    scenario = AdsScenario(num_shards=6, num_clients=6, num_keys=1500,
                           get_rate_per_client=3000.0,
                           write_rate_per_client=50.0,
                           backfill_period=1.0, duration=6.0)
    workload = AdsWorkload(scenario)
    print("preloading corpus ...")
    workload.preload()
    print(f"corpus installed; driving "
          f"{scenario.get_rate_per_client * scenario.num_clients:.0f} "
          f"GET/s for {scenario.duration:.0f}s (simulated)")
    metrics = workload.run()

    print(render_table(
        "Ads workload summary", ["metric", "value"],
        [["GETs", metrics.gets],
         ["hit rate", f"{metrics.hit_rate * 100:.1f}%"],
         ["GET errors", metrics.get_errors],
         ["steady SETs", metrics.sets],
         ["backfill SETs", workload.backfill_sets],
         ["GET p50 (us)", metrics.get_latency.percentile(50) * 1e6],
         ["GET p99 (us)", metrics.get_latency.percentile(99) * 1e6],
         ["GET p99.9 (us)", metrics.get_latency.percentile(99.9) * 1e6],
         ["SET p50 (us)", metrics.set_latency.percentile(50) * 1e6]]))

    timeline = metrics.get_timeline
    series = [
        ("50p (us)", [(t, v * 1e6) for t, v in timeline.series(50)]),
        ("99p (us)", [(t, v * 1e6) for t, v in timeline.series(99)]),
        ("GET/s", timeline.rate_series()),
    ]
    print()
    print(render_percentile_lines("Ads: latency & rate over time", series,
                                  x_label="t (s)"))


if __name__ == "__main__":
    main()
