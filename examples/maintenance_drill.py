#!/usr/bin/env python
"""Maintenance drill: warm-spare migration and crash recovery (§6.1, §5.4).

Runs steady GET load against an R=3.2 cell while injecting (1) a planned
restart served by a warm spare and (2) a forcible backend crash repaired
after restart — the scenarios of Figures 13 and 14. Prints latency
percentiles and RPC byte rates over the event timeline.

Run:  python examples/maintenance_drill.py
"""

from repro.analysis import (CounterSeries, TimeSeries,
                            render_percentile_lines, render_table)
from repro.core import (Cell, CellSpec, GetStatus, LookupStrategy,
                        MaintenanceConfig, RepairConfig, ReplicationMode)


def rpc_bytes_total(cell):
    return sum(b.rpc_server.metrics.total_bytes
               for b in cell.backends.values())


def run_drill(kind: str):
    cell = Cell(CellSpec(
        name=f"drill-{kind}", mode=ReplicationMode.R3_2, num_shards=3,
        num_spares=1, transport="pony",
        repair_config=RepairConfig(enabled=True, scan_interval=5.0),
        maintenance_config=MaintenanceConfig(restart_delay=0.6,
                                             crash_restart_delay=0.6)))
    clients = [cell.connect_client(strategy=LookupStrategy.TWO_R)
               for _ in range(4)]
    sim = cell.sim

    def setup():
        for i in range(100):
            yield from clients[0].set(b"key-%d" % i, b"x" * 512)

    sim.run(until=sim.process(setup()))

    latency = TimeSeries(bin_width=0.25)
    rpc_rate = CounterSeries(bin_width=0.25)
    degraded = [0]
    total = [0]
    duration = 3.0
    start = sim.now

    def load(client, offset):
        end = start + duration
        i = offset
        while sim.now < end:
            result = yield from client.get(b"key-%d" % (i % 100))
            total[0] += 1
            latency.record(sim.now - start, result.latency)
            if result.status is not GetStatus.HIT or result.attempts > 1:
                degraded[0] += 1
            i += 7
            yield sim.timeout(1e-4)

    def rpc_sampler():
        last = rpc_bytes_total(cell)
        end = start + duration
        while sim.now < end:
            yield sim.timeout(0.25)
            now_bytes = rpc_bytes_total(cell)
            rpc_rate.add(sim.now - start - 0.01, now_bytes - last)
            last = now_bytes

    def event():
        yield sim.timeout(0.5)
        if kind == "planned":
            yield from cell.maintenance.planned_restart(0)
        else:
            yield from cell.maintenance.unplanned_crash(0)

    procs = [sim.process(load(c, i * 13)) for i, c in enumerate(clients)]
    procs.append(sim.process(rpc_sampler()))
    event_proc = sim.process(event())
    sim.run(until=sim.all_of(procs))
    sim.run(until=event_proc)

    print(render_table(
        f"{kind} maintenance drill", ["metric", "value"],
        [["GETs", total[0]],
         ["degraded ops (miss or retried)", degraded[0]],
         ["degraded fraction", f"{degraded[0] / max(1, total[0]):.4%}"],
         ["migrations", cell.maintenance.stats.planned_migrations],
         ["entries migrated", cell.maintenance.stats.entries_migrated],
         ["repairs applied", sum(b.stats.repairs_applied
                                 for b in cell.backends.values())]]))
    print()
    print(render_percentile_lines(
        f"{kind}: latency (us) and RPC bytes/s over the event",
        [("50p", [(t, v * 1e6) for t, v in latency.series(50)]),
         ("99.9p", [(t, v * 1e6) for t, v in latency.series(99.9)]),
         ("RPC B/s", rpc_rate.per_second())],
        x_label="t (s)"))
    print()


def main():
    run_drill("planned")
    run_drill("unplanned")


if __name__ == "__main__":
    main()
