#!/usr/bin/env python
"""Multi-language access through subprocess shims (§6.2, Fig 6).

Runs the same small GET workload through the native C++ client and the
Java/Go/Python shims (named pipes to a C++ subprocess) and prints the
per-language op rate, CPU cost, and latency — the three panels of
Figure 6.

Run:  python examples/multilanguage.py
"""

from repro.analysis import render_table
from repro.core import Cell, CellSpec, ReplicationMode
from repro.shims import PROFILES, make_shim


def measure(language: str, ops: int = 300):
    cell = Cell(CellSpec(mode=ReplicationMode.R1, num_shards=4,
                         transport="pony"))
    client = cell.connect_client()
    shim = make_shim(client, language)
    sim = cell.sim

    def app():
        yield from shim.set(b"k", b"v" * 64)
        cpu_before = client.host.ledger.total()
        start = sim.now
        for _ in range(ops):
            result = yield from shim.get(b"k")
            assert result.hit
        elapsed = sim.now - start
        cpu = client.host.ledger.total() - cpu_before
        return elapsed / ops, cpu / ops

    latency, cpu = sim.run(until=sim.process(app()))
    return 1.0 / latency, cpu * 1e6, latency * 1e6


def main():
    rows = []
    for language in ["cpp", "java", "go", "py"]:
        rate, cpu_us, latency_us = measure(language)
        rows.append([language, f"{rate:,.0f}", f"{cpu_us:.1f}",
                     f"{latency_us:.1f}"])
    print(render_table(
        "CliqueMap performance by client language (cf. Fig 6)",
        ["language", "ops/s per worker", "client CPU-us/op",
         "median latency (us)"], rows))
    print("\nshim profiles:")
    for name, profile in PROFILES.items():
        print(f"  {name:5s} pipes={profile.uses_pipes!s:5s} "
              f"marshal={profile.marshal_cpu * 1e6:5.1f}us "
              f"pipe_latency={profile.pipe_latency * 1e6:4.1f}us")


if __name__ == "__main__":
    main()
