"""Elastic cells: online grow/shrink under traffic, chaos scenarios,
controller races, and the SLO-driven autoscaler closed loop.

The resize acceptance criteria from the paper's productionization story
(§6.1): capacity is added or returned without failing a request. A
fault-free grow+shrink cycle must show zero failed foreground ops, zero
inquorate GETs, and a silent availability alert; a resize racing a
partition must complete with bounded retries while the burn-rate alert
fires and resolves; a migration-target crash mid-handoff either rides
repair-driven retries to completion or aborts cleanly back to the old
assignment.
"""

import pytest

from repro.core import (Cell, CellSpec, CliqueMapError, GetStatus,
                        MaintenanceConfig, RepairConfig, ReplicationMode,
                        ResizeConfig, SetStatus)
from repro.faults import RESIZE_SCENARIOS, SoakConfig, resize_plan, run_soak
from repro.observe import AutoscalerConfig, ObserveConfig

FAST_RESIZE = ResizeConfig(max_sweeps=20, sweep_interval=0.005,
                           drain_grace=0.02)


def make_cell(num_shards=3, num_spares=0, resize_config=None, seed=101):
    return Cell(CellSpec(
        mode=ReplicationMode.R3_2, num_shards=num_shards,
        num_spares=num_spares, transport="pony", seed=seed,
        repair_config=RepairConfig(enabled=True, scan_interval=0.25),
        maintenance_config=MaintenanceConfig(restart_delay=0.05),
        resize_config=resize_config or FAST_RESIZE))


def seed_keys(cell, client, count, prefix=b"k"):
    def loop():
        for i in range(count):
            result = yield from client.set(b"%s-%d" % (prefix, i), b"v%d" % i)
            assert result.status is SetStatus.APPLIED
    cell.sim.run(until=cell.sim.process(loop()))


def count_hits(cell, client, count, prefix=b"k"):
    def loop():
        hits = 0
        for i in range(count):
            result = yield from client.get(b"%s-%d" % (prefix, i),
                                           deadline=0.5)
            hits += result.status is GetStatus.HIT
        return hits
    return cell.sim.run(until=cell.sim.process(loop()))


# ---------------------------------------------------------------------------
# Direct grow/shrink behavior
# ---------------------------------------------------------------------------

def test_grow_extends_layout_and_keeps_every_key_readable():
    cell = make_cell(num_shards=3)
    client = cell.connect_client()
    seed_keys(cell, client, 60)

    summary = cell.sim.run(until=cell.sim.process(cell.grow(2)))
    assert summary["outcome"] == "completed"
    assert summary["shards_before"] == 3
    assert summary["shards_after"] == 5

    config = cell.config_store.peek(cell.spec.name)
    assert len(config.shard_tasks) == 5
    assert not config.resize_active
    assert cell.placement.num_shards == 5
    assert count_hits(cell, client, 60) == 60
    # Joiners actually serve: each holds some backfilled entries.
    for task in config.shard_tasks[3:]:
        assert cell.backends[task].alive


def test_shrink_drains_named_tasks_and_keeps_every_key_readable():
    cell = make_cell(num_shards=5)
    client = cell.connect_client()
    seed_keys(cell, client, 60)

    summary = cell.sim.run(
        until=cell.sim.process(cell.shrink(tasks=["backend-4"])))
    assert summary["outcome"] == "completed"
    assert summary["shards_after"] == 4

    config = cell.config_store.peek(cell.spec.name)
    assert "backend-4" not in config.shard_tasks
    assert not cell.backends["backend-4"].alive
    assert count_hits(cell, client, 60) == 60


def test_shrink_below_replication_raises():
    cell = make_cell(num_shards=3)

    def attempt():
        try:
            yield from cell.shrink(count=1)
        except CliqueMapError as exc:
            return exc
        return None

    exc = cell.sim.run(until=cell.sim.process(attempt()))
    assert exc is not None and "below replication" in str(exc)
    # The failed attempt released the topology lock and cleared state.
    assert cell.topology_lock.count == 0
    assert not cell.resize.active


def test_concurrent_resize_rejected_cleanly():
    cell = make_cell(num_shards=3)
    client = cell.connect_client()
    seed_keys(cell, client, 20)
    first = cell.sim.process(cell.grow(1))

    def second():
        yield cell.sim.timeout(1e-3)     # first resize is mid-handoff
        try:
            yield from cell.grow(1)
        except CliqueMapError as exc:
            return exc
        return None

    exc = cell.sim.run(until=cell.sim.process(second()))
    assert exc is not None and "already in flight" in str(exc)
    summary = cell.sim.run(until=first)
    assert summary["outcome"] == "completed"
    assert count_hits(cell, client, 20) == 20


def test_grow_aborts_cleanly_when_target_never_returns():
    cell = make_cell(resize_config=ResizeConfig(
        max_sweeps=3, sweep_interval=0.002, drain_grace=0.01))
    client = cell.connect_client()
    seed_keys(cell, client, 30)
    sim = cell.sim
    before = cell.config_store.peek(cell.spec.name)

    def killer():
        # The first joiner on a fresh 3-shard cell is backend-3; kill
        # it as soon as it exists and never restart it.
        while "backend-3" not in cell.backends:
            yield sim.timeout(1e-4)
        cell.backends["backend-3"].stop()

    kproc = sim.process(killer())
    kproc.defused = True
    summary = sim.run(until=sim.process(cell.grow(1)))
    assert summary["outcome"] == "aborted"
    assert cell.resize.stats.aborted == 1

    after = cell.config_store.peek(cell.spec.name)
    assert after.shard_tasks == before.shard_tasks
    assert not after.resize_active
    assert cell.topology_lock.count == 0
    assert count_hits(cell, client, 30) == 30


def test_resize_events_and_backfill_metrics_counted():
    cell = make_cell(num_shards=3)
    client = cell.connect_client()
    seed_keys(cell, client, 40)
    cell.sim.run(until=cell.sim.process(cell.grow(1)))
    assert cell.metrics.total("cliquemap_resize_events_total") >= 2
    assert cell.metrics.total(
        "cliquemap_resize_backfill_entries_total") > 0
    assert cell.resize.stats.entries_backfilled > 0


# ---------------------------------------------------------------------------
# Resize chaos scenarios (the soak harness the CLI and CI run)
# ---------------------------------------------------------------------------

def test_fault_free_cycle_has_zero_foreground_impact():
    """ISSUE acceptance: a grow+shrink cycle under traffic with no
    faults shows zero failed foreground ops, zero inquorate GETs, and a
    silent availability alert."""
    report = run_soak(SoakConfig(
        seed=11, duration=1.6, settle=0.5, num_shards=4, num_keys=16,
        resize="cycle", observe=True, resize_config=FAST_RESIZE))
    assert report.ok
    ctl = report.resize_stats["controller"]
    assert ctl["grows"] == 1 and ctl["shrinks"] == 1
    assert ctl["aborted"] == 0
    assert report.foreground["writer_set_failures"] == 0
    assert report.foreground["reader_errors"] == 0
    assert report.foreground["reader_inquorate"] == 0
    assert not any(a["objective"] == "availability"
                   for a in report.alerts), report.alerts
    # Dual-writes actually shadowed mutations onto the target cohort.
    assert report.resize_stats["shadow_writes"] > 0


def test_resize_during_partition_completes_and_alerts_resolve():
    """ISSUE acceptance: resize racing a partition completes with
    bounded retries; the availability alert fires and resolves."""
    report = run_soak(SoakConfig(
        seed=7, duration=2.0, settle=1.0, num_shards=4, num_keys=16,
        resize="partition", observe=True, resize_config=FAST_RESIZE))
    assert report.ok
    ctl = report.resize_stats["controller"]
    assert ctl["grows"] == 1 and ctl["shrinks"] == 1
    fired = [a for a in report.alerts
             if a["kind"] == "fire" and a["objective"] == "availability"]
    assert fired, report.alerts
    assert any(a["kind"] == "resolve" and a["objective"] == "availability"
               for a in report.alerts), report.alerts
    # Bounded retries: the run spent retries but did not exhaust the
    # reader into terminal errors after the heal.
    assert report.metric_totals["cliquemap_retries_total"] > 0


def test_resize_survives_migration_target_crash():
    report = run_soak(SoakConfig(
        seed=13, duration=1.6, settle=1.0, num_shards=4, num_keys=16,
        resize="target_crash", resize_config=FAST_RESIZE))
    assert report.ok
    ctl = report.resize_stats["controller"]
    # The crash either rode repair-driven sweeps to completion or
    # aborted cleanly back to the old assignment — never a hang, never
    # a violated invariant.
    assert ctl["grows"] + ctl["aborted"] >= 1
    assert any("crash_task" in line and "fired" in line
               for line in report.injected)


def test_resize_under_gray_loss_holds_invariants():
    report = run_soak(SoakConfig(
        seed=17, duration=1.6, settle=1.0, num_shards=4, num_keys=16,
        resize="gray", resize_config=FAST_RESIZE))
    assert report.ok
    assert report.resize_stats["controller"]["grows"] == 1


def test_resize_under_eviction_pressure_serves_no_garbage():
    from repro.core import BackendConfig
    report = run_soak(SoakConfig(
        seed=19, duration=1.2, settle=1.0, num_shards=4, num_keys=16,
        resize="pressure", pressure_value_bytes=2048,
        backend_config=BackendConfig(data_initial_bytes=256 * 1024,
                                     data_virtual_limit=256 * 1024),
        resize_config=FAST_RESIZE))
    assert report.ok
    assert report.resize_stats["pressure"]["writes"] > 100
    assert report.bad_hits == []


def test_resize_plan_rejects_unknown_scenario():
    with pytest.raises(CliqueMapError):
        resize_plan("nope", duration=1.0, num_shards=3)
    for scenario in RESIZE_SCENARIOS:
        plan = resize_plan(scenario, duration=1.0, num_shards=3)
        kinds = [e.kind for e in plan.events]
        assert kinds.count("resize") == 2


# ---------------------------------------------------------------------------
# Controller interleavings (satellite: races serialize or fail cleanly)
# ---------------------------------------------------------------------------

def test_resize_serializes_with_planned_maintenance():
    cell = make_cell(num_shards=3, num_spares=1)
    client = cell.connect_client()
    seed_keys(cell, client, 40)
    sim = cell.sim

    maintenance = sim.process(cell.maintenance.planned_restart(0))
    resize = sim.process(cell.grow(1))
    sim.run(until=sim.all_of([maintenance, resize]))

    summary = resize.value
    assert summary["outcome"] == "completed"
    config = cell.config_store.peek(cell.spec.name)
    assert len(config.shard_tasks) == 4
    assert not config.resize_active
    assert cell.topology_lock.count == 0
    assert count_hits(cell, client, 40) == 40


def test_planned_restart_races_unplanned_crash_on_same_shard():
    cell = make_cell(num_shards=3, num_spares=1)
    client = cell.connect_client()
    seed_keys(cell, client, 40)
    sim = cell.sim

    planned = sim.process(cell.maintenance.planned_restart(0))
    planned.defused = True
    crash = sim.process(
        cell.maintenance.unplanned_crash(0, restart_delay=0.05))
    crash.defused = True
    sim.run(until=sim.now + 2.0)
    assert not planned.is_alive and not crash.is_alive
    # Either interleaving must end with the lock free, a consistent
    # config, and every key readable after repair settles.
    assert cell.topology_lock.count == 0
    sim.run(until=sim.now + 1.0)
    assert count_hits(cell, client, 40) == 40
    config = cell.config_store.peek(cell.spec.name)
    for shard in range(3):
        assert cell.backends[config.task_for_shard(shard)].alive


def test_repair_rpc_errors_surface_in_stats_and_metrics():
    """Satellite: migration/repair RPC failures are counted, not
    silently swallowed."""
    cell = make_cell(num_shards=3)
    client = cell.connect_client()
    seed_keys(cell, client, 10)
    cell.backends["backend-1"].stop()
    scanner = cell.scanner_for("backend-0")

    def recover():
        return (yield from scanner.recover_from(["backend-1"]))

    cell.sim.run(until=cell.sim.process(recover()))
    assert scanner.stats.rpc_errors > 0
    assert cell.metrics.total("cliquemap_repair_rpc_errors_total") > 0


# ---------------------------------------------------------------------------
# Autoscaler closed loop
# ---------------------------------------------------------------------------

def test_autoscaler_grows_on_burn_alert_and_respects_cooldown():
    cell = make_cell(num_shards=3)
    plane = cell.observe(ObserveConfig())
    scaler = plane.autoscale(AutoscalerConfig(
        scale_out_rps=1e12, scale_in_rps=1.0, cooldown=10.0,
        min_shards=3, max_shards=8))
    scaler.stop()                      # drive evaluations by hand
    sim = cell.sim
    # Force an active availability burn alert.
    plane.engine.active[("availability", cell.spec.name, "page")] = object()

    sim.run(until=sim.process(scaler.evaluate_once()))
    assert scaler.stats.grows == 1
    assert scaler.decisions[-1]["action"] == "grow"
    assert scaler.decisions[-1]["reason"] == "slo-burn-alert"
    assert len(cell.config_store.peek(cell.spec.name).shard_tasks) == 4

    # Still alerting, but inside the cooldown: hold, don't flap. (The
    # engine loop resolved the injected alert while the grow ran, so
    # stuff it again.)
    plane.engine.active[("availability", cell.spec.name, "page")] = object()
    sim.run(until=sim.process(scaler.evaluate_once()))
    assert scaler.stats.grows == 1
    assert scaler.decisions[-1]["action"] == "hold"
    assert scaler.decisions[-1]["reason"] == "cooldown"
    plane.stop()


def test_autoscaler_blocked_while_resize_active():
    cell = make_cell(num_shards=3)
    plane = cell.observe(ObserveConfig())
    scaler = plane.autoscale(AutoscalerConfig(
        scale_out_rps=1e12, scale_in_rps=1.0))
    scaler.stop()
    sim = cell.sim
    plane.engine.active[("availability", cell.spec.name, "page")] = object()
    resize = sim.process(cell.grow(1))

    def race():
        yield sim.timeout(1e-3)        # grow is mid-handoff
        yield from scaler.evaluate_once()

    sim.run(until=sim.process(race()))
    assert scaler.stats.blocked == 1
    assert scaler.decisions[-1]["action"] == "blocked"
    sim.run(until=resize)
    plane.stop()


def _autoscaler_closed_loop(seed):
    """Busy window -> grow; idle window -> hysteresis-gated shrink."""
    cell = make_cell(num_shards=3, seed=seed)
    plane = cell.observe(ObserveConfig())
    plane.autoscale(AutoscalerConfig(
        evaluate_interval=0.05, load_window=0.05,
        scale_out_rps=2000.0, scale_in_rps=1500.0,
        min_shards=3, max_shards=5, cooldown=0.15,
        hysteresis_rounds=2))
    scaler = plane.autoscaler
    sim = cell.sim
    client = cell.connect_client()
    seed_keys(cell, client, 32)
    busy = [True]

    def load_loop():
        generation = 0
        while busy[0]:
            generation += 1
            yield from client.set(b"k-%d" % (generation % 32),
                                  b"v%d" % generation)
            yield sim.timeout(0.15e-3)

    loader = sim.process(load_loop())
    sim.run(until=sim.now + 0.6)       # busy window
    busy[0] = False
    sim.run(until=loader)
    sim.run(until=sim.now + 1.2)       # idle window
    plane.stop()
    serving = len(cell.config_store.peek(cell.spec.name).shard_tasks)
    actions = [(d["action"], d["reason"]) for d in scaler.decisions]
    return scaler.stats, actions, serving


def test_autoscaler_closed_loop_deterministic_under_fixed_seed():
    """ISSUE acceptance: the load burst scales the cell out, the idle
    window scales it back in after hysteresis, and the whole decision
    sequence is identical run-for-run under a fixed seed."""
    stats_a, actions_a, serving_a = _autoscaler_closed_loop(seed=23)
    stats_b, actions_b, serving_b = _autoscaler_closed_loop(seed=23)
    assert stats_a.grows >= 1
    assert stats_a.shrinks >= 1
    assert ("grow", "load-high") in actions_a
    assert ("shrink", "load-low") in actions_a
    assert ("hold", "hysteresis") in actions_a
    assert serving_a == 3              # returned to the floor
    assert actions_a == actions_b
    assert serving_a == serving_b
    assert (stats_a.grows, stats_a.shrinks) == \
        (stats_b.grows, stats_b.shrinks)
