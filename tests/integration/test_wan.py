"""WAN access via RPC (Table 1, row 5): cross-zone clients."""


from repro.core import (Cell, CellSpec, ClientConfig, GetStatus,
                        LookupStrategy, ReplicationMode, SetStatus)
from repro.net import Fabric, FabricConfig
from repro.sim import Simulator


def build(inter_zone_delay=5e-3):
    sim = Simulator()
    fabric = Fabric(sim, FabricConfig(inter_zone_delay=inter_zone_delay,
                                      delay_jitter=0.0))
    cell = Cell(CellSpec(mode=ReplicationMode.R3_2, num_shards=3,
                         transport="pony"), sim=sim, fabric=fabric)
    return cell


def test_cross_zone_delivery_pays_wan_latency():
    sim = Simulator()
    fabric = Fabric(sim, FabricConfig(inter_zone_delay=5e-3,
                                      delay_jitter=0.0))
    a = fabric.add_host("a", zone="us-east")
    b = fabric.add_host("b", zone="us-west")
    c = fabric.add_host("c", zone="us-east")

    def cross():
        start = sim.now
        yield from fabric.deliver(a, b, 100)
        return sim.now - start

    def local():
        start = sim.now
        yield from fabric.deliver(a, c, 100)
        return sim.now - start

    wan = sim.run(until=sim.process(cross()))
    lan = sim.run(until=sim.process(local()))
    assert wan > 5e-3
    assert lan < 1e-3


def test_wan_client_defaults_to_rpc_strategy():
    cell = build()
    client = cell.connect_client(zone="remote-dc")
    assert client.strategy is LookupStrategy.RPC


def test_wan_client_serves_reads_and_writes():
    cell = build()
    local = cell.connect_client()
    remote = cell.connect_client(zone="remote-dc")

    def app():
        yield from local.set(b"k", b"local-write")
        got = yield from remote.get(b"k", deadline=1.0)
        assert got.status is GetStatus.HIT
        assert got.value == b"local-write"
        result = yield from remote.set(b"k2", b"remote-write",
                                       deadline=1.0)
        assert result.status is SetStatus.APPLIED
        back = yield from local.get(b"k2")
        assert back.hit and back.value == b"remote-write"

    cell.sim.run(until=cell.sim.process(app()))


def test_wan_rpc_latency_dominated_by_wan_rtt():
    cell = build(inter_zone_delay=5e-3)
    local = cell.connect_client()
    remote = cell.connect_client(zone="remote-dc")

    def app():
        yield from local.set(b"k", b"v")
        local_got = yield from local.get(b"k")
        remote_got = yield from remote.get(b"k", deadline=1.0)
        return local_got.latency, remote_got.latency

    local_latency, remote_latency = cell.sim.run(
        until=cell.sim.process(app()))
    assert remote_latency > 10e-3  # at least one WAN round trip
    assert remote_latency > 50 * local_latency


def test_rma_refuses_to_cross_zones():
    cell = build()
    local = cell.connect_client()
    # Force an RMA strategy from the remote zone: every attempt fails and
    # the GET errors out rather than silently working.
    remote = cell.connect_client(
        zone="remote-dc", strategy=LookupStrategy.TWO_R,
        client_config=ClientConfig(max_retries=3, default_deadline=1.0,
                                   mutation_rpc_deadline=1.0))

    def app():
        yield from local.set(b"k", b"v")
        result = yield from remote.get(b"k", deadline=1.0)
        return result

    result = cell.sim.run(until=cell.sim.process(app()))
    assert result.status is GetStatus.ERROR


def test_wan_mutations_still_reach_quorum():
    cell = build()
    remote = cell.connect_client(
        zone="remote-dc",
        client_config=ClientConfig(mutation_rpc_deadline=1.0,
                                   default_deadline=2.0))

    def app():
        result = yield from remote.set(b"k", b"v", deadline=2.0)
        return result

    result = cell.sim.run(until=cell.sim.process(app()))
    assert result.status is SetStatus.APPLIED
    assert result.replicas_applied == 3
