"""End-to-end telemetry: traced operations decompose into the full
client → transport → fabric → backend span tree over simulated time, and
the cell registry records what the benchmarks read back."""

import pytest

from repro.core import Cell, CellSpec, GetStrategy, ReplicationMode
from repro.telemetry import TraceContext


def run_traced_get(transport):
    cell = Cell(CellSpec(mode=ReplicationMode.R3_2, num_shards=4,
                         transport=transport))
    client = cell.connect_client(strategy=GetStrategy.TWO_R)

    def app():
        yield from client.set(b"k", b"v" * 64)
        result = yield from client.get(b"k")
        return result

    result = cell.sim.run(until=cell.sim.process(app()))
    return cell, result


@pytest.mark.parametrize("transport", ["pony", "rdma", "1rma"])
def test_2xr_get_phases_sum_to_latency(transport):
    cell, result = run_traced_get(transport)
    assert result.hit
    trace = result.trace
    assert isinstance(trace, TraceContext)
    root = trace.root
    assert root.name == "get" and root.finished
    assert root.labels["status"] == "hit"

    index, data, validate = (root.find("index"), root.find("data"),
                             root.find("validate"))
    # Phases are contiguous by construction: each starts the simulated
    # instant the previous ends, so their durations sum to the op
    # latency with no gap and no overlap.
    assert index.start == root.start
    assert index.end == data.start
    assert data.end == validate.start
    assert validate.end == root.end
    total = index.duration + data.duration + validate.duration
    assert total == pytest.approx(result.latency, rel=1e-9)
    assert root.duration == result.latency


@pytest.mark.parametrize("transport", ["pony", "rdma", "1rma"])
def test_2xr_get_spans_reach_the_backend(transport):
    _cell, result = run_traced_get(transport)
    root = result.trace.root

    # R=3 index fetches, all retained in the tree. The quorum (2) that
    # settled the phase stays under it; the abandoned third leg, still
    # in flight when the phase closed, is hoisted to the root
    # (reparent-on-close) instead of freezing an interval that pretends
    # to contain it.
    index_reads = [s for s in root.find_all("transport.read")
                   if s.labels.get("kind") == "index"]
    assert len(index_reads) == 3
    in_phase = [s for s in root.find("index").find_all("transport.read")
                if s.labels.get("kind") == "index"]
    assert len(in_phase) >= 2
    hoisted = [s for s in index_reads
               if s.labels.get("hoisted_from") == "index"]
    assert len(index_reads) - len(in_phase) == len(hoisted)
    # Reads that remain under the index phase are contained by it.
    phase = root.find("index")
    assert all(phase.start <= s.start and s.end <= phase.end
               for s in in_phase)
    # The speculative data fetch launched before the quorum settles
    # starts under the index phase that initiated it (and is hoisted
    # with it if it outlives the phase).
    assert any(s.labels.get("kind") == "data"
               for s in root.find_all("transport.read"))

    # Every read crosses the fabric (egress → propagate → ingress) and
    # lands on a backend host.
    deliver = root.find("fabric.deliver")
    assert deliver is not None
    assert [c.name for c in deliver.children] == ["egress", "propagate",
                                                  "ingress"]
    serve = root.find("backend.serve")
    assert serve is not None
    assert serve.labels["host"].startswith("host/backend-")
    # All spans inside a finished op are themselves finished.
    assert all(span.finished for _d, span in root.walk())


def test_mutation_trace_reaches_backend_handlers():
    cell = Cell(CellSpec(mode=ReplicationMode.R3_2, num_shards=4,
                         transport="pony"))
    client = cell.connect_client()

    def app():
        result = yield from client.set(b"k", b"v")
        return result

    result = cell.sim.run(until=cell.sim.process(app()))
    root = result.trace.root
    assert root.name == "set"
    mutate = root.find("mutate")
    assert mutate is not None
    # R=3 fanout: one RPC per replica, each served by a backend handler.
    calls = [s for s in mutate.find_all("rpc.call")
             if s.labels.get("method") == "Set"]
    assert len(calls) == 3
    assert root.find("backend.serve") is not None
    assert root.find("handler.set") is not None


def test_registry_records_what_the_client_did():
    cell, result = run_traced_get("pony")
    assert cell.metrics.total("cliquemap_ops_total",
                              op="get", status="hit") == 1.0
    assert cell.metrics.total("cliquemap_ops_total",
                              op="set", status="applied") == 1.0
    samples = cell.metrics.merged_samples("cliquemap_op_latency_seconds",
                                          op="get")
    assert samples == [result.latency]
    # Backend-side RPC counters saw the replicated SET.
    assert cell.metrics.total("cliquemap_backend_rpcs_total",
                              method="Set") == 3.0
    # The tracer retains the finished root spans, newest last.
    assert cell.tracer.last() is result.trace.root


@pytest.mark.parametrize("transport", ["pony", "rdma", "1rma"])
def test_get_multi_phases_sum_to_batch_latency(transport):
    """The batched fast path keeps PR 1's contiguity invariant: the
    coalesced index phase and the data phase tile the batch exactly, and
    their durations sum to the slowest key's latency (= the batch's
    wall time, since per-key latencies are stamped as keys settle)."""
    cell = Cell(CellSpec(mode=ReplicationMode.R3_2, num_shards=4,
                         transport=transport))
    client = cell.connect_client(strategy=GetStrategy.TWO_R)
    keys = [f"k{i}".encode() for i in range(6)]

    def app():
        for key in keys:
            yield from client.set(key, b"v" * 32)
        results = yield from client.get_multi(keys)
        return results

    results = cell.sim.run(until=cell.sim.process(app()))
    assert all(r.hit for r in results)
    root = cell.tracer.last()
    assert root.name == "get_multi" and root.labels["batch"] == 6

    index, data = root.find("index"), root.find("data")
    assert index.start == root.start
    # The data phase starts the simulated instant the index phase ends —
    # speculative fetches launched *during* the index phase are recorded
    # under the phase that initiated them, so the tiling holds.
    assert index.end == data.start
    assert data.end == root.end
    total = index.duration + data.duration
    assert total == pytest.approx(root.duration, rel=1e-9)
    assert root.duration == max(r.latency for r in results)


def test_set_multi_phases_sum_to_batch_latency():
    cell = Cell(CellSpec(mode=ReplicationMode.R3_2, num_shards=4,
                         transport="pony"))
    client = cell.connect_client()
    items = [(f"k{i}".encode(), b"v" * 32) for i in range(5)]

    def app():
        results = yield from client.set_multi(items)
        return results

    results = cell.sim.run(until=cell.sim.process(app()))
    assert all(r.ok for r in results)
    root = cell.tracer.last()
    assert root.name == "set_multi" and root.labels["batch"] == 5

    build, mutate = root.find("build"), root.find("mutate")
    assert build.start == root.start
    assert build.end == mutate.start
    assert mutate.end == root.end
    total = build.duration + mutate.duration
    assert total == pytest.approx(root.duration, rel=1e-9)
    # Every key in a coalesced batch completes with the batch.
    assert all(r.latency == root.duration for r in results)
