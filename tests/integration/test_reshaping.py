"""Memory reshaping under live traffic (§4.1, Fig 3)."""

import pytest

from repro.core import (BackendConfig, Cell, CellSpec, GetStatus,
                        LookupStrategy, ReplicationMode)


def run(cell, gen):
    return cell.sim.run(until=cell.sim.process(gen))


def test_index_resize_under_load_is_transparent_to_clients():
    """Clients retry through the resize via the RPC re-handshake path."""
    spec = CellSpec(
        mode=ReplicationMode.R1, num_shards=2, transport="pony",
        backend_config=BackendConfig(num_buckets=4, ways=2,
                                     index_resize_load_factor=0.6))
    cell = Cell(spec)
    client = cell.connect_client(strategy=LookupStrategy.TWO_R)

    def app():
        # Insert enough keys to force several resizes while reading back.
        for i in range(60):
            yield from client.set(b"key-%d" % i, b"v%d" % i)
            got = yield from client.get(b"key-%d" % (i // 2))
            assert got.status is GetStatus.HIT
        yield cell.sim.timeout(1.0)
        return sum(b.stats.index_resizes for b in cell.serving_backends())

    resizes = run(cell, app())
    assert resizes >= 1
    # Stale views were refreshed via RPC at least once.
    assert client.stats["view_refreshes"] > 2  # beyond initial handshakes


def test_data_region_growth_under_load():
    spec = CellSpec(
        mode=ReplicationMode.R1, num_shards=1, transport="pony",
        backend_config=BackendConfig(
            data_initial_bytes=256 * 1024, data_virtual_limit=8 << 20,
            grow_watermark=0.6, slab_bytes=64 * 1024))
    cell = Cell(spec)
    client = cell.connect_client()
    backend = cell.backend_by_task("backend-0")
    initial = backend.data.populated_bytes

    def app():
        for i in range(200):
            yield from client.set(b"key-%d" % i, b"x" * 3000)
            if i % 10 == 0:
                got = yield from client.get(b"key-%d" % i)
                assert got.hit
        yield cell.sim.timeout(1.0)

    run(cell, app())
    assert backend.stats.data_region_grows >= 1
    assert backend.data.populated_bytes > initial
    # Virtual reservation far exceeds what is populated: provisioned for
    # common case, not peak.
    assert backend.data.populated_bytes < backend.data.arena.virtual_limit


def test_old_data_window_retired_after_grace():
    spec = CellSpec(
        mode=ReplicationMode.R1, num_shards=1, transport="pony",
        backend_config=BackendConfig(
            data_initial_bytes=128 * 1024, data_virtual_limit=4 << 20,
            grow_watermark=0.5, slab_bytes=64 * 1024,
            old_window_grace=10e-3))
    cell = Cell(spec)
    client = cell.connect_client()
    backend = cell.backend_by_task("backend-0")
    first_window = backend.data.active_window

    def app():
        for i in range(80):
            yield from client.set(b"key-%d" % i, b"x" * 3000)
        yield cell.sim.timeout(1.0)

    run(cell, app())
    assert backend.stats.data_region_grows >= 1
    assert first_window.revoked
    # Clients converged to the new window: reads still work.

    def verify():
        got = yield from client.get(b"key-79")
        return got.status

    assert run(cell, verify()) is GetStatus.HIT


def test_reads_continue_during_growth_with_old_pointers():
    """Entries written before a grow carry the old region id; reads of
    them must succeed until the old window is retired, then recover
    through re-reads of fresh index entries."""
    spec = CellSpec(
        mode=ReplicationMode.R1, num_shards=1, transport="pony",
        backend_config=BackendConfig(
            data_initial_bytes=128 * 1024, data_virtual_limit=4 << 20,
            grow_watermark=0.5, slab_bytes=64 * 1024,
            old_window_grace=50e-3))
    cell = Cell(spec)
    client = cell.connect_client()
    backend = cell.backend_by_task("backend-0")

    def app():
        yield from client.set(b"early", b"early-value")
        # Force growth.
        for i in range(60):
            yield from client.set(b"fill-%d" % i, b"x" * 3000)
        assert backend.stats.data_region_grows >= 1
        # Old pointer still readable during the grace window.
        got = yield from client.get(b"early")
        assert got.hit and got.value == b"early-value"
        yield cell.sim.timeout(1.0)
        # And after retirement too (validation/retry path handles it).
        got = yield from client.get(b"early")
        assert got.hit and got.value == b"early-value"

    run(cell, app())


def test_shrink_on_restart_reduces_footprint():
    spec = CellSpec(
        mode=ReplicationMode.R1, num_shards=1, transport="pony",
        backend_config=BackendConfig(data_initial_bytes=1 << 20,
                                     data_virtual_limit=8 << 20))
    cell = Cell(spec)
    backend = cell.backend_by_task("backend-0")
    before = backend.data.populated_bytes
    backend.shrink_data_region_on_restart(256 * 1024)
    assert backend.data.populated_bytes == 256 * 1024 < before


def test_shrink_requires_empty_region():
    spec = CellSpec(mode=ReplicationMode.R1, num_shards=1, transport="pony")
    cell = Cell(spec)
    client = cell.connect_client()

    def app():
        yield from client.set(b"k", b"v")

    run(cell, app())
    backend = cell.backend_by_task("backend-0")
    with pytest.raises(ValueError):
        backend.shrink_data_region_on_restart(128 * 1024)


def test_pointer_refresh_on_window_retirement():
    """Entries written before a grow are repointed to the live window
    when the old one retires, so fresh bucket fetches never name a
    revoked region."""
    spec = CellSpec(
        mode=ReplicationMode.R1, num_shards=1, transport="pony",
        backend_config=BackendConfig(
            data_initial_bytes=128 * 1024, data_virtual_limit=4 << 20,
            grow_watermark=0.5, slab_bytes=64 * 1024,
            old_window_grace=10e-3))
    cell = Cell(spec)
    client = cell.connect_client()
    backend = cell.backend_by_task("backend-0")

    def app():
        yield from client.set(b"early", b"early-value")
        for i in range(60):
            yield from client.set(b"fill-%d" % i, b"x" * 3000)
        yield cell.sim.timeout(1.0)  # grows + retirements settle

    run(cell, app())
    assert backend.stats.data_region_grows >= 1
    live_region = backend.data.region_id
    retired_ids = {w.region_id for w in backend.data.old_windows}
    for _bucket, entry in backend.index.entries():
        assert entry.region_id == live_region or \
            entry.region_id in retired_ids
        # No entry may point at a *revoked* window.
        if entry.region_id != live_region:
            assert not any(w.revoked and w.region_id == entry.region_id
                           for w in backend.data.old_windows)
