"""Integration tests: end-to-end cell operation across modes/strategies."""

import pytest

from repro.core import (BackendConfig, Cell, CellSpec, ClientConfig,
                        GetStatus, LookupStrategy, ReplicationMode, SetStatus)


def run(cell, gen):
    return cell.sim.run(until=cell.sim.process(gen))


@pytest.mark.parametrize("mode,transport,strategy", [
    (ReplicationMode.R3_2, "pony", LookupStrategy.SCAR),
    (ReplicationMode.R3_2, "pony", LookupStrategy.TWO_R),
    (ReplicationMode.R3_2, "pony", LookupStrategy.RPC),
    (ReplicationMode.R3_2, "1rma", LookupStrategy.TWO_R),
    (ReplicationMode.R3_2, "rdma", LookupStrategy.TWO_R),
    (ReplicationMode.R1, "pony", LookupStrategy.SCAR),
    (ReplicationMode.R1, "rdma", LookupStrategy.TWO_R),
])
def test_set_get_erase_roundtrip(mode, transport, strategy):
    cell = Cell(CellSpec(mode=mode, num_shards=4, transport=transport))
    client = cell.connect_client(strategy=strategy)

    def app():
        set_result = yield from client.set(b"key", b"value")
        assert set_result.status is SetStatus.APPLIED
        assert set_result.replicas_applied == mode.replicas
        got = yield from client.get(b"key")
        assert got.status is GetStatus.HIT
        assert got.value == b"value"
        missing = yield from client.get(b"missing")
        assert missing.status is GetStatus.MISS
        erased = yield from client.erase(b"key")
        assert erased.status is SetStatus.APPLIED
        gone = yield from client.get(b"key")
        assert gone.status is GetStatus.MISS

    run(cell, app())


def test_many_keys_roundtrip():
    cell = Cell(CellSpec(mode=ReplicationMode.R3_2, num_shards=6))
    client = cell.connect_client()
    n = 200

    def app():
        for i in range(n):
            result = yield from client.set(b"key-%d" % i, b"value-%d" % i)
            assert result.status is SetStatus.APPLIED
        hits = 0
        for i in range(n):
            got = yield from client.get(b"key-%d" % i)
            if got.hit and got.value == b"value-%d" % i:
                hits += 1
        return hits

    assert run(cell, app()) == n


def test_values_of_many_sizes():
    cell = Cell(CellSpec(mode=ReplicationMode.R3_2, num_shards=3,
                         backend_config=BackendConfig(
                             data_initial_bytes=1 << 22,
                             data_virtual_limit=1 << 26)))
    client = cell.connect_client()
    sizes = [0, 1, 63, 64, 65, 1024, 4096, 16 * 1024, 64 * 1024]

    def app():
        for size in sizes:
            value = bytes(size)
            assert (yield from client.set(b"s%d" % size, value)).status \
                is SetStatus.APPLIED
            got = yield from client.get(b"s%d" % size)
            assert got.hit
            assert got.value == value

    run(cell, app())


def test_get_multi_batches_in_parallel():
    cell = Cell(CellSpec(mode=ReplicationMode.R3_2, num_shards=6))
    client = cell.connect_client()

    def app():
        for i in range(20):
            yield from client.set(b"key-%d" % i, b"v%d" % i)
        start = cell.sim.now
        results = yield from client.get_multi(
            [b"key-%d" % i for i in range(20)])
        batch_latency = cell.sim.now - start
        assert all(r.hit for r in results)
        assert [r.value for r in results] == [b"v%d" % i for i in range(20)]
        # A 20-wide batch must complete far faster than 20 serial gets.
        single = results[0].latency
        assert batch_latency < 20 * single
        return True

    assert run(cell, app())


def test_overwrite_is_read_after_write_consistent():
    cell = Cell(CellSpec(mode=ReplicationMode.R3_2, num_shards=3))
    client = cell.connect_client()

    def app():
        for i in range(30):
            value = b"gen-%d" % i
            yield from client.set(b"k", value)
            got = yield from client.get(b"k")
            assert got.hit and got.value == value

    run(cell, app())


def test_two_clients_see_each_others_writes():
    cell = Cell(CellSpec(mode=ReplicationMode.R3_2, num_shards=3))
    writer = cell.connect_client()
    reader = cell.connect_client()

    def app():
        yield from writer.set(b"shared", b"from-writer")
        got = yield from reader.get(b"shared")
        assert got.hit and got.value == b"from-writer"
        yield from reader.set(b"shared", b"from-reader")
        got = yield from writer.get(b"shared")
        assert got.hit and got.value == b"from-reader"

    run(cell, app())


def test_second_set_wins_by_version():
    """Two sequential writers: the later TrueTime-stamped SET prevails."""
    cell = Cell(CellSpec(mode=ReplicationMode.R3_2, num_shards=3))
    a = cell.connect_client()
    b = cell.connect_client()

    def app():
        yield from a.set(b"k", b"a-value")
        yield from b.set(b"k", b"b-value")
        # A stale write from a's past (older TrueTime) is superseded.
        got = yield from a.get(b"k")
        assert got.value == b"b-value"

    run(cell, app())


def test_hit_latency_far_below_rpc_get():
    """The headline: RMA GETs are much cheaper than RPC GETs."""
    spec = CellSpec(mode=ReplicationMode.R1, num_shards=2, transport="pony")
    cell = Cell(spec)
    rma_client = cell.connect_client(strategy=LookupStrategy.SCAR)
    rpc_client = cell.connect_client(strategy=LookupStrategy.RPC)

    def app():
        yield from rma_client.set(b"k", b"v" * 64)
        rma = yield from rma_client.get(b"k")
        rpc = yield from rpc_client.get(b"k")
        assert rma.hit and rpc.hit
        return rma.latency, rpc.latency

    rma_latency, rpc_latency = run(cell, app())
    assert rma_latency < rpc_latency


def test_client_cpu_rma_vs_rpc():
    spec = CellSpec(mode=ReplicationMode.R1, num_shards=2, transport="pony")

    def measure(strategy):
        cell = Cell(spec)
        client = cell.connect_client(strategy=strategy)

        def app():
            yield from client.set(b"k", b"v" * 64)
            base = client.host.ledger.total() + \
                sum(b.host.ledger.total() for b in cell.backends.values())
            for _ in range(50):
                yield from client.get(b"k")
            total = client.host.ledger.total() + \
                sum(b.host.ledger.total() for b in cell.backends.values())
            return (total - base) / 50

        return cell.sim.run(until=cell.sim.process(app()))

    rma_cpu = measure(LookupStrategy.SCAR)
    rpc_cpu = measure(LookupStrategy.RPC)
    assert rpc_cpu > 50e-6        # the >50us Stubby floor
    assert rma_cpu < rpc_cpu / 5  # RMA is many times cheaper


def test_stats_track_operations():
    cell = Cell(CellSpec(mode=ReplicationMode.R3_2, num_shards=3))
    client = cell.connect_client()

    def app():
        yield from client.set(b"k", b"v")
        yield from client.get(b"k")
        yield from client.get(b"absent")

    run(cell, app())
    assert client.stats["gets"] == 2
    assert client.stats["hits"] == 1
    assert client.stats["misses"] == 1
    assert client.stats["sets"] == 1


def test_touch_flush_reaches_backends():
    cell = Cell(CellSpec(mode=ReplicationMode.R3_2, num_shards=3))
    client = cell.connect_client(
        client_config=ClientConfig(touch_flush_interval=1e-3))

    def app():
        yield from client.set(b"k", b"v")
        yield from client.get(b"k")
        yield cell.sim.timeout(5e-3)  # let the flusher run

    run(cell, app())
    key_hash = client.placement.key_hash(b"k")
    touched = [b for b in cell.backends.values()
               if b.shard >= 0 and key_hash in b.policy]
    assert touched  # at least the serving replicas saw the access
