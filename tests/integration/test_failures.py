"""Failures, quorum degradation, repairs, and restart recovery (§5.4)."""


from repro.core import (Cell, CellSpec, GetStatus, LookupStrategy,
                        RepairConfig, ReplicationMode, SetStatus)


def build(repair_enabled=False, scan_interval=0.5, num_spares=0):
    spec = CellSpec(
        mode=ReplicationMode.R3_2, num_shards=3, num_spares=num_spares,
        transport="pony",
        repair_config=RepairConfig(enabled=repair_enabled,
                                   scan_interval=scan_interval))
    return Cell(spec)


def run(cell, gen):
    return cell.sim.run(until=cell.sim.process(gen))


def test_reads_survive_single_backend_crash():
    """R=3.2 serves from the two remaining replicas after one dies."""
    cell = build()
    client = cell.connect_client(strategy=LookupStrategy.TWO_R)

    def app():
        for i in range(20):
            yield from client.set(b"key-%d" % i, b"value-%d" % i)
        cell.backend_by_task("backend-1").crash()
        hits = 0
        for i in range(20):
            result = yield from client.get(b"key-%d" % i)
            if result.hit and result.value == b"value-%d" % i:
                hits += 1
        return hits

    assert run(cell, app()) == 20


def test_writes_survive_single_backend_crash():
    cell = build()
    client = cell.connect_client()

    def app():
        cell.backend_by_task("backend-0").crash()
        result = yield from client.set(b"k", b"v")
        assert result.status is SetStatus.APPLIED
        assert result.replicas_applied == 2
        got = yield from client.get(b"k")
        assert got.hit and got.value == b"v"

    run(cell, app())


def test_two_crashes_degrade_to_miss_for_inquorate_keys():
    """Losing two of three replicas leaves some keys below quorum."""
    cell = build()
    client = cell.connect_client(strategy=LookupStrategy.TWO_R)

    def app():
        yield from client.set(b"k", b"v")
        cell.backend_by_task("backend-0").crash()
        cell.backend_by_task("backend-1").crash()
        result = yield from client.get(b"k")
        return result.status

    status = run(cell, app())
    # One replica cannot quorum: treated as miss/error, never a bogus hit.
    assert status in (GetStatus.MISS, GetStatus.ERROR)


def test_client_avoids_dead_backend_on_subsequent_gets():
    """After a connection failure the client sends 2-of-3 ops (§7.2.3)."""
    cell = build()
    client = cell.connect_client(strategy=LookupStrategy.TWO_R)

    def app():
        yield from client.set(b"k", b"v")
        cell.backend_by_task("backend-1").crash()
        yield from client.get(b"k")  # discovers the failure
        reads_before = cell.transport.counters.reads
        for _ in range(10):
            result = yield from client.get(b"k")
            assert result.hit
        reads_after = cell.transport.counters.reads
        return reads_after - reads_before

    index_plus_data_reads = run(cell, app())
    # 10 GETs x (2 index fetches + 1 data fetch) = 30, not 40.
    assert index_plus_data_reads <= 30


def test_scan_repair_fixes_dirty_quorum():
    """A backend missing a key gets repaired by a cohort scan."""
    cell = build(repair_enabled=True, scan_interval=0.2)
    client = cell.connect_client()

    def app():
        yield from client.set(b"k", b"v")
        # Manufacture a dirty quorum: drop the key from one replica.
        victim = cell.backend_by_task("backend-1")
        key_hash = victim.placement.key_hash(b"k")
        yield from victim._remove_entry(key_hash)
        assert victim.lookup_local(b"k") is None
        # Wait for a scan cycle to find and repair it.
        yield cell.sim.timeout(1.0)
        assert victim.lookup_local(b"k") is not None
        # All three replicas converge on one version.
        versions = {backend.lookup_local(b"k")[1]
                    for backend in cell.serving_backends()}
        assert len(versions) == 1

    run(cell, app())


def test_scan_repair_counts_dirty_quorums():
    cell = build(repair_enabled=True, scan_interval=0.2)
    client = cell.connect_client()

    def app():
        for i in range(5):
            yield from client.set(b"key-%d" % i, b"v")
        victim = cell.backend_by_task("backend-2")
        for i in range(5):
            key_hash = victim.placement.key_hash(b"key-%d" % i)
            if victim.lookup_local(b"key-%d" % i) is not None:
                yield from victim._remove_entry(key_hash)
        yield cell.sim.timeout(1.0)

    run(cell, app())
    total_repaired = sum(s.stats.keys_repaired
                         for s in cell.scanners.values())
    assert total_repaired > 0


def test_restart_recovery_repopulates_backend():
    """An unplanned crash + restart pulls data back from the cohort."""
    cell = build(repair_enabled=True, scan_interval=100.0)  # scans idle
    client = cell.connect_client()

    def app():
        for i in range(30):
            yield from client.set(b"key-%d" % i, b"value-%d" % i)
        victim_task = cell.task_for_shard(1)
        before = cell.backend_by_task(victim_task).resident_keys
        yield from cell.maintenance.unplanned_crash(1, restart_delay=0.5)
        restarted = cell.backend_by_task(victim_task)
        return before, restarted.resident_keys

    before, after = run(cell, app())
    assert before > 0
    assert after == before


def test_reads_work_through_crash_and_recovery():
    cell = build(repair_enabled=True, scan_interval=100.0)
    client = cell.connect_client(strategy=LookupStrategy.TWO_R)

    def app():
        for i in range(20):
            yield from client.set(b"key-%d" % i, b"v%d" % i)
        crash = cell.sim.process(
            cell.maintenance.unplanned_crash(0, restart_delay=0.2))
        # Keep reading during the outage.
        hits = 0
        reads = 0
        end = cell.sim.now + 0.4
        while cell.sim.now < end:
            for i in range(20):
                result = yield from client.get(b"key-%d" % i)
                reads += 1
                if result.hit:
                    hits += 1
            yield cell.sim.timeout(10e-3)
        yield crash
        return hits, reads

    hits, reads = run(cell, app())
    assert hits == reads  # no degradation visible to clients


def test_mutations_during_outage_are_repaired_after_restart():
    """SETs applied at 2/3 replicas propagate to the third on recovery."""
    cell = build(repair_enabled=True, scan_interval=0.3)
    client = cell.connect_client()

    def app():
        yield from client.set(b"before", b"1")
        victim_task = cell.task_for_shard(0)
        crash = cell.sim.process(
            cell.maintenance.unplanned_crash(0, restart_delay=0.2))
        yield cell.sim.timeout(10e-3)
        result = yield from client.set(b"during", b"2")
        assert result.status is SetStatus.APPLIED
        yield crash
        yield cell.sim.timeout(1.0)  # allow a scan cycle too
        restarted = cell.backend_by_task(victim_task)
        if restarted.placement.primary_shard(
                restarted.placement.key_hash(b"during")) in [
                (restarted.shard - i) % 3 for i in range(3)]:
            assert restarted.lookup_local(b"during") is not None

    run(cell, app())
