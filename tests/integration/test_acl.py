"""Per-RPC ACLs wired into a cell (Table 1 / §2.1)."""


from repro.core import (Cell, CellSpec, GetStatus, RepairConfig,
                        ReplicationMode, SetStatus)
from repro.rpc import Principal


def build(num_spares=0, repair=False):
    spec = CellSpec(
        mode=ReplicationMode.R3_2, num_shards=3, num_spares=num_spares,
        transport="pony",
        repair_config=RepairConfig(enabled=repair, scan_interval=0.3),
        writer_principals=["ads-pipeline"])
    return Cell(spec)


def run(cell, gen):
    return cell.sim.run(until=cell.sim.process(gen))


def test_authorized_writer_can_mutate():
    cell = build()
    writer = cell.connect_client(principal=Principal("ads-pipeline"))

    def app():
        result = yield from writer.set(b"k", b"v")
        assert result.status is SetStatus.APPLIED
        erased = yield from writer.erase(b"k")
        assert erased.status is SetStatus.APPLIED

    run(cell, app())


def test_unauthorized_writer_is_rejected():
    cell = build()
    writer = cell.connect_client(principal=Principal("ads-pipeline"))
    intruder = cell.connect_client(principal=Principal("random-job"))

    def app():
        yield from writer.set(b"k", b"v")
        result = yield from intruder.set(b"k", b"overwritten")
        assert result.status is SetStatus.FAILED
        assert result.replicas_applied == 0
        got = yield from writer.get(b"k")
        assert got.value == b"v"
        erased = yield from intruder.erase(b"k")
        assert erased.status is SetStatus.FAILED

    run(cell, app())


def test_reads_open_to_any_principal():
    cell = build()
    writer = cell.connect_client(principal=Principal("ads-pipeline"))
    reader = cell.connect_client(principal=Principal("any-serving-job"))

    def app():
        yield from writer.set(b"k", b"v")
        got = yield from reader.get(b"k")
        assert got.status is GetStatus.HIT
        assert got.value == b"v"

    run(cell, app())


def test_repairs_keep_working_under_acl():
    cell = build(repair=True)
    writer = cell.connect_client(principal=Principal("ads-pipeline"))

    def app():
        yield from writer.set(b"k", b"v")
        victim = cell.backend_by_task("backend-1")
        key_hash = victim.placement.key_hash(b"k")
        yield from victim._remove_entry(key_hash)
        yield cell.sim.timeout(1.5)
        assert victim.lookup_local(b"k") is not None

    run(cell, app())


def test_migration_keeps_working_under_acl():
    cell = build(num_spares=1)
    writer = cell.connect_client(principal=Principal("ads-pipeline"))

    def app():
        for i in range(10):
            yield from writer.set(b"k-%d" % i, b"v")
        yield from cell.maintenance.planned_restart(0)
        hits = 0
        for i in range(10):
            result = yield from writer.get(b"k-%d" % i)
            hits += result.hit
        return hits

    assert run(cell, app()) == 10
