"""R=2/Immutable mode with a system of record (§6.4, §6.5)."""

import pytest

from repro.core import (Cell, CellSpec, GetStatus, LookupStrategy,
                        ReplicationMode)
from repro.rpc import Principal, connect as rpc_connect
from repro.storage import CorpusLoader, SystemOfRecord


def build(num_keys=60):
    cell = Cell(CellSpec(mode=ReplicationMode.R2_IMMUTABLE, num_shards=4,
                         transport="pony"))
    sor_host = cell.fabric.add_host("host/sor")
    sor = SystemOfRecord(cell.sim, sor_host)
    sor.load({b"doc-%d" % i: b"payload-%d" % i for i in range(num_keys)})
    sor.freeze()
    return cell, sor


def load(cell, sor, **kwargs):
    loader = CorpusLoader(cell, sor, **kwargs)
    return cell.sim.run(until=cell.sim.process(loader.load()))


def test_sor_read_roundtrip():
    cell, sor = build()
    host = cell.fabric.add_host("host/app")
    channel = rpc_connect(cell.sim, cell.fabric, host, sor.rpc_server,
                          Principal("app"))

    def app():
        hit = yield from channel.call("Read", {"key": b"doc-3"})
        miss = yield from channel.call("Read", {"key": b"nope"})
        return hit, miss

    hit, miss = cell.sim.run(until=cell.sim.process(app()))
    assert hit == {"found": True, "value": b"payload-3"}
    assert miss == {"found": False}
    assert sor.reads == 2


def test_sor_reads_cost_media_latency():
    cell, sor = build()
    host = cell.fabric.add_host("host/app")
    channel = rpc_connect(cell.sim, cell.fabric, host, sor.rpc_server,
                          Principal("app"))

    def app():
        start = cell.sim.now
        yield from channel.call("Read", {"key": b"doc-1"})
        return cell.sim.now - start

    latency = cell.sim.run(until=cell.sim.process(app()))
    assert latency > sor.cost.media_latency


def test_sealed_corpus_rejects_load():
    cell, sor = build()
    with pytest.raises(RuntimeError):
        sor.load({b"late": b"write"})


def test_loader_requires_sealed_corpus():
    cell = Cell(CellSpec(mode=ReplicationMode.R2_IMMUTABLE, num_shards=4,
                         transport="pony"))
    sor_host = cell.fabric.add_host("host/sor")
    sor = SystemOfRecord(cell.sim, sor_host)
    sor.load({b"k": b"v"})
    loader = CorpusLoader(cell, sor)
    proc = cell.sim.process(loader.load())
    proc.defused = True
    cell.sim.run()
    assert isinstance(proc.value, RuntimeError)


def test_loader_populates_both_replicas():
    cell, sor = build(num_keys=40)
    report = load(cell, sor)
    assert report.keys_loaded == 40
    assert report.replicas_written == 80  # two replicas per key
    assert report.batches >= 1
    # Every key resides on exactly two backends.
    for i in range(40):
        key = b"doc-%d" % i
        holders = sum(1 for b in cell.serving_backends()
                      if b.lookup_local(key) is not None)
        assert holders == 2


def test_cached_reads_much_faster_than_sor():
    cell, sor = build(num_keys=30)
    load(cell, sor)
    client = cell.connect_client()
    sor_channel = rpc_connect(cell.sim, cell.fabric, client.host,
                              sor.rpc_server, Principal("app"))

    def app():
        cached = yield from client.get(b"doc-7")
        assert cached.status is GetStatus.HIT
        start = cell.sim.now
        yield from sor_channel.call("Read", {"key": b"doc-7"})
        durable_latency = cell.sim.now - start
        return cached.latency, durable_latency

    cached_latency, durable_latency = cell.sim.run(
        until=cell.sim.process(app()))
    # The whole point of the cache tier: orders of magnitude faster.
    assert durable_latency > 20 * cached_latency


def test_r2_consults_one_replica_in_common_case():
    cell, sor = build(num_keys=20)
    load(cell, sor)
    client = cell.connect_client(strategy=LookupStrategy.TWO_R)

    def app():
        reads_before = cell.transport.counters.reads
        for i in range(10):
            result = yield from client.get(b"doc-%d" % i)
            assert result.hit
        return cell.transport.counters.reads - reads_before

    reads = cell.sim.run(until=cell.sim.process(app()))
    # One index fetch + one data fetch per GET: 20, not 30+ (no quorum).
    assert reads == 20


def test_r2_second_replica_covers_failure():
    cell, sor = build(num_keys=20)
    load(cell, sor)
    client = cell.connect_client(strategy=LookupStrategy.TWO_R)

    def app():
        yield from client.get(b"doc-0")  # connect/warm
        # Crash the first replica of every key we read.
        cell.backend_by_task(cell.task_for_shard(0)).crash()
        cell.backend_by_task(cell.task_for_shard(1)).crash()
        hits = 0
        for i in range(20):
            result = yield from client.get(b"doc-%d" % i, deadline=50e-3)
            hits += result.hit
        return hits

    hits = cell.sim.run(until=cell.sim.process(app()))
    # Keys whose primary died are served by the second replica; keys with
    # both replicas on the two dead backends (adjacent pair) are lost.
    assert hits >= 10


def test_miss_falls_back_to_sor_pattern():
    """The application pattern §6.4 implies: miss -> read durable copy."""
    cell, sor = build(num_keys=10)
    load(cell, sor)
    client = cell.connect_client()
    sor_channel = rpc_connect(cell.sim, cell.fabric, client.host,
                              sor.rpc_server, Principal("app"))

    def fetch(key):
        result = yield from client.get(key)
        if result.hit:
            return result.value, "cache"
        durable = yield from sor_channel.call("Read", {"key": key})
        return durable.get("value"), "sor"

    def app():
        value, source = yield from fetch(b"doc-3")
        assert (value, source) == (b"payload-3", "cache")
        value, source = yield from fetch(b"uncached-key")
        assert (value, source) == (None, "sor")

    cell.sim.run(until=cell.sim.process(app()))
