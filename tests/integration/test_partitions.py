"""Network partitions: dirty quorums from dropped RPCs/RMAs (§5.4)."""

import pytest

from repro.core import (Cell, CellSpec, GetStatus, LookupStrategy,
                        RepairConfig, ReplicationMode, SetStatus)
from repro.net import Fabric, FabricConfig, NetworkDropError
from repro.sim import Simulator


def build(repair=False):
    spec = CellSpec(
        mode=ReplicationMode.R3_2, num_shards=3, transport="pony",
        repair_config=RepairConfig(enabled=repair, scan_interval=0.3))
    return Cell(spec)


def run(cell, gen):
    return cell.sim.run(until=cell.sim.process(gen))


def test_partitioned_delivery_raises_after_detect_delay():
    sim = Simulator()
    fabric = Fabric(sim, FabricConfig(partition_detect_delay=100e-6,
                                      delay_jitter=0.0))
    a = fabric.add_host("a")
    b = fabric.add_host("b")
    fabric.partition(a, b)

    def send():
        start = sim.now
        try:
            yield from fabric.deliver(a, b, 100)
        except NetworkDropError:
            return sim.now - start
        return None

    elapsed = sim.run(until=sim.process(send()))
    assert elapsed == pytest.approx(100e-6)
    fabric.heal(a, b)

    def send_ok():
        yield from fabric.deliver(a, b, 100)
        return True

    assert sim.run(until=sim.process(send_ok()))


def test_reads_survive_client_partitioned_from_one_replica():
    cell = build()
    client = cell.connect_client(strategy=LookupStrategy.TWO_R)

    def app():
        for i in range(10):
            yield from client.set(b"k-%d" % i, b"v")
        victim = cell.backend_by_task("backend-1")
        cell.fabric.partition(client.host, victim.host)
        hits = 0
        for i in range(10):
            result = yield from client.get(b"k-%d" % i)
            hits += result.status is GetStatus.HIT
        return hits

    assert run(cell, app()) == 10


def test_writes_during_partition_create_dirty_quorums():
    cell = build()
    writer = cell.connect_client()

    def app():
        victim = cell.backend_by_task("backend-2")
        cell.fabric.partition(writer.host, victim.host)
        result = yield from writer.set(b"k", b"v")
        # The write still reaches a quorum (2 of 3): §5.2 forward progress.
        assert result.status is SetStatus.APPLIED
        assert result.replicas_applied == 2
        # The partitioned replica missed it: a dirty quorum (§5.4).
        return victim.lookup_local(b"k")

    missing = run(cell, app())
    assert missing is None


def test_repair_heals_partition_induced_dirty_quorum():
    cell = build(repair=True)
    writer = cell.connect_client()

    def app():
        victim = cell.backend_by_task("backend-2")
        cell.fabric.partition(writer.host, victim.host)
        yield from writer.set(b"k", b"v")
        assert victim.lookup_local(b"k") is None
        cell.fabric.heal_all()
        yield cell.sim.timeout(1.0)  # a scan cycle
        return victim.lookup_local(b"k")

    repaired = run(cell, app())
    assert repaired is not None
    assert repaired[0] == b"v"


def test_reader_partitioned_from_writer_still_converges():
    """A reader on the far side of a client-side partition sees the write
    once its own (unpartitioned) paths serve it."""
    cell = build()
    writer = cell.connect_client()
    reader = cell.connect_client(strategy=LookupStrategy.TWO_R)

    def app():
        victim = cell.backend_by_task("backend-0")
        cell.fabric.partition(writer.host, victim.host)
        yield from writer.set(b"k", b"fresh")
        result = yield from reader.get(b"k")
        return result

    result = run(cell, app())
    assert result.status is GetStatus.HIT
    assert result.value == b"fresh"
