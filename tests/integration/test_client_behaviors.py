"""Client-level behaviors: MSG strategy, retry layers, stat attribution."""


from repro.core import (BackendConfig, Cell, CellSpec, ClientConfig,
                        GetStatus, LookupStrategy, ReplicationMode, SetStatus)


def run(cell, gen):
    return cell.sim.run(until=cell.sim.process(gen))


def test_msg_strategy_roundtrip():
    cell = Cell(CellSpec(mode=ReplicationMode.R1, num_shards=2,
                         transport="pony"))
    client = cell.connect_client(strategy=LookupStrategy.MSG)

    def app():
        yield from client.set(b"k", b"v" * 32)
        hit = yield from client.get(b"k")
        miss = yield from client.get(b"absent")
        return hit, miss

    hit, miss = run(cell, app())
    assert hit.status is GetStatus.HIT and hit.value == b"v" * 32
    assert miss.status is GetStatus.MISS


def test_msg_wakes_server_threads_scar_does_not():
    costs = {}
    for strategy in (LookupStrategy.MSG, LookupStrategy.SCAR):
        cell = Cell(CellSpec(mode=ReplicationMode.R1, num_shards=2,
                             transport="pony"))
        client = cell.connect_client(strategy=strategy)

        def app():
            yield from client.set(b"k", b"v")
            for _ in range(20):
                yield from client.get(b"k")

        run(cell, app())
        costs[strategy] = sum(b.host.ledger.seconds("msg-app")
                              for b in cell.serving_backends())
    assert costs[LookupStrategy.MSG] > 0
    assert costs[LookupStrategy.SCAR] == 0


def test_msg_fails_over_to_second_replica():
    cell = Cell(CellSpec(mode=ReplicationMode.R3_2, num_shards=3,
                         transport="pony"))
    client = cell.connect_client(strategy=LookupStrategy.MSG)

    def app():
        yield from client.set(b"k", b"v")
        # Kill the key's first replica; MSG should try the next one.
        shard = client.placement.shards_for(
            client.placement.key_hash(b"k"))[0]
        cell.backend_by_task(cell.task_for_shard(shard)).crash()
        result = yield from client.get(b"k")
        return result

    result = run(cell, app())
    assert result.status is GetStatus.HIT


def test_torn_reads_and_version_races_counted_separately():
    cell = Cell(CellSpec(
        mode=ReplicationMode.R3_2, num_shards=3, transport="pony",
        backend_config=BackendConfig(min_write_step=150e-6)))
    writer = cell.connect_client(strategy=LookupStrategy.TWO_R)
    reader = cell.connect_client(strategy=LookupStrategy.TWO_R)

    def setup():
        yield from writer.set(b"k", b"A" * 400)

    run(cell, setup())

    def write_loop():
        for i in range(20):
            yield from writer.set(b"k", bytes([65 + i % 26]) * 400)

    def read_loop():
        end = cell.sim.now + 3e-3
        while cell.sim.now < end:
            yield from reader.get(b"k")
            yield cell.sim.timeout(4e-6)

    cell.sim.process(write_loop())
    run(cell, read_loop())
    assert reader.stats["torn_reads"] > 0
    assert reader.stats["get_errors"] == 0


def test_stale_view_retry_counts_view_refreshes():
    cell = Cell(CellSpec(
        mode=ReplicationMode.R1, num_shards=1, transport="pony",
        backend_config=BackendConfig(num_buckets=2, ways=2,
                                     index_resize_load_factor=0.5)))
    client = cell.connect_client(strategy=LookupStrategy.TWO_R)
    refreshes_at_connect = client.stats["view_refreshes"]

    def app():
        for i in range(10):
            yield from client.set(b"k-%d" % i, b"v")
        yield cell.sim.timeout(0.5)  # let resizes land
        for i in range(10):
            result = yield from client.get(b"k-%d" % i)
            assert result.status is GetStatus.HIT

    run(cell, app())
    assert client.stats["view_refreshes"] > refreshes_at_connect


def test_deadline_bounds_get_wall_time():
    cell = Cell(CellSpec(mode=ReplicationMode.R3_2, num_shards=3,
                         transport="pony"))
    client = cell.connect_client(
        strategy=LookupStrategy.TWO_R,
        client_config=ClientConfig(max_retries=1000, retry_backoff=50e-6))

    def app():
        # Kill two backends: every GET is inquorate and retries forever —
        # only the deadline stops it.
        for task in ("backend-0", "backend-1"):
            cell.backend_by_task(task).crash()
        start = cell.sim.now
        result = yield from client.get(b"k", deadline=2e-3)
        return result, cell.sim.now - start

    result, elapsed = run(cell, app())
    assert result.status in (GetStatus.ERROR, GetStatus.MISS)
    assert elapsed < 4e-3  # bounded by (deadline + the final attempt)


def test_get_multi_partial_hits():
    cell = Cell(CellSpec(mode=ReplicationMode.R3_2, num_shards=3,
                         transport="pony"))
    client = cell.connect_client()

    def app():
        yield from client.set(b"present", b"v")
        results = yield from client.get_multi([b"present", b"absent"])
        return results

    results = run(cell, app())
    assert results[0].hit
    assert results[1].status is GetStatus.MISS


def test_cas_reports_stored_version_on_failure():
    cell = Cell(CellSpec(mode=ReplicationMode.R3_2, num_shards=3,
                         transport="pony"))
    client = cell.connect_client()

    def app():
        yield from client.set(b"k", b"v1")
        current = yield from client.get(b"k")
        yield from client.set(b"k", b"v2")
        failed = yield from client.cas(b"k", b"v3", current.version)
        fresh = yield from client.get(b"k")
        ok = yield from client.cas(b"k", b"v3", fresh.version)
        return failed, ok

    failed, ok = run(cell, app())
    assert failed.status is SetStatus.FAILED
    assert failed.stored_version is not None
    assert ok.status is SetStatus.APPLIED


def test_erase_superseded_by_concurrent_newer_set():
    cell = Cell(CellSpec(mode=ReplicationMode.R3_2, num_shards=3,
                         transport="pony"))
    a = cell.connect_client()
    b = cell.connect_client()

    def app():
        yield from a.set(b"k", b"v")
        # b erases, then a sets again with a newer version: key lives.
        yield from b.erase(b"k")
        yield from a.set(b"k", b"reborn")
        result = yield from a.get(b"k")
        return result

    result = run(cell, app())
    assert result.hit and result.value == b"reborn"


def test_overflow_rpc_lookup_can_be_disabled():
    backend_config = BackendConfig(num_buckets=1, ways=1,
                                   overflow_rpc_fallback=True,
                                   index_resize_load_factor=2.0)
    cell = Cell(CellSpec(mode=ReplicationMode.R1, num_shards=1,
                         transport="pony", backend_config=backend_config))
    on = cell.connect_client(
        strategy=LookupStrategy.TWO_R,
        client_config=ClientConfig(overflow_rpc_lookup=True))
    off = cell.connect_client(
        strategy=LookupStrategy.TWO_R,
        client_config=ClientConfig(overflow_rpc_lookup=False))

    def app():
        # Two keys into a single 1-way bucket: the second spills.
        yield from on.set(b"a", b"1")
        yield from on.set(b"b", b"2")
        backend = cell.backend_by_task("backend-0")
        spilled = [k for k in (b"a", b"b")
                   if backend.placement.key_hash(k) in backend.overflow]
        assert len(spilled) == 1
        with_fallback = yield from on.get(spilled[0])
        without = yield from off.get(spilled[0])
        return with_fallback, without

    with_fallback, without = run(cell, app())
    assert with_fallback.status is GetStatus.HIT
    assert without.status is GetStatus.MISS
    assert on.stats["overflow_lookups"] >= 1


def test_concurrent_cas_same_expected_at_most_one_wins():
    """End-to-end lost-update freedom: of N CAS racing on one observed
    version, at most one reports APPLIED (I5 in the formal model)."""
    cell = Cell(CellSpec(mode=ReplicationMode.R3_2, num_shards=3,
                         transport="pony"))
    clients = [cell.connect_client() for _ in range(3)]

    def setup():
        yield from clients[0].set(b"k", b"base")
        result = yield from clients[0].get(b"k")
        return result.version

    version = run(cell, setup())
    outcomes = []

    def racer(client, tag):
        result = yield from client.cas(b"k", b"winner-%d" % tag, version)
        outcomes.append((tag, result.status))

    procs = [cell.sim.process(racer(c, i)) for i, c in enumerate(clients)]
    cell.sim.run(until=cell.sim.all_of(procs))
    applied = [tag for tag, status in outcomes
               if status is SetStatus.APPLIED]
    assert len(applied) <= 1
    if applied:
        def verify():
            result = yield from clients[0].get(b"k")
            return result.value
        assert run(cell, verify()) == b"winner-%d" % applied[0]
