"""Determinism + equivalence of the sharded parallel federation.

Three claims, from strongest to weakest (see ARCHITECTURE §13):

1. a parallel (multiprocess) sharded run is bit-identical to the
   sequential (one-process) run of the same sharded model, same seed;
2. same-seed parallel runs are bit-identical to each other;
3. a 1-zone sharded run is bit-identical to the plain single-event-loop
   Federation — the sharded model is the *same model*, not a look-alike;
   multi-zone plain runs are compared semantically (timing models for
   the WAN hop legitimately differ).
"""

import multiprocessing

import pytest

from repro.analysis import (compare_parallel, digest_mismatches,
                            run_federation_arm)
from repro.core import CellSpec, ZoneWorkloadSpec

ZONES4 = ("dc-a", "dc-b", "dc-c", "dc-d")

SMALL_CELL = dict(num_shards=3)


def small_workload(**overrides):
    base = dict(clients=2, shared_keys=16, private_keys=4,
                think_mean=300e-6)
    base.update(overrides)
    return ZoneWorkloadSpec(**base)


def test_same_seed_parallel_runs_bit_identical():
    """Claim 2: rerunning the 4-shard parallel federation on the same
    seed reproduces every digest bit-for-bit."""
    runs = [run_federation_arm(ZONES4, cell_spec=CellSpec(**SMALL_CELL),
                               workload=small_workload(), duration=0.1,
                               mode="parallel") for _ in range(2)]
    assert digest_mismatches(runs[0], runs[1]) == []
    assert runs[0].events == runs[1].events
    assert runs[0].windows == runs[1].windows


def test_parallel_matches_sequential_execution():
    """Claim 1: worker processes change nothing but the wall clock.
    (compare_parallel asserts digest equivalence internally.)"""
    record = compare_parallel(ZONES4, cell_spec=CellSpec(**SMALL_CELL),
                              workload=small_workload(), duration=0.1)
    assert record["digest_equivalent"]
    assert record["events"] > 0
    assert record["messages_routed"] > 0
    assert not record["leaked_children"]


def test_single_shard_matches_plain_federation():
    """Claim 3 (exact half): with one zone there is no WAN traffic, so
    the sharded run must reproduce the plain Federation run exactly —
    op digests, event counts, metric totals, and the final clock."""
    workload = small_workload(population_clients=20,
                              population_rate=100.0,
                              population_drivers=2, population_keys=32)
    plain = run_federation_arm(("dc-a",), cell_spec=CellSpec(**SMALL_CELL),
                               workload=workload, duration=0.1,
                               mode="plain")
    sharded = run_federation_arm(("dc-a",),
                                 cell_spec=CellSpec(**SMALL_CELL),
                                 workload=workload, duration=0.1,
                                 mode="parallel")
    plain_zone = plain["digests"]["dc-a"]
    shard_zone = sharded.digests[0]
    for field in ("ops", "ops_digest", "fed_stats", "population",
                  "metrics"):
        assert shard_zone[field] == plain_zone[field], field
    assert shard_zone["events"] == plain["events"]
    assert shard_zone["final_now"] == plain["horizon"]


def test_multi_zone_semantics_match_plain_federation():
    """Claim 3 (semantic half): across models, every preloaded GET must
    hit (locally or by remote fallback) and fan-out writes must apply —
    in both the plain and the sharded world."""
    workload = small_workload(remote_every=4, fanout_every=8)
    plain = run_federation_arm(ZONES4, cell_spec=CellSpec(**SMALL_CELL),
                               workload=workload, duration=0.1,
                               mode="plain")
    sharded = run_federation_arm(ZONES4, cell_spec=CellSpec(**SMALL_CELL),
                                 workload=workload, duration=0.1,
                                 mode="sequential")
    for digest in list(plain["digests"].values()) + sharded.digests:
        stats = digest["fed_stats"]
        assert stats["misses"] == 0, digest["zone"]
        assert stats["remote_hits"] > 0, digest["zone"]
        assert stats["local_hits"] > 0, digest["zone"]
        assert digest["ops"] > 0
    assert sharded.messages_routed > 0


def test_no_worker_processes_leak():
    run_federation_arm(ZONES4, cell_spec=CellSpec(**SMALL_CELL),
                       workload=small_workload(), duration=0.05,
                       mode="parallel")
    assert multiprocessing.active_children() == []


def test_lookahead_violation_is_loud():
    """A lookahead larger than the true minimum WAN latency would let a
    message arrive in a shard's past; the kernel's inject() guard must
    turn that into an error, not silent time travel."""
    from repro.core.parallelfed import shard_builders
    from repro.net import FabricConfig
    from repro.sim import ShardCoordinator, SimulationError
    builders = shard_builders(("dc-a", "dc-b"), CellSpec(**SMALL_CELL),
                              FabricConfig(), small_workload(
                                  remote_every=2, think_mean=100e-6),
                              0.2)
    coordinator = ShardCoordinator(
        builders, lookahead=10 * FabricConfig().inter_zone_delay,
        run_for=0.2)
    with pytest.raises(SimulationError):
        coordinator.run(parallel=False)
