"""Rolling binary upgrades: the paper's weekly fleet-wide rollout (§6.1).

Upgrades are "essentially always in progress". This test performs a full
rolling upgrade — every backend migrated to the warm spare, restarted,
and handed back, one at a time — under continuous client load, and
demands the same hitless behavior the paper reports.
"""


from repro.core import (Cell, CellSpec, ClientConfig, GetStatus,
                        LookupStrategy, MaintenanceConfig, ReplicationMode)
from repro.rpc import ProtocolVersion


def test_rolling_upgrade_is_hitless():
    cell = Cell(CellSpec(
        mode=ReplicationMode.R3_2, num_shards=3, num_spares=1,
        transport="pony",
        maintenance_config=MaintenanceConfig(restart_delay=0.15)))
    clients = [cell.connect_client(
        strategy=LookupStrategy.TWO_R,
        client_config=ClientConfig(touch_enabled=False))
        for _ in range(3)]
    sim = cell.sim
    outcomes = {"total": 0, "degraded": 0}
    keys = 60

    def setup():
        for i in range(keys):
            yield from clients[0].set(b"key-%d" % i, b"v%d" % i)

    sim.run(until=sim.process(setup()))

    done = [False]

    def load(client, stride):
        i = stride
        while not done[0]:
            result = yield from client.get(b"key-%d" % (i % keys))
            outcomes["total"] += 1
            if result.status is not GetStatus.HIT:
                outcomes["degraded"] += 1
            i += stride
            yield sim.timeout(1e-4)

    def rolling_upgrade():
        # Upgrade every shard in sequence, bumping the advertised
        # protocol version as the "new binary" comes up.
        for shard in range(3):
            yield from cell.maintenance.planned_restart(shard)
            task = cell.task_for_shard(shard)
            backend = cell.backend_by_task(task)
            backend.rpc_server.max_version = ProtocolVersion(1, 100 + shard)
            yield sim.timeout(0.05)
        done[0] = True

    procs = [sim.process(load(c, 7 + i)) for i, c in enumerate(clients)]
    upgrade = sim.process(rolling_upgrade())
    sim.run(until=upgrade)
    done[0] = True
    sim.run(until=sim.all_of(procs))

    assert outcomes["total"] > 1000
    assert outcomes["degraded"] == 0
    # Every shard is back on its primary task, upgraded.
    config = cell.config_store.peek("cell")
    assert config.shard_tasks == ["backend-0", "backend-1", "backend-2"]
    assert config.spares == ["spare-0"]
    for shard in range(3):
        backend = cell.backend_by_task(f"backend-{shard}")
        assert backend.rpc_server.max_version.minor >= 100
    # Data integrity after three full migrations.

    def verify():
        hits = 0
        for i in range(keys):
            result = yield from clients[0].get(b"key-%d" % i)
            hits += result.hit and result.value == b"v%d" % i
        return hits

    assert sim.run(until=sim.process(verify())) == keys


def test_upgrade_during_writes_preserves_latest_values():
    cell = Cell(CellSpec(
        mode=ReplicationMode.R3_2, num_shards=3, num_spares=1,
        transport="pony",
        maintenance_config=MaintenanceConfig(restart_delay=0.1)))
    writer = cell.connect_client()
    reader = cell.connect_client(strategy=LookupStrategy.TWO_R)
    sim = cell.sim

    def setup():
        yield from writer.set(b"k", b"gen-0")

    sim.run(until=sim.process(setup()))

    def write_during():
        generation = 0
        end = sim.now + 0.8
        while sim.now < end:
            generation += 1
            yield from writer.set(b"k", b"gen-%d" % generation)
            yield sim.timeout(20e-3)
        return generation

    def upgrade():
        yield from cell.maintenance.planned_restart(0)

    writes = sim.process(write_during())
    maint = sim.process(upgrade())
    final_generation = sim.run(until=writes)
    sim.run(until=maint)

    def verify():
        result = yield from reader.get(b"k")
        return result

    result = sim.run(until=sim.process(verify()))
    assert result.hit
    # The value is one of the recent generations, never stale-by-miles
    # and never lost (migration + mutation versions interleave safely).
    observed_generation = int(result.value.split(b"-")[1])
    assert observed_generation >= final_generation - 1
