"""Gray failures: loss, corruption, and slow links — and the reactions.

Unlike a crash, a gray failure leaves the backend up but the path to it
lying: packets vanish, payloads arrive flipped, RTTs balloon. These
tests degrade links with :class:`~repro.net.LinkFault` and assert the
reaction machinery does its job: checksum validation catches corruption
(never a wrong HIT), the retry budget sheds amplification under
sustained failure, and the health scoreboard quarantines lossy backends
while quorum ops keep serving.
"""

import pytest

from repro.core import (Cell, CellSpec, ClientConfig, GetStatus,
                        GetStrategy, ReplicationMode, SetStatus)
from repro.net import LinkFault

KEYS = 8


def build(num_shards=3):
    return Cell(CellSpec(mode=ReplicationMode.R3_2, num_shards=num_shards,
                         transport="pony"))


def seed_keys(cell, client):
    def app():
        for i in range(KEYS):
            result = yield from client.set(b"gray-%d" % i, b"value-%d" % i)
            assert result.status is SetStatus.APPLIED
    cell.sim.run(until=cell.sim.process(app()))


def test_corruption_is_caught_by_checksum_validation():
    """Flipped RMA payloads must never surface as HITs of garbage; the
    checksum catches them, the client retries, and the fabric counts
    every corrupted delivery."""
    cell = build()
    client = cell.connect_client(client_config=ClientConfig(
        max_retries=16, default_deadline=20e-3))
    seed_keys(cell, client)

    # Corrupt ~60% of deliveries touching the client's host: every RMA
    # response the client reads is at risk, so torn reads are guaranteed
    # at volume while enough clean attempts get through to HIT.
    cell.fabric.degrade_host(client.host,
                             LinkFault(corrupt_probability=0.6))

    def reads():
        hits = 0
        for round_ in range(20):
            for i in range(KEYS):
                result = yield from client.get(b"gray-%d" % i)
                if result.status is GetStatus.HIT:
                    assert result.value == b"value-%d" % i
                    hits += 1
        return hits

    hits = cell.sim.run(until=cell.sim.process(reads()))
    assert hits > 0
    assert client.stats["torn_reads"] > 0, \
        "corruption never reached checksum validation"
    assert cell.metrics.total("cliquemap_fabric_corrupted_total") > 0
    assert client.stats["retries"] > 0

    # Healed link: reads are clean again.
    cell.fabric.clear_host_fault(client.host)

    def clean_reads():
        for i in range(KEYS):
            result = yield from client.get(b"gray-%d" % i)
            assert result.status is GetStatus.HIT
    cell.sim.run(until=cell.sim.process(clean_reads()))


def test_retry_budget_caps_retry_amplification():
    """With every backend unreachable, a drained token bucket sheds
    further retries: ops fail fast with a distinct reason instead of
    hammering the cohort until the deadline."""
    cell = build()
    client = cell.connect_client(client_config=ClientConfig(
        max_retries=1000, default_deadline=50e-3,
        retry_budget_capacity=4.0, retry_budget_fill_rate=0.0))
    seed_keys(cell, client)
    for backend in cell.serving_backends():
        cell.fabric.partition(client.host, backend.host)

    def app():
        results = []
        for i in range(KEYS):
            result = yield from client.get(b"gray-%d" % i)
            results.append(result)
        return results

    results = cell.sim.run(until=cell.sim.process(app()))
    assert all(r.status is GetStatus.ERROR for r in results)
    # Exactly 4 tokens existed; every further retry was shed.
    assert client.stats["retries"] <= 4 + KEYS  # paid + one free per op
    assert client.stats["retries_shed"] > 0
    assert "budget-exhausted" in {r.error for r in results}
    assert cell.metrics.total("cliquemap_retries_shed_total") > 0
    assert cell.metrics.total("cliquemap_retries_shed_total") == \
        client.stats["retries_shed"]


def test_slow_link_stretches_latency_and_is_counted():
    cell = build()
    client = cell.connect_client(client_config=ClientConfig(
        default_deadline=50e-3))
    seed_keys(cell, client)

    def timed_reads():
        total = 0.0
        for i in range(KEYS):
            result = yield from client.get(b"gray-%d" % i)
            assert result.status is GetStatus.HIT
            total += result.latency
        return total

    baseline = cell.sim.run(until=cell.sim.process(timed_reads()))
    cell.fabric.degrade_host(client.host,
                             LinkFault(latency_multiplier=8.0))
    slowed = cell.sim.run(until=cell.sim.process(timed_reads()))
    assert slowed > 2.0 * baseline, \
        f"slow link had no effect: {baseline=} {slowed=}"
    assert cell.metrics.total("cliquemap_fabric_slowed_total") > 0


def test_lossy_backend_is_quarantined_while_quorum_keeps_serving():
    """A backend whose link eats every packet should trip the health
    scoreboard into quarantine; R=3.2 quorum ops keep answering from
    the other two replicas."""
    cell = build()
    client = cell.connect_client(
        strategy=GetStrategy.TWO_R,
        client_config=ClientConfig(max_retries=8, default_deadline=20e-3))
    seed_keys(cell, client)

    victim = cell.serving_backends()[0]
    cell.fabric.degrade(client.host, victim.host,
                        LinkFault(loss_probability=1.0))

    def reads():
        hits = 0
        for round_ in range(10):
            for i in range(KEYS):
                result = yield from client.get(b"gray-%d" % i)
                if result.status is GetStatus.HIT:
                    assert result.value == b"value-%d" % i
                    hits += 1
        return hits

    hits = cell.sim.run(until=cell.sim.process(reads()))
    assert hits == 10 * KEYS, "quorum should mask one lossy replica"
    assert cell.metrics.total("cliquemap_backend_quarantine_total",
                              event="enter") > 0
    assert cell.metrics.total("cliquemap_fabric_dropped_total",
                              reason="loss") > 0
    health = client.backend_health(victim.task_name)
    assert health is not None
    assert health.quarantines > 0


def test_link_fault_validation_rejects_bad_parameters():
    with pytest.raises(ValueError):
        LinkFault(loss_probability=1.5)
    with pytest.raises(ValueError):
        LinkFault(corrupt_probability=-0.1)
    with pytest.raises(ValueError):
        LinkFault(latency_multiplier=0.5)


def test_link_faults_stack_via_combine():
    a = LinkFault(loss_probability=0.5, latency_multiplier=2.0)
    b = LinkFault(loss_probability=0.5, corrupt_probability=0.25,
                  latency_multiplier=3.0)
    c = a.combine(b)
    assert c.loss_probability == pytest.approx(0.75)
    assert c.corrupt_probability == pytest.approx(0.25)
    assert c.latency_multiplier == pytest.approx(6.0)
