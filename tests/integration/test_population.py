"""Validation harness for the aggregate client-population model.

The honesty methodology mirrors PR 4's kernel-equivalence digests: the
cheapest configuration of the new machinery must be *exactly* the old
machinery (population-of-1 == one real open-loop client, same seed, same
events), and the interesting configurations must match statistically
(KS distance over latency samples, hit-rate and delivered-op deltas).
"""

import pytest

from repro.analysis import compare_population, run_population_arm
from repro.core import Cell, CellSpec, CliqueMapError, ReplicationMode
from repro.sim import RandomStream
from repro.workloads import (ClientPopulation, KeySpace, LoadGenerator,
                             PopulationConfig, WorkloadMetrics, populate)


# -- exact equivalence --------------------------------------------------------

def test_population_of_one_is_bit_identical_to_one_real_client():
    # One modeled client on one driver consumes the identical RNG draw
    # sequence as one real open-loop client: the identity draw is
    # skipped at slice size 1 and the thinning draw at sample rate 1,
    # so the two runs are the same run — same ops, same latencies, same
    # scheduling sequence numbers.
    kwargs = dict(num_modeled=1, rate_per_client=3000.0, duration=0.3,
                  seed=5, num_hosts=4, num_keys=128, drain=0.1)
    real = run_population_arm("real", **kwargs)
    pop = run_population_arm("population", num_drivers=1, **kwargs)
    assert pop["latency_samples"] == real["latency_samples"]
    assert pop["ops"] == real["ops"] > 0
    assert pop["hits"] == real["hits"]
    assert pop["offered"] == real["offered"]
    assert pop["shed"] == real["shed"]
    assert pop["events"] == real["events"]
    assert pop["sim_seconds"] == real["sim_seconds"]


# -- statistical equivalence --------------------------------------------------

def test_population_matches_real_clients_statistically():
    result = compare_population(num_modeled=16, num_drivers=2,
                                rate_per_client=400.0, duration=0.5,
                                seed=11)
    cmp = result["comparison"]
    assert result["real"]["ops"] > 500
    assert result["population"]["ops"] > 500
    assert cmp["ks_distance"] < 0.15, cmp
    assert cmp["hit_rate_delta"] < 0.05, cmp
    assert 0.85 < cmp["delivered_ratio"] < 1.15, cmp


def test_population_thinning_delivers_the_sampled_fraction():
    run = run_population_arm("population", num_modeled=64,
                             rate_per_client=200.0, duration=0.5,
                             num_drivers=2, seed=9, num_hosts=4,
                             num_keys=256, op_sample_rate=0.25,
                             drain=0.2)
    assert run["thinned"] > 0
    driven_fraction = (run["offered"] - run["thinned"] -
                       run["shed"]) / run["offered"]
    assert driven_fraction == pytest.approx(0.25, abs=0.06)
    # Thinning skips batches before issue; whatever is driven lands.
    assert run["ops"] == run["driven"]
    assert run["errors"] == 0


# -- offered/shed/thinned accounting ------------------------------------------

def test_population_accounting_balances_and_counter_matches():
    # Cap of 1 outstanding batch per modeled client at an absurd offered
    # rate: most arrivals shed, and every key-op must be accounted as
    # exactly one of shed / thinned / delivered.
    run = run_population_arm("population", num_modeled=4,
                             rate_per_client=50_000.0, duration=0.1,
                             num_drivers=2, seed=3, num_hosts=4,
                             num_keys=64, op_sample_rate=0.5,
                             outstanding_cap=1, drain=0.3)
    assert run["shed"] > 0
    assert run["thinned"] > 0
    assert run["offered"] == run["shed"] + run["thinned"] + run["ops"]
    # WorkloadMetrics and the cell-registry counter must agree.
    assert run["shed_counter"] == run["shed"]


def test_open_loop_counts_sheds_instead_of_dropping_silently():
    # The open-loop generator used to drop batches at the outstanding
    # cap without a trace; now every shed is counted in WorkloadMetrics
    # and on cliquemap_loadgen_shed_total.
    cell = Cell(CellSpec(mode=ReplicationMode.R3_2, num_shards=3))
    sim = cell.sim
    stream = RandomStream(7, "shed")
    keyspace = KeySpace(stream.child("keys"), 32)
    client = cell.connect_client()
    sim.run(until=sim.process(populate(client, keyspace, 64)))
    metrics = WorkloadMetrics()
    gen = LoadGenerator(sim, [client], keyspace, stream.child("load"),
                        metrics, max_outstanding_per_client=1)
    procs = gen.start_open_loop_gets(rate_per_client=200_000.0,
                                     duration=0.05)
    sim.run(until=sim.all_of(procs))
    sim.run(until=sim.now + 0.2)
    assert metrics.shed > 0
    assert metrics.offered == metrics.shed + metrics.gets
    assert 0.0 < metrics.shed_rate <= 1.0
    assert cell.metrics.total("cliquemap_loadgen_shed_total") == \
        metrics.shed


# -- configuration validation -------------------------------------------------

def test_population_config_rejects_nonsense():
    with pytest.raises(CliqueMapError):
        PopulationConfig(num_clients=0, rate_per_client=1.0, duration=1.0)
    with pytest.raises(CliqueMapError):
        PopulationConfig(num_clients=1, rate_per_client=1.0,
                         duration=0.0)
    with pytest.raises(CliqueMapError):
        PopulationConfig(num_clients=1, rate_per_client=1.0, duration=1.0,
                         op_sample_rate=0.0)
    with pytest.raises(CliqueMapError):
        PopulationConfig(num_clients=1, rate_per_client=1.0, duration=1.0,
                         max_outstanding_per_client=0)


def test_population_requires_drivers_not_exceeding_clients():
    cell = Cell(CellSpec(mode=ReplicationMode.R3_2, num_shards=3))
    stream = RandomStream(1, "cfg")
    keyspace = KeySpace(stream.child("keys"), 16)
    drivers = [cell.connect_client() for _ in range(3)]
    gen = LoadGenerator(cell.sim, drivers, keyspace,
                        stream.child("load"), WorkloadMetrics())
    with pytest.raises(CliqueMapError):
        ClientPopulation(gen, PopulationConfig(
            num_clients=2, rate_per_client=1.0, duration=1.0))


def test_run_population_arm_rejects_unknown_mode():
    with pytest.raises(ValueError):
        run_population_arm("imaginary", num_modeled=1,
                           rate_per_client=1.0, duration=0.1)
