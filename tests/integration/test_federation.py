"""Multi-cell federation across datacenters (§1, Table 1 row 5)."""


from repro.core import CellSpec, GetStatus, ReplicationMode, SetStatus
from repro.core.federation import Federation, FederationSpec
from repro.net import FabricConfig


def build(zones=("dc-a", "dc-b"), inter_zone_delay=2e-3):
    spec = FederationSpec(
        zones=list(zones),
        cell_spec=CellSpec(mode=ReplicationMode.R3_2, num_shards=3,
                           transport="pony"),
        fabric_config=FabricConfig(inter_zone_delay=inter_zone_delay,
                                   delay_jitter=0.0))
    return Federation(spec)


def connect(federation, zone, **kwargs):
    client = federation.make_client(zone, **kwargs)
    federation.sim.run(until=federation.sim.process(client.connect()))
    return client


def run(federation, gen):
    return federation.sim.run(until=federation.sim.process(gen))


def test_cells_created_per_zone():
    federation = build()
    assert set(federation.cells) == {"dc-a", "dc-b"}
    for zone, cell in federation.cells.items():
        for backend in cell.backends.values():
            assert backend.host.zone == zone
            assert backend.host.name.startswith(f"{zone}/")


def test_local_reads_are_rma_fast():
    federation = build()
    client = connect(federation, "dc-a")

    def app():
        yield from client.set(b"k", b"v")
        result = yield from client.get(b"k")
        return result

    result = run(federation, app())
    assert result.status is GetStatus.HIT
    assert result.latency < 1e-3           # intra-zone, no WAN
    assert client.stats["local_hits"] == 1


def test_writes_fan_out_to_all_zones():
    federation = build()
    a = connect(federation, "dc-a")
    b = connect(federation, "dc-b")

    def app():
        result = yield from a.set(b"k", b"fanout")
        assert result.status is SetStatus.APPLIED
        local = yield from b.get(b"k")
        return local

    result = run(federation, app())
    assert result.status is GetStatus.HIT
    # dc-b served it locally: no WAN hop needed after the fan-out write.
    assert b.stats["local_hits"] == 1
    assert b.stats["remote_hits"] == 0


def test_remote_fallback_fills_local_cell():
    federation = build()
    a = connect(federation, "dc-a", remote_fallback=False)
    b = connect(federation, "dc-b")

    def app():
        # Write only into dc-a (no fan-out from this client).
        yield from a.local.set(b"only-in-a", b"v")
        first = yield from b.get(b"only-in-a")
        second = yield from b.get(b"only-in-a")
        return first, second

    first, second = run(federation, app())
    assert first.status is GetStatus.HIT   # served over WAN
    assert b.stats["remote_hits"] == 1
    assert second.status is GetStatus.HIT  # now local (cache fill)
    assert b.stats["local_hits"] == 1
    # The WAN fetch was far slower than the filled local read.
    assert first.latency > 10 * second.latency


def test_miss_everywhere_reports_miss():
    federation = build()
    client = connect(federation, "dc-a")

    def app():
        return (yield from client.get(b"nowhere"))

    result = run(federation, app())
    assert result.status is GetStatus.MISS
    assert client.stats["misses"] == 1


def test_erase_fans_out():
    federation = build()
    a = connect(federation, "dc-a")
    b = connect(federation, "dc-b")

    def app():
        yield from a.set(b"k", b"v")
        yield from a.erase(b"k")
        result = yield from b.get(b"k")
        return result

    result = run(federation, app())
    assert result.status is GetStatus.MISS


def test_three_zone_federation():
    federation = build(zones=("us", "eu", "asia"))
    us = connect(federation, "us")
    asia = connect(federation, "asia")

    def app():
        yield from us.set(b"global-key", b"v")
        result = yield from asia.get(b"global-key")
        return result

    result = run(federation, app())
    assert result.status is GetStatus.HIT
    assert asia.stats["local_hits"] == 1  # fan-out write reached asia


def test_default_wan_delay_still_works():
    """With the default 15ms inter-zone delay, WAN deadlines must hold."""
    federation = build(inter_zone_delay=15e-3)
    a = connect(federation, "dc-a", remote_fallback=False)
    b = connect(federation, "dc-b")

    def app():
        yield from a.local.set(b"k", b"v")
        result = yield from b.get(b"k")
        return result

    result = run(federation, app())
    assert result.status is GetStatus.HIT
    assert b.stats["remote_hits"] == 1
