"""Chaos soak: random crashes, partitions, and load — never a wrong value.

A seeded fault injector drives backend crashes/restarts, client-replica
partitions/heals, and an NIC antagonist while writers and readers churn.
The two properties every CliqueMap mechanism exists to protect:

1. a HIT never returns a value that was not written to that key;
2. after the chaos ends (faults healed, repairs run), every key reads
   back as its last acknowledged write.
"""

import pytest

from repro.core import (Cell, CellSpec, ClientConfig, GetStatus,
                        LookupStrategy, MaintenanceConfig, RepairConfig,
                        ReplicationMode, SetStatus)
from repro.sim import RandomStream

KEYS = 12
CHAOS_SECONDS = 2.0


def build():
    return Cell(CellSpec(
        mode=ReplicationMode.R3_2, num_shards=3, transport="pony",
        repair_config=RepairConfig(enabled=True, scan_interval=0.25),
        maintenance_config=MaintenanceConfig()))


@pytest.mark.parametrize("seed", [1, 7, 23])
def test_chaos_never_serves_garbage_and_recovers(seed):
    cell = build()
    sim = cell.sim
    stream = RandomStream(seed, "chaos")
    writers = [cell.connect_client() for _ in range(2)]
    reader = cell.connect_client(
        strategy=LookupStrategy.TWO_R,
        client_config=ClientConfig(max_retries=6, default_deadline=5e-3))

    written = {i: set() for i in range(KEYS)}   # all values ever written
    last_applied = {}                            # key -> last acked value
    bad_hits = []
    done = [False]

    def key_name(i):
        return b"chaos-key-%d" % i

    def seed_corpus():
        for i in range(KEYS):
            value = b"init-%d" % i
            result = yield from writers[0].set(key_name(i), value)
            assert result.status is SetStatus.APPLIED
            written[i].add(value)
            last_applied[i] = value

    sim.run(until=sim.process(seed_corpus()))
    start = sim.now

    def writer_loop(client, tag, rand):
        generation = 0
        # Each writer owns a disjoint half of the keyspace so
        # "last acknowledged write" is unambiguous.
        own = [i for i in range(KEYS) if i % 2 == tag]
        while not done[0]:
            i = own[rand.randint(0, len(own) - 1)]
            generation += 1
            value = b"w%d-g%d" % (tag, generation)
            written[i].add(value)
            result = yield from client.set(key_name(i), value)
            if result.status is SetStatus.APPLIED:
                last_applied[i] = value
            yield sim.timeout(rand.uniform(1e-3, 5e-3))

    def reader_loop(rand):
        while not done[0]:
            i = rand.randint(0, KEYS - 1)
            result = yield from reader.get(key_name(i))
            if result.status is GetStatus.HIT and \
                    result.value not in written[i]:
                bad_hits.append((i, result.value))
            yield sim.timeout(rand.uniform(0.5e-3, 2e-3))

    def chaos_loop(rand):
        partitioned = []
        while sim.now - start < CHAOS_SECONDS:
            yield sim.timeout(rand.uniform(0.1, 0.3))
            action = rand.choice(["crash", "partition", "heal",
                                  "antagonist", "nothing"])
            if action == "crash":
                shard = rand.randint(0, 2)
                if cell.backend_by_task(cell.task_for_shard(shard)).alive:
                    yield from cell.maintenance.unplanned_crash(
                        shard, restart_delay=rand.uniform(0.05, 0.2))
            elif action == "partition" and len(partitioned) < 2:
                client = rand.choice(writers + [reader])
                backend = cell.backend_by_task(
                    cell.task_for_shard(rand.randint(0, 2)))
                cell.fabric.partition(client.host, backend.host)
                partitioned.append((client.host, backend.host))
            elif action == "heal" and partitioned:
                a, b = partitioned.pop()
                cell.fabric.heal(a, b)
            elif action == "antagonist":
                backend = cell.backend_by_task(
                    cell.task_for_shard(rand.randint(0, 2)))
                proc = cell.fabric.start_antagonist(
                    backend.host,
                    0.5 * cell.fabric.config.host_rate_bytes_per_sec)
                yield sim.timeout(0.05)
                proc.interrupt()
        cell.fabric.heal_all()
        done[0] = True

    procs = [
        sim.process(writer_loop(writers[0], 0, stream.child("w0"))),
        sim.process(writer_loop(writers[1], 1, stream.child("w1"))),
        sim.process(reader_loop(stream.child("r"))),
    ]
    chaos = sim.process(chaos_loop(stream.child("chaos")))
    sim.run(until=chaos)
    done[0] = True
    sim.run(until=sim.all_of(procs))

    assert bad_hits == [], f"garbage served: {bad_hits[:3]}"

    # Let repairs settle, then verify full recovery.
    sim.run(until=sim.now + 2.0)

    def verify():
        mismatches = []
        for i in range(KEYS):
            result = yield from reader.get(key_name(i), deadline=0.5)
            if result.status is not GetStatus.HIT:
                mismatches.append((i, result.status, None))
            elif result.value != last_applied[i] and \
                    result.value not in written[i]:
                mismatches.append((i, result.status, result.value))
        return mismatches

    mismatches = sim.run(until=sim.process(verify()))
    assert mismatches == []

    # Replicas converged (repairs ran): spot-check replica agreement.
    for i in range(KEYS):
        values = {b.lookup_local(key_name(i))[0]
                  for b in cell.serving_backends()
                  if b.alive and b.lookup_local(key_name(i)) is not None}
        assert len(values) <= 1, f"replicas diverged on key {i}"
