"""Chaos soak on `repro.faults`: seeded fault plans — never a wrong value.

A seeded :class:`~repro.faults.FaultPlan` drives backend crashes/restarts,
client-replica partitions/heals, gray failures (loss, corruption, slow
links), and NIC antagonists through a :class:`~repro.faults.FaultInjector`
while writers and readers churn. The two properties every CliqueMap
mechanism exists to protect:

1. a HIT never returns a value that was not written to that key;
2. after the chaos ends (faults healed, repairs run), every key reads
   back as its last acknowledged write.

The soak harness itself lives in :mod:`repro.faults.soak` so the CLI
(``python -m repro.tools chaos``) and CI run exactly the same check. The
seed matrix can be widened from the environment via
``CLIQUEMAP_CHAOS_SEEDS`` (comma-separated ints).
"""

import os

import pytest

from repro.faults import SoakConfig, run_soak

SEEDS = [int(s) for s in
         os.environ.get("CLIQUEMAP_CHAOS_SEEDS", "1,7,23").split(",")]


@pytest.mark.parametrize("seed", SEEDS)
def test_chaos_never_serves_garbage_and_recovers(seed):
    report = run_soak(SoakConfig(seed=seed))
    assert report.bad_hits == [], \
        f"garbage served: {report.bad_hits[:3]}"
    assert report.unrecovered == [], \
        f"keys not recovered after heal+settle: {report.unrecovered[:3]}"
    assert report.diverged == [], \
        f"replicas diverged on keys {report.diverged}"
    # The plan actually did something: events fired and were counted.
    assert report.injected
    assert report.metric_totals["cliquemap_faults_injected_total"] > 0


def test_same_seed_same_schedule_and_same_counts():
    """ISSUE acceptance: same seed -> identical schedule AND identical
    final metric counts, run after run."""
    config = SoakConfig(seed=5, duration=1.0, settle=1.5)
    first = run_soak(config)
    second = run_soak(config)
    assert first.plan_lines == second.plan_lines
    assert first.injected == second.injected
    assert first.metric_totals == second.metric_totals


def test_different_seeds_draw_different_plans():
    a = run_soak(SoakConfig(seed=2, duration=0.6, settle=1.0))
    b = run_soak(SoakConfig(seed=3, duration=0.6, settle=1.0))
    assert a.plan_lines != b.plan_lines


def test_soak_population_rides_along_and_defaults_stay_identical():
    # Population load is opt-in: the default config must run the exact
    # event sequence it always did, and turning it on must survive the
    # fault plan with clean accounting.
    base = run_soak(SoakConfig(seed=5, duration=0.8, settle=1.0))
    assert base.population_stats is None
    again = run_soak(SoakConfig(seed=5, duration=0.8, settle=1.0))
    assert base.plan_lines == again.plan_lines
    assert base.metric_totals == again.metric_totals

    with_pop = run_soak(SoakConfig(
        seed=5, duration=0.8, settle=1.0, population=50,
        population_rate=40.0, population_sample_rate=0.5))
    assert with_pop.ok
    stats = with_pop.population_stats
    assert stats["modeled_clients"] == 50
    assert stats["offered"] > 0
    assert stats["offered"] == (stats["shed"] + stats["thinned"] +
                                stats["delivered"])
    # The same seeded fault plan fires with or without the population.
    assert with_pop.plan_lines == base.plan_lines


def test_soak_report_renders_fault_and_reaction_tables():
    report = run_soak(SoakConfig(seed=1, duration=0.6, settle=1.0))
    assert report.ok
    assert all(isinstance(row, list) and len(row) == 1
               for row in report.fault_rows())
    families = [family for family, _ in report.reaction_rows()]
    assert "cliquemap_faults_injected_total" in families
    assert "cliquemap_retries_shed_total" in families
    assert "cliquemap_fabric_dropped_total" in families
