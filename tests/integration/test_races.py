"""Race conditions between RMA GETs and RPC mutations (§5.3, Fig 5).

These tests exercise the real tear window: backends write DataEntry body
and checksum as separate steps in simulated time, so a GET's data fetch
that lands between them observes a genuinely torn entry and must detect
it via the checksum and retry.
"""


from repro.core import (BackendConfig, Cell, CellSpec, ClientConfig, GetStatus,
                        LookupStrategy, ReplicationMode)


def build(mode=ReplicationMode.R3_2, tear_window=50e-6, **cell_kwargs):
    """A cell with an exaggerated tear window so races are easy to hit."""
    backend_config = BackendConfig(min_write_step=tear_window)
    spec = CellSpec(mode=mode, num_shards=3, transport="pony",
                    backend_config=backend_config, **cell_kwargs)
    return Cell(spec)


def test_get_racing_set_never_returns_torn_value():
    """Fire GETs continuously while a SET is in flight: every HIT must be
    a complete old or complete new value, never a mixture."""
    cell = build()
    writer = cell.connect_client(strategy=LookupStrategy.TWO_R)
    reader = cell.connect_client(strategy=LookupStrategy.TWO_R)
    old_value = b"A" * 256
    new_value = b"B" * 256
    observed = []

    def setup():
        yield from writer.set(b"k", old_value)

    cell.sim.run(until=cell.sim.process(setup()))

    def write_loop():
        yield cell.sim.timeout(100e-6)
        yield from writer.set(b"k", new_value)

    def read_loop():
        end = cell.sim.now + 2e-3
        while cell.sim.now < end:
            result = yield from reader.get(b"k")
            if result.hit:
                observed.append(result.value)
            yield cell.sim.timeout(5e-6)

    cell.sim.process(write_loop())
    done = cell.sim.process(read_loop())
    cell.sim.run(until=done)

    assert observed, "reads must succeed"
    for value in observed:
        assert value in (old_value, new_value), "torn value escaped!"
    assert new_value in observed, "the write must eventually be visible"


def test_torn_read_detected_and_retried():
    """Aim a GET's data fetch directly into the tear window."""
    cell = build(tear_window=200e-6)
    writer = cell.connect_client(strategy=LookupStrategy.TWO_R)
    reader = cell.connect_client(strategy=LookupStrategy.TWO_R)

    def setup():
        yield from writer.set(b"k", b"old" * 100)

    cell.sim.run(until=cell.sim.process(setup()))

    def write_loop():
        # Several in-place overwrites, each holding the tear window open.
        for i in range(10):
            yield from writer.set(b"k", (b"%03d" % i) * 100)

    def read_loop():
        retried = 0
        for _ in range(100):
            result = yield from reader.get(b"k")
            if result.hit:
                assert len(result.value) == 300
            retried = reader.stats["validation_failures"]
            yield cell.sim.timeout(2e-6)
        return retried

    cell.sim.process(write_loop())
    done = cell.sim.process(read_loop())
    cell.sim.run(until=done)
    # With a 200us window held open repeatedly, some reads must have torn
    # and been retried rather than returning garbage.
    assert reader.stats["validation_failures"] > 0
    assert reader.stats["get_errors"] == 0


def test_reads_linearize_to_old_or_new_under_quorum():
    """Fig 5's race: quorum on V0 vs V1 vs retry — never a third state."""
    cell = build()
    writer = cell.connect_client(strategy=LookupStrategy.TWO_R)
    readers = [cell.connect_client(strategy=LookupStrategy.TWO_R)
               for _ in range(3)]
    observed = set()

    def setup():
        yield from writer.set(b"k", b"V0")

    cell.sim.run(until=cell.sim.process(setup()))

    def write_once():
        yield cell.sim.timeout(50e-6)
        yield from writer.set(b"k", b"V1")

    end = cell.sim.now + 1e-3

    def read_loop(client):
        while cell.sim.now < end:
            result = yield from client.get(b"k")
            if result.hit:
                observed.add(result.value)
            yield cell.sim.timeout(3e-6)

    cell.sim.process(write_once())
    procs = [cell.sim.process(read_loop(c)) for c in readers]
    cell.sim.run(until=cell.sim.all_of(procs))
    assert observed <= {b"V0", b"V1"}
    assert b"V1" in observed


def test_concurrent_writers_converge_to_single_version():
    """Uncoordinated mutations: all replicas settle on the same winner."""
    cell = build()
    writers = [cell.connect_client() for _ in range(4)]
    reader = cell.connect_client()

    def write(client, tag):
        for i in range(5):
            yield from client.set(b"contended", b"writer-%d-gen-%d" % (tag, i))
            yield cell.sim.timeout(7e-6)

    procs = [cell.sim.process(write(c, i)) for i, c in enumerate(writers)]
    cell.sim.run(until=cell.sim.all_of(procs))

    def read():
        result = yield from reader.get(b"contended")
        return result

    result = cell.sim.run(until=cell.sim.process(read()))
    assert result.hit
    # All three backends agree on the final value/version.
    stored = set()
    for backend in cell.serving_backends():
        found = backend.lookup_local(b"contended")
        if found is not None:
            stored.add(found)
    assert len(stored) == 1
    assert result.value == next(iter(stored))[0]


def test_erase_concurrent_with_set_respects_version_order():
    cell = build()
    a = cell.connect_client()
    b = cell.connect_client()

    def seq():
        yield from a.set(b"k", b"v")
        # b's erase is nominated after a's set -> erase wins.
        yield from b.erase(b"k")
        result = yield from a.get(b"k")
        assert result.status is GetStatus.MISS
        # a new set (fresh TrueTime) re-installs.
        yield from a.set(b"k", b"v2")
        result = yield from a.get(b"k")
        assert result.hit and result.value == b"v2"

    cell.sim.run(until=cell.sim.process(seq()))


def test_get_forward_progress_is_obstruction_free():
    """GETs keep succeeding between bursts of SETs (no livelock)."""
    cell = build(tear_window=5e-6)
    writer = cell.connect_client()
    reader = cell.connect_client(
        client_config=ClientConfig(max_retries=20))
    outcomes = []

    def setup():
        yield from writer.set(b"k", b"x" * 64)

    cell.sim.run(until=cell.sim.process(setup()))

    def write_loop():
        for i in range(50):
            yield from writer.set(b"k", bytes([i % 256]) * 64)

    def read_loop():
        end = cell.sim.now + 5e-3
        while cell.sim.now < end:
            result = yield from reader.get(b"k")
            outcomes.append(result.status)
            yield cell.sim.timeout(10e-6)

    cell.sim.process(write_loop())
    done = cell.sim.process(read_loop())
    cell.sim.run(until=done)
    hits = sum(1 for s in outcomes if s is GetStatus.HIT)
    assert hits > len(outcomes) * 0.9
    assert GetStatus.ERROR not in outcomes
