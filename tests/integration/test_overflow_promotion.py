"""Overflow promotion: spilled keys regain RMA-accessibility (§4.2)."""


from repro.core import (BackendConfig, Cell, CellSpec, GetStatus,
                        LookupStrategy, ReplicationMode, SetStatus)


def build():
    spec = CellSpec(
        mode=ReplicationMode.R1, num_shards=1, transport="pony",
        backend_config=BackendConfig(num_buckets=1, ways=2,
                                     overflow_rpc_fallback=True,
                                     index_resize_load_factor=2.0))
    cell = Cell(spec)
    client = cell.connect_client(strategy=LookupStrategy.TWO_R)
    return cell, client, cell.backend_by_task("backend-0")


def run(cell, gen):
    return cell.sim.run(until=cell.sim.process(gen))


def test_erase_promotes_spilled_key():
    cell, client, backend = build()

    def app():
        # Fill both ways; the third key spills to overflow.
        for key in (b"a", b"b", b"c"):
            assert (yield from client.set(key, b"v")).status \
                is SetStatus.APPLIED
        assert len(backend.overflow) == 1
        spilled = next(iter(backend.overflow.values()))[0]
        survivors = [k for k in (b"a", b"b", b"c") if k != spilled]
        # Erase a resident key: the spilled one is promoted into the slot.
        yield from client.erase(survivors[0])
        assert len(backend.overflow) == 0
        # The promoted key is now RMA-visible (no RPC fallback needed).
        lookups_before = backend.stats.rpc_lookups
        result = yield from client.get(spilled)
        assert result.status is GetStatus.HIT
        assert backend.stats.rpc_lookups == lookups_before

    run(cell, app())


def test_overflow_bit_cleared_after_promotion():
    cell, client, backend = build()

    def app():
        for key in (b"a", b"b", b"c"):
            yield from client.set(key, b"v")
        assert backend.index.read_flags(0) & 0x1
        spilled = next(iter(backend.overflow.values()))[0]
        survivors = [k for k in (b"a", b"b", b"c") if k != spilled]
        yield from client.erase(survivors[0])
        assert not (backend.index.read_flags(0) & 0x1)

    run(cell, app())


def test_promotion_preserves_version():
    cell, client, backend = build()

    def app():
        for key in (b"a", b"b", b"c"):
            yield from client.set(key, b"value-" + key)
        spilled_hash, (spilled_key, _value, version) = \
            next(iter(backend.overflow.items()))
        survivors = [k for k in (b"a", b"b", b"c") if k != spilled_key]
        yield from client.erase(survivors[0])
        found = backend.lookup_local(spilled_key)
        assert found is not None
        assert found[0] == b"value-" + spilled_key
        assert found[1] == version

    run(cell, app())


def test_set_multi_batches_mutations():
    cell = Cell(CellSpec(mode=ReplicationMode.R3_2, num_shards=3,
                         transport="pony"))
    client = cell.connect_client()

    def app():
        items = [(b"m-%d" % i, b"v-%d" % i) for i in range(20)]
        start = cell.sim.now
        results = yield from client.set_multi(items)
        batch_latency = cell.sim.now - start
        assert all(r.status is SetStatus.APPLIED for r in results)
        # The batch overlaps: far faster than 20 serial SETs.
        assert batch_latency < 10 * results[0].latency
        for key, value in items:
            got = yield from client.get(key)
            assert got.hit and got.value == value

    run(cell, app())
