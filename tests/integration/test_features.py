"""Post-launch features: compression, append, dashboard snapshots (§9)."""


from repro.analysis import snapshot_cell
from repro.core import (Cell, CellSpec, ClientConfig, GetStatus,
                        ReplicationMode, SetStatus)


def build(client_config=None, mode=ReplicationMode.R3_2):
    cell = Cell(CellSpec(mode=mode, num_shards=3, transport="pony"))
    client = cell.connect_client(client_config=client_config)
    return cell, client


def run(cell, gen):
    return cell.sim.run(until=cell.sim.process(gen))


# -- compression ---------------------------------------------------------------

def compressing_config():
    return ClientConfig(compression_enabled=True, compression_min_bytes=256)


def test_compression_roundtrip():
    cell, client = build(compressing_config())
    value = b"the quick brown fox " * 100  # highly compressible

    def app():
        result = yield from client.set(b"k", value)
        assert result.status is SetStatus.APPLIED
        got = yield from client.get(b"k")
        assert got.status is GetStatus.HIT
        assert got.value == value

    run(cell, app())


def test_compression_reduces_stored_bytes():
    cell, client = build(compressing_config())
    value = b"A" * 8192

    def app():
        yield from client.set(b"k", value)

    run(cell, app())
    backend = cell.serving_backends()[0]
    stored = backend.lookup_local(b"k")
    assert stored is not None
    assert len(stored[0]) < len(value) / 4  # wrapped+compressed


def test_small_values_stored_raw():
    cell, client = build(compressing_config())
    value = b"tiny"

    def app():
        yield from client.set(b"k", value)
        got = yield from client.get(b"k")
        assert got.value == value

    run(cell, app())
    backend = cell.serving_backends()[0]
    stored = backend.lookup_local(b"k")[0]
    assert stored == b"\x00" + value  # wrapped but not compressed


def test_incompressible_values_stored_raw():
    import os
    cell, client = build(compressing_config())
    value = bytes(os.urandom(2048))

    def app():
        yield from client.set(b"k", value)
        got = yield from client.get(b"k")
        assert got.value == value

    run(cell, app())
    stored = cell.serving_backends()[0].lookup_local(b"k")[0]
    assert stored[0:1] == b"\x00"


def test_compression_charges_client_cpu():
    cell, client = build(compressing_config())
    value = b"B" * (64 * 1024)

    def app():
        base = client.host.ledger.seconds("cliquemap-client")
        yield from client.set(b"k", value)
        yield from client.get(b"k")
        return client.host.ledger.seconds("cliquemap-client") - base

    cpu = run(cell, app())
    assert cpu > 500e-6  # 64KB at ~10us/KB compress + decompress


def test_compression_interops_between_compressing_clients():
    cell = Cell(CellSpec(mode=ReplicationMode.R3_2, num_shards=3,
                         transport="pony"))
    writer = cell.connect_client(client_config=compressing_config())
    reader = cell.connect_client(client_config=compressing_config())
    value = b"shared data " * 200

    def app():
        yield from writer.set(b"k", value)
        got = yield from reader.get(b"k")
        assert got.value == value

    run(cell, app())


def test_compression_with_cas():
    cell, client = build(compressing_config())
    value = b"C" * 2048

    def app():
        yield from client.set(b"k", value)
        got = yield from client.get(b"k")
        result = yield from client.cas(b"k", value + b"!", got.version)
        assert result.status is SetStatus.APPLIED
        got = yield from client.get(b"k")
        assert got.value == value + b"!"

    run(cell, app())


# -- append -----------------------------------------------------------------------

def test_append_extends_value():
    cell, client = build()

    def app():
        yield from client.set(b"log", b"a")
        for part in (b"b", b"c", b"d"):
            result = yield from client.append(b"log", part)
            assert result.status is SetStatus.APPLIED
        got = yield from client.get(b"log")
        assert got.value == b"abcd"

    run(cell, app())


def test_append_creates_missing_key():
    cell, client = build()

    def app():
        result = yield from client.append(b"fresh", b"start")
        assert result.status is SetStatus.APPLIED
        got = yield from client.get(b"fresh")
        assert got.value == b"start"

    run(cell, app())


def test_concurrent_appends_all_land():
    cell = Cell(CellSpec(mode=ReplicationMode.R3_2, num_shards=3,
                         transport="pony"))
    clients = [cell.connect_client(
        client_config=ClientConfig(max_retries=40)) for _ in range(3)]

    def setup():
        yield from clients[0].set(b"log", b"")

    run(cell, setup())

    def appender(client, tag):
        for i in range(4):
            result = yield from client.append(b"log", b"%c" % (65 + tag))
            assert result.status is SetStatus.APPLIED
            yield cell.sim.timeout(5e-6)

    procs = [cell.sim.process(appender(c, i))
             for i, c in enumerate(clients)]
    cell.sim.run(until=cell.sim.all_of(procs))

    def verify():
        got = yield from clients[0].get(b"log")
        return got.value

    value = run(cell, verify())
    # CAS serializes the appends: every byte lands exactly once.
    assert len(value) == 12
    assert sorted(value) == sorted(b"AAAABBBBCCCC")


def test_append_with_compression():
    cell, client = build(compressing_config())

    def app():
        yield from client.set(b"log", b"x" * 1000)
        yield from client.append(b"log", b"y" * 1000)
        got = yield from client.get(b"log")
        assert got.value == b"x" * 1000 + b"y" * 1000

    run(cell, app())


# -- dashboard -------------------------------------------------------------------

def test_snapshot_collects_cell_state():
    cell, client = build()

    def app():
        for i in range(15):
            yield from client.set(b"k-%d" % i, b"v")
        for i in range(15):
            yield from client.get(b"k-%d" % i)

    run(cell, app())
    snap = snapshot_cell(cell, clients=[client])
    assert snap.alive_backends == 3
    assert snap.total_resident_keys == 45  # 15 keys x 3 replicas
    assert snap.total_dram_bytes > 0
    assert snap.total_gets == 15
    assert snap.aggregate_hit_rate == 1.0
    assert all(b.pony_engines is not None for b in snap.backends)
    rendered = snap.render()
    assert "backend-0" in rendered
    assert "clients" in rendered


def test_snapshot_reflects_crash():
    cell, client = build()

    def app():
        yield from client.set(b"k", b"v")

    run(cell, app())
    cell.backend_by_task("backend-1").crash()
    snap = snapshot_cell(cell)
    assert snap.alive_backends == 2
    assert "DOWN" in snap.render()
