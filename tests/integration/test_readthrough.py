"""Integration: the miss pipeline under load and SoR brownout."""

from repro.core import Cell, CellSpec, GetStatus, ReplicationMode
from repro.faults import FaultPlan, SoakConfig, run_soak
from repro.storage import MissPolicy, ProvisionedThroughput, SystemOfRecord


def test_end_to_end_fill_then_cache_hit():
    cell = Cell(CellSpec(mode=ReplicationMode.R3_2, num_shards=3,
                         transport="pony"))
    sor_host = cell.fabric.add_host("host/sor")
    sor = SystemOfRecord(cell.sim, sor_host)
    sor.load({b"cold": b"durable"})
    cell.attach_sor(sor, MissPolicy())
    client = cell.connect_client()

    def app():
        first = yield from client.get(b"cold")
        second = yield from client.get(b"cold")
        return first, second

    first, second = cell.sim.run(until=cell.sim.process(app()))
    assert (first.status, first.source) == (GetStatus.HIT, "sor")
    assert (second.status, second.source) == (GetStatus.HIT, "cache")
    assert sor.reads == 1  # the fill made the second GET free
    # Fills ride the internal principal, not the app's ACL identity.
    assert second.latency < first.latency
    client.close()
    cell.close()


def test_warm_prefetches_within_budget():
    cell = Cell(CellSpec(mode=ReplicationMode.R3_2, num_shards=3,
                         transport="pony"))
    sor_host = cell.fabric.add_host("host/sor")
    sor = SystemOfRecord(cell.sim, sor_host)
    keys = [b"w-%03d" % i for i in range(20)]
    sor.load({key: b"v:" + key for key in keys})
    coordinator = cell.attach_sor(sor, MissPolicy(
        backfill_budget=8.0, backfill_fill_rate=0.0))

    def app():
        return (yield from coordinator.warm(keys))

    report = cell.sim.run(until=cell.sim.process(app()))
    assert report["requested"] == 20
    assert report["hits"] == 8       # budget admits exactly 8
    assert report["shed"] == 12      # the rest shed, not queued
    assert sor.reads == 8
    cell.close()


def test_soak_brownout_sheds_backfill_without_alerts():
    """ISSUE 6 acceptance: SoR brownout + budgets shed load, SLO holds."""
    plan = FaultPlan()
    plan.add(0.2, "sor_brownout", factor=0.1, duration=0.4)
    plan.add(1.2, "heal_all")
    report = run_soak(SoakConfig(
        duration=1.4, settle=0.5, seed=11, observe=True, plan=plan,
        sor=True, sor_backfill=True,
        sor_throughput=ProvisionedThroughput(read_units=400.0,
                                             write_units=400.0)))

    # Core soak invariants on the well-behaved keyspace.
    assert report.ok, (report.bad_hits, report.unrecovered, report.diverged)
    stats = report.sor_stats
    assert stats is not None
    # The brownout fired against the attached SoR.
    assert any("sor_brownout" in line and "fired" in line
               for line in report.injected)
    # Backfill traffic was visibly shed by the admission budget...
    assert stats["backfill_shed"] > 0
    # ...while foreground cold reads kept resolving correctly.
    assert stats["cold_reads"]["hits"] > 0
    assert stats["cold_reads"]["bad_hits"] == 0
    assert stats["cold_reads"]["errors"] == 0
    # And no SLO burn-rate alert fired from the prober's vantage.
    fired = [a for a in report.alerts if a["kind"] == "fire"]
    assert fired == []


def test_soak_without_sor_is_byte_identical_to_seed_behavior():
    """config.sor defaults keep pre-miss-path soaks deterministic."""
    first = run_soak(SoakConfig(duration=0.6, settle=0.4, seed=3))
    second = run_soak(SoakConfig(duration=0.6, settle=0.4, seed=3))
    assert first.sor_stats is None
    assert first.metric_totals == second.metric_totals
