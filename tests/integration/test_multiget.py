"""Batched multi-key ops end-to-end: correctness, isolation, chaos.

The wire-level batched path (§7.1) must behave like a loop of singleton
ops from the caller's point of view — same hits, same values, same
misses, results aligned with the request — while issuing one coalesced
index fetch per (backend, batch). These tests drive ``get_multi`` /
``set_multi`` on a real cell and assert:

* alignment and correctness on the all-fast-path batch;
* per-key failure isolation — a poisoned key degrades to an ERROR
  result for that key only, never aborting its siblings (the old
  ``AllOf`` fan-out aborted the whole batch on the first child failure);
* composition with the gray-failure machinery — a batch whose keys land
  on a backend behind a fully lossy link still returns correct results
  for every key, via quorum over the surviving replicas;
* the retry loops no longer hot-spin at the deadline.
"""

from repro.core import (Cell, CellSpec, ClientConfig, GetStatus,
                        GetStrategy, ReplicationMode, SetStatus)
from repro.net import LinkFault
from repro.transport import RmaError

NUM_KEYS = 32


def build(num_shards=6):
    return Cell(CellSpec(mode=ReplicationMode.R3_2, num_shards=num_shards,
                         transport="pony"))


def run(cell, gen):
    return cell.sim.run(until=cell.sim.process(gen))


def seed(cell, client, keys):
    def app():
        for i, key in enumerate(keys):
            result = yield from client.set(key, b"value-%d" % i)
            assert result.status is SetStatus.APPLIED, (key, result)
    run(cell, app())


def make_keys(n=NUM_KEYS):
    return [b"multi-%05d" % i for i in range(n)]


def test_batched_get_multi_results_align_with_keys():
    cell = build()
    client = cell.connect_client(strategy=GetStrategy.TWO_R)
    keys = make_keys()
    seed(cell, client, keys)

    asked = keys[:24] + [b"never-set-%d" % i for i in range(8)]
    results = run(cell, client.get_multi(asked))
    assert len(results) == len(asked)
    for i, result in enumerate(results[:24]):
        assert result.status is GetStatus.HIT, (i, result)
        assert result.value == b"value-%d" % i
    for result in results[24:]:
        assert result.status is GetStatus.MISS, result

    # The index phase went over the coalesced wire op, not singletons.
    assert cell.transport.counters.batched_reads >= 1
    assert cell.transport.counters.batched_keys >= 24
    assert cell.metrics.total("cliquemap_client_batch_keys_total") >= 24
    assert cell.metrics.total("cliquemap_batched_keys_total") >= 24
    cell.close()


def test_batched_get_multi_uses_fewer_fabric_transfers():
    """One coalesced index fetch per (backend, batch): the number of
    request transfers must scale with the replica count, not the key
    count."""
    cell = build()
    client = cell.connect_client(strategy=GetStrategy.TWO_R)
    keys = make_keys()
    seed(cell, client, keys)

    before = cell.metrics.total("cliquemap_fabric_coalesced_total")
    results = run(cell, client.get_multi(keys))
    assert all(r.status is GetStatus.HIT for r in results)
    coalesced = cell.metrics.total("cliquemap_fabric_coalesced_total") - before
    # 3 replicas x (request + response) = 6 coalesced transfers for the
    # whole 32-key index phase.
    assert coalesced <= 2 * 3 * len(cell.serving_backends())
    assert coalesced >= 2
    cell.close()


def test_one_poisoned_key_does_not_abort_siblings():
    """Per-key isolation through the fallback path: every key is forced
    to fall back to a singleton GET, and one of those singletons blows
    up with an unexpected exception. Its siblings must still HIT; only
    the poisoned key reports an ERROR result."""
    cell = build()
    client = cell.connect_client(
        strategy=GetStrategy.TWO_R,
        client_config=ClientConfig(default_deadline=50e-3))
    keys = make_keys(8)
    seed(cell, client, keys)
    poison = keys[3]

    # Force the batched index phase to fail wholesale so every key takes
    # the singleton-fallback route.
    def broken_read_multi(client_host, server_name, requests, trace=None):
        raise RmaError("injected batch failure")
        yield  # pragma: no cover - make this a generator

    cell.transport.read_multi = broken_read_multi

    real_get = client.get

    def poisoned_get(key, deadline=None):
        if key == poison:
            raise RuntimeError("poisoned key")
            yield  # pragma: no cover - make this a generator
        return (yield from real_get(key, deadline))

    client.get = poisoned_get
    results = run(cell, client.get_multi(keys))
    assert len(results) == len(keys)
    for i, result in enumerate(results):
        if keys[i] == poison:
            assert result.status is GetStatus.ERROR, result
            assert "RuntimeError" in (result.error or "")
        else:
            assert result.status is GetStatus.HIT, (i, result)
            assert result.value == b"value-%d" % i
    assert cell.metrics.total("cliquemap_batch_fallback_total") >= len(keys)
    cell.close()


def test_batch_with_lossy_backend_still_serves_every_key():
    """The acceptance chaos case: one replica behind a link that eats
    every packet. The coalesced fetch to that backend fails as a unit,
    but per-key quorum over the two surviving replicas still settles
    every key — no sibling is aborted, no wrong value is returned."""
    cell = build()
    client = cell.connect_client(
        strategy=GetStrategy.TWO_R,
        client_config=ClientConfig(max_retries=8, default_deadline=50e-3))
    keys = make_keys()
    seed(cell, client, keys)

    victim = cell.serving_backends()[0]
    cell.fabric.degrade(client.host, victim.host,
                        LinkFault(loss_probability=1.0))

    results = run(cell, client.get_multi(keys))
    assert len(results) == len(keys)
    for i, result in enumerate(results):
        assert result.status is GetStatus.HIT, (i, result)
        assert result.value == b"value-%d" % i
    assert cell.metrics.total("cliquemap_fabric_dropped_total",
                              reason="loss") > 0
    cell.close()


def test_batch_composes_with_quarantine():
    """Once the scoreboard quarantines the lossy backend, subsequent
    batches must skip it outright (no wasted coalesced fetch into a
    black hole) and keep serving from the healthy cohort."""
    cell = build()
    client = cell.connect_client(
        strategy=GetStrategy.TWO_R,
        client_config=ClientConfig(max_retries=8, default_deadline=50e-3))
    keys = make_keys()
    seed(cell, client, keys)

    victim = cell.serving_backends()[0]
    cell.fabric.degrade(client.host, victim.host,
                        LinkFault(loss_probability=1.0))

    def batches():
        for _ in range(6):
            results = yield from client.get_multi(keys)
            for i, result in enumerate(results):
                assert result.status is GetStatus.HIT, (i, result)
                assert result.value == b"value-%d" % i
            # Give the reconnect loop time to keep probing the victim;
            # its failed handshakes feed the scoreboard between batches.
            yield cell.sim.timeout(5e-3)

    run(cell, batches())
    health = client.backend_health(victim.task_name)
    assert health is not None
    assert health.quarantines > 0
    cell.close()


def test_set_multi_applies_all_and_reads_back():
    cell = build()
    client = cell.connect_client(strategy=GetStrategy.TWO_R)
    keys = make_keys(16)
    items = [(key, b"batch-%d" % i) for i, key in enumerate(keys)]

    results = run(cell, client.set_multi(items))
    assert len(results) == len(items)
    assert all(r.status is SetStatus.APPLIED for r in results)

    reads = run(cell, client.get_multi(keys))
    for i, result in enumerate(reads):
        assert result.status is GetStatus.HIT, (i, result)
        assert result.value == b"batch-%d" % i
    assert cell.metrics.total("cliquemap_client_batch_keys_total",
                              op="set") >= 16
    cell.close()


def test_set_multi_with_partitioned_backend_still_applies():
    """One unreachable replica: MultiSet to it fails as a unit, but the
    per-key quorum (2 of 3) still applies every mutation."""
    cell = build()
    client = cell.connect_client(
        strategy=GetStrategy.TWO_R,
        client_config=ClientConfig(max_retries=8, default_deadline=50e-3))
    victim = cell.serving_backends()[0]
    cell.fabric.partition(client.host, victim.host)

    keys = make_keys(12)
    items = [(key, b"part-%d" % i) for i, key in enumerate(keys)]
    results = run(cell, client.set_multi(items))
    assert all(r.status is SetStatus.APPLIED for r in results), results

    reads = run(cell, client.get_multi(keys))
    for i, result in enumerate(reads):
        assert result.status is GetStatus.HIT, (i, result)
        assert result.value == b"part-%d" % i
    cell.close()


def test_retry_loop_does_not_hot_spin_at_deadline():
    """Regression for the deadline hot-spin: with a large backoff and a
    short deadline, the op must stop once the next sleep would cross the
    deadline — not burn hundreds of same-instant attempts."""
    cell = build(num_shards=3)
    client = cell.connect_client(client_config=ClientConfig(
        max_retries=1000, default_deadline=5e-3,
        retry_backoff=2e-3, retry_backoff_cap=2e-3,
        retry_budget_capacity=0.0))     # budget disabled: only the fix caps
    seed(cell, client, [b"spin-key"])
    for backend in cell.serving_backends():
        cell.fabric.partition(client.host, backend.host)

    def app():
        got = yield from client.get(b"spin-key")
        put = yield from client.set(b"spin-key", b"v")
        gone = yield from client.erase(b"spin-key")
        return got, put, gone

    got, put, gone = run(cell, app())
    assert got.status is GetStatus.ERROR
    assert put.status is SetStatus.FAILED
    assert gone.status is SetStatus.FAILED
    # A 5ms deadline with a 2ms floor backoff admits at most a handful of
    # attempts per op; the hot-spin bug produced hundreds.
    assert client.stats["retries"] <= 12, client.stats["retries"]
    cell.close()
