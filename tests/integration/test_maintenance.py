"""Planned maintenance via warm spares (§6.1, Fig 13)."""


from repro.core import (Cell, CellSpec, GetStatus, LookupStrategy,
                        MaintenanceConfig, ReplicationMode, SetStatus)


def build(mode=ReplicationMode.R3_2, num_shards=3, num_spares=1,
          restart_delay=0.2):
    spec = CellSpec(mode=mode, num_shards=num_shards,
                    num_spares=num_spares, transport="pony",
                    maintenance_config=MaintenanceConfig(
                        restart_delay=restart_delay))
    return Cell(spec)


def run(cell, gen):
    return cell.sim.run(until=cell.sim.process(gen))


def test_planned_migration_moves_data_to_spare_and_back():
    cell = build()
    client = cell.connect_client()

    def app():
        for i in range(25):
            yield from client.set(b"key-%d" % i, b"value-%d" % i)
        primary = cell.backend_by_task(cell.task_for_shard(0))
        before = primary.resident_keys
        yield from cell.maintenance.planned_restart(0)
        restored = cell.backend_by_task(cell.task_for_shard(0))
        return before, restored.resident_keys, restored.task_name

    before, after, task = run(cell, app())
    assert before > 0
    assert after == before
    assert task == "backend-0"  # shard handed back to the primary
    assert cell.maintenance.stats.planned_migrations == 1
    assert cell.maintenance.stats.entries_migrated >= 2 * before


def test_config_generation_bumps_during_migration():
    cell = build()
    client = cell.connect_client()
    start_id = cell.config_store.peek("cell").config_id

    def app():
        yield from client.set(b"k", b"v")
        yield from cell.maintenance.planned_restart(0)

    run(cell, app())
    end_id = cell.config_store.peek("cell").config_id
    assert end_id >= start_id + 2  # repoint to spare + repoint back


def test_spare_serves_shard_during_primary_restart():
    cell = build(restart_delay=0.5)
    client = cell.connect_client(strategy=LookupStrategy.TWO_R)

    def app():
        for i in range(15):
            yield from client.set(b"key-%d" % i, b"v%d" % i)
        maint = cell.sim.process(cell.maintenance.planned_restart(0))
        # While the primary is down, all keys must still be readable.
        yield cell.sim.timeout(0.1)  # migration done; primary restarting
        hits = 0
        for i in range(15):
            result = yield from client.get(b"key-%d" % i)
            if result.hit:
                hits += 1
        yield maint
        return hits

    assert run(cell, app()) == 15


def test_reads_hitless_throughout_planned_maintenance():
    """Fig 13's takeaway: virtually no client-visible impact."""
    cell = build(restart_delay=0.3)
    client = cell.connect_client(strategy=LookupStrategy.TWO_R)
    outcomes = []

    def app():
        for i in range(10):
            yield from client.set(b"key-%d" % i, b"v%d" % i)
        maint = cell.sim.process(cell.maintenance.planned_restart(0))
        end = cell.sim.now + 0.6
        while cell.sim.now < end:
            for i in range(10):
                result = yield from client.get(b"key-%d" % i)
                outcomes.append(result.status)
            yield cell.sim.timeout(5e-3)
        yield maint

    run(cell, app())
    assert outcomes
    errors = sum(1 for s in outcomes if s is not GetStatus.HIT)
    assert errors == 0


def test_mutations_work_during_migration():
    cell = build(restart_delay=0.3)
    client = cell.connect_client()

    def app():
        yield from client.set(b"k0", b"before")
        maint = cell.sim.process(cell.maintenance.planned_restart(0))
        yield cell.sim.timeout(0.05)
        result = yield from client.set(b"k1", b"during")
        assert result.status is SetStatus.APPLIED
        yield maint
        got = yield from client.get(b"k1")
        assert got.hit and got.value == b"during"

    run(cell, app())


def test_no_spare_raises():
    from repro.core import CliqueMapError
    cell = build(num_spares=0)

    def app():
        yield from cell.maintenance.planned_restart(0)

    proc = cell.sim.process(app())
    proc.defused = True
    cell.sim.run()
    # A CliqueMapError (the library's error type), not a bare
    # RuntimeError, so callers can catch the library's exceptions
    # uniformly.
    assert isinstance(proc.value, CliqueMapError)
    assert "no warm spare" in str(proc.value)
    # The failed cycle must not leave the topology lock held.
    assert cell.topology_lock.count == 0


def test_spare_pool_is_reusable():
    cell = build(num_spares=1, restart_delay=0.1)
    client = cell.connect_client()

    def app():
        yield from client.set(b"k", b"v")
        yield from cell.maintenance.planned_restart(0)
        yield from cell.maintenance.planned_restart(1)  # reuses the spare
        got = yield from client.get(b"k")
        assert got.hit

    run(cell, app())
    assert cell.maintenance.stats.planned_migrations == 2


def test_r1_planned_migration_is_lossless():
    """The original warm-spare motivation: R=1 would lose all data on
    restart without sparing (§6.1)."""
    cell = build(mode=ReplicationMode.R1, num_shards=3, num_spares=1,
                 restart_delay=0.2)
    client = cell.connect_client()

    def app():
        for i in range(20):
            yield from client.set(b"key-%d" % i, b"v%d" % i)
        yield from cell.maintenance.planned_restart(0)
        hits = 0
        for i in range(20):
            result = yield from client.get(b"key-%d" % i)
            if result.hit:
                hits += 1
        return hits

    assert run(cell, app()) == 20


def test_unplanned_crash_mid_transfer_loses_no_acked_writes():
    """An unplanned crash landing in the middle of a planned migration's
    ``_transfer`` must neither wedge either maintenance generator nor
    lose acknowledged writes: the interrupted batches are written off
    and en-masse repairs (§5.4) repopulate the restarted task from the
    healthy cohort."""
    from repro.core import RepairConfig

    spec = CellSpec(mode=ReplicationMode.R3_2, num_shards=3, num_spares=1,
                    transport="pony",
                    repair_config=RepairConfig(enabled=True,
                                               scan_interval=0.05),
                    maintenance_config=MaintenanceConfig(
                        migrate_batch=8, restart_delay=0.1))
    cell = Cell(spec)
    client = cell.connect_client()
    sim = cell.sim
    keys = 120

    def seed():
        for i in range(keys):
            result = yield from client.set(b"mk-%d" % i, b"mv-%d" % i)
            assert result.status is SetStatus.APPLIED

    run(cell, seed())
    migrated_at_crash = []

    def crash_mid_transfer():
        # The first _transfer (primary -> spare) takes ~0.5ms with
        # batch=8; land the crash squarely inside it.
        yield sim.timeout(0.2e-3)
        migrated_at_crash.append(cell.maintenance.stats.entries_migrated)
        yield from cell.maintenance.unplanned_crash(0, restart_delay=0.05)

    planned = sim.process(cell.maintenance.planned_restart(0))
    planned.defused = True
    crash = sim.process(crash_mid_transfer())
    crash.defused = True
    sim.run(until=sim.all_of([planned, crash]))

    # Neither generator wedged, and the crash really was mid-transfer.
    assert planned.is_alive is False
    assert crash.is_alive is False
    assert migrated_at_crash[0] < keys
    assert cell.maintenance.stats.unplanned_restarts == 1

    # Let repairs repopulate the restarted task, then verify every
    # acknowledged write is still readable with its acked value.
    sim.run(until=sim.now + 2.0)

    def verify():
        hits = 0
        for i in range(keys):
            result = yield from client.get(b"mk-%d" % i, deadline=0.5)
            if result.status is GetStatus.HIT and \
                    result.value == b"mv-%d" % i:
                hits += 1
        return hits

    assert run(cell, verify()) == keys
