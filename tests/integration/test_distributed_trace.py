"""End-to-end distributed tracing (PR 10): a cross-zone GET through the
sharded federation stitches into one trace — client, gateway, remote
cell, and reply on one span tree with correct parent/child links —
exporters stay valid on multi-zone runs, and a chaos soak that trips an
invariant or an SLO alert leaves a postmortem bundle behind."""

import json

import pytest

from repro.analysis import (filter_traces, run_federation_arm,
                            stitch_traces, write_stitched_chrome_trace,
                            zone_traces_from_digests)
from repro.core import Cell, CellSpec, GetStrategy, ZoneWorkloadSpec
from repro.faults import FaultPlan, SoakConfig, run_soak
from repro.observe.postmortem import find_bundles
from repro.telemetry.export import prometheus_text

ZONES = ["dc-a", "dc-b"]


@pytest.fixture(scope="module")
def stitched():
    """One sharded 2-zone run with trace export, stitched once."""
    workload = ZoneWorkloadSpec(clients=2, shared_keys=16, private_keys=4,
                                remote_every=4, seed=5, export_traces=True)
    report = run_federation_arm(ZONES, cell_spec=CellSpec(num_shards=3),
                                workload=workload, duration=0.08,
                                mode="sequential")
    zone_traces = zone_traces_from_digests(report.digests)
    assert sorted(zone_traces) == ZONES
    assert all(zone_traces[z] for z in ZONES)
    return stitch_traces(zone_traces)


def test_cross_zone_get_stitches_into_one_trace(stitched):
    """The PR's acceptance criterion: a remote GET is one trace —
    fed.get (origin client) → wan.call (WAN round trip incl. reply) →
    wan.serve (remote zone) → get (remote gateway) — with every link a
    real parent/child edge after stitching."""
    remote_gets = [t for t in stitched
                   if t.cross_zone and t.roots
                   and t.roots[0]["name"] == "fed.get"]
    assert remote_gets, "no cross-zone GET was stitched"
    trace = remote_gets[0]
    root = trace.roots[0]

    # Exactly one trace id across both zones' fragments.
    ids = {span["trace_id"] for _d, span in trace.walk()}
    assert ids == {trace.trace_id}
    assert len(trace.zones) == 2 and not trace.orphans

    def child(span, name):
        matches = [c for c in span.get("children", [])
                   if c["name"] == name]
        assert matches, (f"{span['name']} has no {name} child: "
                         f"{[c['name'] for c in span.get('children', [])]}")
        return matches[0]

    # client → local cell: the local leg (a MISS) hangs off the fed root.
    local_leg = child(root, "get")
    assert local_leg["zone"] == root["zone"]
    # → WAN: the call span lives in the origin zone, names the peer.
    wan_call = child(root, "wan.call")
    assert wan_call["zone"] == root["zone"]
    assert wan_call["labels"]["dst"] != root["zone"]
    # → remote cell: the spliced serve root carries the other zone and
    # points back at the wan.call span it was grafted under.
    serve = child(wan_call, "wan.serve")
    assert serve["zone"] == wan_call["labels"]["dst"]
    assert serve["remote_parent"][2] == wan_call["span_id"]
    assert (wan_call, serve) in trace.links
    # → remote gateway op, served inside the remote cell.
    remote_get = child(serve, "get")
    assert remote_get["zone"] == serve["zone"]

    # Reply included: the WAN call's extent covers the whole remote
    # serve, and every spliced interval nests inside its parent.
    assert wan_call["start"] <= serve["start"]
    assert serve["end"] <= wan_call["end"]
    assert root["start"] <= wan_call["start"] <= wan_call["end"] \
        <= root["end"]
    assert serve["start"] <= remote_get["start"] \
        <= remote_get["end"] <= serve["end"]


def test_stitched_phase_sums_match_leg_durations(stitched):
    """Stitching is pure dict surgery: the local leg's contiguous
    index/data/validate phases still sum to the leg's duration, even on
    spans that crossed the stitcher."""
    checked = 0
    for trace in stitched:
        for _depth, span in trace.walk():
            if span["name"] != "get":
                continue
            phases = sorted((c for c in span.get("children", [])
                             if c["name"] in ("index", "data",
                                              "validate")),
                            key=lambda c: c["start"])
            if not phases:
                continue
            # The PR 1 sum-invariant survives stitching: phases tile
            # the op interval edge to edge.
            assert phases[0]["start"] == span["start"]
            assert phases[-1]["end"] == span["end"]
            for left, right in zip(phases, phases[1:]):
                assert left["end"] == pytest.approx(right["start"],
                                                    rel=1e-12)
            total = sum(c["duration"] for c in phases)
            assert total == pytest.approx(span["duration"], rel=1e-9)
            checked += 1
    assert checked > 0, "no phased GET found in stitched traces"


def test_stitched_filters_and_chrome_export(stitched, tmp_path):
    cross = [t for t in stitched if t.cross_zone]
    assert filter_traces(stitched, zone="dc-b")
    assert filter_traces(stitched, op="fed.get")
    assert filter_traces(stitched, min_latency=0.0) == stitched

    path = tmp_path / "stitched.json"
    count = write_stitched_chrome_trace(str(path), stitched)
    assert count > 0
    doc = json.loads(path.read_text())       # valid JSON for Perfetto
    events = doc["traceEvents"]
    pids = {e["pid"] for e in events}
    assert len({e["args"]["name"] for e in events
                if e["ph"] == "M" and e["name"] == "process_name"}) == 2
    assert pids >= {1, 2}                    # one lane per zone
    for e in events:
        if e["ph"] == "X":
            assert e["ts"] >= 0 and e["dur"] >= 0
    starts = sorted(e["id"] for e in events if e["ph"] == "s")
    finishes = sorted(e["id"] for e in events if e["ph"] == "f")
    assert starts == finishes and len(starts) == len(
        [link for t in cross for link in t.links])


def test_prometheus_text_carries_trace_exemplar():
    """A traced cell exposes OpenMetrics exemplars linking the latency
    histogram to a retained trace id, and the exposition stays
    machine-parseable."""
    cell = Cell(CellSpec(num_shards=3, flight_recorder=True))
    client = cell.connect_client(strategy=GetStrategy.TWO_R)

    def app():
        yield from client.set(b"k", b"v" * 32)
        for _ in range(5):
            yield from client.get(b"k")

    cell.sim.run(until=cell.sim.process(app()))
    text = prometheus_text(cell.metrics)
    exemplar_lines = [ln for ln in text.splitlines() if " # {" in ln]
    assert exemplar_lines, "no exemplar in exposition"
    line = exemplar_lines[0]
    _metric, suffix = line.split(" # ", 1)
    labels, value, ts = suffix.rsplit(" ", 2)
    trace_id = labels.split('"')[1]
    assert len(trace_id) == 16 and int(trace_id, 16)
    assert float(value) >= 0 and float(ts) >= 0
    # The exemplar points at a trace the tracer actually retained.
    assert trace_id in {s.trace_id for s in cell.tracer.finished}
    # Every non-comment line is "name{labels} value [# exemplar]".
    for ln in text.splitlines():
        if not ln or ln.startswith("#"):
            continue
        body = ln.split(" # ", 1)[0]
        assert float(body.rsplit(" ", 1)[1]) is not None
    cell.close()


def partition_plan(fault_at=0.8, heal_at=1.4):
    plan = FaultPlan()
    plan.add(fault_at, "partition", client=3, shard=0)
    plan.add(fault_at, "partition", client=3, shard=1)
    plan.add(heal_at, "heal_all")
    return plan


SOAK_KWARGS = dict(seed=11, duration=1.6, settle=0.5, num_shards=3,
                   observe=True, flight=True)


def test_alerting_soak_emits_postmortem_bundle(tmp_path):
    report = run_soak(SoakConfig(plan=partition_plan(),
                                 export_dir=str(tmp_path), **SOAK_KWARGS))
    assert report.ok                     # quorum masks the cut
    assert report.bundle and report.bundle in report.exports
    assert find_bundles(str(tmp_path)) == [report.bundle]

    manifest = json.loads(
        (tmp_path / "postmortem-slo-alert" / "manifest.json").read_text())
    assert manifest["reason"] == "slo-alert"
    assert manifest["detail"]["alerts_fired"] >= 1
    assert manifest["detail"]["injected"]    # the faults that caused it
    assert {"flight.json", "flight.txt", "timeseries.json", "alerts.json",
            "manifest.json"} <= set(manifest["contents"])

    flight = json.loads(
        (tmp_path / "postmortem-slo-alert" / "flight.json").read_text())
    events = flight["events"]
    kinds = {e["kind"] for e in events}
    assert {"fault", "alert"} <= kinds
    # Causality is reconstructible from the ring: the injected
    # partition precedes the alert fire that it provoked.
    first_fault = next(e for e in events if e["kind"] == "fault")
    alert_fire = next(e for e in events if e["kind"] == "alert"
                      and e["fields"]["event"] == "fire")
    assert first_fault["seq"] < alert_fire["seq"]
    assert first_fault["t"] <= alert_fire["t"]
    assert first_fault["fields"]["fault"] == "partition"

    alerts = json.loads(
        (tmp_path / "postmortem-slo-alert" / "alerts.json").read_text())
    assert any(a["kind"] == "fire" for a in alerts["events"])


def test_healthy_soak_writes_no_bundle(tmp_path):
    plan = FaultPlan()
    plan.add(1.6, "heal_all")
    report = run_soak(SoakConfig(plan=plan, export_dir=str(tmp_path),
                                 **SOAK_KWARGS))
    assert report.ok and report.bundle is None
    assert find_bundles(str(tmp_path)) == []
