"""End-to-end observability plane: probers measure client-vantage SLIs,
a partitioned prober trips the availability burn-rate alert (and a
fault-free run trips nothing), and attaching the plane never perturbs
the workload's event sequence (seed-for-seed parity via clock taps)."""

import json

import pytest

from repro.analysis import run_scale_workload
from repro.core import Cell, CellSpec, ReplicationMode
from repro.faults import FaultPlan, SoakConfig, run_soak
from repro.observe import ObserveConfig, ProberConfig
from repro.tools import main


def partition_prober_plan(fault_at=0.8, heal_at=1.4):
    """Cut the first prober (client index 3: after 2 writers + reader)
    off from backends for shards 0 and 1 — two of the three replicas of
    every probe key, so quorum masking cannot hide the fault."""
    plan = FaultPlan()
    plan.add(fault_at, "partition", client=3, shard=0)
    plan.add(fault_at, "partition", client=3, shard=1)
    plan.add(heal_at, "heal_all")
    return plan


FAULT_AT, HEAL_AT = 0.8, 1.4
SOAK_KWARGS = dict(seed=11, duration=1.6, settle=0.5, num_shards=3,
                   observe=True)


def test_healthy_cell_probes_clean_and_raises_no_alerts():
    plan = FaultPlan()
    plan.add(1.6, "heal_all")        # no faults: plan is a no-op marker
    report = run_soak(SoakConfig(plan=plan, **SOAK_KWARGS))
    assert report.ok
    assert report.sli is not None
    (prober_sli,) = report.sli["probers"].values()
    assert prober_sli["ops"] > 100
    assert prober_sli["availability"] == 1.0
    # The exact same seed/settings that fire the alert under partition
    # (below) stay silent when healthy: no false positives.
    assert report.alerts == []
    assert report.sli["alerts_fired"] == 0
    assert report.sli["scrapes"] > 0


def test_partitioned_prober_fires_availability_alert():
    report = run_soak(SoakConfig(plan=partition_prober_plan(FAULT_AT,
                                                            HEAL_AT),
                                 **SOAK_KWARGS))
    assert report.ok                 # quorum masks the cut for workload
    fires = [a for a in report.alerts if a["kind"] == "fire"]
    assert fires, report.alerts
    # The alert names the right objective and cell, and is stamped in
    # simulated time inside the fault window (burn-rate detection lag
    # is a few scrape intervals, well under the heal time).
    availability = [a for a in fires if a["objective"] == "availability"]
    assert availability, fires
    for alert in availability:
        assert alert["cell"] == "cell"
        assert FAULT_AT < alert["at"] < HEAL_AT
        assert alert["burn_long"] >= alert["factor"]
        assert alert["burn_short"] >= alert["factor"]
    # The prober saw real unavailability from the client vantage.
    (prober_sli,) = report.sli["probers"].values()
    assert prober_sli["availability"] < 1.0
    # After the heal + settle the alert resolves.
    assert any(a["kind"] == "resolve" and a["objective"] == "availability"
               for a in report.alerts)


def test_soak_exports_timeseries_and_trace(tmp_path):
    report = run_soak(SoakConfig(plan=partition_prober_plan(),
                                 export_dir=str(tmp_path), **SOAK_KWARGS))
    ts_path = tmp_path / "timeseries.json"
    trace_path = tmp_path / "trace.json"
    # The partition fires the availability alert, so this soak also
    # leaves a postmortem bundle next to the flat exports (PR 10).
    bundle_path = tmp_path / "postmortem-slo-alert"
    assert sorted(report.exports) == [str(bundle_path), str(ts_path),
                                      str(trace_path)]
    assert report.bundle == str(bundle_path)

    doc = json.loads(ts_path.read_text())
    assert doc["scrapes"] == report.sli["scrapes"]
    names = {s["name"] for s in doc["series"]}
    assert "cliquemap_probe_ops_total" in names
    assert "cliquemap_slo_alerts_total" in names
    assert [a["objective"] for a in doc["alerts"]["events"]
            if a["kind"] == "fire"]

    trace = json.loads(trace_path.read_text())
    phases = [e for e in trace["traceEvents"] if e["ph"] == "X"]
    assert phases and all("ts" in e and "dur" in e for e in phases)


def test_observe_plane_is_idempotent_and_stops_with_cell():
    cell = Cell(CellSpec(mode=ReplicationMode.R3_2, num_shards=3))
    plane = cell.observe(ObserveConfig(probers=1,
                                       prober=ProberConfig(interval=2e-3)))
    assert cell.observe() is plane   # second call returns the same plane
    cell.sim.run(until=0.1)
    assert plane.scraper.scrapes > 0
    assert plane.probers[0].rounds > 10
    cell.close()
    rounds = plane.probers[0].rounds
    cell.sim.run(until=0.2)
    assert plane.probers[0].rounds == rounds    # probers stopped


def test_scraping_preserves_seed_for_seed_parity():
    """Tentpole guarantee: the plane observes without perturbing. The
    scraper rides clock taps, which consume no scheduling sequence
    numbers, so op outcomes, event counts, and final sim time are
    bit-identical with scraping on or off."""
    base = run_scale_workload(num_hosts=12, ops=600, batch=4)
    observed = run_scale_workload(num_hosts=12, ops=600, batch=4,
                                  observe=True)
    assert observed["digest"] == base["digest"]
    assert observed["events"] == base["events"]
    assert observed["sim_seconds"] == base["sim_seconds"]
    assert observed["scrapes"] > 0 and base["scrapes"] == 0


# -- operator CLI -------------------------------------------------------------

def test_cli_observe_partition_asserts_alert(tmp_path, capsys):
    code = main(["observe", "--fault", "partition", "--duration", "1.6",
                 "--settle", "0.5", "--assert-alert", "availability",
                 "--out-dir", str(tmp_path)])
    out = capsys.readouterr().out
    assert code == 0, out
    assert "SLO alert transitions" in out
    assert "availability" in out
    assert (tmp_path / "timeseries.json").exists()
    assert (tmp_path / "trace.json").exists()


def test_cli_observe_healthy_asserts_no_alerts(tmp_path, capsys):
    code = main(["observe", "--fault", "none", "--duration", "1.2",
                 "--settle", "0.4", "--assert-no-alerts",
                 "--out-dir", str(tmp_path)])
    assert code == 0, capsys.readouterr().out


def test_cli_observe_assertion_failure_exits_nonzero(tmp_path, capsys):
    code = main(["observe", "--fault", "none", "--duration", "1.2",
                 "--settle", "0.4", "--assert-alert", "availability",
                 "--out-dir", str(tmp_path)])
    assert code == 1
    assert "alert to fire" in capsys.readouterr().out


@pytest.mark.parametrize("fault", ["gray-loss", "gray-slow"])
def test_cli_observe_gray_faults_run_clean(fault, tmp_path, capsys):
    # Gray faults degrade rather than partition; the run must complete
    # with invariants intact whether or not an alert fires.
    code = main(["observe", "--fault", fault, "--duration", "1.2",
                 "--settle", "0.4", "--out-dir", str(tmp_path)])
    out = capsys.readouterr().out
    assert code == 0, out
    assert "invariants hold" in out
