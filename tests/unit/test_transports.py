"""Unit tests for RDMA / Pony Express / 1RMA transports."""

import struct

import pytest

from repro.net import Fabric, FabricConfig, gbps
from repro.sim import Simulator
from repro.transport import (Arena, MemoryRegion, OneRmaTransport,
                             PonyScaleConfig, PonyTransport, RdmaTransport,
                             RegionRevokedError, RemoteHostDownError)


def setup_pair(transport_cls, **kwargs):
    sim = Simulator()
    fabric = Fabric(sim, FabricConfig(host_rate_bytes_per_sec=gbps(50.0),
                                      one_way_delay=4e-6, delay_jitter=0.0))
    client = fabric.add_host("client")
    server = fabric.add_host("server")
    transport = transport_cls(sim, fabric, **kwargs)
    endpoint = transport.attach(server)
    transport.attach(client)
    arena = Arena(4096, 65536)
    window = endpoint.expose(MemoryRegion(arena))
    return sim, fabric, client, server, transport, endpoint, arena, window


def drive(sim, gen):
    return sim.run(until=sim.process(gen))


@pytest.mark.parametrize("transport_cls", [RdmaTransport, OneRmaTransport,
                                           PonyTransport])
def test_read_returns_snapshot(transport_cls):
    sim, _f, client, _s, transport, _e, arena, window = setup_pair(
        transport_cls)
    arena.write(100, b"payload!")
    data = drive(sim, transport.read(client, "server", window.region_id,
                                     100, 8))
    assert data == b"payload!"
    assert transport.counters.reads == 1
    assert transport.counters.bytes_fetched == 8


@pytest.mark.parametrize("transport_cls", [RdmaTransport, OneRmaTransport,
                                           PonyTransport])
def test_read_revoked_region_fails(transport_cls):
    sim, _f, client, _s, transport, endpoint, _a, window = setup_pair(
        transport_cls)
    endpoint.revoke(window)
    with pytest.raises(RegionRevokedError):
        drive(sim, transport.read(client, "server", window.region_id, 0, 8))
    assert transport.counters.failures == 1


@pytest.mark.parametrize("transport_cls", [RdmaTransport, OneRmaTransport,
                                           PonyTransport])
def test_read_to_dead_host_times_out(transport_cls):
    sim, _f, client, server, transport, *_ = setup_pair(transport_cls)
    server.crash()
    start = sim.now
    with pytest.raises(RemoteHostDownError):
        drive(sim, transport.read(client, "server", 1, 0, 8))
    assert sim.now - start >= transport.op_timeout


def test_rma_read_uses_no_server_cpu():
    sim, _f, client, server, transport, _e, arena, window = setup_pair(
        RdmaTransport)
    arena.write(0, b"x" * 64)
    drive(sim, transport.read(client, "server", window.region_id, 0, 64))
    assert server.ledger.total() == 0.0
    assert client.ledger.seconds("rma-client") > 0


def test_rma_read_much_cheaper_than_rpc_cpu():
    """The core motivation: RMA GETs avoid the >50us RPC framework cost."""
    sim, _f, client, server, transport, _e, arena, window = setup_pair(
        RdmaTransport)
    arena.write(0, b"x" * 64)
    drive(sim, transport.read(client, "server", window.region_id, 0, 64))
    total_cpu = client.ledger.total() + server.ledger.total()
    assert total_cpu < 5e-6  # vs >50e-6 for a Stubby RPC


def test_onerma_records_command_timestamps():
    sim, _f, client, _s, transport, _e, arena, window = setup_pair(
        OneRmaTransport)
    arena.write(0, bytes(256))
    for _ in range(3):
        drive(sim, transport.read(client, "server", window.region_id, 0, 256))
    assert len(transport.command_timestamps) == 3
    for _t, latency in transport.command_timestamps:
        assert 0 < latency < 100e-6


def test_onerma_latency_lower_than_rdma():
    results = {}
    for cls in (RdmaTransport, OneRmaTransport):
        sim, _f, client, _s, transport, _e, arena, window = setup_pair(cls)
        arena.write(0, bytes(64))
        start = sim.now
        drive(sim, transport.read(client, "server", window.region_id, 0, 64))
        results[cls.__name__] = sim.now - start
    assert results["OneRmaTransport"] < results["RdmaTransport"]


def test_pony_read_charges_engine_cpu_both_sides():
    sim, _f, client, server, transport, _e, arena, window = setup_pair(
        PonyTransport)
    arena.write(0, bytes(64))
    drive(sim, transport.read(client, "server", window.region_id, 0, 64))
    assert client.ledger.seconds("pony") > 0
    assert server.ledger.seconds("pony") > 0


def test_pony_scar_hit_returns_bucket_and_data():
    sim, _f, client, _s, transport, endpoint, arena, window = setup_pair(
        PonyTransport)
    # A toy "bucket": 16-byte key-hash + pointer (region, offset, size).
    key_hash = b"H" * 16
    arena.write(256, b"the-data")
    pointer = struct.pack("<qqq", window.region_id, 256, 8)
    arena.write(0, key_hash + pointer)

    def program(bucket_bytes, wanted_hash):
        if bucket_bytes[:16] == wanted_hash:
            region, off, size = struct.unpack("<qqq", bucket_bytes[16:40])
            return (region, off, size)
        return None

    endpoint.install_scar_program(program)
    bucket, data = drive(sim, transport.scar(
        client, "server", window.region_id, 0, 40, key_hash))
    assert bucket[:16] == key_hash
    assert data == b"the-data"
    assert transport.counters.scars == 1


def test_pony_scar_miss_returns_bucket_only():
    sim, _f, client, _s, transport, endpoint, arena, window = setup_pair(
        PonyTransport)
    endpoint.install_scar_program(lambda bucket, kh: None)
    bucket, data = drive(sim, transport.scar(
        client, "server", window.region_id, 0, 40, b"H" * 16))
    assert data is None
    assert len(bucket) == 40


def test_pony_scar_single_round_trip_faster_than_two_reads():
    """SCAR saves a full RTT relative to 2xR for small objects."""
    def run_scar():
        sim, _f, client, _s, transport, endpoint, arena, window = setup_pair(
            PonyTransport)
        key_hash = b"H" * 16
        arena.write(256, b"x" * 64)
        arena.write(0, key_hash + struct.pack("<qqq", window.region_id, 256, 64))
        endpoint.install_scar_program(
            lambda b, kh: struct.unpack("<qqq", b[16:40]))
        start = sim.now
        drive(sim, transport.scar(client, "server", window.region_id, 0, 40,
                                  key_hash))
        return sim.now - start

    def run_two_reads():
        sim, _f, client, _s, transport, _e, arena, window = setup_pair(
            PonyTransport)
        arena.write(0, bytes(40))
        arena.write(256, b"x" * 64)

        def op():
            yield from transport.read(client, "server", window.region_id, 0, 40)
            yield from transport.read(client, "server", window.region_id,
                                      256, 64)

        start = sim.now
        drive(sim, op())
        return sim.now - start

    assert run_scar() < run_two_reads()


def test_pony_message_invokes_handler_with_app_cpu():
    sim, _f, client, server, transport, *_ = setup_pair(PonyTransport)
    seen = []

    def handler(payload):
        seen.append(payload)
        return {"ok": True}, 128

    transport.register_message_handler(server, "lookup", handler)
    response = drive(sim, transport.message(client, "server", "lookup",
                                            64, {"key": "k"}))
    assert response == {"ok": True}
    assert seen == [{"key": "k"}]
    assert server.ledger.seconds("msg-app") > 0
    assert transport.counters.messages == 1


def test_pony_engines_scale_out_under_load():
    sim = Simulator()
    fabric = Fabric(sim, FabricConfig(delay_jitter=0.0))
    client = fabric.add_host("client")
    server = fabric.add_host("server")
    scale = PonyScaleConfig(base_engines=1, max_engines=4,
                            sample_interval=100e-6,
                            scale_up_threshold=0.7)
    transport = PonyTransport(sim, fabric, scale=scale)
    endpoint = transport.attach(server)
    transport.attach(client)
    arena = Arena(4096, 4096)
    window = endpoint.expose(MemoryRegion(arena))

    def load_loop():
        while sim.now < 20e-3:
            procs = [sim.process(transport.read(
                client, "server", window.region_id, 0, 1024))
                for _ in range(32)]
            yield sim.all_of(procs)

    sim.process(load_loop())
    sim.run(until=20e-3)
    # The client host does tx + rx work per op and is the busier side.
    group = transport.engine_group(client)
    assert group.engine_count > 1
    assert group.engines_at(0.0) == 1


def test_pony_engines_scale_back_down_when_idle():
    sim = Simulator()
    fabric = Fabric(sim, FabricConfig(delay_jitter=0.0))
    client = fabric.add_host("client")
    server = fabric.add_host("server")
    scale = PonyScaleConfig(base_engines=1, max_engines=4,
                            sample_interval=100e-6)
    transport = PonyTransport(sim, fabric, scale=scale)
    endpoint = transport.attach(server)
    transport.attach(client)
    arena = Arena(4096, 4096)
    window = endpoint.expose(MemoryRegion(arena))

    def burst_then_idle():
        while sim.now < 10e-3:
            procs = [sim.process(transport.read(
                client, "server", window.region_id, 0, 2048))
                for _ in range(32)]
            yield sim.all_of(procs)
        # idle tail: monitor should scale back to base
        yield sim.timeout(5e-3)

    sim.run(until=sim.process(burst_then_idle()))
    group = transport.engine_group(client)
    assert group.engine_count == 1
    assert max(cap for _t, cap in group.scale_history) > 1


def test_onerma_solicitation_window_limits_outstanding():
    """1RMA's congestion control: ops beyond the window queue locally."""
    from repro.transport import OneRmaCostModel
    sim = Simulator()
    fabric = Fabric(sim, FabricConfig(delay_jitter=0.0))
    client = fabric.add_host("client")
    server = fabric.add_host("server")
    transport = OneRmaTransport(
        sim, fabric,
        cost_model=OneRmaCostModel(solicitation_window_ops=2))
    endpoint = transport.attach(server)
    arena = Arena(4096, 4096)
    window = endpoint.expose(MemoryRegion(arena))
    completions = []

    def one():
        yield from transport.read(client, "server", window.region_id, 0, 256)
        completions.append(sim.now)

    for _ in range(6):
        sim.process(one())
    sim.run()
    assert len(completions) == 6
    # With a window of 2, the six ops complete in three distinct waves.
    waves = sorted(set(round(t, 9) for t in completions))
    assert len(waves) >= 3
