"""Pickle-safety audit of every public config dataclass.

Sharded parallel simulation sends specs into worker processes over
pipes (repro.sim.parallel), so every config object a shard build might
reference must survive ``pickle`` round-trips — including nested
defaults, enums, and tuples. Anything that grows an unpicklable field
(an open file, a Simulator reference, a lambda default) breaks parallel
runs in confusing ways; this test makes the breakage a one-line diff.
"""

import pickle

import pytest

from repro.core import (BackendConfig, CellConfig, CellSpec, ClientConfig,
                        FederationSpec, HealthPolicy, MaintenanceConfig,
                        RepairConfig, ReplicationMode, ResizeConfig,
                        ZoneShardSpec, ZoneWorkloadSpec)
from repro.faults import FaultEvent, FaultPlan, SoakConfig
from repro.net import FabricConfig, HostConfig, LinkFault, MtuConfig
from repro.observe import ObserveConfig
from repro.storage import MissPolicy, ProvisionedThroughput
from repro.workloads.population import PopulationConfig


def roundtrip(obj):
    return pickle.loads(pickle.dumps(obj))


CONFIG_OBJECTS = [
    # Defaults: the common path every worker build exercises.
    CellSpec(),
    FederationSpec(),
    ClientConfig(),
    BackendConfig(),
    RepairConfig(),
    MaintenanceConfig(),
    ResizeConfig(),
    HealthPolicy(),
    FabricConfig(),
    HostConfig(),
    MtuConfig(),
    LinkFault(),
    MissPolicy(),
    ProvisionedThroughput(),
    ObserveConfig(),
    SoakConfig(),
    ZoneWorkloadSpec(),
    # Non-default values: catches fields that only break when set.
    CellSpec(name="pickled", mode=ReplicationMode.R2_IMMUTABLE, num_shards=9,
             num_spares=2, transport="1rma",
             writer_principals=["app-a", "app-b"], seed=99,
             tracing=False),
    FederationSpec(zones=["dc-a", "dc-b", "dc-c"],
                   cell_spec=CellSpec(num_shards=4)),
    CellConfig(name="cfg", mode=ReplicationMode.R3_2, num_shards=3,
               config_id=7, shard_tasks=["backend-0", "backend-1",
                                         "backend-2"],
               spares=["spare-0"]),
    LinkFault(loss_probability=0.1, corrupt_probability=0.05,
              latency_multiplier=3.0),
    FaultEvent(at=1.5, kind="partition",
               args={"a": "backend-0", "b": "backend-1"}, duration=0.5),
    PopulationConfig(num_clients=1000, rate_per_client=25.0,
                     duration=2.0, op_sample_rate=0.5),
    ZoneWorkloadSpec(clients=8, population_clients=500,
                     population_rate=40.0, seed=7),
    ZoneShardSpec(zone="dc-b", zones=("dc-a", "dc-b"),
                  cell_spec=CellSpec(num_shards=2),
                  workload=ZoneWorkloadSpec(clients=2), duration=0.25),
]


@pytest.mark.parametrize("obj", CONFIG_OBJECTS,
                         ids=lambda o: type(o).__name__)
def test_config_roundtrips_through_pickle(obj):
    restored = roundtrip(obj)
    assert restored == obj
    assert type(restored) is type(obj)


def test_nested_spec_roundtrip_is_deep():
    """Nested configs must be reconstructed, not shared references."""
    spec = FederationSpec(zones=["dc-a", "dc-b"])
    restored = roundtrip(spec)
    assert restored.cell_spec == spec.cell_spec
    assert restored.cell_spec is not spec.cell_spec
    assert restored.cell_spec.backend_config is not \
        spec.cell_spec.backend_config


def test_fault_plan_roundtrip():
    """FaultPlan is a plain wrapper class: compare its event list."""
    plan = FaultPlan([
        FaultEvent(at=0.1, kind="crash", args={"task": "backend-0"}),
        FaultEvent(at=0.4, kind="heal"),
    ])
    restored = roundtrip(plan)
    assert restored.events == plan.events


def test_zone_shard_spec_roundtrip_builds_identically():
    """The real worker path: a pickled spec must build a shard whose
    run is indistinguishable from one built from the original."""
    from repro.core import ZoneShard
    spec = ZoneShardSpec(zone="dc-a", zones=("dc-a",),
                         cell_spec=CellSpec(num_shards=3),
                         workload=ZoneWorkloadSpec(clients=1,
                                                   shared_keys=8,
                                                   private_keys=2),
                         duration=0.05)
    shards = []
    for s in (spec, roundtrip(spec)):
        shard = ZoneShard(s)
        shard.index = 0
        shard.build()
        shard.sim.run_until(shard.sim.now)
        shard.start()
        shard.sim.run_until(shard.sim.now + s.duration)
        shards.append(shard.digest())
    assert shards[0] == shards[1]


def test_enum_fields_survive_by_identity():
    restored = roundtrip(CellSpec(mode=ReplicationMode.R2_IMMUTABLE))
    assert restored.mode is ReplicationMode.R2_IMMUTABLE
