"""Unit tests for trace record/replay."""


import pytest

from repro.core import Cell, CellSpec, ReplicationMode
from repro.sim import RandomStream
from repro.workloads import (Trace, TraceOp, TraceRecorder, TraceReplayer,
                             synthesize_trace)


def build_cell():
    cell = Cell(CellSpec(mode=ReplicationMode.R3_2, num_shards=3,
                         transport="pony"))
    return cell, cell.connect_client()


def run(cell, gen):
    return cell.sim.run(until=cell.sim.process(gen))


# -- format -----------------------------------------------------------------

def test_trace_op_line_roundtrip():
    op = TraceOp(0.001234, "set", b"topic-7", 2048)
    parsed = TraceOp.from_line(op.to_line())
    assert parsed == op


def test_trace_file_roundtrip():
    trace = Trace([TraceOp(0.0, "get", b"a", 1),
                   TraceOp(0.001, "set", b"b", 512),
                   TraceOp(0.002, "erase", b"a")])
    text = trace.dumps()
    loaded = Trace.loads(text)
    assert loaded.ops == trace.ops
    assert loaded.duration == pytest.approx(0.002)


def test_trace_load_skips_comments_and_blanks():
    text = "# header\n\n0.5 get k 1\n# trailing\n"
    trace = Trace.loads(text)
    assert len(trace) == 1
    assert trace.ops[0].key == b"k"


def test_trace_load_sorts_by_time():
    text = "0.9 get late 1\n0.1 get early 1\n"
    trace = Trace.loads(text)
    assert [op.key for op in trace.ops] == [b"early", b"late"]


def test_malformed_lines_rejected():
    with pytest.raises(ValueError):
        TraceOp.from_line("0.5 get")
    with pytest.raises(ValueError):
        TraceOp.from_line("0.5 frobnicate k 1")


# -- synthesis -----------------------------------------------------------------

def test_synthesize_trace_shape():
    stream = RandomStream(3, "trace")
    trace = synthesize_trace(stream, num_keys=50, ops=500,
                             get_fraction=0.9, rate=10000.0)
    assert len(trace) == 500
    gets = sum(1 for op in trace if op.op == "get")
    assert 0.8 < gets / 500 < 0.97
    times = [op.time for op in trace]
    assert times == sorted(times)
    assert trace.duration == pytest.approx(500 / 10000.0, rel=0.3)


# -- record/replay --------------------------------------------------------------

def test_recorder_captures_operations():
    cell, client = build_cell()
    recorder = TraceRecorder(client)

    def app():
        yield from recorder.set(b"k", b"v" * 100)
        yield from recorder.get(b"k")
        yield from recorder.erase(b"k")

    run(cell, app())
    ops = [(op.op, op.key) for op in recorder.trace]
    assert ops == [("set", b"k"), ("get", b"k"), ("erase", b"k")]
    assert recorder.trace.ops[0].arg == 100


def test_replay_preserves_relative_timing():
    cell, client = build_cell()
    trace = Trace([TraceOp(0.0, "set", b"a", 64),
                   TraceOp(0.010, "set", b"b", 64),
                   TraceOp(0.020, "get", b"a", 1)])
    replayer = TraceReplayer(client, trace)
    report = run(cell, replayer.replay())
    assert report.duration >= 0.020
    assert report.sets == 2
    assert report.gets == 1
    assert report.hit_rate == 1.0


def test_replay_time_scale_compresses():
    cell, client = build_cell()
    trace = Trace([TraceOp(0.0, "set", b"a", 64),
                   TraceOp(0.100, "get", b"a", 1)])
    replayer = TraceReplayer(client, trace, time_scale=0.1)
    report = run(cell, replayer.replay())
    assert 0.010 <= report.duration < 0.05


def test_replay_fills_misses_when_configured():
    cell, client = build_cell()
    trace = Trace([TraceOp(0.0, "get", b"cold-key", 2)])
    replayer = TraceReplayer(client, trace, fill_missing_sets=True)
    report = run(cell, replayer.replay())
    assert report.hits == 0

    def check():
        result = yield from client.get(b"cold-key")
        return result.hit

    assert run(cell, check())  # the fill installed it


def test_recorded_trace_replays_on_fresh_cell():
    """The full loop: record against one cell, replay on another."""
    cell_a, client_a = build_cell()
    recorder = TraceRecorder(client_a)

    def workload():
        for i in range(10):
            yield from recorder.set(b"key-%d" % i, b"v" * 64)
        for i in range(30):
            yield from recorder.get(b"key-%d" % (i % 10))

    run(cell_a, workload())
    text = recorder.trace.dumps()

    cell_b, client_b = build_cell()
    replayer = TraceReplayer(client_b, Trace.loads(text))
    report = run(cell_b, replayer.replay())
    assert report.sets == 10
    assert report.gets == 30
    assert report.hit_rate == 1.0
