"""Unit tests for the host / CPU / C-state model."""

import pytest

from repro.net import CStateModel, Host, HostConfig, HostDownError
from repro.sim import Simulator


def make_host(sim, cores=2, c_state=None, slowdown=1.0):
    return Host(sim, "h0", HostConfig(
        cores=cores,
        c_state=c_state or CStateModel(),
        cpu_slowdown=slowdown,
    ))


def test_execute_takes_cpu_time():
    sim = Simulator()
    host = make_host(sim)
    done = []

    def proc():
        yield from host.execute(10e-6, "worker")
        done.append(sim.now)

    sim.process(proc())
    sim.run()
    assert done == [pytest.approx(10e-6)]


def test_execute_charges_ledger():
    sim = Simulator()
    host = make_host(sim)

    def proc():
        yield from host.execute(5e-6, "alpha")
        yield from host.execute(3e-6, "alpha")
        yield from host.execute(2e-6, "beta")

    sim.process(proc())
    sim.run()
    assert host.ledger.seconds("alpha") == pytest.approx(8e-6)
    assert host.ledger.seconds("beta") == pytest.approx(2e-6)
    assert host.ledger.total() == pytest.approx(10e-6)


def test_core_contention_queues_work():
    sim = Simulator()
    host = make_host(sim, cores=1)
    ends = []

    def proc(tag):
        yield from host.execute(10e-6, tag)
        ends.append((tag, sim.now))

    sim.process(proc("a"))
    sim.process(proc("b"))
    sim.run()
    assert ends == [("a", pytest.approx(10e-6)),
                    ("b", pytest.approx(20e-6))]


def test_parallel_cores_do_not_queue():
    sim = Simulator()
    host = make_host(sim, cores=2)
    ends = []

    def proc(tag):
        yield from host.execute(10e-6, tag)
        ends.append(sim.now)

    sim.process(proc("a"))
    sim.process(proc("b"))
    sim.run()
    assert ends == [pytest.approx(10e-6), pytest.approx(10e-6)]


def test_cpu_slowdown_multiplies_work():
    sim = Simulator()
    host = make_host(sim, slowdown=2.0)

    def proc():
        yield from host.execute(10e-6, "w")

    sim.process(proc())
    sim.run()
    assert sim.now == pytest.approx(20e-6)
    assert host.ledger.seconds("w") == pytest.approx(20e-6)


def test_cstate_penalty_applies_after_idle():
    sim = Simulator()
    cs = CStateModel(enabled=True, idle_threshold=100e-6, wakeup_latency=40e-6)
    host = make_host(sim, cores=1, c_state=cs)
    times = []

    def proc():
        yield from host.execute(10e-6, "w")     # cold start: idle since t=0? no, idle=0
        times.append(sim.now)
        yield sim.timeout(500e-6)               # long idle -> deep C-state
        start = sim.now
        yield from host.execute(10e-6, "w")
        times.append(sim.now - start)

    sim.process(proc())
    sim.run()
    assert times[0] == pytest.approx(10e-6)       # no penalty when not idle long
    assert times[1] == pytest.approx(50e-6)       # wakeup (40us) + work (10us)


def test_cstate_no_penalty_when_busy_recently():
    sim = Simulator()
    cs = CStateModel(enabled=True, idle_threshold=100e-6, wakeup_latency=40e-6)
    host = make_host(sim, cores=1, c_state=cs)
    durations = []

    def proc():
        for _ in range(3):
            start = sim.now
            yield from host.execute(10e-6, "w")
            durations.append(sim.now - start)
            yield sim.timeout(20e-6)  # short gaps keep the core warm

    sim.process(proc())
    sim.run()
    assert durations == [pytest.approx(10e-6)] * 3


def test_crashed_host_rejects_execution():
    sim = Simulator()
    host = make_host(sim)
    host.crash()
    failures = []

    def proc():
        try:
            yield from host.execute(1e-6, "w")
        except HostDownError as exc:
            failures.append(exc.host_name)

    sim.process(proc())
    sim.run()
    assert failures == ["h0"]


def test_restart_revives_host():
    sim = Simulator()
    host = make_host(sim)
    host.crash()
    host.restart()
    done = []

    def proc():
        yield from host.execute(1e-6, "w")
        done.append(True)

    sim.process(proc())
    sim.run()
    assert done == [True]


def test_charge_inline_only_touches_ledger():
    sim = Simulator()
    host = make_host(sim)
    host.charge_inline(7e-6, "engine")
    assert host.ledger.seconds("engine") == pytest.approx(7e-6)
    assert sim.now == 0.0


def test_ledger_rejects_negative():
    sim = Simulator()
    host = make_host(sim)
    with pytest.raises(ValueError):
        host.ledger.charge("w", -1.0)
