"""Kernel sharding hooks + the conservative-lookahead coordinator."""

import pytest

from repro.sim import (ShardCoordinator, ShardProgram, SimulationError,
                       Simulator)


# ---------------------------------------------------------------------------
# Simulator hooks: run_until / lower_bound / inject
# ---------------------------------------------------------------------------


def test_run_until_advances_exactly_to_horizon():
    sim = Simulator()
    fired = []
    sim.call_in(0.5, fired.append, "a")
    sim.call_in(1.5, fired.append, "b")
    now = sim.run_until(1.0)
    assert now == 1.0
    assert sim.now == 1.0
    assert fired == ["a"]
    sim.run_until(2.0)
    assert fired == ["a", "b"]


def test_run_until_rejects_past_horizon():
    sim = Simulator()
    sim.run_until(1.0)
    with pytest.raises(SimulationError):
        sim.run_until(0.5)


def test_run_until_same_horizon_is_noop():
    sim = Simulator()
    sim.run_until(1.0)
    assert sim.run_until(1.0) == 1.0


def test_lower_bound_tracks_next_event():
    sim = Simulator()
    assert sim.lower_bound() == float("inf")
    sim.call_in(2.0, lambda: None)
    assert sim.lower_bound() == 2.0
    sim.run_until(1.0)
    assert sim.lower_bound() == 2.0
    sim.run_until(3.0)
    assert sim.lower_bound() == float("inf")


def test_lower_bound_is_now_when_ready_events_pending():
    sim = Simulator()
    sim.call_soon(lambda: None)
    assert sim.lower_bound() == sim.now == 0.0


def test_inject_delivers_at_requested_time():
    sim = Simulator()
    fired = []
    sim.inject(0.75, fired.append, "x")
    sim.run_until(0.5)
    assert fired == []
    sim.run_until(1.0)
    assert fired == ["x"]


def test_inject_at_now_runs_at_current_time():
    sim = Simulator()
    sim.run_until(1.0)
    fired = []
    sim.inject(1.0, fired.append, "now")
    sim.run_until(1.0)
    assert fired == ["now"]


def test_inject_in_the_past_raises():
    """The protocol-violation tripwire: a conservative-sync bug that
    routes a message into a shard's past must fail loudly."""
    sim = Simulator()
    sim.run_until(1.0)
    with pytest.raises(SimulationError):
        sim.inject(0.5, lambda: None)


def test_inject_preserves_deterministic_ordering():
    """Same-time injections execute in injection order (seq order)."""
    sim = Simulator()
    fired = []
    for tag in ("first", "second", "third"):
        sim.inject(1.0, fired.append, tag)
    sim.run_until(2.0)
    assert fired == ["first", "second", "third"]


# ---------------------------------------------------------------------------
# A toy two-shard model: ping-pong counters over the WAN.
# ---------------------------------------------------------------------------


class PingShard(ShardProgram):
    """Sends a counter to the peer every ``interval``; echoes receipts."""

    def __init__(self, interval, wan_latency, rounds):
        super().__init__()
        self.interval = interval
        self.wan = wan_latency
        self.rounds = rounds
        self.sent = 0
        self.received = []

    def build(self):
        self.sim = Simulator()

    def start(self):
        self._tick()

    def _tick(self):
        if self.sent >= self.rounds:
            return
        self.sent += 1
        peer = 1 - self.index
        self.send(peer, "ping", (self.index, self.sent),
                  arrival=self.sim.now + self.wan)
        self.sim.call_in(self.interval, self._tick)

    def receive(self, message):
        self.sim.inject(message.arrival, self.received.append,
                        (message.payload, message.arrival))

    def digest(self):
        return {"sent": self.sent, "received": list(self.received)}


def _coordinate(parallel, rounds=5, interval=0.01, wan=0.015):
    coordinator = ShardCoordinator(
        [(PingShard, (interval, wan, rounds)),
         (PingShard, (interval, wan, rounds))],
        lookahead=wan, run_for=interval * rounds + wan * 2)
    return coordinator.run(parallel=parallel)


def test_toy_shards_sequential_parallel_identical():
    sequential = _coordinate(parallel=False)
    parallel = _coordinate(parallel=True)
    assert sequential.digests == parallel.digests
    assert not parallel.leaked_children
    assert parallel.messages_routed == sequential.messages_routed == 10


def test_toy_shards_no_message_in_the_past():
    """Every delivery arrival is >= send time + lookahead (the inject
    guard would raise otherwise), and all pings arrive."""
    report = _coordinate(parallel=False, rounds=7)
    for digest in report.digests:
        assert digest["sent"] == 7
        assert len(digest["received"]) == 7
        for (src, seq), arrival in digest["received"]:
            # ping n was sent at (n-1)*interval after start.
            assert arrival == pytest.approx(
                report.start + (seq - 1) * 0.01 + 0.015)


def test_coordinator_windows_bounded_by_lookahead():
    report = _coordinate(parallel=False)
    # Conservative sync cannot do it in one window: shards exchange
    # messages, so the run must have synchronized repeatedly.
    assert report.windows > 1
    assert report.events > 0
    assert report.horizon == report.start + 0.01 * 5 + 0.015 * 2


def test_coordinator_rejects_nonpositive_lookahead():
    with pytest.raises(SimulationError):
        ShardCoordinator([(PingShard, (0.01, 0.015, 1))], lookahead=0.0,
                         run_for=1.0)
    with pytest.raises(SimulationError):
        ShardCoordinator([(PingShard, (0.01, 0.015, 1))], lookahead=0.01,
                         run_for=0.0)


class CrashShard(PingShard):
    def start(self):
        raise RuntimeError("boom at start")


def test_worker_failure_surfaces_and_cleans_up():
    coordinator = ShardCoordinator(
        [(CrashShard, (0.01, 0.015, 1)),
         (PingShard, (0.01, 0.015, 1))],
        lookahead=0.015, run_for=0.1)
    with pytest.raises((SimulationError, RuntimeError)):
        coordinator.run(parallel=True)
    import multiprocessing
    assert multiprocessing.active_children() == []
