"""Unit tests for the system-of-record substrate."""

import pytest

from repro.core import Cell, CellSpec, ReplicationMode
from repro.rpc import Principal, connect as rpc_connect
from repro.storage import (ProvisionedThroughput, StorageCostModel,
                           SystemOfRecord)


def build_sor(num_keys=10, throughput=None, **cost_kwargs):
    cell = Cell(CellSpec(mode=ReplicationMode.R1, num_shards=1,
                         transport="pony"))
    host = cell.fabric.add_host("host/sor")
    cost = StorageCostModel(**cost_kwargs) if cost_kwargs else None
    sor = SystemOfRecord(cell.sim, host, cost=cost, throughput=throughput)
    sor.load({b"k-%03d" % i: b"v-%d" % i for i in range(num_keys)})
    return cell, sor


def channel_for(cell, sor):
    host = cell.fabric.add_host("host/app-driver")
    return rpc_connect(cell.sim, cell.fabric, host, sor.rpc_server,
                       Principal("app"))


def call(cell, channel, method, payload):
    def caller():
        return (yield from channel.call(method, payload, deadline=10.0))
    return cell.sim.run(until=cell.sim.process(caller()))


def test_load_and_len():
    _cell, sor = build_sor(7)
    assert len(sor) == 7
    assert not sor.sealed


def test_load_overwrites_before_freeze():
    cell, sor = build_sor(2)
    sor.load({b"k-000": b"updated"})
    assert len(sor) == 2
    channel = channel_for(cell, sor)
    reply = call(cell, channel, "Read", {"key": b"k-000"})
    assert reply["value"] == b"updated"


def test_ingest_seal_shims_warn_and_delegate():
    _cell, sor = build_sor(0)
    with pytest.warns(DeprecationWarning):
        sor.ingest({b"legacy": b"v"})
    with pytest.warns(DeprecationWarning):
        sor.seal()
    assert len(sor) == 1
    assert sor.sealed


def test_scan_pagination_covers_corpus():
    cell, sor = build_sor(25)
    sor.freeze()
    channel = channel_for(cell, sor)
    seen = []
    cursor = 0
    pages = 0
    while True:
        reply = call(cell, channel, "Scan", {"cursor": cursor, "limit": 10})
        seen.extend(k for k, _v in reply["entries"])
        cursor = reply["next_cursor"]
        pages += 1
        if reply["done"]:
            break
    assert pages == 3
    assert len(seen) == 25
    assert len(set(seen)) == 25


def test_scan_empty_tail():
    cell, sor = build_sor(5)
    channel = channel_for(cell, sor)
    reply = call(cell, channel, "Scan", {"cursor": 5, "limit": 10})
    assert reply["entries"] == []
    assert reply["done"]


def test_media_channels_serialize_access():
    cell, sor = build_sor(4, media_latency=1e-3, media_channels=1,
                          bytes_per_sec=1e9, cpu_per_read=1e-6)
    channel = channel_for(cell, sor)

    def burst():
        procs = [cell.sim.process(
            channel.call("Read", {"key": b"k-%03d" % i}))
            for i in range(4)]
        start = cell.sim.now
        yield cell.sim.all_of(procs)
        return cell.sim.now - start

    elapsed = cell.sim.run(until=cell.sim.process(burst()))
    # Four reads through one media channel at 1ms each: >= 4ms total.
    assert elapsed >= 4e-3


def test_parallel_media_channels_overlap():
    cell, sor = build_sor(4, media_latency=1e-3, media_channels=4,
                          bytes_per_sec=1e9, cpu_per_read=1e-6)
    channel = channel_for(cell, sor)

    def burst():
        procs = [cell.sim.process(
            channel.call("Read", {"key": b"k-%03d" % i}))
            for i in range(4)]
        start = cell.sim.now
        yield cell.sim.all_of(procs)
        return cell.sim.now - start

    elapsed = cell.sim.run(until=cell.sim.process(burst()))
    assert elapsed < 3e-3  # all four overlap on distinct channels


def test_shared_media_bus_serializes_large_transfers():
    # Channels let seeks overlap, but bulk transfers share one media
    # bus per host: four 100MB reads at 400MB/s need >= 1s of transfer
    # even with four channels.
    cell = Cell(CellSpec(mode=ReplicationMode.R1, num_shards=1,
                         transport="pony"))
    host = cell.fabric.add_host("host/sor")
    sor = SystemOfRecord(cell.sim, host, cost=StorageCostModel(
        media_latency=1e-6, media_channels=4, bytes_per_sec=400e6,
        cpu_per_read=1e-9))
    sor.load({b"k-%03d" % i: bytes(100_000_000) for i in range(4)})
    channel = channel_for(cell, sor)

    def burst():
        procs = [cell.sim.process(
            channel.call("Read", {"key": b"k-%03d" % i}, deadline=60.0))
            for i in range(4)]
        start = cell.sim.now
        yield cell.sim.all_of(procs)
        return cell.sim.now - start

    elapsed = cell.sim.run(until=cell.sim.process(burst()))
    assert elapsed >= 1.0  # 4 x 100MB / 400MB/s, serialized on the bus


def test_provisioned_throughput_throttles_reads():
    # 2 read units/s with a 1s burst: the third same-instant read of a
    # small key must be pushed back.
    cell, sor = build_sor(
        8, throughput=ProvisionedThroughput(read_units=2.0,
                                            write_units=2.0,
                                            burst_seconds=1.0))
    channel = channel_for(cell, sor)
    replies = [call(cell, channel, "Read", {"key": b"k-%03d" % i})
               for i in range(3)]
    throttled = [r for r in replies if r.get("throttled")]
    assert len(throttled) == 1
    assert throttled[0]["reason"] == "ProvisionedThroughputExceeded"
    assert sor.throttled == 1


def test_brownout_scales_capacity_and_restores():
    cell, sor = build_sor(
        4, throughput=ProvisionedThroughput(read_units=100.0,
                                            write_units=100.0))
    sor.brownout(0.1, duration=0.5)
    assert sor.browned_out
    assert sor.brownouts == 1
    cell.sim.run(until=cell.sim.timeout(1.0))
    assert not sor.browned_out
    with pytest.raises(Exception):
        sor.brownout(0.0)  # factor must be in (0, 1]


def test_write_requires_unsealed_corpus():
    cell, sor = build_sor(1)
    channel = channel_for(cell, sor)
    reply = call(cell, channel, "Write", {"key": b"new", "value": b"v"})
    assert reply["applied"]
    assert sor.write_log == [b"new"]
    sor.freeze()
    reply = call(cell, channel, "Write", {"key": b"other", "value": b"v"})
    assert not reply["applied"]
    assert reply["reason"] == "sealed"
