"""Unit tests for the system-of-record substrate."""


from repro.core import Cell, CellSpec, ReplicationMode
from repro.rpc import Principal, connect as rpc_connect
from repro.storage import StorageCostModel, SystemOfRecord


def build_sor(num_keys=10, **cost_kwargs):
    cell = Cell(CellSpec(mode=ReplicationMode.R1, num_shards=1,
                         transport="pony"))
    host = cell.fabric.add_host("host/sor")
    cost = StorageCostModel(**cost_kwargs) if cost_kwargs else None
    sor = SystemOfRecord(cell.sim, host, cost=cost)
    sor.ingest({b"k-%03d" % i: b"v-%d" % i for i in range(num_keys)})
    return cell, sor


def channel_for(cell, sor):
    host = cell.fabric.add_host("host/app-driver")
    return rpc_connect(cell.sim, cell.fabric, host, sor.rpc_server,
                       Principal("app"))


def call(cell, channel, method, payload):
    def caller():
        return (yield from channel.call(method, payload, deadline=10.0))
    return cell.sim.run(until=cell.sim.process(caller()))


def test_ingest_and_len():
    _cell, sor = build_sor(7)
    assert len(sor) == 7
    assert not sor.sealed


def test_ingest_overwrites_before_seal():
    cell, sor = build_sor(2)
    sor.ingest({b"k-000": b"updated"})
    assert len(sor) == 2
    channel = channel_for(cell, sor)
    reply = call(cell, channel, "Read", {"key": b"k-000"})
    assert reply["value"] == b"updated"


def test_scan_pagination_covers_corpus():
    cell, sor = build_sor(25)
    sor.seal()
    channel = channel_for(cell, sor)
    seen = []
    cursor = 0
    pages = 0
    while True:
        reply = call(cell, channel, "Scan", {"cursor": cursor, "limit": 10})
        seen.extend(k for k, _v in reply["entries"])
        cursor = reply["next_cursor"]
        pages += 1
        if reply["done"]:
            break
    assert pages == 3
    assert len(seen) == 25
    assert len(set(seen)) == 25


def test_scan_empty_tail():
    cell, sor = build_sor(5)
    channel = channel_for(cell, sor)
    reply = call(cell, channel, "Scan", {"cursor": 5, "limit": 10})
    assert reply["entries"] == []
    assert reply["done"]


def test_media_channels_serialize_access():
    cell, sor = build_sor(4, media_latency=1e-3, media_channels=1,
                          bytes_per_sec=1e9, cpu_per_read=1e-6)
    channel = channel_for(cell, sor)

    def burst():
        procs = [cell.sim.process(
            channel.call("Read", {"key": b"k-%03d" % i}))
            for i in range(4)]
        start = cell.sim.now
        yield cell.sim.all_of(procs)
        return cell.sim.now - start

    elapsed = cell.sim.run(until=cell.sim.process(burst()))
    # Four reads through one media channel at 1ms each: >= 4ms total.
    assert elapsed >= 4e-3


def test_parallel_media_channels_overlap():
    cell, sor = build_sor(4, media_latency=1e-3, media_channels=4,
                          bytes_per_sec=1e9, cpu_per_read=1e-6)
    channel = channel_for(cell, sor)

    def burst():
        procs = [cell.sim.process(
            channel.call("Read", {"key": b"k-%03d" % i}))
            for i in range(4)]
        start = cell.sim.now
        yield cell.sim.all_of(procs)
        return cell.sim.now - start

    elapsed = cell.sim.run(until=cell.sim.process(burst()))
    assert elapsed < 3e-3  # all four overlap on distinct channels
