"""Unit tests for repro.observe.slo: burn-rate math and alert logic."""

import pytest

from repro.observe import (BurnWindow, MetricTerm, SloEngine, SloObjective,
                           default_objectives)
from repro.telemetry import MetricsRegistry, Scraper

OPS = "cliquemap_probe_ops_total"


def _objective(target=0.9, factor=2.0, min_events=10.0,
               long_window=4.0, short_window=1.0):
    return SloObjective(
        name="availability", cell="cell", target=target,
        good=MetricTerm(OPS, {"cell": "cell", "result": "ok"}),
        total=MetricTerm(OPS, {"cell": "cell"}),
        windows=[BurnWindow(long_window, short_window, factor)],
        min_events=min_events)


class Feed:
    """Drives a registry + scraper with explicit ok/error deltas."""

    def __init__(self, **scraper_kwargs):
        self.registry = MetricsRegistry()
        family = self.registry.counter(OPS)
        self.ok = family.labels(cell="cell", result="ok")
        self.error = family.labels(cell="cell", result="error")
        self.scraper = Scraper(self.registry, **scraper_kwargs)
        self.t = 0.0

    def step(self, ok=0, error=0, dt=1.0):
        if ok:
            self.ok.inc(ok)
        if error:
            self.error.inc(error)
        self.t += dt
        self.scraper.scrape(self.t)
        return self.t


def test_burn_rate_math():
    feed = Feed()
    obj = _objective(target=0.9)     # 10% error budget
    feed.step(ok=8, error=2)         # 20% errors -> burn 2.0
    burn, events = obj.burn_rate(feed.scraper, window=4.0, at=feed.t)
    assert burn == pytest.approx(2.0)
    assert events == 10.0
    # No events in window -> burn 0, not a division error.
    burn, events = obj.burn_rate(feed.scraper, window=0.001, at=feed.t + 50)
    assert (burn, events) == (0.0, 0.0)


def test_fires_only_when_both_windows_burn():
    # Long window 4s, short 1s. An old burst that has left the short
    # window must not fire even though the long window still burns.
    feed = Feed()
    engine = SloEngine(feed.scraper, [_objective()])
    feed.step(ok=5, error=5)         # t=1: hot burst
    feed.step(ok=10)                 # t=2: recovered
    feed.step(ok=10)                 # t=3
    engine.evaluate(feed.t)
    assert engine.fired() == []      # long burns, short does not

    # A burst inside both windows fires.
    feed.step(error=10)              # t=4: actively failing
    engine.evaluate(feed.t)
    (event,) = engine.fired()
    assert (event.objective, event.cell) == ("availability", "cell")
    assert event.at == feed.t
    assert event.burn_short >= 2.0 and event.burn_long >= 2.0


def test_min_events_guard_suppresses_noise():
    feed = Feed()
    engine = SloEngine(feed.scraper, [_objective(min_events=10.0)])
    feed.step(error=3)               # 100% errors but only 3 events
    engine.evaluate(feed.t)
    assert engine.fired() == []
    feed.step(error=7)               # now 10 events in the long window
    engine.evaluate(feed.t)
    assert len(engine.fired()) == 1


def test_fire_resolve_dedupe_transitions():
    feed = Feed()
    engine = SloEngine(feed.scraper, [_objective()], registry=feed.registry)
    engine.attach()                  # evaluates on every scrape from here
    feed.step(error=10)              # fire
    feed.step(error=10)              # still firing: no duplicate event
    assert len(engine.fired()) == 1 and len(engine.active) == 1
    for _ in range(6):               # recover until both windows clear
        feed.step(ok=10)
    kinds = [e.kind for e in engine.events]
    assert kinds == ["fire", "resolve"]
    assert engine.active == {}
    feed.step(error=30)              # a second incident fires again
    assert len(engine.fired()) == 2
    assert feed.registry.value("cliquemap_slo_alerts_total", cell="cell",
                               objective="availability",
                               severity="page") == 2.0


def test_alert_event_to_dict_and_engine_to_dict():
    feed = Feed()
    engine = SloEngine(feed.scraper, [_objective()]).attach()
    feed.step(error=10)
    doc = engine.to_dict()
    assert doc["evaluations"] == 1
    assert doc["active"] == ["availability/cell/page"]
    (event,) = doc["events"]
    assert event["kind"] == "fire"
    assert event["at"] == 1.0
    assert event["long_window"] == 4.0 and event["short_window"] == 1.0
    assert event["factor"] == 2.0


def test_validation_errors():
    with pytest.raises(ValueError):
        SloEngine(Feed().scraper, [_objective(target=1.0)])
    with pytest.raises(ValueError):
        SloEngine(Feed().scraper, [_objective(target=0.0)])
    with pytest.raises(ValueError):
        BurnWindow(long_window=1.0, short_window=2.0, factor=1.0).validate()
    with pytest.raises(ValueError):
        BurnWindow(long_window=2.0, short_window=1.0, factor=0.0).validate()
    bare = _objective()
    bare.windows = []
    with pytest.raises(ValueError):
        bare.validate()


def test_default_objectives_shape():
    objectives = default_objectives("cell-a")
    assert [o.name for o in objectives] == ["availability", "latency"]
    for o in objectives:
        o.validate()
        assert o.cell == "cell-a"
        assert o.total.labels == {"cell": "cell-a"}
    availability, latency = objectives
    assert availability.good.labels["result"] == "ok"
    assert latency.good.labels["class"] == "fast"
    assert latency.good.name == "cliquemap_probe_latency_class_total"
