"""Edge-case tests for the simulation kernel and condition events."""

import pytest

from repro.sim import Interrupt, SimulationError, Simulator


def test_all_of_empty_succeeds_immediately():
    sim = Simulator()
    got = []

    def proc():
        values = yield sim.all_of([])
        got.append(values)

    sim.process(proc())
    sim.run()
    assert got == [[]]


def test_all_of_with_pre_triggered_children():
    sim = Simulator()
    a = sim.event()
    a.succeed("early")
    got = []

    def proc():
        b = sim.timeout(1.0, "late")
        values = yield sim.all_of([a, b])
        got.append(values)

    sim.process(proc())
    sim.run()
    assert got == [["early", "late"]]


def test_all_of_failure_propagates_first_error():
    sim = Simulator()
    caught = []

    def failing():
        yield sim.timeout(1.0)
        raise RuntimeError("child died")

    def proc():
        try:
            yield sim.all_of([sim.process(failing()), sim.timeout(5.0)])
        except RuntimeError as exc:
            caught.append(str(exc))

    sim.process(proc())
    sim.run()
    assert caught == ["child died"]


def test_any_of_with_pre_triggered_child_wins():
    sim = Simulator()
    a = sim.event()
    a.succeed("instant")
    got = []

    def proc():
        event, value = yield sim.any_of([a, sim.timeout(10.0)])
        got.append(value)

    sim.process(proc())
    sim.run()
    assert got == ["instant"]


def test_nested_conditions():
    sim = Simulator()
    got = []

    def proc():
        inner = sim.all_of([sim.timeout(1.0, "a"), sim.timeout(2.0, "b")])
        _event, value = yield sim.any_of([inner, sim.timeout(10.0)])
        got.append((sim.now, value))

    sim.process(proc())
    sim.run()
    assert got == [(2.0, ["a", "b"])]


def test_run_until_past_time_rejected():
    sim = Simulator()
    sim.call_in(5.0, lambda: None)
    sim.run()
    assert sim.now == 5.0
    with pytest.raises(SimulationError):
        sim.run(until=1.0)


def test_run_until_untriggered_event_raises():
    sim = Simulator()
    never = sim.event()
    with pytest.raises(SimulationError):
        sim.run(until=never)


def test_event_fail_requires_exception():
    sim = Simulator()
    ev = sim.event()
    with pytest.raises(SimulationError):
        ev.fail("not an exception")


def test_event_value_before_trigger_raises():
    sim = Simulator()
    ev = sim.event()
    with pytest.raises(SimulationError):
        _ = ev.value
    with pytest.raises(SimulationError):
        _ = ev.ok


def test_interrupt_cause_roundtrip():
    sim = Simulator()
    causes = []

    def sleeper():
        try:
            yield sim.timeout(100.0)
        except Interrupt as intr:
            causes.append(intr.cause)

    proc = sim.process(sleeper())
    sim.call_in(1.0, proc.interrupt, {"reason": "shutdown"})
    sim.run()
    assert causes == [{"reason": "shutdown"}]


def test_double_interrupt_delivers_once_then_noop():
    sim = Simulator()
    hits = []

    def sleeper():
        try:
            yield sim.timeout(100.0)
        except Interrupt:
            hits.append("first")
        # Second interrupt arrives while we are not waiting on anything
        # interruptible anymore; process simply finishes.
        return "done"

    proc = sim.process(sleeper())
    sim.call_in(1.0, proc.interrupt)
    sim.call_in(1.0, proc.interrupt)
    proc.defused = True
    sim.run()
    assert hits == ["first"]


def test_process_name_from_generator():
    sim = Simulator()

    def my_named_proc():
        yield sim.timeout(0)

    proc = sim.process(my_named_proc(), name="explicit")
    assert proc.name == "explicit"
    sim.run()


def test_simultaneous_events_fifo():
    sim = Simulator()
    order = []
    for tag in range(5):
        sim.call_in(1.0, order.append, tag)
    sim.run()
    assert order == [0, 1, 2, 3, 4]


def test_process_chain_return_values():
    sim = Simulator()

    def level3():
        yield sim.timeout(1.0)
        return 3

    def level2():
        value = yield sim.process(level3())
        return value * 2

    def level1():
        value = yield sim.process(level2())
        return value + 1

    assert sim.run(until=sim.process(level1())) == 7
