"""Unit tests for repro.telemetry: metrics registry and span tracing."""

import math

import pytest

from repro.analysis import LatencyRecorder
from repro.sim import percentile
from repro.telemetry import (NULL_SPAN, MetricsRegistry, Span, TraceContext,
                             Tracer)
from repro.telemetry.metrics import OVERFLOW_LABEL


# -- registry -----------------------------------------------------------------

def test_counter_series_and_totals():
    reg = MetricsRegistry()
    ops = reg.counter("ops_total", "operations")
    ops.labels(op="get", status="hit").inc()
    ops.labels(op="get", status="hit").inc(2)
    ops.labels(op="get", status="miss").inc()
    ops.labels(op="set", status="applied").inc()
    assert reg.value("ops_total", op="get", status="hit") == 3.0
    assert reg.total("ops_total", op="get") == 4.0
    assert reg.total("ops_total") == 5.0
    # Missing series/labels read as nan / 0 respectively.
    assert math.isnan(reg.value("ops_total", op="erase"))
    assert reg.total("ops_total", op="erase") == 0.0


def test_counter_rejects_negative_and_kind_mismatch():
    reg = MetricsRegistry()
    counter = reg.counter("c").labels()
    with pytest.raises(ValueError):
        counter.inc(-1)
    with pytest.raises(ValueError):
        reg.gauge("c")


def test_gauge_set_add_remove():
    reg = MetricsRegistry()
    pending = reg.gauge("pending")
    pending.labels(client=1).set(5)
    pending.labels(client=1).add(-2)
    assert reg.value("pending", client=1) == 3.0
    assert pending.remove(client=1)
    assert not pending.remove(client=1)
    assert math.isnan(reg.value("pending", client=1))


def test_histogram_percentiles_agree_with_analysis_stats():
    """Registry histograms and LatencyRecorder use the same nearest-rank
    percentile definition (repro.sim.percentile): identical samples must
    report identical numbers."""
    samples = [((i * 37) % 100) / 10.0 for i in range(1, 101)]
    reg = MetricsRegistry()
    hist = reg.histogram("lat").labels(op="get")
    rec = LatencyRecorder()
    for s in samples:
        hist.observe(s)
        rec.record(s)
    for p in (50, 90, 99, 99.9):
        assert hist.percentile(p) == rec.percentile(p)
        assert hist.percentile(p) == percentile(sorted(samples), p)
    assert hist.mean() == pytest.approx(rec.mean())
    assert hist.count == rec.count == 100


def test_histogram_windowed_percentile_and_empty():
    reg = MetricsRegistry()
    hist = reg.histogram("lat").labels()
    assert math.isnan(hist.percentile(50))
    assert math.isnan(hist.mean())
    for v in [1.0, 2.0, 3.0]:
        hist.observe(v)
    checkpoint = hist.count
    for v in [10.0, 20.0, 30.0]:
        hist.observe(v)
    # start= skips samples recorded before the checkpoint.
    assert hist.percentile(50, start=checkpoint) == 20.0
    assert hist.percentile(50) == 3.0
    assert math.isnan(hist.percentile(50, start=hist.count))


def test_label_cardinality_cap_overflows():
    reg = MetricsRegistry(max_series_per_metric=4)
    fam = reg.counter("wide")
    for i in range(10):
        fam.labels(key=i).inc()
    # 4 real series plus one shared overflow series.
    assert fam.series_count == 5
    assert fam.dropped_series == 6
    assert reg.value("wide", **{OVERFLOW_LABEL: "true"}) == 6.0
    # Existing series keep working past the cap.
    fam.labels(key=0).inc()
    assert reg.value("wide", key=0) == 2.0


def test_snapshot_shape():
    reg = MetricsRegistry()
    reg.counter("ops", "help text").labels(op="get").inc()
    reg.histogram("lat").labels(op="get").observe(1.5)
    snap = reg.snapshot()
    assert snap["ops"]["kind"] == "counter"
    assert snap["ops"]["help"] == "help text"
    assert snap["ops"]["series"][0] == {"labels": {"op": "get"},
                                        "value": 1.0}
    hist = snap["lat"]["series"][0]
    assert hist["count"] == 1 and hist["p50"] == 1.5
    assert reg.families() == ["lat", "ops"]


def test_merged_samples_across_series():
    reg = MetricsRegistry()
    fam = reg.histogram("lat")
    fam.labels(op="get", strategy="scar").observe(1.0)
    fam.labels(op="get", strategy="rpc").observe(2.0)
    fam.labels(op="set", strategy="rpc").observe(9.0)
    assert sorted(reg.merged_samples("lat", op="get")) == [1.0, 2.0]
    assert len(reg.histogram_series("lat", op="get")) == 2


# -- spans --------------------------------------------------------------------

class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def test_span_nesting_and_durations():
    clock = FakeClock()
    root = Span("get", clock)
    clock.now = 1.0
    child = root.child("index", attempt=1)
    clock.now = 3.0
    grand = child.child("transport.read")
    clock.now = 4.0
    grand.finish()
    child.finish()
    clock.now = 5.0
    root.finish()
    assert root.duration == 5.0
    assert child.start == 1.0 and child.duration == 3.0
    assert grand.duration == 1.0
    assert [(d, s.name) for d, s in root.walk()] == [
        (0, "get"), (1, "index"), (2, "transport.read")]
    assert root.find("transport.read") is grand
    assert root.find_all("index") == [child]
    rendered = root.render()
    assert "index" in rendered and "transport.read" in rendered


def test_span_finish_is_idempotent_and_annotate():
    clock = FakeClock()
    span = Span("op", clock)
    clock.now = 2.0
    span.finish()
    clock.now = 9.0
    span.finish()  # first finish wins
    assert span.end == 2.0
    span.annotate(status="hit")
    assert span.labels["status"] == "hit"
    d = span.to_dict()
    assert d["name"] == "op" and d["duration"] == 2.0


def test_null_span_is_a_sink():
    assert not NULL_SPAN
    assert NULL_SPAN.child("x", a=1) is NULL_SPAN
    assert NULL_SPAN.finish() is NULL_SPAN
    assert NULL_SPAN.find("x") is None
    assert list(NULL_SPAN.walk()) == []
    # adopt() passes real spans through untouched.
    real = Span("s", FakeClock())
    assert NULL_SPAN.adopt(real) is real
    # The `trace or NULL_SPAN` idiom resolves to the sink for None too.
    assert (None or NULL_SPAN) is NULL_SPAN


def test_tracer_retention_and_disable():
    clock = FakeClock()
    tracer = Tracer(clock, max_retained=3)
    spans = [tracer.start("op", i=i).finish() for i in range(5)]
    for s in spans:
        tracer.record(s)
    assert len(tracer.finished) == 3
    assert tracer.last() is spans[-1]
    assert tracer.started == 5
    off = Tracer(clock, enabled=False)
    assert off.start("op") is NULL_SPAN
    off.record(NULL_SPAN)  # no-op, not retained
    assert off.last() is None


def test_trace_context_delegates_to_root():
    clock = FakeClock()
    root = Span("get", clock)
    ctx = TraceContext(root)
    child = ctx.child("index")
    clock.now = 1.0
    ctx.finish()
    assert root.finished
    assert root.children == [child]
    assert "index" in ctx.render()


# -- histogram reservoir cap --------------------------------------------------

def test_histogram_exact_below_cap():
    reg = MetricsRegistry(histogram_sample_cap=100)
    h = reg.histogram("lat").labels(op="get")
    samples = [float(i) for i in range(100)]
    for v in samples:
        h.observe(v)
    assert not h.saturated
    assert h.count == 100
    assert h.sum == sum(samples)
    assert h.percentile(50) == percentile(samples, 50)
    assert h.values == tuple(samples)


def test_histogram_reservoir_above_cap_keeps_count_and_sum_exact():
    reg = MetricsRegistry(histogram_sample_cap=64)
    h = reg.histogram("lat").labels(op="get")
    n = 10_000
    for i in range(n):
        h.observe(float(i))
    assert h.saturated
    assert h.count == n
    assert h.sum == pytest.approx(sum(range(n)))
    assert h.mean() == pytest.approx((n - 1) / 2, rel=0.0)
    # The reservoir is a uniform sample: bounded size, values from the
    # observed stream, and a roughly central median (loose sanity bound,
    # deterministic because the seed is fixed).
    assert len(h.values) == 64
    assert all(0 <= v < n for v in h.values)
    assert n * 0.2 <= h.percentile(50) <= n * 0.8


def test_histogram_reservoir_is_deterministic_per_series():
    def build():
        reg = MetricsRegistry(histogram_sample_cap=32)
        fam = reg.histogram("lat")
        a, b = fam.labels(op="get"), fam.labels(op="set")
        for i in range(500):
            a.observe(float(i))
            b.observe(float(i))
        return a, b

    a1, b1 = build()
    a2, b2 = build()
    # Identical runs keep identical reservoirs (seeded from family name
    # + labels, not from hash() or global random state)...
    assert a1.values == a2.values
    assert b1.values == b2.values
    # ...while differently-labeled series sample differently.
    assert a1.values != b1.values


def test_histogram_reset_clears_reservoir_state():
    reg = MetricsRegistry(histogram_sample_cap=8)
    h = reg.histogram("lat").labels()
    for i in range(100):
        h.observe(float(i))
    assert h.saturated
    h.reset()
    assert h.count == 0 and not h.saturated
    assert math.isnan(h.mean())
    h.observe(5.0)
    assert h.sum == 5.0 and not h.saturated


def test_histogram_sample_cap_per_family_override():
    reg = MetricsRegistry(histogram_sample_cap=1000)
    small = reg.histogram("small", sample_cap=4).labels()
    large = reg.histogram("large").labels()
    for i in range(10):
        small.observe(float(i))
        large.observe(float(i))
    assert small.saturated and len(small.values) == 4
    assert not large.saturated and len(large.values) == 10
    with pytest.raises(ValueError):
        reg.histogram("bad", sample_cap=0).labels()
