"""Unit tests for the client degradation policy primitives."""

import pytest

from repro.core import (BackendHealth, BackoffPolicy, CliqueMapError,
                        ClientConfig, HealthPolicy, RepairConfig, RetryBudget)
from repro.sim import RandomStream


class Clock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


# ----------------------------------------------------------------------
# BackoffPolicy
# ----------------------------------------------------------------------

def test_backoff_delays_grow_and_cap():
    policy = BackoffPolicy(base=10e-6, cap=1e-3,
                           rand=RandomStream(1, "backoff"))
    delays = [policy.next_delay() for _ in range(50)]
    assert all(10e-6 <= d <= 1e-3 for d in delays)
    assert max(delays) > 10e-6          # it actually escalated
    assert len(set(delays)) > 1         # and jittered


def test_backoff_zero_base_is_disabled_and_draws_no_randomness():
    rand = RandomStream(1, "backoff")
    before = rand.uniform(0, 1)
    rand = RandomStream(1, "backoff")
    policy = BackoffPolicy(base=0.0, cap=1e-3, rand=rand)
    assert policy.next_delay() == 0.0
    assert policy.next_delay() == 0.0
    # The stream was left untouched: same next draw as a fresh stream.
    assert rand.uniform(0, 1) == before


def test_backoff_reset_restarts_escalation():
    rand = RandomStream(3, "backoff")
    policy = BackoffPolicy(base=10e-6, cap=1e-3, rand=rand)
    for _ in range(20):
        policy.next_delay()
    policy.reset()
    assert policy.next_delay() <= 3 * 10e-6


def test_backoff_same_seed_same_delays():
    a = BackoffPolicy(10e-6, 1e-3, RandomStream(9, "b"))
    b = BackoffPolicy(10e-6, 1e-3, RandomStream(9, "b"))
    assert [a.next_delay() for _ in range(10)] == \
        [b.next_delay() for _ in range(10)]


# ----------------------------------------------------------------------
# RetryBudget
# ----------------------------------------------------------------------

def test_budget_spends_then_sheds():
    clock = Clock()
    budget = RetryBudget(clock, capacity=3, fill_rate=0.0)
    assert [budget.try_spend() for _ in range(5)] == \
        [True, True, True, False, False]
    assert budget.spent == 3
    assert budget.shed == 2


def test_budget_refills_over_time():
    clock = Clock()
    budget = RetryBudget(clock, capacity=10, fill_rate=2.0)
    for _ in range(10):
        assert budget.try_spend()
    assert not budget.try_spend()
    clock.now += 1.0                    # 2 tokens back
    assert budget.try_spend()
    assert budget.try_spend()
    assert not budget.try_spend()


def test_budget_refill_caps_at_capacity():
    clock = Clock()
    budget = RetryBudget(clock, capacity=4, fill_rate=100.0)
    clock.now += 60.0
    assert budget.tokens() == 4


def test_budget_nonpositive_capacity_is_unlimited():
    budget = RetryBudget(Clock(), capacity=0, fill_rate=0.0)
    assert budget.unlimited
    assert all(budget.try_spend() for _ in range(1000))
    assert budget.shed == 0


# ----------------------------------------------------------------------
# BackendHealth / HealthPolicy
# ----------------------------------------------------------------------

def test_health_quarantines_after_consecutive_failures():
    clock = Clock()
    events = []
    health = BackendHealth("backend-0", clock,
                           HealthPolicy(failure_threshold=3),
                           on_event=lambda t, e: events.append((t, e)))
    health.mark_connected()
    assert health.available()
    health.record_failure()
    health.record_failure()
    assert not health.quarantined
    health.record_failure()
    assert health.quarantined
    assert not health.available()
    assert events == [("backend-0", "enter")]


def test_health_quarantine_expires_on_cooldown():
    clock = Clock()
    policy = HealthPolicy(failure_threshold=1, quarantine_base=25e-3)
    health = BackendHealth("backend-0", clock, policy)
    health.mark_connected()
    health.record_failure()
    assert health.quarantined
    clock.now += 25e-3
    assert not health.quarantined       # lazy exit on the clock
    assert health.available()


def test_health_reset_for_new_incarnation_clears_quarantine():
    clock = Clock()
    events = []
    policy = HealthPolicy(failure_threshold=1, quarantine_base=10e-3,
                          quarantine_max=80e-3, quarantine_backoff=2.0)
    health = BackendHealth("backend-0", clock, policy,
                           on_event=lambda t, e: events.append((t, e)))
    health.mark_connected()
    health.record_failure()
    assert health.quarantined
    # The task restarts: the old process's record dies with it. The new
    # incarnation starts with a clean scoreboard and the base cooldown.
    health.reset_for_new_incarnation()
    assert not health.quarantined
    assert health.consecutive_failures == 0
    assert events == [("backend-0", "enter"), ("backend-0", "exit")]
    health.record_failure()
    clock.now += 10e-3                  # base cooldown, not the escalated one
    assert not health.quarantined


def test_restarted_backend_is_readmitted_despite_quarantine():
    """A crashed task's quarantine must not outlive the process: after a
    restart + recovery, a second fault elsewhere stays a single failure."""
    from repro.core import (Cell, CellSpec, GetStatus, LookupStrategy,
                            RepairConfig, ReplicationMode)
    from repro.core.repair import RepairScanner

    cell = Cell(CellSpec(mode=ReplicationMode.R3_2, num_shards=3,
                         transport="pony",
                         repair_config=RepairConfig(enabled=False)))
    client = cell.connect_client(strategy=LookupStrategy.TWO_R)

    def driver():
        yield from client.set(b"k", b"v")
        cell.backend_by_task("backend-0").crash()
        # Enough failed legs to trip (and escalate) backend-0 quarantine.
        for _ in range(6):
            yield from client.set(b"k", b"v")
        cell.restart_backend_task("backend-0", shard=0)
        recovery = RepairScanner(cell.sim, cell,
                                 cell.backend_by_task("backend-0"))
        yield from recovery.restart_recovery()
        yield cell.sim.timeout(10e-3)
        yield from recovery.scan_once()
        # Second, non-overlapping fault: R=3.2 must still serve.
        cell.backend_by_task("backend-2").crash()
        result = yield from client.get(b"k")
        assert result.status is GetStatus.HIT, result

    cell.sim.run(until=cell.sim.process(driver()))


def test_health_cooldown_escalates_and_resets_on_success():
    clock = Clock()
    policy = HealthPolicy(failure_threshold=1, quarantine_base=10e-3,
                          quarantine_max=80e-3, quarantine_backoff=2.0)
    health = BackendHealth("backend-0", clock, policy)
    health.mark_connected()

    health.record_failure()             # cooldown 10ms, next 20ms
    clock.now += 10e-3
    assert not health.quarantined
    health.record_failure()             # cooldown 20ms
    clock.now += 10e-3
    assert health.quarantined           # still inside the escalated window
    clock.now += 10e-3
    assert not health.quarantined

    health.record_success()             # resets cooldown to base
    health.record_failure()
    clock.now += 10e-3
    assert not health.quarantined


def test_health_success_exits_quarantine_immediately():
    clock = Clock()
    events = []
    health = BackendHealth("backend-0", clock,
                           HealthPolicy(failure_threshold=1),
                           on_event=lambda t, e: events.append(e))
    health.mark_connected()
    health.record_failure()
    assert health.quarantined
    health.record_success()
    assert not health.quarantined
    assert events == ["enter", "exit"]


def test_health_mark_down_counts_as_failure_and_disconnects():
    health = BackendHealth("backend-0", Clock(),
                           HealthPolicy(failure_threshold=2))
    health.mark_connected()
    health.mark_down()
    assert not health.connected
    assert not health.available()
    health.mark_down()
    assert health.quarantined


def test_health_handshake_does_not_clear_quarantine():
    health = BackendHealth("backend-0", Clock(),
                           HealthPolicy(failure_threshold=1))
    health.mark_connected()
    health.record_failure()
    assert health.quarantined
    health.mark_connected()             # RPC channel works again...
    assert health.connected
    assert health.quarantined           # ...but the data path is unproven
    assert not health.available()


def test_health_policy_validation():
    with pytest.raises(CliqueMapError):
        HealthPolicy(failure_threshold=0)
    with pytest.raises(CliqueMapError):
        HealthPolicy(quarantine_base=0.0)
    with pytest.raises(CliqueMapError):
        HealthPolicy(quarantine_base=1.0, quarantine_max=0.5)
    with pytest.raises(CliqueMapError):
        HealthPolicy(quarantine_backoff=0.5)


# ----------------------------------------------------------------------
# Config validation (satellite: fail at construction, not mid-run)
# ----------------------------------------------------------------------

@pytest.mark.parametrize("kwargs", [
    {"default_deadline": 0.0},
    {"default_deadline": -1.0},
    {"mutation_rpc_deadline": 0.0},
    {"touch_flush_interval": 0.0},
    {"reconnect_interval": 0.0},
    {"max_retries": 0},
    {"retry_backoff": -1e-6},
    {"retry_backoff": 5e-3, "retry_backoff_cap": 1e-3},
    {"retry_budget_fill_rate": -1.0},
    {"touch_batch_max": 0},
    {"compression_min_bytes": -1},
])
def test_client_config_rejects_bad_values(kwargs):
    with pytest.raises(CliqueMapError):
        ClientConfig(**kwargs)


def test_client_config_defaults_are_valid():
    config = ClientConfig()
    assert config.max_retries >= 1
    assert config.retry_backoff_cap >= config.retry_backoff


@pytest.mark.parametrize("kwargs", [
    {"scan_interval": 0.0},
    {"scan_interval": -1.0},
    {"rpc_deadline": 0.0},
    {"batch_size": 0},
])
def test_repair_config_rejects_bad_values(kwargs):
    with pytest.raises(CliqueMapError):
        RepairConfig(**kwargs)


def test_repair_config_defaults_are_valid():
    RepairConfig()
    RepairConfig(enabled=True)
