"""Unit tests for PR 10's observability substrate: reparent-on-close
tracer semantics, deterministic distributed ids, tail sampling, the
flight recorder, histogram exemplars, the cross-zone trace stitcher,
the bench-trajectory tracker, and postmortem bundles."""

import json
import math

# NB: pytest collects ``bench_*`` callables (pyproject python_functions),
# so the bench-history helper is imported under an underscored alias.
from repro.analysis import bench_rows as _bench_rows
from repro.analysis import (filter_traces, load_bench_files, perf_history,
                            render_history, stitch_traces,
                            stitched_chrome_trace,
                            write_stitched_chrome_trace)
from repro.observe.postmortem import find_bundles, write_postmortem_bundle
from repro.telemetry import (NULL_FLIGHT, FlightRecorder, MetricsRegistry,
                             Tracer)
from repro.telemetry.export import prometheus_text
from repro.telemetry.trace import NULL_SPAN


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


# -- reparent-on-close (the PR's tracer bug fix) ------------------------------

def test_late_finishing_child_is_hoisted_not_orphaned():
    """Regression: a phase closing while a child leg is still in flight
    used to freeze the child inside the closed phase (or drop it from
    accounting). Now the open child is hoisted to the nearest open
    ancestor and labelled with its provenance."""
    clock = FakeClock()
    tracer = Tracer(clock)
    root = tracer.start("get")
    phase = root.child("index")
    late = phase.child("transport.read", task="backend-2")
    clock.now = 1.0
    phase.finish()                       # quorum met; leg still in flight
    assert late.parent is root
    assert late in root.children
    assert late not in phase.children
    assert late.labels["hoisted_from"] == "index"
    clock.now = 2.0
    late.finish()
    root.finish()
    # The retry interleaving from the bug report: nothing lost, the
    # whole tree is finished, the leg's true extent is preserved.
    assert late.end == 2.0
    assert all(s.finished for _d, s in root.walk())


def test_child_of_closed_span_attaches_to_open_ancestor():
    clock = FakeClock()
    tracer = Tracer(clock)
    root = tracer.start("get")
    phase = root.child("index")
    phase.finish()
    late = phase.child("retry.read")     # a retry races the phase close
    assert late.parent is root
    assert late.labels["late_child_of"] == "index"


def test_closing_root_clips_open_descendants():
    clock = FakeClock()
    tracer = Tracer(clock)
    root = tracer.start("get")
    leg = root.child("index").child("transport.read")
    clock.now = 3.0
    root.finish()
    assert leg.finished and leg.end == 3.0
    assert leg.labels["clipped_by"] in ("index", "get")
    assert all(s.finished for _d, s in root.walk())


# -- deterministic distributed ids --------------------------------------------

def test_trace_ids_are_deterministic_per_seed_and_namespace():
    clock = FakeClock()
    a1 = Tracer(clock, seed=7, namespace="cell/dc-a")
    a2 = Tracer(clock, seed=7, namespace="cell/dc-a")
    b = Tracer(clock, seed=7, namespace="cell/dc-b")
    ids_a1 = [a1.start("op").trace_id for _ in range(5)]
    ids_a2 = [a2.start("op").trace_id for _ in range(5)]
    ids_b = [b.start("op").trace_id for _ in range(5)]
    assert ids_a1 == ids_a2                      # reproducible
    assert set(ids_a1).isdisjoint(ids_b)         # zone streams disjoint
    assert all(len(t) == 16 for t in ids_a1)     # 64-bit hex


def test_remote_parent_joins_the_originating_trace():
    clock = FakeClock()
    origin = Tracer(clock, seed=1, namespace="dc-a")
    serve = Tracer(clock, seed=1, namespace="dc-b")
    call = origin.start("fed.get").child("wan.call")
    ref = call.ref("dc-a")
    root = serve.start("wan.serve", remote_parent=ref)
    assert root.trace_id == call.trace_id
    assert root.remote_parent == (call.trace_id, "dc-a", call.span_id)
    doc = root.to_dict()
    assert doc["remote_parent"] == [call.trace_id, "dc-a", call.span_id]


def test_tail_sampling_keeps_errors_slow_and_one_in_n():
    clock = FakeClock()
    tracer = Tracer(clock, max_retained=1000, tail_sample_every=10,
                    tail_slow_threshold=1.0)
    for i in range(100):
        span = tracer.start("get")
        if i == 3:
            span.annotate(status="timeout")
        if i == 7:
            clock.now += 2.0             # a slow op
        span.finish()
        tracer.record(span)
    statuses = [s.labels.get("status") for s in tracer.finished]
    assert "timeout" in statuses                         # error kept
    assert any(s.duration >= 1.0 for s in tracer.finished)   # slow kept
    kept = len(tracer.finished)
    assert kept + tracer.sampled_out == 100
    assert 10 <= kept <= 20              # ~1-in-10 plus the specials


# -- flight recorder ----------------------------------------------------------

def test_flight_recorder_ring_bound_and_queries():
    clock = FakeClock()
    flight = FlightRecorder(clock, capacity=8)
    for i in range(20):
        clock.now = float(i)
        flight.record("op" if i % 2 else "retry", origin=f"client-{i % 3}",
                      attempt=i)
    assert flight.recorded == 20
    assert len(flight) == 8              # ring dropped the oldest
    assert [e.fields["attempt"] for e in flight.events()] == list(range(12,
                                                                        20))
    assert all(e.kind == "retry" for e in flight.events(kind="retry"))
    assert all(e.origin == "client-1" for e in
               flight.events(origin="client-1"))
    assert len(flight.events(last=3)) == 3
    assert all(e.t >= 15.0 for e in flight.events(since=15.0))
    # seq is monotone across ring eviction.
    seqs = [e.seq for e in flight.events()]
    assert seqs == sorted(seqs)
    doc = flight.to_dicts(last=2)
    assert json.dumps(doc) and doc[-1]["fields"]["attempt"] == 19


def test_null_flight_is_falsy_noop():
    assert not NULL_FLIGHT
    NULL_FLIGHT.record("op", origin="x", y=1)
    assert len(NULL_FLIGHT) == 0 and NULL_FLIGHT.events() == []
    assert NULL_FLIGHT.to_dicts() == []
    assert not NULL_SPAN                 # same discipline as the tracer


# -- histogram exemplars ------------------------------------------------------

def test_exemplars_are_capped_and_never_reach_snapshot():
    reg = MetricsRegistry()
    hist = reg.histogram("cliquemap_get_latency_seconds").labels(op="get")
    for i in range(10):
        hist.observe(i * 1e-3)
        hist.exemplar(i * 1e-3, f"{i:016x}", float(i))
    assert len(hist.exemplars) <= 4
    assert hist.exemplars[-1][1] == f"{9:016x}"
    # The digest-critical invariant: snapshots are identical with and
    # without exemplars attached (three-arm determinism rests on this).
    bare = reg.histogram("bare").labels(op="get")
    for i in range(10):
        bare.observe(i * 1e-3)
    snap = reg.snapshot()
    assert "exemplar" not in json.dumps(snap)
    ours = snap["cliquemap_get_latency_seconds"]["series"][0]
    theirs = snap["bare"]["series"][0]
    assert ours["count"] == theirs["count"] == 10
    assert ours["sum"] == theirs["sum"]


def test_prometheus_text_emits_openmetrics_exemplar():
    reg = MetricsRegistry()
    hist = reg.histogram("cliquemap_get_latency_seconds").labels(op="get")
    hist.observe(2e-3)
    hist.exemplar(2e-3, "deadbeefdeadbeef", 0.5)
    text = prometheus_text(reg)
    count_lines = [ln for ln in text.splitlines() if "_count" in ln
                   and "#" in ln.split(" ", 1)[1]]
    assert count_lines, text
    line = count_lines[0]
    # OpenMetrics exemplar syntax: <line> # {labels} value timestamp
    metric_part, exemplar_part = line.split(" # ", 1)
    assert float(metric_part.split()[-1]) == 1.0
    assert exemplar_part.startswith('{trace_id="deadbeefdeadbeef"}')
    _labels, value, ts = exemplar_part.rsplit(" ", 2)
    assert math.isclose(float(value), 2e-3)
    assert math.isclose(float(ts), 0.5)


# -- stitcher -----------------------------------------------------------------

def _span(name, zone=None, trace_id="t1", span_id=1, start=0.0, end=1.0,
          labels=None, children=None, remote_parent=None):
    doc = {"name": name, "start": start, "end": end,
           "duration": end - start, "labels": labels or {},
           "trace_id": trace_id, "span_id": span_id,
           "parent_span_id": None, "children": children or []}
    if remote_parent is not None:
        doc["remote_parent"] = remote_parent
    return doc


def test_stitch_attaches_serve_root_under_origin_span():
    wan_call = _span("wan.call", span_id=2, start=0.2, end=0.9)
    origin_root = _span("fed.get", span_id=1, start=0.0, end=1.0,
                        children=[wan_call])
    serve_root = _span("wan.serve", span_id=1, start=0.4, end=0.7,
                       remote_parent=["t1", "dc-a", 2])
    traces = stitch_traces({"dc-a": [origin_root], "dc-b": [serve_root]})
    assert len(traces) == 1
    trace = traces[0]
    assert trace.cross_zone and trace.zones == ["dc-a", "dc-b"]
    assert not trace.orphans
    assert wan_call["children"] == [serve_root]
    assert serve_root["zone"] == "dc-b"
    assert trace.links == [(wan_call, serve_root)]


def test_stitch_keeps_unmatched_serve_roots_as_orphans():
    serve_root = _span("wan.serve", remote_parent=["t1", "dc-a", 99])
    traces = stitch_traces({"dc-b": [serve_root]})
    assert len(traces) == 1
    assert traces[0].orphans == [serve_root] and not traces[0].roots


def test_filter_traces_by_zone_op_latency_errors():
    fast = stitch_traces({"dc-a": [_span("fed.get", trace_id="a",
                                         end=0.001)]})
    slow = stitch_traces({"dc-b": [_span(
        "fed.set", trace_id="b", end=2.0,
        labels={"status": "timeout"})]})
    traces = fast + slow
    assert filter_traces(traces, zone="dc-b") == slow
    assert filter_traces(traces, op="fed.get") == fast
    assert filter_traces(traces, min_latency=1.0) == slow
    assert filter_traces(traces, errors_only=True) == slow
    assert filter_traces(traces, zone="dc-b", op="fed.get") == []


def test_stitched_chrome_trace_has_flow_arrows_and_valid_json(tmp_path):
    wan_call = _span("wan.call", span_id=2, start=0.2, end=0.9)
    origin_root = _span("fed.get", span_id=1, end=1.0,
                        children=[wan_call])
    serve_root = _span("wan.serve", span_id=1, start=0.4, end=0.7,
                       remote_parent=["t1", "dc-a", 2])
    traces = stitch_traces({"dc-a": [origin_root], "dc-b": [serve_root]})
    path = tmp_path / "stitched.json"
    write_stitched_chrome_trace(str(path), traces)
    doc = json.loads(path.read_text())   # valid JSON round-trip
    events = doc["traceEvents"]
    pids = {e["args"]["name"]: e["pid"] for e in events
            if e["ph"] == "M" and e["name"] == "process_name"}
    assert pids == {"zone dc-a": 1, "zone dc-b": 2}
    starts = [e for e in events if e["ph"] == "s"]
    finishes = [e for e in events if e["ph"] == "f"]
    assert len(starts) == len(finishes) == 1
    assert starts[0]["id"] == finishes[0]["id"]
    assert starts[0]["pid"] == 1 and finishes[0]["pid"] == 2
    assert finishes[0]["bp"] == "e"
    xs = {e["name"] for e in events if e["ph"] == "X"}
    assert {"fed.get", "wan.call", "wan.serve"} <= xs


# -- bench-trajectory tracker -------------------------------------------------

def test_bench_history_flags_metrics_under_their_floors(tmp_path):
    (tmp_path / "BENCH_kernel.json").write_text(json.dumps({
        "benchmark": "kernel", "floor_events_per_sec": 100.0,
        "new": {"events_per_sec": 250.0},
        "legacy": {"events_per_sec": 125.0}}))
    (tmp_path / "BENCH_readthrough.json").write_text(json.dumps({
        "benchmark": "readthrough_herd", "fetch_reduction": 5.0,
        "fetch_reduction_floor": 10.0,
        "coalesced": {"coalescing_ratio": 0.9}}))
    (tmp_path / "BENCH_garbage.json").write_text("{not json")
    rows = _bench_rows(load_bench_files(str(tmp_path)))
    by_key = {(r["benchmark"], r["metric"]): r for r in rows}
    kernel = by_key[("kernel", "events_per_sec")]
    assert kernel["ok"] and math.isclose(kernel["margin"], 2.5)
    speedup = by_key[("kernel", "speedup_vs_legacy")]
    assert math.isclose(speedup["value"], 2.0)
    herd = by_key[("readthrough_herd", "fetch_reduction")]
    assert not herd["ok"] and math.isclose(herd["margin"], 0.5)
    rendered = render_history(rows)
    assert "UNDER FLOOR" in rendered
    history = perf_history(str(tmp_path))
    assert len(history["regressions"]) == 1


def test_bench_history_empty_dir(tmp_path):
    history = perf_history(str(tmp_path))
    assert history["rows"] == [] and history["regressions"] == []
    assert "no BENCH_" in history["rendered"]


# -- postmortem bundles -------------------------------------------------------

def test_write_postmortem_bundle_shape(tmp_path):
    clock = FakeClock()
    flight = FlightRecorder(clock, capacity=16)
    flight.record("fault", origin="fault-injector", fault="partition")
    flight.record("alert", origin="slo/cell", event="fire")
    tracer = Tracer(clock, seed=3, namespace="pm")
    slow = tracer.start("get")
    clock.now = 1.0
    slow.annotate(status="timeout").finish()
    tracer.record(slow)
    bundle = write_postmortem_bundle(str(tmp_path), "SLO alert!",
                                     flight=flight, tracer=tracer,
                                     detail={"alerts_fired": 1})
    assert bundle.endswith("postmortem-slo-alert")
    assert find_bundles(str(tmp_path)) == [bundle]
    manifest = json.loads((tmp_path / "postmortem-slo-alert" /
                           "manifest.json").read_text())
    assert manifest["reason"] == "SLO alert!"
    assert manifest["detail"] == {"alerts_fired": 1}
    assert set(manifest["contents"]) == {"manifest.json", "flight.json",
                                         "flight.txt", "traces.json"}
    fl = json.loads((tmp_path / "postmortem-slo-alert" /
                     "flight.json").read_text())
    assert [e["kind"] for e in fl["events"]] == ["fault", "alert"]
    tr = json.loads((tmp_path / "postmortem-slo-alert" /
                     "traces.json").read_text())
    assert tr["traces"][0]["labels"]["status"] == "timeout"


def test_find_bundles_ignores_unrelated_dirs(tmp_path):
    (tmp_path / "postmortem-bogus").mkdir()      # no manifest inside
    (tmp_path / "other").mkdir()
    assert find_bundles(str(tmp_path)) == []
    assert find_bundles(str(tmp_path / "missing")) == []


def test_chrome_trace_doc_valid_json():
    doc = stitched_chrome_trace([])
    assert json.loads(json.dumps(doc)) == {"traceEvents": [],
                                           "displayTimeUnit": "ms"}
