"""Unit tests for client-side quorum evaluation (§5.1)."""

from repro.core.quorum import QuorumOutcome, ReplicaVote, evaluate
from repro.core.index import ParsedIndexEntry
from repro.core.version import VersionNumber


def entry(version_n):
    return ParsedIndexEntry(way=0, key_hash=b"h" * 16,
                            version=VersionNumber(version_n, 0, 0),
                            region_id=1, offset=0, size=64, valid=True)


def present(task, n):
    return ReplicaVote.present(task, entry(n))


def absent(task):
    return ReplicaVote.absent(task)


def error(task):
    return ReplicaVote.error(task)


def test_two_matching_present_votes_decide():
    decision = evaluate([present("a", 5), present("b", 5)], 3, 2)
    assert decision.outcome is QuorumOutcome.PRESENT
    assert decision.version == VersionNumber(5, 0, 0)
    assert set(decision.members) == {"a", "b"}
    assert not decision.unanimous


def test_three_matching_votes_are_unanimous():
    decision = evaluate([present("a", 5), present("b", 5), present("c", 5)],
                        3, 2)
    assert decision.outcome is QuorumOutcome.PRESENT
    assert decision.unanimous


def test_two_absent_votes_decide_miss():
    decision = evaluate([absent("a"), absent("b")], 3, 2)
    assert decision.outcome is QuorumOutcome.ABSENT


def test_single_vote_undecided_with_outstanding():
    decision = evaluate([present("a", 5)], 3, 2)
    assert decision.outcome is QuorumOutcome.UNDECIDED


def test_disagreeing_votes_wait_for_third():
    decision = evaluate([present("a", 5), present("b", 6)], 3, 2)
    assert decision.outcome is QuorumOutcome.UNDECIDED


def test_third_vote_breaks_tie():
    decision = evaluate([present("a", 5), present("b", 6), present("c", 6)],
                        3, 2)
    assert decision.outcome is QuorumOutcome.PRESENT
    assert decision.version == VersionNumber(6, 0, 0)
    assert set(decision.members) == {"b", "c"}


def test_three_way_disagreement_is_inquorate():
    decision = evaluate([present("a", 1), present("b", 2), present("c", 3)],
                        3, 2)
    assert decision.outcome is QuorumOutcome.INQUORATE


def test_mixed_present_absent_inquorate():
    decision = evaluate([present("a", 1), absent("b"), present("c", 3)],
                        3, 2)
    assert decision.outcome is QuorumOutcome.INQUORATE


def test_errors_do_not_vote():
    decision = evaluate([error("a"), present("b", 5), present("c", 5)], 3, 2)
    assert decision.outcome is QuorumOutcome.PRESENT
    assert set(decision.members) == {"b", "c"}


def test_two_errors_one_vote_inquorate():
    decision = evaluate([error("a"), error("b"), present("c", 5)], 3, 2)
    assert decision.outcome is QuorumOutcome.INQUORATE


def test_error_then_undecided_while_votes_possible():
    decision = evaluate([error("a"), present("b", 5)], 3, 2)
    assert decision.outcome is QuorumOutcome.UNDECIDED


def test_r1_single_vote_decides():
    decision = evaluate([present("a", 5)], 1, 1)
    assert decision.outcome is QuorumOutcome.PRESENT
    assert decision.unanimous


def test_r1_absent_decides_miss():
    decision = evaluate([absent("a")], 1, 1)
    assert decision.outcome is QuorumOutcome.ABSENT


def test_absent_and_present_tie_with_quorum_two():
    # 1 present + 1 absent, one outstanding: still undecided.
    decision = evaluate([present("a", 5), absent("b")], 3, 2)
    assert decision.outcome is QuorumOutcome.UNDECIDED
    # Third vote resolves either way.
    with_third = evaluate([present("a", 5), absent("b"), absent("c")], 3, 2)
    assert with_third.outcome is QuorumOutcome.ABSENT


def test_all_error_votes_are_inquorate():
    decision = evaluate([error("a"), error("b"), error("c")], 3, 2)
    assert decision.outcome is QuorumOutcome.INQUORATE
    assert decision.members == ()


def test_error_plus_matching_quorum_is_dirty_not_unanimous():
    # One replica errored but two agree: a decided *dirty* quorum (§5.4)
    # — the unanimous flag must stay false even though every non-error
    # vote matched.
    decision = evaluate([error("a"), present("b", 7), present("c", 7)], 3, 2)
    assert decision.outcome is QuorumOutcome.PRESENT
    assert decision.version == VersionNumber(7, 0, 0)
    assert set(decision.members) == {"b", "c"}
    assert not decision.unanimous


def test_error_plus_matching_absent_quorum_is_dirty():
    decision = evaluate([error("a"), absent("b"), absent("c")], 3, 2)
    assert decision.outcome is QuorumOutcome.ABSENT
    assert not decision.unanimous
