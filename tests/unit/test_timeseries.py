"""Unit tests for repro.telemetry.timeseries and the exporters."""

import json

import pytest

from repro.sim import SimulationError, Simulator
from repro.telemetry import (MetricsRegistry, Scraper, Span, TimeSeries,
                             chrome_trace, prometheus_text,
                             write_chrome_trace)


# -- TimeSeries ---------------------------------------------------------------

def _series(points):
    ts = TimeSeries("m", "value", {}, "counter", maxlen=None)
    for t, v in points:
        ts.append(t, v)
    return ts


def test_value_at_is_step_function():
    ts = _series([(1.0, 10.0), (2.0, 20.0), (3.0, 30.0)])
    assert ts.value_at(0.5) is None        # before first sample
    assert ts.value_at(1.0) == 10.0        # inclusive at sample time
    assert ts.value_at(1.7) == 10.0        # holds until the next sample
    assert ts.value_at(2.0) == 20.0
    assert ts.value_at(99.0) == 30.0
    assert ts.latest() == (3.0, 30.0)


def test_value_at_allocation_does_not_scale_with_length():
    # Regression: value_at used to rebuild a full timestamp list per
    # read, making every SLO-window evaluation O(n) in allocations. It
    # must bisect a maintained index instead — allocation per read stays
    # flat no matter how long the series is.
    import tracemalloc

    def read_peak(n):
        ts = _series([(float(i), float(i)) for i in range(n)])
        tracemalloc.start()
        ts.value_at(n / 2)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        return peak

    small, large = read_peak(100), read_peak(50_000)
    assert large <= small + 512, (small, large)


def test_times_index_survives_ring_buffer_wrap_and_eviction():
    ts = TimeSeries("m", "value", {}, "counter", maxlen=4)
    for i in range(10):
        ts.append(float(i), float(i) * 10)
    assert [t for t, _ in ts.points] == [6.0, 7.0, 8.0, 9.0]
    assert ts.value_at(5.9) is None       # wrapped out of the ring
    assert ts.value_at(7.5) == 70.0
    ts.evict_before(8.0)                  # retention_seconds path
    assert ts.value_at(7.5) is None
    assert ts.value_at(8.0) == 80.0
    assert ts.value_at(99.0) == 90.0
    assert list(ts._times) == [t for t, _ in ts.points]


def test_increase_missing_baseline_reads_as_zero():
    # Counters start at zero, so a window reaching before the first
    # scrape must count everything seen so far, not return 0.
    ts = _series([(1.0, 5.0), (2.0, 8.0)])
    assert ts.increase(window=10.0, at=2.0) == 8.0
    assert ts.increase(window=0.5, at=2.0) == 3.0
    assert ts.increase(window=0.5, at=0.5) == 0.0    # window ends pre-data
    assert _series([]).increase(window=1.0) == 0.0


def test_increase_clamps_negative_deltas_and_defaults_to_latest():
    ts = _series([(1.0, 100.0), (2.0, 3.0)])   # registry reset mid-run
    assert ts.increase(window=1.0, at=2.0) == 0.0
    ts2 = _series([(1.0, 1.0), (2.0, 4.0)])
    assert ts2.increase(window=1.0) == 3.0     # at=None -> latest sample


def test_rate_and_window_validation():
    ts = _series([(0.0, 0.0), (2.0, 10.0)])
    assert ts.rate(window=2.0, at=2.0) == 5.0
    with pytest.raises(ValueError):
        ts.rate(window=0.0)


def test_to_dict_round_trips_through_json():
    ts = _series([(1.0, 2.0)])
    doc = json.loads(json.dumps(ts.to_dict()))
    assert doc == {"name": "m", "field": "value", "labels": {},
                   "kind": "counter", "points": [[1.0, 2.0]]}


# -- Scraper ------------------------------------------------------------------

def _registry():
    reg = MetricsRegistry()
    ops = reg.counter("ops_total", "ops")
    ops.labels(op="get").inc(3)
    ops.labels(op="set").inc(1)
    reg.gauge("pending").labels().set(7)
    reg.histogram("lat").labels(op="get").observe(0.5)
    return reg


def test_scrape_fields_by_kind():
    scraper = Scraper(_registry(), interval=1.0)
    scraper.scrape(1.0)
    (get_ts,) = scraper.series("ops_total", op="get")
    assert get_ts.field == "value" and get_ts.latest() == (1.0, 3.0)
    (gauge_ts,) = scraper.series("pending")
    assert gauge_ts.kind == "gauge" and gauge_ts.latest() == (1.0, 7.0)
    # Histograms sample count only by default (O(1) read)...
    (hist_ts,) = scraper.series("lat")
    assert hist_ts.field == "count" and hist_ts.latest() == (1.0, 1.0)
    assert scraper.series("lat", field="sum") == []
    assert scraper.scrapes == 1 and scraper.last_scrape_at == 1.0


def test_scrape_histogram_sum_opt_in():
    scraper = Scraper(_registry(), histogram_sum=True)
    scraper.scrape(1.0)
    (sum_ts,) = scraper.series("lat", field="sum")
    assert sum_ts.latest() == (1.0, 0.5)


def test_label_subset_filters_and_summed_increase():
    reg = _registry()
    scraper = Scraper(reg)
    scraper.scrape(1.0)
    reg.counter("ops_total").labels(op="get").inc(2)
    scraper.scrape(2.0)
    assert len(scraper.series("ops_total")) == 2
    # increase sums across every series matching the label subset.
    assert scraper.increase("ops_total", window=10.0, at=2.0) == 6.0
    assert scraper.increase("ops_total", window=0.5, at=2.0, op="get") == 2.0
    assert scraper.rate("ops_total", window=0.5, at=2.0, op="get") == 4.0
    with pytest.raises(ValueError):
        scraper.rate("ops_total", window=0.0)


def test_retention_points_ring_buffer():
    reg = _registry()
    scraper = Scraper(reg, retention_points=3)
    for i in range(10):
        scraper.scrape(float(i))
    (ts,) = scraper.series("pending")
    assert [t for t, _ in ts.points] == [7.0, 8.0, 9.0]


def test_retention_seconds_horizon():
    reg = _registry()
    scraper = Scraper(reg, retention_seconds=2.0)
    for i in range(10):
        scraper.scrape(float(i))
    (ts,) = scraper.series("pending")
    assert [t for t, _ in ts.points] == [7.0, 8.0, 9.0]


def test_observer_runs_after_each_scrape():
    scraper = Scraper(_registry())
    seen = []
    scraper.add_observer(lambda t, s: seen.append((t, s.scrapes)))
    scraper.scrape(1.0)
    scraper.scrape(2.0)
    assert seen == [(1.0, 1), (2.0, 2)]


def test_scraper_validation():
    with pytest.raises(ValueError):
        Scraper(MetricsRegistry(), interval=0.0)
    with pytest.raises(ValueError):
        Scraper(MetricsRegistry(), retention_points=1)


def test_scraper_to_dict_is_json_able():
    scraper = Scraper(_registry(), interval=0.5)
    scraper.scrape(1.0)
    doc = json.loads(json.dumps(scraper.to_dict()))
    assert doc["interval"] == 0.5
    assert doc["scrapes"] == 1
    assert doc["last_scrape_at"] == 1.0
    assert {s["name"] for s in doc["series"]} == \
        {"ops_total", "pending", "lat"}


# -- clock-tap wiring ---------------------------------------------------------

def _run_workload(sim, reg, taps=0):
    ops = reg.counter("ops_total").labels()

    def worker():
        for _ in range(20):
            ops.inc()
            yield sim.sleep(0.1)

    sim.process(worker())
    sim.run()


def test_install_scrapes_on_cadence():
    sim = Simulator()
    reg = MetricsRegistry()
    scraper = Scraper(reg, interval=0.25)
    scraper.install(sim)
    _run_workload(sim, reg)
    # Workload ends at t=2.0 (20 incs, last sleep completes at 2.0);
    # ticks land at 0.25, 0.5, ..., 2.0.
    assert scraper.scrapes == 8
    (ts,) = scraper.series("ops_total")
    assert ts.value_at(0.25) == 3.0   # ops at t=0, 0.1, 0.2 precede the tick
    assert ts.value_at(2.0) == 20.0


def test_taps_consume_no_scheduling_sequence_numbers():
    """The parity guarantee: a scraped run's event order is identical to
    an unscraped run — taps never touch the scheduling sequence."""
    def run(with_scraper):
        sim = Simulator()
        reg = MetricsRegistry()
        if with_scraper:
            scraper = Scraper(reg, interval=0.05)
            scraper.install(sim)
        _run_workload(sim, reg)
        return sim._seq, sim.now

    assert run(with_scraper=True) == run(with_scraper=False)


def test_double_install_rejected_and_uninstall_stops_scraping():
    sim = Simulator()
    reg = MetricsRegistry()
    scraper = Scraper(reg, interval=0.25)
    scraper.install(sim)
    with pytest.raises(RuntimeError):
        scraper.install(sim)
    scraper.uninstall()
    scraper.uninstall()   # idempotent
    _run_workload(sim, reg)
    assert scraper.scrapes == 0


def test_tap_interval_validated_by_sim():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.add_tap(0.0, lambda t: None)


# -- exporters ----------------------------------------------------------------

def _make_span():
    state = {"now": 0.0}

    def clock():
        return state["now"]

    root = Span("op.get", clock, labels={"key": "k1"})
    state["now"] = 0.25
    child = root.child("index")
    state["now"] = 1.0
    child.finish()
    root.finish()
    return root


def test_chrome_trace_structure():
    root = _make_span()
    doc = chrome_trace([root], process_name="testproc")
    meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
    spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    assert meta[0]["args"]["name"] == "testproc"
    assert meta[1]["name"] == "thread_name"
    assert "op.get" in meta[1]["args"]["name"]
    by_name = {e["name"]: e for e in spans}
    # Timestamps and durations are in microseconds of simulated time.
    assert by_name["op.get"]["ts"] == 0.0
    assert by_name["op.get"]["dur"] == pytest.approx(1.0 * 1e6)
    assert by_name["index"]["ts"] == pytest.approx(0.25 * 1e6)
    assert by_name["index"]["dur"] == pytest.approx(0.75 * 1e6)
    assert by_name["op.get"]["args"] == {"key": "k1"}
    # All spans of one root share one tid (one track per operation).
    assert {e["tid"] for e in spans} == {1}


def test_chrome_trace_multiple_roots_get_distinct_tracks():
    doc = chrome_trace([_make_span(), _make_span()])
    spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    assert {e["tid"] for e in spans} == {1, 2}


def test_write_chrome_trace_is_valid_json(tmp_path):
    path = tmp_path / "trace.json"
    count = write_chrome_trace(str(path), [_make_span()])
    doc = json.loads(path.read_text())
    assert len(doc["traceEvents"]) == count
    assert doc["displayTimeUnit"] == "ms"


def test_prometheus_text_counters_and_histograms():
    reg = MetricsRegistry()
    ops = reg.counter("ops_total", "operations by kind")
    ops.labels(op="get").inc(3)
    hist = reg.histogram("lat_seconds", "latency")
    for v in (1.0, 2.0, 3.0):
        hist.labels(op="get").observe(v)
    text = prometheus_text(reg)
    assert "# HELP ops_total operations by kind" in text
    assert "# TYPE ops_total counter" in text
    assert 'ops_total{op="get"} 3.0' in text
    # Histograms expose as summary-style quantiles plus count/sum.
    assert "# TYPE lat_seconds summary" in text
    assert 'lat_seconds{op="get",quantile="0.5"} 2.0' in text
    assert 'lat_seconds_count{op="get"} 3.0' in text
    assert 'lat_seconds_sum{op="get"} 6.0' in text
    assert text.endswith("\n")


def test_prometheus_text_escaping_and_nan():
    reg = MetricsRegistry()
    reg.counter("c", 'help with "quotes"\nand newline').labels(
        path='a"b\\c').inc()
    reg.histogram("h").labels()     # empty histogram -> NaN quantiles
    text = prometheus_text(reg)
    assert r'# HELP c help with \"quotes\"\nand newline' in text
    assert r'c{path="a\"b\\c"} 1.0' in text
    assert 'h{quantile="0.5"} NaN' in text
