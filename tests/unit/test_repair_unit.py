"""Focused unit tests for repair-scanner internals (§5.4)."""


from repro.core import (Cell, CellSpec, RepairConfig, ReplicationMode,
                        VersionNumber)
from repro.core.repair import RepairScanner


def build():
    cell = Cell(CellSpec(mode=ReplicationMode.R3_2, num_shards=3,
                         transport="pony",
                         repair_config=RepairConfig(enabled=False)))
    client = cell.connect_client()
    return cell, client


def scanner_for(cell, task="backend-0"):
    return RepairScanner(cell.sim, cell, cell.backend_by_task(task))


def run(cell, gen):
    return cell.sim.run(until=cell.sim.process(gen))


def v(n):
    return VersionNumber(n, 0, 0)


def test_find_dirty_flags_missing_replica():
    cell, _client = build()
    scanner = scanner_for(cell)
    kh = b"h" * 16
    summaries = {"a": {kh: v(5)}, "b": {kh: v(5)}, "c": {}}
    dirty = scanner._find_dirty(summaries)
    assert len(dirty) == 1
    key_hash, source = dirty[0]
    assert key_hash == kh
    assert source in ("a", "b")


def test_find_dirty_flags_stale_replica():
    cell, _client = build()
    scanner = scanner_for(cell)
    kh = b"h" * 16
    summaries = {"a": {kh: v(9)}, "b": {kh: v(9)}, "c": {kh: v(3)}}
    dirty = scanner._find_dirty(summaries)
    assert len(dirty) == 1
    _kh, source = dirty[0]
    # The source must hold the highest version.
    assert source in ("a", "b")


def test_find_dirty_ignores_clean_keys():
    cell, _client = build()
    scanner = scanner_for(cell)
    kh1, kh2 = b"1" * 16, b"2" * 16
    summaries = {"a": {kh1: v(5), kh2: v(2)},
                 "b": {kh1: v(5), kh2: v(2)},
                 "c": {kh1: v(5), kh2: v(2)}}
    assert scanner._find_dirty(summaries) == []


def test_find_dirty_three_way_divergence_sources_max():
    cell, _client = build()
    scanner = scanner_for(cell)
    kh = b"h" * 16
    summaries = {"a": {kh: v(1)}, "b": {kh: v(2)}, "c": {kh: v(3)}}
    dirty = scanner._find_dirty(summaries)
    assert dirty == [(kh, "c")]


def test_scan_once_counts_scans():
    cell, client = build()
    scanner = scanner_for(cell)

    def app():
        yield from client.set(b"k", b"v")
        yield from scanner.scan_once()

    run(cell, app())
    assert scanner.stats.scans == 1
    assert scanner.stats.dirty_quorums_found == 0


def test_repair_uses_fresh_version():
    """Repairs install at a new version higher than the damaged one."""
    cell, client = build()
    scanner = scanner_for(cell, "backend-0")

    def app():
        yield from client.set(b"k", b"v")
        victim = cell.backend_by_task("backend-1")
        key_hash = victim.placement.key_hash(b"k")
        yield from victim._remove_entry(key_hash)
        old_versions = {b.task_name: b.lookup_local(b"k")
                        for b in cell.serving_backends()}
        yield from scanner.scan_once()
        return old_versions

    old_versions = run(cell, app())
    surviving = [found[1] for found in old_versions.values()
                 if found is not None]
    new_versions = {b.lookup_local(b"k")[1]
                    for b in cell.serving_backends()}
    assert len(new_versions) == 1
    assert next(iter(new_versions)) > max(surviving)
    assert scanner.stats.keys_repaired == 1


def test_scanner_tolerates_down_peer():
    cell, client = build()
    scanner = scanner_for(cell, "backend-0")

    def app():
        yield from client.set(b"k", b"v")
        cell.backend_by_task("backend-2").crash()
        yield from scanner.scan_once()  # must not raise

    run(cell, app())
    assert scanner.stats.scans == 1


def test_scanner_start_is_idempotent():
    cell, _client = build()
    scanner = scanner_for(cell)
    scanner.config.enabled = True
    scanner.start()
    first = scanner._proc
    scanner.start()
    assert scanner._proc is first
