"""Tests for the operator CLI (`python -m repro.tools`)."""

import pytest

from repro.tools import build_parser, main


def test_parser_lists_all_commands():
    parser = build_parser()
    sub = next(a for a in parser._actions
               if hasattr(a, "choices") and a.choices)
    assert set(sub.choices) == {"quickstart", "ads", "geo", "drill",
                                "snapshot", "metrics", "model-check",
                                "trace", "chaos", "perf", "observe"}


def test_chaos_command(capsys):
    assert main(["chaos", "--seed", "1", "--duration", "0.6",
                 "--settle", "1.0"]) == 0
    out = capsys.readouterr().out
    assert "fault plan (seed=1)" in out
    assert "injected faults" in out
    assert "reactions" in out
    assert "cliquemap_faults_injected_total" in out
    assert "invariants hold" in out


def test_quickstart_command(capsys):
    assert main(["quickstart", "--shards", "3"]) == 0
    out = capsys.readouterr().out
    assert "RMA GET: HIT" in out
    assert "speedup" in out


def test_model_check_command(capsys):
    assert main(["model-check", "--sets", "1", "--erases", "0",
                 "--no-crash"]) == 0
    out = capsys.readouterr().out
    assert "all invariants hold" in out


def test_snapshot_command(capsys):
    assert main(["snapshot", "--shards", "3"]) == 0
    out = capsys.readouterr().out
    assert "backend-0" in out
    assert "cell snapshot" in out


def test_metrics_command(capsys):
    assert main(["metrics", "--shards", "3", "--keys", "20",
                 "--ops", "60", "--demo"]) == 0
    out = capsys.readouterr().out
    assert "cliquemap_ops_total" in out
    assert "cliquemap_op_latency_seconds" in out
    assert "last op trace" in out
    assert "fabric.deliver" in out


def test_drill_planned(capsys):
    assert main(["drill", "planned"]) == 0
    assert "50/50" in capsys.readouterr().out


def test_ads_command(capsys):
    assert main(["ads", "--duration", "0.5", "--keys", "100"]) == 0
    assert "hit rate" in capsys.readouterr().out


def test_trace_synthesize_and_replay(tmp_path, capsys):
    trace_file = str(tmp_path / "ops.trace")
    assert main(["trace", "--ops", "200", "--keys", "30",
                 "--output", trace_file]) == 0
    assert "wrote 200 ops" in capsys.readouterr().out
    assert main(["trace", "--input", trace_file]) == 0
    out = capsys.readouterr().out
    assert "trace replay" in out
    assert "hit rate" in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


def test_perf_command(capsys, tmp_path):
    out_path = tmp_path / "BENCH_multiget.json"
    assert main(["perf", "--keys", "8", "--shards", "3",
                 "--output", str(out_path)]) == 0
    out = capsys.readouterr().out
    assert "multiget benchmark" in out
    assert "speedup" in out
    assert out_path.exists()
    import json
    data = json.loads(out_path.read_text())
    assert data["benchmark"] == "multiget"
    assert data["engine_cpu_speedup"] >= 2.0
