"""Tests for the operator CLI (`python -m repro.tools`)."""

import pytest

from repro.tools import build_parser, main


def test_parser_lists_all_commands():
    parser = build_parser()
    sub = next(a for a in parser._actions
               if hasattr(a, "choices") and a.choices)
    assert set(sub.choices) == {"quickstart", "ads", "geo", "drill",
                                "snapshot", "metrics", "model-check",
                                "trace", "chaos", "perf", "observe"}


def test_chaos_command(capsys):
    assert main(["chaos", "--seed", "1", "--duration", "0.6",
                 "--settle", "1.0"]) == 0
    out = capsys.readouterr().out
    assert "fault plan (seed=1)" in out
    assert "injected faults" in out
    assert "reactions" in out
    assert "cliquemap_faults_injected_total" in out
    assert "invariants hold" in out


def test_quickstart_command(capsys):
    assert main(["quickstart", "--shards", "3"]) == 0
    out = capsys.readouterr().out
    assert "RMA GET: HIT" in out
    assert "speedup" in out


def test_model_check_command(capsys):
    assert main(["model-check", "--sets", "1", "--erases", "0",
                 "--no-crash"]) == 0
    out = capsys.readouterr().out
    assert "all invariants hold" in out


def test_snapshot_command(capsys):
    assert main(["snapshot", "--shards", "3"]) == 0
    out = capsys.readouterr().out
    assert "backend-0" in out
    assert "cell snapshot" in out


def test_metrics_command(capsys):
    assert main(["metrics", "--shards", "3", "--keys", "20",
                 "--ops", "60", "--demo"]) == 0
    out = capsys.readouterr().out
    assert "cliquemap_ops_total" in out
    assert "cliquemap_op_latency_seconds" in out
    assert "last op trace" in out
    assert "fabric.deliver" in out


def test_drill_planned(capsys):
    assert main(["drill", "planned"]) == 0
    assert "50/50" in capsys.readouterr().out


def test_ads_command(capsys):
    assert main(["ads", "--duration", "0.5", "--keys", "100"]) == 0
    assert "hit rate" in capsys.readouterr().out


def test_trace_synthesize_and_replay(tmp_path, capsys):
    trace_file = str(tmp_path / "ops.trace")
    assert main(["trace", "--ops", "200", "--keys", "30",
                 "--output", trace_file]) == 0
    assert "wrote 200 ops" in capsys.readouterr().out
    assert main(["trace", "--input", trace_file]) == 0
    out = capsys.readouterr().out
    assert "trace replay" in out
    assert "hit rate" in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


def test_perf_command(capsys, tmp_path):
    out_path = tmp_path / "BENCH_multiget.json"
    assert main(["perf", "--keys", "8", "--shards", "3",
                 "--output", str(out_path)]) == 0
    out = capsys.readouterr().out
    assert "multiget benchmark" in out
    assert "speedup" in out
    assert out_path.exists()
    import json
    data = json.loads(out_path.read_text())
    assert data["benchmark"] == "multiget"
    assert data["engine_cpu_speedup"] >= 2.0


def test_perf_history_command(capsys, tmp_path):
    import json
    (tmp_path / "BENCH_kernel.json").write_text(json.dumps({
        "benchmark": "kernel", "floor_events_per_sec": 10.0,
        "new": {"events_per_sec": 100.0},
        "legacy": {"events_per_sec": 50.0}}))
    assert main(["perf", "history", "--root", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "perf trajectory" in out
    assert "events_per_sec" in out
    # A metric under its floor turns the exit code red.
    (tmp_path / "BENCH_kernel.json").write_text(json.dumps({
        "benchmark": "kernel", "floor_events_per_sec": 1000.0,
        "new": {"events_per_sec": 100.0},
        "legacy": {"events_per_sec": 50.0}}))
    assert main(["perf", "history", "--root", str(tmp_path)]) == 1
    assert "FAIL" in capsys.readouterr().out


def test_trace_federation_demo_stitch_and_flight(tmp_path, capsys):
    import json
    save = tmp_path / "zones.json"
    perfetto = tmp_path / "stitched.json"
    assert main(["trace", "--federation-demo", "--zones", "2",
                 "--duration", "0.08", "--assert-cross-zone",
                 "--save", str(save), "--out", str(perfetto)]) == 0
    out = capsys.readouterr().out
    assert "stitched" in out and "cross-zone" in out
    assert "fed.get" in out or "fed.set" in out
    doc = json.loads(save.read_text())
    assert doc["zones"] and sorted(doc["zones"]) == ["dc-a", "dc-b"]
    assert json.loads(perfetto.read_text())["traceEvents"]

    # Offline re-stitch of the saved zone traces, with filters.
    assert main(["trace", "--stitch", str(save), "--zone", "dc-b",
                 "--limit", "1"]) == 0
    out = capsys.readouterr().out
    assert "after filters" in out and "cross-zone" in out
    assert "[  dc-b]" in out

    # Flight query over a postmortem bundle.
    from repro.telemetry import FlightRecorder
    from repro.observe.postmortem import write_postmortem_bundle
    clock = lambda: 1.5  # noqa: E731
    flight = FlightRecorder(clock, capacity=8)
    flight.record("fault", origin="fault-injector", fault="partition")
    flight.record("op", origin="client-0", op="get", status="hit")
    bundle = write_postmortem_bundle(str(tmp_path), "unit", flight=flight)
    assert main(["trace", "--flight", bundle, "--kind", "fault"]) == 0
    out = capsys.readouterr().out
    assert "fault-injector" in out and "client-0" not in out


def test_chaos_flight_export_healthy_no_bundle(tmp_path, capsys):
    assert main(["chaos", "--seed", "1", "--duration", "0.4",
                 "--settle", "0.8", "--flight",
                 "--export-dir", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "invariants hold" in out
    assert "postmortem bundle" not in out
    from repro.observe.postmortem import find_bundles
    assert find_bundles(str(tmp_path)) == []
