"""Unit tests for the MemcacheG baseline (§2.1)."""


from repro.baselines import MemcacheGCluster, MemcacheGConfig


def build(num_shards=3, **config_kwargs):
    config = MemcacheGConfig(**config_kwargs) if config_kwargs else None
    cluster = MemcacheGCluster(num_shards=num_shards, config=config)
    return cluster, cluster.make_client()


def run(cluster, gen):
    return cluster.sim.run(until=cluster.sim.process(gen))


def test_set_get_delete_roundtrip():
    cluster, client = build()

    def app():
        assert (yield from client.set(b"k", b"v"))
        found, value = yield from client.get(b"k")
        assert found and value == b"v"
        assert (yield from client.delete(b"k"))
        found, _ = yield from client.get(b"k")
        assert not found

    run(cluster, app())


def test_keys_spread_across_shards():
    cluster, client = build(num_shards=4)

    def app():
        for i in range(60):
            yield from client.set(b"key-%d" % i, b"v")

    run(cluster, app())
    residents = [s.resident_keys for s in cluster.servers]
    assert sum(residents) == 60
    assert all(r > 0 for r in residents)


def test_lru_eviction_at_capacity():
    cluster, client = build(num_shards=1, capacity_bytes=1000)

    def app():
        for i in range(20):
            yield from client.set(b"key-%02d" % i, b"x" * 90)
        # Touch an early survivor so the LRU spares it.
        found_early, _ = yield from client.get(b"key-19")
        found_oldest, _ = yield from client.get(b"key-00")
        return found_early, found_oldest

    found_recent, found_oldest = run(cluster, app())
    server = cluster.servers[0]
    assert server.stats.evictions > 0
    assert found_recent
    assert not found_oldest
    assert server._used_bytes <= 1000


def test_overwrite_updates_used_bytes():
    cluster, client = build(num_shards=1)

    def app():
        yield from client.set(b"k", b"x" * 100)
        yield from client.set(b"k", b"y" * 10)

    run(cluster, app())
    server = cluster.servers[0]
    assert server._used_bytes == 1 + 10  # len(key) + len(value)


def test_every_get_costs_full_rpc():
    """The baseline's defining property: >50us CPU per GET."""
    cluster, client = build()

    def app():
        yield from client.set(b"k", b"v" * 64)
        hosts = [client.host] + [s.host for s in cluster.servers]
        base = sum(h.ledger.total() for h in hosts)
        for _ in range(20):
            yield from client.get(b"k")
        return (sum(h.ledger.total() for h in hosts) - base) / 20

    cpu_per_get = run(cluster, app())
    assert cpu_per_get > 50e-6


def test_server_down_is_a_miss_not_a_crash():
    cluster, client = build(num_shards=2)

    def app():
        yield from client.set(b"k", b"v")
        cluster.shard_for(b"k").host.crash()
        found, _ = yield from client.get(b"k")
        return found

    assert run(cluster, app()) is False
