"""Unit tests for cell configuration and the external config store."""

import pytest

from repro.core.config import (CellConfig, ConfigStore, LookupStrategy,
                               ReplicationMode)
from repro.core.errors import CliqueMapError, ConfigCasError
from repro.sim import Simulator


def make_config(name="cell"):
    return CellConfig(name=name, mode=ReplicationMode.R3_2, num_shards=3,
                      shard_tasks=["b0", "b1", "b2"], spares=["s0"])


def test_replication_mode_parameters():
    assert ReplicationMode.R1.replicas == 1
    assert ReplicationMode.R1.quorum == 1
    assert ReplicationMode.R2_IMMUTABLE.replicas == 2
    assert ReplicationMode.R2_IMMUTABLE.quorum == 1
    assert ReplicationMode.R3_2.replicas == 3
    assert ReplicationMode.R3_2.quorum == 2


def test_config_clone_is_deep():
    config = make_config()
    clone = config.clone()
    clone.shard_tasks[0] = "other"
    assert config.shard_tasks[0] == "b0"


def test_store_get_returns_snapshot():
    sim = Simulator()
    store = ConfigStore(sim)
    store.publish(make_config())

    def reader():
        config = yield from store.get("cell")
        return config

    config = sim.run(until=sim.process(reader()))
    assert config.shard_tasks == ["b0", "b1", "b2"]
    config.shard_tasks[0] = "mutated"
    assert store.peek("cell").shard_tasks[0] == "b0"


def test_store_get_costs_latency():
    sim = Simulator()
    store = ConfigStore(sim, read_latency=500e-6)
    store.publish(make_config())

    def reader():
        yield from store.get("cell")

    sim.run(until=sim.process(reader()))
    assert sim.now == pytest.approx(500e-6)
    assert store.reads == 1


def test_store_unknown_cell_raises():
    sim = Simulator()
    store = ConfigStore(sim)

    def reader():
        yield from store.get("missing")

    proc = sim.process(reader())
    proc.defused = True
    sim.run()
    assert isinstance(proc.value, KeyError)


def test_update_bumps_generation():
    sim = Simulator()
    store = ConfigStore(sim)
    store.publish(make_config())
    before = store.peek("cell").config_id

    def repoint(config):
        config.shard_tasks[1] = "s0"
        config.spare_roles["s0"] = 1

    updated = store.update("cell", repoint)
    assert updated.config_id == before + 1
    assert updated.shard_tasks[1] == "s0"
    assert store.peek("cell").spare_roles == {"s0": 1}


def test_update_cas_applies_on_matching_generation():
    sim = Simulator()
    store = ConfigStore(sim)
    store.publish(make_config())
    expected = store.peek("cell").config_id

    def repoint(config):
        config.shard_tasks[2] = "s0"

    updated = store.update("cell", repoint, expected_config_id=expected)
    assert updated.config_id == expected + 1
    assert updated.shard_tasks[2] == "s0"


def test_update_cas_mismatch_raises_without_applying():
    sim = Simulator()
    store = ConfigStore(sim)
    store.publish(make_config())
    stale = store.peek("cell").config_id
    store.update("cell", lambda config: None)   # someone else bumps first

    def repoint(config):
        config.shard_tasks[2] = "s0"

    with pytest.raises(ConfigCasError):
        store.update("cell", repoint, expected_config_id=stale)
    # The losing mutate never touched the stored config, and the
    # generation did not advance a second time.
    current = store.peek("cell")
    assert current.shard_tasks == ["b0", "b1", "b2"]
    assert current.config_id == stale + 1


def test_config_cas_error_is_a_cliquemap_error():
    assert issubclass(ConfigCasError, CliqueMapError)


def test_lookup_strategy_members():
    assert LookupStrategy.TWO_R.value == "2xr"
    assert LookupStrategy.SCAR.value == "scar"
    assert LookupStrategy.RPC.value == "rpc"
