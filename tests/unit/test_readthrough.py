"""Unit tests for the cache-miss pipeline (read-through coordinator)."""

import pytest

from repro.core import Cell, CellSpec, GetStatus, ReplicationMode
from repro.core.errors import CliqueMapError
from repro.storage import (MissPolicy, SystemOfRecord,
                           SystemOfRecordProtocol)


def build(policy=None, num_keys=8, throughput=None):
    cell = Cell(CellSpec(mode=ReplicationMode.R3_2, num_shards=3,
                         transport="pony"))
    sor_host = cell.fabric.add_host("host/sor")
    sor = SystemOfRecord(cell.sim, sor_host, throughput=throughput)
    sor.load({b"sor-%03d" % i: b"durable-%d" % i for i in range(num_keys)})
    coordinator = cell.attach_sor(sor, policy or MissPolicy())
    return cell, sor, coordinator


def run(cell, gen):
    return cell.sim.run(until=cell.sim.process(gen))


# -- MissPolicy validation ---------------------------------------------------

def test_miss_policy_defaults_valid():
    policy = MissPolicy()
    assert policy.read_through and policy.write_behind and policy.coalesce


@pytest.mark.parametrize("kwargs", [
    {"negative_ttl": -0.1},
    {"backfill_fill_rate": -1.0},
    {"dirty_buffer_max": 0},
    {"flush_interval": 0.0},
    {"flush_batch_max": 0},
    {"fetch_deadline": -1.0},
    {"fetch_retries": 0},
    {"negative_capacity": 0},
])
def test_miss_policy_rejects_bad_values(kwargs):
    with pytest.raises(CliqueMapError):
        MissPolicy(**kwargs)


# -- attach_sor --------------------------------------------------------------

def test_attach_sor_rejects_non_protocol():
    cell = Cell(CellSpec(mode=ReplicationMode.R3_2, num_shards=3,
                         transport="pony"))
    with pytest.raises(CliqueMapError):
        cell.attach_sor(object())
    cell.close()


def test_attach_sor_rejects_double_attach():
    cell, sor, _coordinator = build()
    assert isinstance(sor, SystemOfRecordProtocol)
    with pytest.raises(CliqueMapError):
        cell.attach_sor(sor)
    cell.close()


# -- single-flight coalescing ------------------------------------------------

def test_single_flight_coalesces_concurrent_fetches():
    cell, sor, coordinator = build()
    waiters = 12
    results = []

    def one_fetch():
        outcome = yield from coordinator.fetch(b"sor-003")
        results.append(outcome)

    procs = [cell.sim.process(one_fetch()) for _ in range(waiters)]
    cell.sim.run(until=cell.sim.all_of(procs))
    assert sor.reads == 1  # one leader; everyone else parked on it
    assert coordinator.stats["coalesced"] == waiters - 1
    assert all(outcome == ("hit", b"durable-3") for outcome in results)
    cell.close()


def test_coalesce_disabled_stampedes():
    cell, sor, coordinator = build(policy=MissPolicy(coalesce=False))
    procs = [cell.sim.process(coordinator.fetch(b"sor-001"))
             for _ in range(6)]
    cell.sim.run(until=cell.sim.all_of(procs))
    assert sor.reads == 6
    assert coordinator.stats["coalesced"] == 0
    cell.close()


# -- negative caching --------------------------------------------------------

def test_negative_cache_absorbs_repeat_misses_until_ttl():
    cell, sor, coordinator = build(policy=MissPolicy(negative_ttl=0.2))

    def app():
        first = yield from coordinator.fetch(b"absent")
        second = yield from coordinator.fetch(b"absent")
        yield cell.sim.timeout(0.3)  # past the TTL
        third = yield from coordinator.fetch(b"absent")
        return first, second, third

    first, second, third = run(cell, app())
    assert first == ("miss", None)       # real SoR miss
    assert second == ("negative", None)  # remembered absent, no SoR read
    assert third == ("miss", None)       # TTL expired: re-asked the SoR
    assert sor.reads == 2
    assert coordinator.stats["negative_hits"] == 1
    cell.close()


def test_negative_cache_cleared_by_write():
    cell, sor, coordinator = build()

    def app():
        yield from coordinator.fetch(b"soon")        # miss -> negative
        coordinator.note_write(b"soon", b"fresh")    # write clears it
        return (yield from coordinator.fetch(b"soon"))

    outcome = run(cell, app())
    assert outcome == ("hit", b"fresh")  # served from the dirty buffer
    assert coordinator.stats["buffered_serves"] == 1
    cell.close()


# -- write-behind ------------------------------------------------------------

def test_write_behind_flushes_in_fifo_order():
    cell, sor, coordinator = build()
    keys = [b"wb-%02d" % i for i in range(5)]
    for key in keys:
        assert coordinator.note_write(key, b"v:" + key)

    def app():
        yield from coordinator.flush()

    run(cell, app())
    assert sor.write_log == keys  # first-dirtied flushes first
    assert coordinator.dirty_depth == 0
    cell.close()


def test_write_behind_buffer_bound_forces_sync_fallback():
    cell, sor, coordinator = build(policy=MissPolicy(dirty_buffer_max=2))
    assert coordinator.note_write(b"a", b"1")
    assert coordinator.note_write(b"b", b"2")
    assert not coordinator.note_write(b"c", b"3")  # over the bound
    assert coordinator.stats["buffer_overflows"] == 1

    def app():
        yield from coordinator.write_through(b"c", b"3")

    run(cell, app())
    assert coordinator.stats["sync_writes"] == 1
    assert b"c" in sor.write_log
    cell.close()


def test_write_behind_update_keeps_first_dirty_position():
    cell, sor, coordinator = build()
    coordinator.note_write(b"x", b"1")
    coordinator.note_write(b"y", b"2")
    coordinator.note_write(b"x", b"3")  # re-dirty: keeps front position

    def app():
        yield from coordinator.flush()

    run(cell, app())
    assert sor.write_log == [b"x", b"y"]
    cell.close()


# -- client surface ----------------------------------------------------------

def test_get_source_field_cache_sor_negative():
    cell, sor, _coordinator = build()
    client = cell.connect_client()

    def app():
        filled = yield from client.get(b"sor-002")    # miss -> SoR fetch
        cached = yield from client.get(b"sor-002")    # now in the cache
        absent = yield from client.get(b"nope")       # SoR authoritative miss
        remembered = yield from client.get(b"nope")   # negative cache
        return filled, cached, absent, remembered

    filled, cached, absent, remembered = run(cell, app())
    assert (filled.status, filled.source) == (GetStatus.HIT, "sor")
    assert filled.value == b"durable-2"
    assert (cached.status, cached.source) == (GetStatus.HIT, "cache")
    assert (absent.status, absent.source) == (GetStatus.MISS, "sor")
    assert (remembered.status, remembered.source) == (GetStatus.MISS,
                                                      "negative")
    client.close()
    cell.close()


def test_set_rides_write_behind_to_sor():
    cell, sor, coordinator = build()
    client = cell.connect_client()

    def app():
        yield from client.set(b"fresh", b"value")
        yield from coordinator.flush()

    run(cell, app())
    assert sor.write_log == [b"fresh"]
    assert coordinator.stats["writebacks"] == 1
    client.close()
    cell.close()


def test_backfill_class_sheds_when_budget_dry():
    cell, sor, coordinator = build(policy=MissPolicy(
        backfill_budget=2.0, backfill_fill_rate=0.0))

    def app():
        outcomes = []
        for i in range(5):
            outcome = yield from coordinator.fetch(b"sor-%03d" % i,
                                                   klass="backfill")
            outcomes.append(outcome[0])
        return outcomes

    outcomes = run(cell, app())
    assert outcomes.count("shed") == 3  # budget of 2, no refill
    assert coordinator.stats["shed"] == 3
    assert sor.reads == 2
    cell.close()
