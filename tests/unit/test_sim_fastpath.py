"""Unit tests for the kernel fast path: ready queue, pooling, identity waits.

The scheduler rewrite (heap of ``(time, seq, fn, args)`` + a same-time
FIFO ready deque + a pooled-timeout free list) must be invisible to
simulation code: global execution order is exactly sort-by-``(time,
seq)``, pooled timeouts never leak values across sleeps, and the
interrupt/wake-up races the old serial-number scheme guarded still
resolve the same way under identity-based wait tracking.
"""

import pytest

from repro.sim import Interrupt, SimulationError, Simulator


# ----------------------------------------------------------------------
# Same-time ordering: ready queue vs heap interleave strictly by seq
# ----------------------------------------------------------------------

def test_same_time_callbacks_run_in_fifo_order():
    sim = Simulator()
    log = []
    for i in range(50):
        sim.call_soon(log.append, i)
    sim.run()
    assert log == list(range(50))


def test_zero_delay_storm_preserves_schedule_order():
    """call_soon storms from inside callbacks stay FIFO per wave."""
    sim = Simulator()
    log = []

    def tick(depth):
        log.append(depth)
        if depth < 5:
            sim.call_soon(tick, depth + 1)
            sim.call_soon(log.append, -depth)

    sim.call_soon(tick, 0)
    sim.run()
    assert log == [0, 1, -0, 2, -1, 3, -2, 4, -3, 5, -4]


def test_heap_and_ready_interleave_by_seq_at_same_time():
    """A zero-delay heap entry (scheduled earlier from another time) must
    run before ready-queue entries appended later at the same instant."""
    sim = Simulator()
    log = []

    def proc():
        # Scheduled first: lands in the heap, fires at t=1.0.
        sim.call_in(1.0, log.append, "heap-early")
        yield sim.timeout(1.0)
        # Appended at t=1.0 after the heap entry's seq: must run later.
        sim.call_soon(log.append, "ready-late")

    sim.process(proc())
    sim.run()
    assert log == ["heap-early", "ready-late"]


def test_timeout_zero_and_call_soon_share_one_ordering():
    sim = Simulator()
    log = []

    def a():
        yield sim.timeout(0)
        log.append("a")

    def b():
        yield sim.timeout(0)
        log.append("b")

    sim.process(a())
    sim.call_soon(log.append, "soon")
    sim.process(b())
    sim.run()
    # Process starts consume ready slots too: a starts, "soon" runs, b
    # starts, then the two zero-delay timeouts fire in creation order.
    assert log == ["soon", "a", "b"]


# ----------------------------------------------------------------------
# Conditions with already-triggered children
# ----------------------------------------------------------------------

def test_all_of_with_already_triggered_children():
    sim = Simulator()
    seen = []

    def proc():
        done = sim.event().succeed("early")
        fresh = sim.timeout(1.0, "late")
        values = yield sim.all_of([done, fresh])
        seen.append(values)

    sim.process(proc())
    sim.run()
    assert seen == [["early", "late"]]


def test_all_of_with_all_children_pre_triggered():
    sim = Simulator()
    seen = []

    def proc():
        first = sim.event().succeed(1)
        second = sim.event().succeed(2)
        values = yield sim.all_of([first, second])
        seen.append((values, sim.now))

    sim.process(proc())
    sim.run()
    assert seen == [([1, 2], 0.0)]


def test_any_of_prefers_already_triggered_child():
    sim = Simulator()
    seen = []

    def proc():
        done = sim.event().succeed("instant")
        slow = sim.timeout(5.0, "slow")
        event, value = yield sim.any_of([done, slow])
        seen.append((event is done, value, sim.now))

    sim.process(proc())
    sim.run(until=10.0)
    assert seen == [(True, "instant", 0.0)]


def test_any_of_with_already_failed_child_fails():
    sim = Simulator()
    failures = []

    def proc():
        bad = sim.event()
        bad.fail(RuntimeError("boom"))
        bad.defused = True
        good = sim.timeout(1.0)
        try:
            yield sim.any_of([bad, good])
        except RuntimeError as exc:
            failures.append(str(exc))

    sim.process(proc())
    sim.run()
    assert failures == ["boom"]


# ----------------------------------------------------------------------
# Interrupt vs wake-up races under the ready queue
# ----------------------------------------------------------------------

def test_interrupt_beats_same_tick_wakeup():
    """An interrupt issued before a same-time wake-up wins: the stale
    wake-up is swallowed, exactly as under the old serial scheme."""
    sim = Simulator()
    log = []
    proc = None

    def interrupter():
        # Created first so this timeout's seq is lower: at t=1.0 the
        # interrupt lands before the sleeper's own timeout processes.
        yield sim.timeout(1.0)
        proc.interrupt("race")

    def sleeper():
        try:
            value = yield sim.timeout(1.0, "woke")
            log.append(("value", value))
        except Interrupt as intr:
            log.append(("interrupted", intr.cause))
        yield sim.timeout(1.0)
        log.append(("after", sim.now))

    sim.process(interrupter())
    proc = sim.process(sleeper())
    sim.run()
    assert log == [("interrupted", "race"), ("after", 2.0)]


def test_wakeup_then_interrupt_delivers_both_in_order():
    sim = Simulator()
    log = []

    def sleeper():
        value = yield sim.timeout(1.0, "first")
        log.append(("woke", value))
        try:
            yield sim.timeout(5.0)
        except Interrupt as intr:
            log.append(("interrupted", intr.cause))

    proc = sim.process(sleeper())

    def interrupter():
        yield sim.timeout(2.0)
        proc.interrupt("later")

    sim.process(interrupter())
    sim.run()
    assert log == [("woke", "first"), ("interrupted", "later")]


def test_interrupt_before_first_step_cancels_start():
    sim = Simulator()
    log = []

    def body():
        log.append("started")
        yield sim.timeout(1.0)

    proc = sim.process(body())
    proc.interrupt("too-early")
    # The pending start is cancelled; the undefused failed process
    # re-raises the Interrupt out of run().
    with pytest.raises(Interrupt):
        sim.run()
    assert log == []  # the generator never reached its first yield


def test_double_interrupt_delivers_twice():
    sim = Simulator()
    log = []

    def sleeper():
        try:
            yield sim.timeout(10.0)
        except Interrupt as intr:
            log.append(("first", intr.cause))
        try:
            yield sim.timeout(10.0)
        except Interrupt as intr:
            log.append(("second", intr.cause))

    proc = sim.process(sleeper())

    def interrupter():
        yield sim.timeout(1.0)
        proc.interrupt("a")
        proc.interrupt("b")

    sim.process(interrupter())
    sim.run()
    assert log == [("first", "a"), ("second", "b")]


def test_rewaiting_same_event_after_interrupt_resumes_once():
    """Waiting on an event, being interrupted, then waiting on the same
    event again must resume exactly once when it fires."""
    sim = Simulator()
    log = []
    gate = None

    def waiter():
        nonlocal gate
        gate = sim.event()
        try:
            value = yield gate
            log.append(("clean", value))
        except Interrupt:
            log.append("interrupted")
            value = yield gate
            log.append(("rewait", value))

    proc = sim.process(waiter())

    def driver():
        yield sim.timeout(1.0)
        proc.interrupt()
        yield sim.timeout(1.0)
        gate.succeed("opened")

    sim.process(driver())
    sim.run()
    assert log == ["interrupted", ("rewait", "opened")]


# ----------------------------------------------------------------------
# Timeout pooling: sleep() recycles without leaking values
# ----------------------------------------------------------------------

def test_sleep_pool_reuses_objects_without_leaking_values():
    sim = Simulator()
    seen = []

    def proc():
        first = yield sim.sleep(0.5, "alpha")
        second = yield sim.sleep(0.5, "beta")
        third = yield sim.sleep(0.5)  # default None, not a stale "beta"
        seen.append((first, second, third))

    sim.process(proc())
    sim.run()
    assert seen == [("alpha", "beta", None)]
    assert len(sim._timeout_pool) >= 1  # the object really was recycled


def test_sleep_pool_objects_are_reused_across_processes():
    sim = Simulator()
    identities = []

    def one():
        ev = sim.sleep(0.1, 1)
        identities.append(id(ev))
        yield ev

    def two():
        yield sim.timeout(1.0)  # after `one`'s sleep was recycled
        ev = sim.sleep(0.1, 2)
        identities.append(id(ev))
        value = yield ev
        identities.append(value)

    sim.process(one())
    sim.process(two())
    sim.run()
    assert identities[0] == identities[1]  # same pooled object, re-armed
    assert identities[2] == 2              # carrying the new value


def test_sleep_pool_is_bounded():
    sim = Simulator()

    def burst():
        yield sim.all_of([sim.timeout(0.1) for _ in range(5)])

    # sleep() events all recycle; the pool must stay within its cap.
    def sleeper(i):
        yield sim.sleep(0.001 * (i % 7))

    for i in range(600):
        sim.process(sleeper(i))
    sim.process(burst())
    sim.run()
    assert len(sim._timeout_pool) <= Simulator._POOL_MAX


def test_sleep_negative_delay_rejected_with_now_in_message():
    sim = Simulator()
    sim.sleep(0.0)  # prime the pool so the pooled re-arm path validates
    sim.run()
    with pytest.raises(SimulationError, match=r"now="):
        sim.sleep(-0.5)
    with pytest.raises(SimulationError, match=r"now="):
        sim.timeout(-0.5)
    with pytest.raises(SimulationError, match=r"now="):
        sim.call_in(-0.5, lambda: None)


def test_sleep_zero_delay_runs_via_ready_queue():
    sim = Simulator()
    log = []

    def proc():
        yield sim.sleep(0)
        log.append(sim.now)

    sim.process(proc())
    sim.run()
    assert log == [0.0]
