"""Unit tests for the index region, data entries, and the slab allocator."""

import pytest

from repro.core.data import (DataRegion, encode_entry_parts, entry_size,
                             try_decode)
from repro.core.hashing import default_key_hash
from repro.core.index import (ENTRY_BYTES, IndexRegion, bucket_size,
                              make_scar_program, parse_bucket)
from repro.core.slab import SlabAllocator
from repro.core.version import VersionNumber
from repro.transport import Arena


V1 = VersionNumber(100, 1, 1)
V2 = VersionNumber(200, 1, 2)


# -- index region -------------------------------------------------------------

def test_bucket_size_layout():
    assert bucket_size(7) == 16 + 7 * ENTRY_BYTES


def test_index_write_read_entry():
    index = IndexRegion(num_buckets=8, ways=4, config_id=3)
    kh = default_key_hash(b"k")
    index.write_entry(2, 1, kh, V1, region_id=9, offset=1024, size=128)
    entry = index.read_entry(2, 1)
    assert entry.valid
    assert entry.key_hash == kh
    assert entry.version == V1
    assert (entry.region_id, entry.offset, entry.size) == (9, 1024, 128)


def test_index_clear_entry():
    index = IndexRegion(num_buckets=8, ways=4, config_id=0)
    kh = default_key_hash(b"k")
    index.write_entry(0, 0, kh, V1, 1, 0, 64)
    assert index.used_entries == 1
    index.clear_entry(0, 0)
    assert not index.read_entry(0, 0).valid
    assert index.used_entries == 0


def test_index_find_way_and_free_way():
    index = IndexRegion(num_buckets=4, ways=2, config_id=0)
    kh1, kh2 = default_key_hash(b"a"), default_key_hash(b"b")
    index.write_entry(1, 0, kh1, V1, 1, 0, 64)
    assert index.find_way(1, kh1) == 0
    assert index.find_way(1, kh2) is None
    assert index.find_free_way(1) == 1
    index.write_entry(1, 1, kh2, V1, 1, 64, 64)
    assert index.find_free_way(1) is None


def test_index_load_factor():
    index = IndexRegion(num_buckets=2, ways=2, config_id=0)
    assert index.load_factor == 0.0
    index.write_entry(0, 0, default_key_hash(b"a"), V1, 1, 0, 64)
    assert index.load_factor == 0.25


def test_index_bucket_for_is_stable_and_in_range():
    index = IndexRegion(num_buckets=16, ways=4, config_id=0)
    for i in range(100):
        kh = default_key_hash(f"key-{i}".encode())
        b = index.bucket_for(kh)
        assert 0 <= b < 16
        assert b == index.bucket_for(kh)


def test_parse_bucket_roundtrip():
    index = IndexRegion(num_buckets=4, ways=3, config_id=7)
    kh = default_key_hash(b"k")
    index.write_entry(2, 1, kh, V2, region_id=5, offset=256, size=99)
    raw = index.window.read(index.bucket_offset(2), index.bucket_bytes)
    bucket = parse_bucket(raw, ways=3)
    assert bucket.magic_ok
    assert bucket.config_id == 7
    assert not bucket.overflow
    found = bucket.find(kh)
    assert found is not None
    assert found.version == V2
    assert (found.region_id, found.offset, found.size) == (5, 256, 99)


def test_parse_bucket_rejects_short_input():
    with pytest.raises(ValueError):
        parse_bucket(b"short", ways=3)


def test_overflow_bit_roundtrip():
    index = IndexRegion(num_buckets=2, ways=2, config_id=0)
    index.set_overflow(1, True)
    raw = index.window.read(index.bucket_offset(1), index.bucket_bytes)
    assert parse_bucket(raw, 2).overflow
    index.set_overflow(1, False)
    raw = index.window.read(index.bucket_offset(1), index.bucket_bytes)
    assert not parse_bucket(raw, 2).overflow


def test_set_config_id_rewrites_all_headers():
    index = IndexRegion(num_buckets=3, ways=2, config_id=1)
    index.set_overflow(2, True)
    index.set_config_id(9)
    for b in range(3):
        raw = index.window.read(index.bucket_offset(b), index.bucket_bytes)
        assert parse_bucket(raw, 2).config_id == 9
    # Flags survive the rewrite.
    raw = index.window.read(index.bucket_offset(2), index.bucket_bytes)
    assert parse_bucket(raw, 2).overflow


def test_scar_program_matches_entry():
    index = IndexRegion(num_buckets=2, ways=3, config_id=0)
    kh = default_key_hash(b"k")
    index.write_entry(0, 2, kh, V1, region_id=8, offset=512, size=77)
    raw = index.window.read(index.bucket_offset(0), index.bucket_bytes)
    program = make_scar_program(ways=3)
    assert program(raw, kh) == (8, 512, 77)
    assert program(raw, default_key_hash(b"other")) is None


def test_index_entries_iterator():
    index = IndexRegion(num_buckets=4, ways=2, config_id=0)
    khs = [default_key_hash(f"{i}".encode()) for i in range(3)]
    index.write_entry(0, 0, khs[0], V1, 1, 0, 10)
    index.write_entry(1, 1, khs[1], V1, 1, 16, 10)
    index.write_entry(3, 0, khs[2], V1, 1, 32, 10)
    found = {entry.key_hash for _b, entry in index.entries()}
    assert found == set(khs)


# -- data entries ------------------------------------------------------------

def test_encode_decode_roundtrip():
    kh = default_key_hash(b"key")
    body, check = encode_entry_parts(b"key", b"value", V1, kh)
    entry = try_decode(body + check)
    assert entry is not None
    assert entry.key == b"key"
    assert entry.value == b"value"
    assert entry.version == V1
    assert entry.checksum_ok(kh)
    assert len(body + check) == entry_size(3, 5)


def test_decode_detects_wrong_keyhash():
    kh = default_key_hash(b"key")
    body, check = encode_entry_parts(b"key", b"value", V1, kh)
    entry = try_decode(body + check)
    assert not entry.checksum_ok(default_key_hash(b"other"))


def test_decode_detects_torn_bytes():
    kh = default_key_hash(b"key")
    body, check = encode_entry_parts(b"key", b"value-old!", V1, kh)
    raw = bytearray(body + check)
    raw[-12:-8] = b"NEW!"  # tear inside the value
    entry = try_decode(bytes(raw))
    assert entry is not None
    assert not entry.checksum_ok(kh)


def test_decode_survives_garbage_lengths():
    assert try_decode(b"") is None
    assert try_decode(b"\xff" * 16) is None
    # Length fields claiming more data than present must not crash.
    assert try_decode(b"\xff" * 40) is None


# -- slab allocator ----------------------------------------------------------

def test_slab_alloc_free_roundtrip():
    arena = Arena(256 * 1024, 256 * 1024)
    allocator = SlabAllocator(arena, slab_bytes=64 * 1024, min_block=64)
    off = allocator.alloc(100)
    assert off is not None
    assert allocator.block_size(off) == 128
    assert allocator.used_bytes == 128
    allocator.free(off)
    assert allocator.used_bytes == 0


def test_slab_size_class_rounding():
    arena = Arena(256 * 1024, 256 * 1024)
    allocator = SlabAllocator(arena, min_block=64)
    assert allocator.class_for(1) == 64
    assert allocator.class_for(64) == 64
    assert allocator.class_for(65) == 128
    assert allocator.class_for(10 ** 9) is None


def test_slab_distinct_offsets():
    arena = Arena(256 * 1024, 256 * 1024)
    allocator = SlabAllocator(arena)
    offsets = {allocator.alloc(64) for _ in range(100)}
    assert None not in offsets
    assert len(offsets) == 100


def test_slab_exhaustion_returns_none():
    arena = Arena(64 * 1024, 64 * 1024)
    allocator = SlabAllocator(arena, slab_bytes=64 * 1024, min_block=64)
    count = 0
    while allocator.alloc(32 * 1024) is not None:
        count += 1
    assert count == 2  # one slab of 64KB holds two 32KB blocks
    assert not allocator.can_satisfy(32 * 1024)


def test_slab_repurposing_between_classes():
    arena = Arena(64 * 1024, 64 * 1024)
    allocator = SlabAllocator(arena, slab_bytes=64 * 1024, min_block=64)
    big = allocator.alloc(32 * 1024)
    allocator.free(big)
    # The now-empty slab can serve a different size class.
    small = allocator.alloc(64)
    assert small is not None
    assert allocator.block_size(small) == 64


def test_slab_free_unknown_offset_raises():
    arena = Arena(64 * 1024, 64 * 1024)
    allocator = SlabAllocator(arena)
    with pytest.raises(ValueError):
        allocator.free(12345)


def test_slab_sees_arena_growth():
    arena = Arena(64 * 1024, 256 * 1024)
    allocator = SlabAllocator(arena, slab_bytes=64 * 1024, min_block=64)
    a = allocator.alloc(64 * 1024)
    assert a is not None
    assert allocator.alloc(64 * 1024) is None
    arena.grow(128 * 1024)
    assert allocator.can_satisfy(64 * 1024)
    assert allocator.alloc(64 * 1024) is not None


# -- data region -------------------------------------------------------------

def test_data_region_grow_opens_new_window():
    region = DataRegion(initial_bytes=64 * 1024, virtual_limit=1024 * 1024)
    old_id = region.region_id
    old_window = region.active_window
    region.grow(128 * 1024)
    assert region.region_id != old_id
    assert region.populated_bytes == 128 * 1024
    # Old window is still readable (clients converge lazily)...
    region.write_at(0, b"live")
    assert old_window.read(0, 4) == b"live"
    # ...until retired.
    retired = region.retire_oldest_window()
    assert retired is old_window
    assert old_window.revoked
