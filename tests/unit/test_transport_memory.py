"""Unit tests for RMA memory: arenas, windows, registration, revocation."""

import pytest

from repro.net import Fabric, FabricConfig
from repro.sim import Simulator
from repro.transport import (Arena, MemoryRegion, RegionRevokedError,
                             RegistrationCostModel, RmaEndpoint,
                             RmaOutOfBoundsError)


def test_arena_initial_population():
    arena = Arena(initial_bytes=1024, virtual_limit=4096)
    assert arena.populated == 1024
    assert arena.virtual_limit == 4096


def test_arena_rejects_initial_beyond_virtual_limit():
    with pytest.raises(ValueError):
        Arena(initial_bytes=8192, virtual_limit=4096)


def test_arena_grow_extends_population():
    arena = Arena(1024, 4096)
    arena.grow(2048)
    assert arena.populated == 2048
    # New bytes are zeroed.
    assert arena.read(1024, 1024) == bytes(1024)


def test_arena_grow_cannot_shrink_or_exceed():
    arena = Arena(1024, 4096)
    with pytest.raises(ValueError):
        arena.grow(512)
    with pytest.raises(ValueError):
        arena.grow(8192)


def test_arena_read_write_roundtrip():
    arena = Arena(128, 128)
    arena.write(10, b"hello")
    assert arena.read(10, 5) == b"hello"


def test_arena_bounds_checked():
    arena = Arena(64, 64)
    with pytest.raises(RmaOutOfBoundsError):
        arena.read(60, 8)
    with pytest.raises(RmaOutOfBoundsError):
        arena.write(62, b"xyz")


def test_window_reads_through_to_arena():
    arena = Arena(128, 256)
    window = MemoryRegion(arena)
    arena.write(0, b"abc")
    assert window.read(0, 3) == b"abc"


def test_overlapping_windows_share_bytes():
    """Reshaping exposes a second larger window over the same arena."""
    arena = Arena(128, 1024)
    old = MemoryRegion(arena, limit=128)
    arena.grow(512)
    new = MemoryRegion(arena, limit=512)
    new.write(100, b"shared")
    assert old.read(100, 6) == b"shared"
    assert new.region_id != old.region_id
    # Old window still bounded by its original limit.
    with pytest.raises(RmaOutOfBoundsError):
        old.read(200, 16)


def test_window_revocation_blocks_reads():
    arena = Arena(64, 64)
    window = MemoryRegion(arena)
    window.revoke()
    with pytest.raises(RegionRevokedError):
        window.read(0, 8)


def test_registration_cost_scales_with_pages():
    model = RegistrationCostModel(base_seconds=50e-6,
                                  per_page_seconds=0.25e-6, page_bytes=4096)
    small = model.registration_time(4096)
    large = model.registration_time(4096 * 1000)
    assert small == pytest.approx(50.25e-6)
    assert large == pytest.approx(50e-6 + 250e-6)


def test_endpoint_expose_resolve_revoke():
    sim = Simulator()
    fabric = Fabric(sim, FabricConfig())
    host = fabric.add_host("h")
    endpoint = RmaEndpoint(host)
    arena = Arena(64, 64)
    window = endpoint.expose(MemoryRegion(arena))
    assert endpoint.resolve(window.region_id) is window
    endpoint.revoke(window)
    with pytest.raises(RegionRevokedError):
        endpoint.resolve(window.region_id)
    assert endpoint.window_count == 0


def test_endpoint_unknown_region_is_revoked_error():
    sim = Simulator()
    fabric = Fabric(sim, FabricConfig())
    endpoint = RmaEndpoint(fabric.add_host("h"))
    with pytest.raises(RegionRevokedError):
        endpoint.resolve(123456)


def test_region_ids_are_unique():
    arena = Arena(16, 16)
    ids = {MemoryRegion(arena).region_id for _ in range(100)}
    assert len(ids) == 100
