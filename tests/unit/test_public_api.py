"""Public-API stability: the documented surface exists and is importable."""

import inspect

import pytest


def test_top_level_exports():
    import repro
    for name in repro.__all__:
        assert hasattr(repro, name), name
    assert repro.__version__


def test_core_exports():
    from repro import core
    for name in core.__all__:
        assert hasattr(core, name), name


@pytest.mark.parametrize("module_name", [
    "repro.sim", "repro.net", "repro.rpc", "repro.transport",
    "repro.shims", "repro.workloads", "repro.analysis", "repro.model",
    "repro.storage", "repro.baselines", "repro.telemetry",
])
def test_subpackage_all_lists_are_accurate(module_name):
    module = __import__(module_name, fromlist=["__all__"])
    for name in module.__all__:
        assert hasattr(module, name), f"{module_name}.{name}"


def test_quickstart_snippet_from_readme():
    """The README's quickstart must work verbatim."""
    from repro import Cell, CellSpec, ReplicationMode

    cell = Cell(CellSpec(mode=ReplicationMode.R3_2, num_shards=6,
                         transport="pony"))
    client = cell.connect_client()
    sim = cell.sim

    def app():
        yield from client.set(b"k", b"v")
        result = yield from client.get(b"k")
        assert result.hit and result.value == b"v"

    sim.run(until=sim.process(app()))


def test_every_public_class_has_a_docstring():
    import repro.core as core
    import repro.sim as sim
    import repro.transport as transport
    missing = []
    for module in (core, sim, transport):
        for name in module.__all__:
            obj = getattr(module, name)
            if inspect.isclass(obj) and not (obj.__doc__ or "").strip():
                missing.append(f"{module.__name__}.{name}")
    assert missing == []


def test_results_share_the_op_result_shape():
    """GetResult and MutationResult are both OpResults with the common
    status/latency/attempts/error/trace fields."""
    from repro.core import GetResult, GetStatus, MutationResult, OpResult

    assert issubclass(GetResult, OpResult)
    assert issubclass(MutationResult, OpResult)
    for cls in (GetResult, MutationResult):
        result = cls()
        for field_name in ("status", "latency", "attempts", "error",
                           "trace"):
            assert hasattr(result, field_name), (cls, field_name)
    hit = GetResult(status=GetStatus.HIT, value=b"v", latency=1e-6)
    assert hit.ok and hit.hit
    miss = GetResult(status=GetStatus.MISS)
    assert miss.ok and not miss.hit
    err = GetResult(status=GetStatus.ERROR, error="deadline")
    assert not err.ok


def test_get_strategy_coercion():
    from repro.core import (CliqueMapError, GetStrategy, LookupStrategy)

    assert LookupStrategy is GetStrategy  # back-compat alias
    assert GetStrategy.coerce("scar") is GetStrategy.SCAR
    assert GetStrategy.coerce("2XR") is GetStrategy.TWO_R
    assert GetStrategy.coerce(GetStrategy.MSG) is GetStrategy.MSG
    with pytest.raises(CliqueMapError):
        GetStrategy.coerce("quantum")


def test_make_client_rejects_unknown_strategy():
    from repro.core import Cell, CellSpec, CliqueMapError, ReplicationMode

    cell = Cell(CellSpec(mode=ReplicationMode.R1, num_shards=2,
                         transport="pony"))
    with pytest.raises(CliqueMapError):
        cell.make_client(strategy="quantum")
    client = cell.make_client(strategy="rpc")  # strings are accepted
    from repro.core import GetStrategy
    assert client.strategy is GetStrategy.RPC


def test_client_and_cell_are_context_managers():
    from repro.core import Cell, CellSpec, ReplicationMode

    with Cell(CellSpec(mode=ReplicationMode.R1, num_shards=2,
                       transport="pony")) as cell:
        with cell.connect_client() as client:
            def app():
                yield from client.set(b"k", b"v")
                result = yield from client.get(b"k")
                assert result.hit

            cell.sim.run(until=cell.sim.process(app()))
        assert client.closed
    # Cell exit closes every client it created.
    cell2 = Cell(CellSpec(mode=ReplicationMode.R1, num_shards=2,
                          transport="pony"))
    with cell2:
        inner = cell2.connect_client()
    assert inner.closed


def test_client_public_methods_are_generators():
    """Operations must be drivable with `yield from` (documented model)."""
    from repro.core import CliqueMapClient
    for method in ("get", "set", "erase", "cas", "append", "get_multi",
                   "set_multi", "connect"):
        fn = getattr(CliqueMapClient, method)
        assert inspect.isgeneratorfunction(fn), method
