"""Public-API stability: the documented surface exists and is importable."""

import inspect

import pytest


def test_top_level_exports():
    import repro
    for name in repro.__all__:
        assert hasattr(repro, name), name
    assert repro.__version__


def test_core_exports():
    from repro import core
    for name in core.__all__:
        assert hasattr(core, name), name


@pytest.mark.parametrize("module_name", [
    "repro.sim", "repro.net", "repro.rpc", "repro.transport",
    "repro.shims", "repro.workloads", "repro.analysis", "repro.model",
    "repro.storage", "repro.baselines",
])
def test_subpackage_all_lists_are_accurate(module_name):
    module = __import__(module_name, fromlist=["__all__"])
    for name in module.__all__:
        assert hasattr(module, name), f"{module_name}.{name}"


def test_quickstart_snippet_from_readme():
    """The README's quickstart must work verbatim."""
    from repro import Cell, CellSpec, ReplicationMode

    cell = Cell(CellSpec(mode=ReplicationMode.R3_2, num_shards=6,
                         transport="pony"))
    client = cell.connect_client()
    sim = cell.sim

    def app():
        yield from client.set(b"k", b"v")
        result = yield from client.get(b"k")
        assert result.hit and result.value == b"v"

    sim.run(until=sim.process(app()))


def test_every_public_class_has_a_docstring():
    import repro.core as core
    import repro.sim as sim
    import repro.transport as transport
    missing = []
    for module in (core, sim, transport):
        for name in module.__all__:
            obj = getattr(module, name)
            if inspect.isclass(obj) and not (obj.__doc__ or "").strip():
                missing.append(f"{module.__name__}.{name}")
    assert missing == []


def test_client_public_methods_are_generators():
    """Operations must be drivable with `yield from` (documented model)."""
    from repro.core import CliqueMapClient
    for method in ("get", "set", "erase", "cas", "append", "get_multi",
                   "set_multi", "connect"):
        fn = getattr(CliqueMapClient, method)
        assert inspect.isgeneratorfunction(fn), method
