"""Unit tests for the RPC framework (wire, auth, channels, servers)."""

import pytest

from repro.net import Fabric, FabricConfig, gbps
from repro.rpc import (Acl, ApplicationError, AuthConfig, Authenticator,
                       DeadlineExceededError, Message, MethodNotFoundError,
                       PermissionDeniedError, Principal, ProtocolVersion,
                       RpcServer, UnavailableError, VersionMismatchError,
                       connect, estimate_size)
from repro.sim import Simulator


def build(handler_map=None, acl=None, auth=None, server_versions=None):
    sim = Simulator()
    fabric = Fabric(sim, FabricConfig(host_rate_bytes_per_sec=gbps(50.0),
                                      one_way_delay=4e-6, delay_jitter=0.0))
    client_host = fabric.add_host("client")
    server_host = fabric.add_host("server")
    kwargs = {}
    if server_versions:
        kwargs["min_version"], kwargs["max_version"] = server_versions
    server = RpcServer(sim, server_host, "svc", acl=acl, **kwargs)
    for method, handler in (handler_map or {}).items():
        server.register(method, handler)
    channel = connect(sim, fabric, client_host, server, Principal("tester"),
                      authenticator=auth)
    return sim, fabric, client_host, server_host, server, channel


def echo_handler(payload, context):
    yield context.sim.timeout(0)
    return {"echo": payload.get("msg")}


def run_call(sim, channel, method, payload, **kwargs):
    def caller():
        result = yield from channel.call(method, payload, **kwargs)
        return result
    return sim.run(until=sim.process(caller()))


def test_estimate_size_primitives():
    assert estimate_size(None) == 1
    assert estimate_size(7) == 8
    assert estimate_size(b"abcd") == 4
    assert estimate_size("hey") == 3
    assert estimate_size({"k": "vv"}) > 3
    assert estimate_size([1, 2]) == 20


def test_message_wire_size_override():
    small = Message("M", {"x": 1})
    big = Message("M", {"x": 1}, size_override=10_000)
    assert big.wire_size > small.wire_size
    assert big.wire_size >= 10_000


def test_protocol_version_ordering():
    assert ProtocolVersion(1, 0) < ProtocolVersion(1, 5) < ProtocolVersion(2, 0)
    assert ProtocolVersion(1, 3).compatible_with(ProtocolVersion(1, 0),
                                                 ProtocolVersion(1, 9))


def test_basic_call_roundtrip():
    sim, *_rest, channel = build({"Echo": echo_handler})
    result = run_call(sim, channel, "Echo", {"msg": "hi"})
    assert result == {"echo": "hi"}
    assert sim.now > 0


def test_call_charges_framework_cpu_both_sides():
    sim, _f, client_host, server_host, server, channel = build(
        {"Echo": echo_handler})
    run_call(sim, channel, "Echo", {"msg": "hi"})
    client_cpu = client_host.ledger.total()
    server_cpu = server_host.ledger.total()
    # The paper's headline: >50us combined for even an empty RPC.
    assert client_cpu + server_cpu > 50e-6
    assert client_cpu > 20e-6
    assert server_cpu > 20e-6


def test_call_metrics_count_bytes():
    sim, *_rest, server, channel = build({"Echo": echo_handler})
    run_call(sim, channel, "Echo", {"msg": "hi"})
    assert channel.metrics.calls == 1
    assert channel.metrics.errors == 0
    assert channel.metrics.bytes_sent > 0
    assert server.metrics.total_bytes == channel.metrics.total_bytes


def test_method_not_found():
    sim, *_rest, channel = build({})
    with pytest.raises(MethodNotFoundError):
        run_call(sim, channel, "Nope", {})


def test_handler_exception_wrapped():
    def bad(payload, context):
        yield context.sim.timeout(0)
        raise KeyError("missing")

    sim, *_rest, channel = build({"Bad": bad})
    with pytest.raises(ApplicationError) as excinfo:
        run_call(sim, channel, "Bad", {})
    assert isinstance(excinfo.value.cause, KeyError)


def test_deadline_exceeded():
    def slow(payload, context):
        yield context.sim.timeout(10e-3)
        return {}

    sim, *_rest, channel = build({"Slow": slow})
    with pytest.raises(DeadlineExceededError):
        run_call(sim, channel, "Slow", {}, deadline=1e-3)


def test_deadline_not_triggered_when_fast():
    sim, *_rest, channel = build({"Echo": echo_handler})
    result = run_call(sim, channel, "Echo", {"msg": "x"}, deadline=10e-3)
    assert result == {"echo": "x"}


def test_unavailable_when_server_stopped():
    sim, *_rest, server, channel = build({"Echo": echo_handler})
    server.stop()
    with pytest.raises(UnavailableError):
        run_call(sim, channel, "Echo", {"msg": "x"})
    assert channel.metrics.errors == 1


def test_unavailable_when_host_crashed():
    sim, _f, _ch_host, server_host, _server, channel = build(
        {"Echo": echo_handler})
    server_host.crash()
    with pytest.raises(UnavailableError):
        run_call(sim, channel, "Echo", {"msg": "x"})


def test_server_restart_restores_service():
    sim, *_rest, server, channel = build({"Echo": echo_handler})
    server.stop()
    server.start()
    assert run_call(sim, channel, "Echo", {"msg": "y"}) == {"echo": "y"}


def test_acl_denies_unauthorized_principal():
    acl = Acl()
    acl.allow("Echo", "someone-else")
    sim, *_rest, channel = build({"Echo": echo_handler}, acl=acl)
    with pytest.raises(PermissionDeniedError):
        run_call(sim, channel, "Echo", {"msg": "x"})


def test_acl_allows_authorized_principal():
    acl = Acl()
    acl.allow("Echo", "tester")
    sim, *_rest, channel = build({"Echo": echo_handler}, acl=acl)
    assert run_call(sim, channel, "Echo", {"msg": "x"}) == {"echo": "x"}


def test_acl_wildcard_method():
    acl = Acl()
    acl.allow("*", "tester")
    sim, *_rest, channel = build({"Echo": echo_handler}, acl=acl)
    assert run_call(sim, channel, "Echo", {"msg": "x"}) == {"echo": "x"}


def test_version_mismatch_rejected():
    sim, *_rest, channel = build(
        {"Echo": echo_handler},
        server_versions=(ProtocolVersion(2, 0), ProtocolVersion(2, 9)))
    with pytest.raises(VersionMismatchError):
        run_call(sim, channel, "Echo", {"msg": "x"})


def test_auth_handshake_costs_cpu_and_rtts():
    auth = Authenticator(AuthConfig(enabled=True, handshake_cpu=30e-6,
                                    handshake_rtts=2))
    sim, _f, client_host, server_host, _server, channel = build(
        {"Echo": echo_handler}, auth=auth)
    run_call(sim, channel, "Echo", {"msg": "x"})
    assert auth.handshakes == 1
    assert client_host.ledger.total() > 30e-6
    # Second call reuses the channel: no new handshake.
    run_call(sim, channel, "Echo", {"msg": "x"})
    assert auth.handshakes == 1


def test_large_response_size_override_slows_transfer():
    def small(payload, context):
        yield context.sim.timeout(0)
        return {"ok": True}

    def large(payload, context):
        yield context.sim.timeout(0)
        context.response_size_override = 10 ** 6
        return {"ok": True}

    sim1, *_r1, ch1 = build({"M": small})
    run_call(sim1, ch1, "M", {})
    t_small = sim1.now

    sim2, *_r2, ch2 = build({"M": large})
    run_call(sim2, ch2, "M", {})
    t_large = sim2.now
    assert t_large > t_small + 1e-4  # ~160us of extra serialization at 50Gbps


def test_concurrent_calls_interleave():
    def slow(payload, context):
        yield context.sim.timeout(1e-3)
        return {"id": payload["id"]}

    sim, *_rest, channel = build({"Slow": slow})
    results = []

    def caller(i):
        result = yield from channel.call("Slow", {"id": i})
        results.append((sim.now, result["id"]))

    for i in range(3):
        sim.process(caller(i))
    sim.run()
    # All three overlap on the server (handlers run concurrently),
    # so they all finish close to 1ms, not 3ms.
    assert max(t for t, _ in results) < 2e-3
    assert sorted(i for _, i in results) == [0, 1, 2]
