"""Unit tests for data-region defragmentation (§4.1)."""


from repro.core import (BackendConfig, Cell, CellSpec, GetStatus,
                        LookupStrategy, ReplicationMode)
from repro.rpc import Principal, connect as rpc_connect


def build():
    spec = CellSpec(
        mode=ReplicationMode.R1, num_shards=1, transport="pony",
        backend_config=BackendConfig(
            data_initial_bytes=512 * 1024, data_virtual_limit=512 * 1024,
            slab_bytes=64 * 1024, num_buckets=1024, ways=7))
    cell = Cell(spec)
    client = cell.connect_client(strategy=LookupStrategy.TWO_R)
    backend = cell.backend_by_task("backend-0")
    return cell, client, backend


def fragment(cell, client, keep_every=8, count=200, size=900):
    """Fill with ~1KB entries then erase most, leaving sparse slabs."""

    def app():
        for i in range(count):
            result = yield from client.set(b"frag-%d" % i, b"x" * size)
            assert result.status.name == "APPLIED"
        for i in range(count):
            if i % keep_every != 0:
                yield from client.erase(b"frag-%d" % i)

    cell.sim.run(until=cell.sim.process(app()))


def test_defragment_compacts_sparse_slabs():
    cell, client, backend = build()
    fragment(cell, client)
    allocator = backend.data.allocator
    sparse_before = len(allocator.sparse_slabs(0.5))
    slabs_before = allocator.live_slab_count
    assert sparse_before > 1

    def run():
        moved = yield from backend.defragment(0.5)
        return moved

    moved = cell.sim.run(until=cell.sim.process(run()))
    assert moved > 0
    assert backend.stats.defrag_moves == moved
    assert allocator.live_slab_count < slabs_before
    assert len(allocator.sparse_slabs(0.5)) < sparse_before


def test_data_survives_defragmentation():
    cell, client, backend = build()
    fragment(cell, client)

    def run():
        yield from backend.defragment(0.9)  # aggressive compaction
        hits = 0
        for i in range(0, 200, 8):
            result = yield from client.get(b"frag-%d" % i)
            if result.hit and result.value == b"x" * 900:
                hits += 1
        return hits

    hits = cell.sim.run(until=cell.sim.process(run()))
    assert hits == 25


def test_defragment_frees_slabs_for_other_size_classes():
    cell, client, backend = build()
    fragment(cell, client)

    def run():
        yield from backend.defragment(0.9)
        # Freed slabs are repurposable: large values now fit.
        result = yield from client.set(b"big", b"y" * 30000)
        return result.status.name

    assert cell.sim.run(until=cell.sim.process(run())) == "APPLIED"


def test_defragment_rpc_handler():
    cell, client, backend = build()
    fragment(cell, client)
    host = cell.fabric.add_host("host/admin")
    channel = rpc_connect(cell.sim, cell.fabric, host, backend.rpc_server,
                          Principal("admin"))

    def call():
        reply = yield from channel.call("Defragment",
                                        {"occupancy_threshold": 0.6})
        return reply

    reply = cell.sim.run(until=cell.sim.process(call()))
    assert reply["moved"] > 0
    assert reply["live_slabs"] >= 1


def test_reads_racing_defrag_never_return_garbage():
    cell, client, backend = build()
    fragment(cell, client)
    results = []

    def reader():
        end = cell.sim.now + 2e-3
        while cell.sim.now < end:
            result = yield from client.get(b"frag-0")
            results.append(result)
            yield cell.sim.timeout(2e-6)

    def defrag():
        yield from backend.defragment(0.9)

    cell.sim.process(defrag())
    cell.sim.run(until=cell.sim.process(reader()))
    assert results
    for result in results:
        assert result.status is GetStatus.HIT
        assert result.value == b"x" * 900


def test_defragment_noop_when_already_compact():
    cell, client, backend = build()

    def app():
        for i in range(10):
            yield from client.set(b"k-%d" % i, b"x" * 900)
        moved = yield from backend.defragment(0.5)
        return moved

    # A mostly-empty region has one partially-filled slab per class at
    # most; compaction has nowhere better to put things.
    moved = cell.sim.run(until=cell.sim.process(app()))
    assert backend.resident_keys == 10
