"""Unit tests for language shims, workload generators, and analysis."""

import pytest

from repro.analysis import (CounterSeries, LatencyRecorder, TimeSeries,
                            cdf_points, cpu_ns_per_op, cpu_us_per_op,
                            render_percentile_lines, render_series,
                            render_table)
from repro.core import Cell, CellSpec, ReplicationMode, SetStatus
from repro.shims import PROFILES, NamedPipe, make_shim
from repro.sim import RandomStream, Simulator
from repro.workloads import (AdsScenario, AdsWorkload, GeoScenario,
                             GeoWorkload, KeySpace, LoadGenerator,
                             WorkloadMetrics, ads_batch_sizes,
                             ads_object_sizes, diurnal_rate,
                             geo_batch_sizes, geo_object_sizes, populate)


# -- analysis -----------------------------------------------------------------

def test_latency_recorder_percentiles():
    rec = LatencyRecorder()
    rec.extend([float(i) for i in range(1, 101)])
    assert rec.count == 100
    assert rec.percentile(50) == 50.0
    assert rec.percentile(99) == 99.0
    assert rec.mean() == pytest.approx(50.5)


def test_latency_recorder_empty_is_nan():
    import math
    rec = LatencyRecorder()
    assert math.isnan(rec.mean())
    assert math.isnan(rec.percentile(50))


def test_time_series_bins_and_rates():
    ts = TimeSeries(bin_width=1.0)
    for t in [0.1, 0.5, 1.2, 2.9]:
        ts.record(t, t * 10)
    assert ts.bins() == [0, 1, 2]
    assert ts.counts()[0] == (0.5, 2)
    assert ts.rate_series()[0] == (0.5, 2.0)
    assert ts.series(50)[0][1] in (1.0, 5.0)


def test_counter_series():
    cs = CounterSeries(bin_width=2.0)
    cs.add(0.5, 100)
    cs.add(1.5, 100)
    cs.add(3.0, 50)
    assert cs.total() == 250
    assert cs.per_second()[0] == (1.0, 100.0)


def test_cdf_points_monotone():
    points = cdf_points([5.0, 1.0, 3.0, 2.0, 4.0])
    values = [v for v, _f in points]
    fractions = [f for _v, f in points]
    assert values == sorted(values)
    assert fractions[-1] == 1.0


def test_cpu_per_op_helpers():
    assert cpu_us_per_op(1.0, 1_000_000) == pytest.approx(1.0)
    assert cpu_ns_per_op(1.0, 1_000_000) == pytest.approx(1000.0)
    with pytest.raises(ValueError):
        cpu_us_per_op(1.0, 0)


def test_render_table_and_series_smoke():
    table = render_table("T", ["a", "b"], [[1, 2.5], ["x", 0.001]])
    assert "T" in table and "2.50" in table
    chart = render_series("S", [(1, 10.0), (2, 20.0)])
    assert "#" in chart
    lines = render_percentile_lines("P", [("p50", [(1, 5.0)]),
                                          ("p99", [(1, 9.0)])])
    assert "p99" in lines


# -- shims -----------------------------------------------------------------

def test_named_pipe_costs_latency_and_bandwidth():
    sim = Simulator()
    pipe = NamedPipe(sim, latency=5e-6, bytes_per_sec=1e9)

    def proc():
        yield from pipe.transfer(1000)

    sim.run(until=sim.process(proc()))
    assert sim.now == pytest.approx(5e-6 + 1e-6)
    assert pipe.messages == 1


def test_shim_profiles_cover_four_languages():
    assert set(PROFILES) == {"cpp", "java", "go", "py"}
    assert not PROFILES["cpp"].uses_pipes
    assert PROFILES["py"].marshal_cpu > PROFILES["go"].marshal_cpu > \
        PROFILES["java"].marshal_cpu


def test_shim_roundtrip_all_languages():
    for language in PROFILES:
        cell = Cell(CellSpec(mode=ReplicationMode.R1, num_shards=2))
        shim = make_shim(cell.connect_client(), language)

        def app():
            result = yield from shim.set(b"k", b"v")
            assert result.status is SetStatus.APPLIED
            got = yield from shim.get(b"k")
            assert got.hit and got.value == b"v"
            return got

        cell.sim.run(until=cell.sim.process(app()))
        assert shim.ops == 2


def test_shim_latency_ordering_matches_figure6():
    latencies = {}
    for language in PROFILES:
        cell = Cell(CellSpec(mode=ReplicationMode.R1, num_shards=2))
        shim = make_shim(cell.connect_client(), language)

        def app():
            yield from shim.set(b"k", b"v" * 64)
            start = cell.sim.now
            for _ in range(20):
                yield from shim.get(b"k")
            return (cell.sim.now - start) / 20

        latencies[language] = cell.sim.run(until=cell.sim.process(app()))
    assert latencies["cpp"] < latencies["java"] < latencies["go"] < \
        latencies["py"]


def test_shim_charges_cpu_to_shim_component():
    cell = Cell(CellSpec(mode=ReplicationMode.R1, num_shards=2))
    shim = make_shim(cell.connect_client(), "py")

    def app():
        yield from shim.set(b"k", b"v")
        yield from shim.get(b"k")

    cell.sim.run(until=cell.sim.process(app()))
    assert shim.client.host.ledger.seconds("shim:py") > 50e-6


def test_shim_rejects_unknown_language():
    cell = Cell(CellSpec(mode=ReplicationMode.R1, num_shards=2))
    with pytest.raises(ValueError):
        make_shim(cell.connect_client(), "rust")


# -- workload distributions ---------------------------------------------------

def test_object_size_shapes_match_figure10():
    stream = RandomStream(1, "t")
    ads = ads_object_sizes(stream.child("a"))
    geo = geo_object_sizes(stream.child("g"))
    ads_draws = sorted(ads.sample() for _ in range(5000))
    geo_draws = sorted(geo.sample() for _ in range(5000))
    ads_median = ads_draws[2500]
    geo_median = geo_draws[2500]
    # Ads objects are bigger than Geo; both typically a few KB or less.
    assert geo_median < ads_median
    assert ads_median < 5000
    assert geo_median < 1000


def test_batch_size_shapes():
    stream = RandomStream(2, "t")
    ads = ads_batch_sizes(stream.child("a"))
    geo = geo_batch_sizes(stream.child("g"))
    ads_draws = sorted(ads.sample() for _ in range(20000))
    geo_draws = sorted(geo.sample() for _ in range(20000))
    # Ads p99.9 lands in the 30-300 range.
    assert 30 <= ads_draws[int(0.999 * len(ads_draws))] <= 300
    # Geo batches are tens of segments.
    assert 5 <= geo_draws[len(geo_draws) // 2] <= 60


def test_diurnal_rate_swing():
    rate = diurnal_rate(1000.0, amplitude=0.5, period=10.0)
    values = [rate(t / 10) for t in range(105)]
    assert max(values) / min(values) == pytest.approx(3.0, rel=0.05)


# -- generators -----------------------------------------------------------------

def test_keyspace_sampling():
    ks = KeySpace(RandomStream(3, "k"), num_keys=50)
    assert ks.key(0) == b"key-0"
    assert len(ks.all_keys()) == 50
    sample = ks.sample_keys(10)
    assert all(k in set(ks.all_keys()) for k in sample)


def test_keyspace_key_cache_is_bounded_to_the_head():
    ks = KeySpace(RandomStream(3, "k"), num_keys=1_000_000, cache_ranks=8)
    # Tail keys render correctly but never enter the cache.
    for i in (0, 7, 8, 9, 500_000, 999_999):
        assert ks.key(i) == b"key-%d" % i
    for i in (8, 9, 500_000, 999_999):
        ks.key(i)
    assert len(ks._key_cache) <= 8
    # Head keys are cached (same object on repeat renders).
    assert ks.key(3) is ks.key(3)


def test_populate_installs_corpus():
    cell = Cell(CellSpec(mode=ReplicationMode.R3_2, num_shards=3))
    client = cell.connect_client()
    ks = KeySpace(RandomStream(4, "k"), num_keys=30)
    installed = cell.sim.run(until=cell.sim.process(
        populate(client, ks, 64)))
    assert installed == 30


def test_load_generator_closed_loop_records_metrics():
    cell = Cell(CellSpec(mode=ReplicationMode.R3_2, num_shards=3))
    clients = [cell.connect_client() for _ in range(2)]
    ks = KeySpace(RandomStream(5, "k"), num_keys=20)
    cell.sim.run(until=cell.sim.process(populate(clients[0], ks, 64)))
    gen = LoadGenerator(cell.sim, clients, ks, RandomStream(5, "load"))
    procs = gen.start_closed_loop_gets(workers_per_client=2, duration=5e-3)
    cell.sim.run(until=cell.sim.all_of(procs))
    assert gen.metrics.gets > 10
    assert gen.metrics.hit_rate == 1.0
    assert gen.metrics.get_latency.percentile(50) > 0


def test_load_generator_open_loop_offered_rate():
    cell = Cell(CellSpec(mode=ReplicationMode.R3_2, num_shards=3))
    clients = [cell.connect_client()]
    ks = KeySpace(RandomStream(6, "k"), num_keys=20)
    cell.sim.run(until=cell.sim.process(populate(clients[0], ks, 64)))
    metrics = WorkloadMetrics().with_timeline(bin_width=20e-3)
    gen = LoadGenerator(cell.sim, clients, ks, RandomStream(6, "load"),
                        metrics)
    procs = gen.start_open_loop_gets(rate_per_client=5000.0, duration=0.1)
    cell.sim.run(until=cell.sim.all_of(procs))
    cell.sim.run(until=cell.sim.now + 10e-3)  # drain stragglers
    achieved = metrics.gets / 0.1
    assert achieved == pytest.approx(5000.0, rel=0.35)


def test_ads_workload_smoke():
    workload = AdsWorkload(AdsScenario(num_shards=3, num_clients=2,
                                       num_keys=100,
                                       get_rate_per_client=500.0,
                                       write_rate_per_client=20.0,
                                       backfill_period=0.5,
                                       duration=1.0))
    workload.preload()
    metrics = workload.run()
    assert metrics.gets > 100
    assert metrics.hit_rate > 0.9
    assert metrics.sets > 0
    assert workload.backfill_sets > 0


def test_geo_workload_smoke_diurnal():
    workload = GeoWorkload(GeoScenario(num_shards=3, num_clients=2,
                                       num_updaters=1, num_keys=100,
                                       base_get_rate_per_client=500.0,
                                       day_length=1.0, duration=2.0,
                                       update_rate_per_client=30.0))
    workload.preload()
    metrics = workload.run()
    assert metrics.gets > 200
    rates = [r for _t, r in metrics.get_timeline.rate_series()]
    # Diurnal swing visible in the GET rate timeline.
    assert max(rates) > 1.8 * min(rates)
    assert metrics.sets > 0
