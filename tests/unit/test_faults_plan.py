"""Unit tests for fault plans and the injector's bookkeeping."""

import pytest

from repro.core import Cell, CellSpec, ReplicationMode
from repro.faults import DEFAULT_KINDS, FaultEvent, FaultInjector, FaultPlan
from repro.sim import RandomStream


def test_plan_generation_is_deterministic():
    a = FaultPlan.generate(RandomStream(7, "plan"), duration=2.0,
                           num_shards=3, num_clients=3)
    b = FaultPlan.generate(RandomStream(7, "plan"), duration=2.0,
                           num_shards=3, num_clients=3)
    assert a.schedule_lines() == b.schedule_lines()


def test_plan_generation_varies_with_seed():
    a = FaultPlan.generate(RandomStream(7, "plan"), duration=2.0,
                           num_shards=3)
    b = FaultPlan.generate(RandomStream(8, "plan"), duration=2.0,
                           num_shards=3)
    assert a.schedule_lines() != b.schedule_lines()


def test_plan_always_ends_with_heal_all():
    plan = FaultPlan.generate(RandomStream(1, "plan"), duration=1.5,
                              num_shards=3)
    events = plan.events
    assert events[-1].kind == "heal_all"
    assert events[-1].at == 1.5
    assert all(e.at <= 1.5 for e in events)


def test_plan_events_sorted_and_kinds_known():
    plan = FaultPlan.generate(RandomStream(42, "plan"), duration=5.0,
                              num_shards=4, num_clients=2)
    times = [e.at for e in plan.events]
    assert times == sorted(times)
    known = set(DEFAULT_KINDS) | {"heal_all"}
    assert {e.kind for e in plan.events} <= known
    # "nothing" slots are pacing only — never scheduled.
    assert "nothing" not in {e.kind for e in plan.events}


def test_plan_generate_rejects_unknown_kind():
    with pytest.raises(ValueError):
        FaultPlan.generate(RandomStream(1, "plan"), duration=10.0,
                           num_shards=3, kinds=["meteor-strike"])


def test_plan_add_and_describe():
    plan = FaultPlan()
    plan.add(0.5, "crash", shard=1, restart_delay=0.1)
    plan.add(0.25, "gray", duration=0.2, shard=0, loss_probability=0.5)
    assert len(plan) == 2
    lines = plan.schedule_lines()
    assert lines[0].startswith("t=0.250s gray")
    assert "for=0.2s" in lines[0]
    assert lines[1].startswith("t=0.500s crash")
    assert "shard=1" in lines[1]


def test_event_describe_formats_floats_compactly():
    event = FaultEvent(at=1.0, kind="gray",
                       args={"loss_probability": 0.123456, "shard": 2},
                       duration=0.25)
    text = event.describe()
    assert "loss_probability=0.123" in text
    assert "shard=2" in text
    assert "for=0.25s" in text


def _build_cell():
    return Cell(CellSpec(mode=ReplicationMode.R3_2, num_shards=3,
                         transport="pony"))


def test_injector_applies_partition_gray_and_heals():
    cell = _build_cell()
    client_host = cell.fabric.add_host("unit-client")
    backend = cell.backend_by_task(cell.task_for_shard(0))

    plan = FaultPlan()
    plan.add(0.01, "partition", client=0, shard=0)
    plan.add(0.02, "gray", duration=10.0, shard=0, loss_probability=0.5)
    plan.add(0.03, "heal")
    plan.add(0.05, "heal_all")

    injector = FaultInjector(cell, plan, client_hosts=[client_host])
    probes = []

    def probe():
        yield cell.sim.timeout(0.015)
        probes.append(("partitioned",
                       cell.fabric.is_partitioned(client_host,
                                                  backend.host)))
        yield cell.sim.timeout(0.01)   # t=0.025: gray installed
        probes.append(("fault", cell.fabric.host_fault(backend.host)))
        yield cell.sim.timeout(0.01)   # t=0.035: partition healed
        probes.append(("healed",
                       not cell.fabric.is_partitioned(client_host,
                                                      backend.host)))

    cell.sim.process(probe())
    cell.sim.run(until=injector.start())

    assert dict(probes)["partitioned"] is True
    assert dict(probes)["fault"] is not None
    assert dict(probes)["fault"].loss_probability == 0.5
    assert dict(probes)["healed"] is True
    # heal_all cleared the (10s-long) gray fault early.
    assert cell.fabric.host_fault(backend.host) is None

    outcomes = [(e.kind, outcome) for _, e, outcome in injector.injected]
    assert ("partition", "fired") in outcomes
    assert ("gray", "fired") in outcomes
    assert ("heal", "fired") in outcomes
    assert cell.metrics.total("cliquemap_faults_injected_total",
                              outcome="fired") == 4


def test_injector_skips_impossible_events():
    cell = _build_cell()
    plan = FaultPlan()
    plan.add(0.01, "heal")                      # nothing to heal
    plan.add(0.02, "partition", client=0, shard=0)  # no client hosts
    plan.add(0.03, "heal_all")
    injector = FaultInjector(cell, plan, client_hosts=[])
    cell.sim.run(until=injector.start())
    outcomes = [(e.kind, outcome) for _, e, outcome in injector.injected]
    assert ("heal", "skipped") in outcomes
    assert ("partition", "skipped") in outcomes
    assert cell.metrics.total("cliquemap_faults_injected_total",
                              outcome="skipped") == 2


def test_injector_crash_restarts_backend():
    cell = _build_cell()
    task = cell.task_for_shard(1)
    plan = FaultPlan()
    plan.add(0.01, "crash", shard=1, restart_delay=0.05)
    plan.add(0.02, "heal_all")
    injector = FaultInjector(cell, plan, client_hosts=[])

    cell.sim.run(until=injector.start())
    assert not cell.backend_by_task(task).alive   # injector done, still down
    cell.sim.run(until=cell.sim.now + 0.1)        # restart_delay elapses
    assert cell.backend_by_task(task).alive


def test_injector_records_marker_spans():
    cell = _build_cell()
    plan = FaultPlan()
    plan.add(0.01, "gray", duration=0.005, shard=0, latency_multiplier=2.0)
    plan.add(0.02, "heal_all")
    injector = FaultInjector(cell, plan, client_hosts=[])
    cell.sim.run(until=injector.start())
    names = [span.name for span in cell.tracer.finished]
    assert "fault.gray" in names
    assert "fault.heal_all" in names
