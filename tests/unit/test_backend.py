"""Unit tests for backend mutation handlers, eviction, and reshaping."""


from repro.core import (BackendConfig, Cell, CellSpec, ReplicationMode,
                        TrueTime, VersionFactory)
from repro.rpc import Principal, connect as rpc_connect
from repro.sim import RandomStream


def build_cell(backend_config=None, num_shards=1, mode=ReplicationMode.R1,
               transport="pony"):
    spec = CellSpec(mode=mode, num_shards=num_shards, transport=transport,
                    backend_config=backend_config or BackendConfig())
    return Cell(spec)


def channel_to(cell, task="backend-0"):
    backend = cell.backend_by_task(task)
    host = cell.fabric.add_host("host/test-driver")
    return rpc_connect(cell.sim, cell.fabric, host, backend.rpc_server,
                       Principal("test")), backend


def call(cell, channel, method, payload, **kwargs):
    def caller():
        return (yield from channel.call(method, payload, **kwargs))
    return cell.sim.run(until=cell.sim.process(caller()))


def versions_for(cell, client_id=77):
    return VersionFactory(client_id, TrueTime(
        cell.sim, stream=RandomStream(5, "t")))


def do_set(cell, channel, key, value, version):
    return call(cell, channel, "Set",
                {"key": key, "value": value, "version": version.pack()})


def test_set_and_lookup_roundtrip():
    cell = build_cell()
    channel, backend = channel_to(cell)
    versions = versions_for(cell)
    reply = do_set(cell, channel, b"k", b"v", versions.next())
    assert reply["applied"]
    lookup = call(cell, channel, "Lookup", {"key": b"k"})
    assert lookup["found"]
    assert lookup["value"] == b"v"
    assert backend.stats.sets_applied == 1


def test_set_rejects_stale_version():
    cell = build_cell()
    channel, backend = channel_to(cell)
    versions = versions_for(cell)
    v1, v2 = versions.next(), versions.next()
    assert do_set(cell, channel, b"k", b"new", v2)["applied"]
    reply = do_set(cell, channel, b"k", b"old", v1)
    assert not reply["applied"]
    assert reply["reason"] == "superseded"
    assert call(cell, channel, "Lookup", {"key": b"k"})["value"] == b"new"
    assert backend.stats.sets_superseded == 1


def test_set_overwrites_with_newer_version():
    cell = build_cell()
    channel, _backend = channel_to(cell)
    versions = versions_for(cell)
    do_set(cell, channel, b"k", b"one", versions.next())
    do_set(cell, channel, b"k", b"two", versions.next())
    assert call(cell, channel, "Lookup", {"key": b"k"})["value"] == b"two"


def test_erase_installs_tombstone_blocking_late_set():
    cell = build_cell()
    channel, backend = channel_to(cell)
    versions = versions_for(cell)
    v_set, v_late_set, v_erase = (versions.next(), versions.next(),
                                  versions.next())
    do_set(cell, channel, b"k", b"v", v_set)
    reply = call(cell, channel, "Erase",
                 {"key": b"k", "version": v_erase.pack()})
    assert reply["applied"]
    assert not call(cell, channel, "Lookup", {"key": b"k"})["found"]
    # A SET whose version predates the erase must not resurrect the value.
    late = do_set(cell, channel, b"k", b"zombie", v_late_set)
    assert not late["applied"]
    assert not call(cell, channel, "Lookup", {"key": b"k"})["found"]
    assert backend.stats.erases_applied == 1


def test_erase_of_absent_key_still_tombstones():
    cell = build_cell()
    channel, backend = channel_to(cell)
    versions = versions_for(cell)
    v_old, v_erase = versions.next(), versions.next()
    assert call(cell, channel, "Erase",
                {"key": b"ghost", "version": v_erase.pack()})["applied"]
    assert not do_set(cell, channel, b"ghost", b"v", v_old)["applied"]


def test_cas_applies_on_matching_version():
    cell = build_cell()
    channel, backend = channel_to(cell)
    versions = versions_for(cell)
    v1 = versions.next()
    do_set(cell, channel, b"k", b"v1", v1)
    reply = call(cell, channel, "Cas",
                 {"key": b"k", "value": b"v2",
                  "new_version": versions.next().pack(),
                  "expected_version": v1.pack()})
    assert reply["applied"]
    assert call(cell, channel, "Lookup", {"key": b"k"})["value"] == b"v2"
    assert backend.stats.cas_applied == 1


def test_cas_fails_on_version_mismatch():
    cell = build_cell()
    channel, backend = channel_to(cell)
    versions = versions_for(cell)
    v1 = versions.next()
    do_set(cell, channel, b"k", b"v1", v1)
    do_set(cell, channel, b"k", b"v2", versions.next())
    reply = call(cell, channel, "Cas",
                 {"key": b"k", "value": b"v3",
                  "new_version": versions.next().pack(),
                  "expected_version": v1.pack()})
    assert not reply["applied"]
    assert reply["reason"] == "version-mismatch"
    assert call(cell, channel, "Lookup", {"key": b"k"})["value"] == b"v2"
    assert backend.stats.cas_failed == 1


def test_info_reports_layout():
    cell = build_cell()
    channel, backend = channel_to(cell)
    info = call(cell, channel, "Info", {})
    assert info["num_buckets"] == backend.index.num_buckets
    assert info["ways"] == backend.index.ways
    assert info["index_region_id"] == backend.index.window.region_id
    assert info["supports_scar"] is True


def test_touch_ingestion_reorders_lru():
    cell = build_cell()
    channel, backend = channel_to(cell)
    versions = versions_for(cell)
    do_set(cell, channel, b"a", b"1", versions.next())
    do_set(cell, channel, b"b", b"2", versions.next())
    kh_a = backend.placement.key_hash(b"a")
    call(cell, channel, "Touch", {"key_hashes": [kh_a]})
    victim = next(backend.policy.victims())
    assert victim == backend.placement.key_hash(b"b")


def test_scan_summary_filters_by_primary_shard():
    cell = build_cell(num_shards=3, mode=ReplicationMode.R3_2)
    channel, backend = channel_to(cell)
    versions = versions_for(cell)
    for i in range(20):
        do_set(cell, channel, b"key-%d" % i, b"v", versions.next())
    summary = call(cell, channel, "ScanSummary", {"primary_shard": 0})
    placement = backend.placement
    for key_hash in summary["entries"]:
        assert placement.primary_shard(key_hash) == 0


def test_capacity_conflict_triggers_eviction():
    config = BackendConfig(
        data_initial_bytes=64 * 1024, data_virtual_limit=64 * 1024,
        slab_bytes=64 * 1024, num_buckets=256, ways=7)
    cell = build_cell(config)
    channel, backend = channel_to(cell)
    versions = versions_for(cell)
    # Each entry lands in a 16KB block; 64KB holds only 4.
    for i in range(10):
        reply = do_set(cell, channel, b"key-%d" % i, b"x" * 9000,
                       versions.next())
        assert reply["applied"]
    assert backend.stats.evictions_capacity > 0
    assert backend.index.used_entries <= 4


def test_associativity_conflict_spills_to_overflow():
    config = BackendConfig(num_buckets=1, ways=2,
                           overflow_rpc_fallback=True,
                           index_resize_load_factor=2.0)  # never resize
    cell = build_cell(config)
    channel, backend = channel_to(cell)
    versions = versions_for(cell)
    for i in range(4):
        assert do_set(cell, channel, b"key-%d" % i, b"v",
                      versions.next())["applied"]
    assert backend.stats.overflow_inserts == 2
    assert backend.index.read_flags(0) & 0x1
    # Overflowed keys still served via the RPC lookup path.
    for i in range(4):
        assert call(cell, channel, "Lookup", {"key": b"key-%d" % i})["found"]


def test_associativity_conflict_evicts_without_fallback():
    config = BackendConfig(num_buckets=1, ways=2,
                           overflow_rpc_fallback=False,
                           index_resize_load_factor=2.0)  # never resize
    cell = build_cell(config)
    channel, backend = channel_to(cell)
    versions = versions_for(cell)
    for i in range(4):
        assert do_set(cell, channel, b"key-%d" % i, b"v",
                      versions.next())["applied"]
    assert backend.stats.evictions_associativity == 2
    assert backend.index.used_entries == 2


def test_index_resize_doubles_buckets_and_preserves_data():
    config = BackendConfig(num_buckets=2, ways=2,
                           index_resize_load_factor=0.5,
                           overflow_rpc_fallback=True)
    cell = build_cell(config)
    channel, backend = channel_to(cell)
    versions = versions_for(cell)
    for i in range(4):
        do_set(cell, channel, b"key-%d" % i, b"v%d" % i, versions.next())
    cell.sim.run(until=cell.sim.now + 1.0)  # let the async resize finish
    backend = cell.backend_by_task("backend-0")
    assert backend.stats.index_resizes >= 1
    assert backend.index.num_buckets >= 4
    for i in range(4):
        reply = call(cell, channel, "Lookup", {"key": b"key-%d" % i})
        assert reply["found"]
        assert reply["value"] == b"v%d" % i


def test_data_region_grows_at_watermark():
    config = BackendConfig(
        data_initial_bytes=128 * 1024, data_virtual_limit=1 << 20,
        slab_bytes=64 * 1024, grow_watermark=0.5)
    cell = build_cell(config)
    channel, backend = channel_to(cell)
    versions = versions_for(cell)
    before = backend.data.populated_bytes
    for i in range(30):
        do_set(cell, channel, b"key-%d" % i, b"x" * 4000, versions.next())
    cell.sim.run(until=cell.sim.now + 1.0)
    assert backend.stats.data_region_grows >= 1
    assert backend.data.populated_bytes > before
    assert backend.dram_used_bytes() > before


def test_migrate_in_bulk_applies_monotonically():
    cell = build_cell()
    channel, backend = channel_to(cell)
    versions = versions_for(cell)
    v_low, v_high = versions.next(), versions.next()
    do_set(cell, channel, b"k1", b"current", v_high)
    entries = [(b"k1", b"stale", v_low.pack()),
               (b"k2", b"fresh", versions.next().pack())]
    reply = call(cell, channel, "MigrateIn", {"entries": entries})
    assert reply["applied"] == 1  # only k2; k1 is older than stored
    assert call(cell, channel, "Lookup", {"key": b"k1"})["value"] == b"current"
    assert call(cell, channel, "Lookup", {"key": b"k2"})["value"] == b"fresh"


def test_snapshot_entries_covers_index_and_overflow():
    config = BackendConfig(num_buckets=1, ways=1, overflow_rpc_fallback=True)
    cell = build_cell(config)
    channel, backend = channel_to(cell)
    versions = versions_for(cell)
    do_set(cell, channel, b"a", b"1", versions.next())
    do_set(cell, channel, b"b", b"2", versions.next())  # spills
    snapshot = {k: v for k, v, _ in backend.snapshot_entries()}
    assert snapshot == {b"a": b"1", b"b": b"2"}


def test_adopt_config_id_stamps_buckets():
    cell = build_cell()
    _channel, backend = channel_to(cell)
    backend.adopt_config_id(42)
    from repro.core.index import parse_bucket
    raw = backend.index.window.read(0, backend.index.bucket_bytes)
    assert parse_bucket(raw, backend.index.ways).config_id == 42


def test_stopped_backend_revokes_windows():
    cell = build_cell()
    _channel, backend = channel_to(cell)
    index_window = backend.index.window
    backend.stop()
    assert index_window.revoked
    assert not backend.alive
