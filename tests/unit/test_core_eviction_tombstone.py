"""Unit tests for eviction policies and the tombstone cache."""

import pytest

from repro.core.eviction import ArcPolicy, LruPolicy, RandomPolicy, make_policy
from repro.core.tombstone import TombstoneCache
from repro.core.version import VersionNumber
from repro.sim import RandomStream


def kh(i):
    return i.to_bytes(16, "little")


# -- LRU ---------------------------------------------------------------------

def test_lru_evicts_oldest_first():
    policy = LruPolicy()
    for i in range(3):
        policy.record_insert(kh(i))
    gen = policy.victims()
    assert next(gen) == kh(0)


def test_lru_access_refreshes_recency():
    policy = LruPolicy()
    for i in range(3):
        policy.record_insert(kh(i))
    policy.record_access(kh(0))
    assert next(policy.victims()) == kh(1)


def test_lru_remove():
    policy = LruPolicy()
    policy.record_insert(kh(1))
    policy.record_remove(kh(1))
    assert kh(1) not in policy
    assert len(policy) == 0


def test_lru_victims_walk_handles_skips():
    policy = LruPolicy()
    for i in range(3):
        policy.record_insert(kh(i))
    gen = policy.victims()
    first = next(gen)
    # Backend decided not to evict first (e.g. size class mismatch);
    # the walk must progress to another key.
    second = next(gen)
    assert second != first


def test_lru_access_of_unknown_key_is_noop():
    policy = LruPolicy()
    policy.record_access(kh(9))
    assert len(policy) == 0


# -- Random --------------------------------------------------------------------

def test_random_policy_yields_all_residents():
    policy = RandomPolicy(RandomStream(1, "r"))
    for i in range(5):
        policy.record_insert(kh(i))
    seen = set()
    gen = policy.victims()
    for _ in range(5):
        victim = next(gen)
        seen.add(victim)
        policy.record_remove(victim)
    assert seen == {kh(i) for i in range(5)}


# -- ARC ----------------------------------------------------------------------

def test_arc_single_access_stays_in_t1():
    policy = ArcPolicy(capacity=10)
    policy.record_insert(kh(1))
    assert kh(1) in policy.t1
    assert kh(1) not in policy.t2


def test_arc_second_access_promotes_to_t2():
    policy = ArcPolicy(capacity=10)
    policy.record_insert(kh(1))
    policy.record_access(kh(1))
    assert kh(1) in policy.t2
    assert kh(1) not in policy.t1


def test_arc_ghost_hit_adjusts_p():
    policy = ArcPolicy(capacity=10)
    policy.record_insert(kh(1))
    policy.record_remove(kh(1))     # to B1 ghost
    assert kh(1) in policy.b1
    before = policy.p
    policy.record_insert(kh(1))     # ghost hit: p grows, key -> T2
    assert policy.p > before
    assert kh(1) in policy.t2


def test_arc_frequency_ghost_hit_shrinks_p():
    policy = ArcPolicy(capacity=10)
    policy.p = 5.0
    policy.record_insert(kh(1))
    policy.record_access(kh(1))     # T2
    policy.record_remove(kh(1))     # B2 ghost
    policy.record_insert(kh(1))
    assert policy.p < 5.0
    assert kh(1) in policy.t2


def test_arc_prefers_evicting_recency_list():
    policy = ArcPolicy(capacity=10)
    policy.record_insert(kh(1))     # T1 (seen once)
    policy.record_insert(kh(2))
    policy.record_access(kh(2))     # T2 (seen twice)
    assert next(policy.victims()) == kh(1)


def test_arc_ghost_lists_bounded():
    policy = ArcPolicy(capacity=4)
    for i in range(20):
        policy.record_insert(kh(i))
        policy.record_remove(kh(i))
    assert len(policy.b1) <= 4


def test_arc_hits_frequent_workload_better_than_lru():
    """A scan workload: ARC keeps frequent keys; LRU flushes them."""
    hot = [kh(i) for i in range(4)]
    capacity = 8

    def run(policy):
        resident = set()
        hits = 0

        def touch(key):
            nonlocal hits
            if key in resident:
                hits += 1
                policy.record_access(key)
            else:
                if len(resident) >= capacity:
                    victim = next(policy.victims())
                    policy.record_remove(victim)
                    resident.discard(victim)
                policy.record_insert(key)
                resident.add(key)

        scan = 100
        for round_num in range(50):
            for key in hot:
                touch(key)
            # A scan of cold keys wider than the cache flushes LRU.
            for i in range(capacity):
                touch(kh(scan))
                scan += 1
        return hits

    assert run(ArcPolicy(capacity=capacity)) > run(LruPolicy())


def test_make_policy_factory():
    assert isinstance(make_policy("lru"), LruPolicy)
    assert isinstance(make_policy("arc"), ArcPolicy)
    assert isinstance(make_policy("random"), RandomPolicy)
    with pytest.raises(ValueError):
        make_policy("clock")


# -- tombstones ---------------------------------------------------------------

def v(n):
    return VersionNumber(n, 0, 0)


def test_tombstone_exact_lookup():
    cache = TombstoneCache(capacity=4)
    cache.note_erase(kh(1), v(10))
    assert cache.erased_version(kh(1)) == v(10)
    assert cache.version_floor(kh(1)) == v(10)


def test_tombstone_unknown_key_uses_summary():
    cache = TombstoneCache(capacity=2)
    for i in range(5):
        cache.note_erase(kh(i), v(10 + i))
    # Keys 0..2 were evicted; the summary bounds them above.
    assert cache.summary >= v(12)
    assert cache.version_floor(kh(0)) == cache.summary
    assert cache.evictions == 3


def test_tombstone_floor_zero_when_nothing_erased():
    cache = TombstoneCache()
    assert cache.version_floor(kh(1)) == VersionNumber.zero()


def test_tombstone_keeps_highest_version():
    cache = TombstoneCache()
    cache.note_erase(kh(1), v(10))
    cache.note_erase(kh(1), v(5))   # older: ignored
    assert cache.erased_version(kh(1)) == v(10)
    cache.note_erase(kh(1), v(20))
    assert cache.erased_version(kh(1)) == v(20)


def test_tombstone_forget():
    cache = TombstoneCache()
    cache.note_erase(kh(1), v(10))
    cache.forget(kh(1))
    assert cache.erased_version(kh(1)) is None


def test_tombstone_capacity_validated():
    with pytest.raises(ValueError):
        TombstoneCache(capacity=0)
