"""Unit tests for random streams and workload distributions."""

import pytest

from repro.sim import MixtureSizeDistribution, RandomStream, ZipfSampler, percentile


def test_same_seed_same_sequence():
    a = RandomStream(7, "net")
    b = RandomStream(7, "net")
    assert [a.randint(0, 100) for _ in range(10)] == \
           [b.randint(0, 100) for _ in range(10)]


def test_different_names_different_sequences():
    a = RandomStream(7, "net")
    b = RandomStream(7, "cpu")
    assert [a.randint(0, 10 ** 9) for _ in range(5)] != \
           [b.randint(0, 10 ** 9) for _ in range(5)]


def test_child_streams_are_deterministic():
    a = RandomStream(3).child("x")
    b = RandomStream(3).child("x")
    assert a.random() == b.random()


def test_expovariate_mean():
    stream = RandomStream(11, "exp")
    n = 20000
    mean = sum(stream.expovariate(10.0) for _ in range(n)) / n
    assert mean == pytest.approx(0.1, rel=0.05)


def test_zipf_is_skewed_and_in_range():
    stream = RandomStream(5, "zipf")
    sampler = ZipfSampler(stream, n=1000, s=0.99)
    draws = [sampler.sample() for _ in range(20000)]
    assert all(0 <= d < 1000 for d in draws)
    top = sum(1 for d in draws if d == 0) / len(draws)
    bottom = sum(1 for d in draws if d == 999) / len(draws)
    assert top > 50 * max(bottom, 1e-6)


def test_zipf_uniform_when_s_zero():
    stream = RandomStream(5, "zipf0")
    sampler = ZipfSampler(stream, n=10, s=0.0)
    draws = [sampler.sample() for _ in range(50000)]
    for rank in range(10):
        frac = sum(1 for d in draws if d == rank) / len(draws)
        assert frac == pytest.approx(0.1, abs=0.01)


def test_zipf_rejects_empty():
    with pytest.raises(ValueError):
        ZipfSampler(RandomStream(1), n=0)


def test_mixture_sizes_respect_bounds():
    stream = RandomStream(9, "sizes")
    dist = MixtureSizeDistribution(
        stream, [(0.9, 6.0, 1.0), (0.1, 11.0, 1.0)],
        min_size=16, max_size=65536)
    draws = [dist.sample() for _ in range(5000)]
    assert all(16 <= d <= 65536 for d in draws)


def test_mixture_has_small_body_and_large_tail():
    stream = RandomStream(9, "sizes2")
    dist = MixtureSizeDistribution(
        stream, [(0.9, 6.0, 0.5), (0.1, 11.0, 0.5)])
    draws = sorted(dist.sample() for _ in range(20000))
    assert percentile(draws, 50) < 2000
    assert percentile(draws, 99) > 20000


def test_mixture_rejects_empty_components():
    with pytest.raises(ValueError):
        MixtureSizeDistribution(RandomStream(1), [])


def test_mixture_cdf_points_monotone():
    stream = RandomStream(2, "cdf")
    dist = MixtureSizeDistribution(stream, [(1.0, 7.0, 1.0)])
    points = dist.cdf_points(samples=2000)
    fracs = [f for _s, f in points]
    assert fracs == sorted(fracs)
    assert fracs[-1] == 1.0


def test_percentile_nearest_rank():
    values = [1.0, 2.0, 3.0, 4.0]
    assert percentile(values, 0) == 1.0
    assert percentile(values, 50) == 2.0
    assert percentile(values, 100) == 4.0
    assert percentile(values, 99) == 4.0


def test_percentile_rejects_empty():
    with pytest.raises(ValueError):
        percentile([], 50)
