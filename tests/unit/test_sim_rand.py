"""Unit tests for random streams and workload distributions."""

import pytest

from repro.sim import MixtureSizeDistribution, RandomStream, ZipfSampler, percentile


def test_same_seed_same_sequence():
    a = RandomStream(7, "net")
    b = RandomStream(7, "net")
    assert [a.randint(0, 100) for _ in range(10)] == \
           [b.randint(0, 100) for _ in range(10)]


def test_different_names_different_sequences():
    a = RandomStream(7, "net")
    b = RandomStream(7, "cpu")
    assert [a.randint(0, 10 ** 9) for _ in range(5)] != \
           [b.randint(0, 10 ** 9) for _ in range(5)]


def test_child_streams_are_deterministic():
    a = RandomStream(3).child("x")
    b = RandomStream(3).child("x")
    assert a.random() == b.random()


def test_expovariate_mean():
    stream = RandomStream(11, "exp")
    n = 20000
    mean = sum(stream.expovariate(10.0) for _ in range(n)) / n
    assert mean == pytest.approx(0.1, rel=0.05)


def test_zipf_is_skewed_and_in_range():
    stream = RandomStream(5, "zipf")
    sampler = ZipfSampler(stream, n=1000, s=0.99)
    draws = [sampler.sample() for _ in range(20000)]
    assert all(0 <= d < 1000 for d in draws)
    top = sum(1 for d in draws if d == 0) / len(draws)
    bottom = sum(1 for d in draws if d == 999) / len(draws)
    assert top > 50 * max(bottom, 1e-6)


def test_zipf_uniform_when_s_zero():
    stream = RandomStream(5, "zipf0")
    sampler = ZipfSampler(stream, n=10, s=0.0)
    draws = [sampler.sample() for _ in range(50000)]
    for rank in range(10):
        frac = sum(1 for d in draws if d == rank) / len(draws)
        assert frac == pytest.approx(0.1, abs=0.01)


def test_zipf_rejects_empty():
    with pytest.raises(ValueError):
        ZipfSampler(RandomStream(1), n=0)


def test_zipf_exact_regime_matches_legacy_list_cdf_seed_for_seed():
    # The array('d') CDF must reproduce the original list-based CDF bit
    # for bit: same seed, same draw sequence. The reference below is the
    # pre-change implementation, inlined verbatim.
    import bisect
    import math

    n, s = 1000, 0.99
    weights = [1.0 / (r + 1) ** s for r in range(n)]
    total = math.fsum(weights)
    acc, legacy_cdf = 0.0, []
    for w in weights:
        acc += w / total
        legacy_cdf.append(acc)
    legacy_cdf[-1] = 1.0

    legacy_stream = RandomStream(17, "parity")
    sampler = ZipfSampler(RandomStream(17, "parity"), n=n, s=s)
    legacy = [bisect.bisect_left(legacy_cdf, legacy_stream.random())
              for _ in range(5000)]
    assert [sampler.sample() for _ in range(5000)] == legacy


def test_zipf_two_level_construction_is_head_bounded():
    # 10^7 ranks must not build a 10^7-entry CDF: the table stops at the
    # head split and construction is effectively instant.
    sampler = ZipfSampler(RandomStream(3, "big"), n=10_000_000, s=0.99)
    assert len(sampler._cdf) == ZipfSampler.HEAD_RANKS
    assert 0.0 < sampler._tail_start < 1.0


def test_zipf_two_level_matches_exact_distribution():
    # Same corpus sampled through both regimes (forced via the head
    # split): band masses must agree. This pins the tail machinery —
    # inverse-CDF proposal, rejection correction, Euler-Maclaurin tail
    # mass — against the exact CDF it replaces.
    n, draws = 50_000, 40_000
    exact = ZipfSampler(RandomStream(23, "dist"), n=n, s=0.99, head=n)
    two_level = ZipfSampler(RandomStream(29, "dist2"), n=n, s=0.99,
                            head=1024)
    assert len(two_level._cdf) == 1024

    bands = [(0, 1), (1, 10), (10, 1024), (1024, 5000), (5000, n)]

    def band_masses(sampler):
        counts = [0] * len(bands)
        for _ in range(draws):
            r = sampler.sample()
            assert 0 <= r < n
            for i, (lo, hi) in enumerate(bands):
                if lo <= r < hi:
                    counts[i] += 1
                    break
        return [c / draws for c in counts]

    for got, want in zip(band_masses(two_level), band_masses(exact)):
        assert got == pytest.approx(want, abs=0.01)


def test_zipf_two_level_tail_mass_matches_theory():
    # P(rank >= head) from samples vs the analytic tail share.
    sampler = ZipfSampler(RandomStream(31, "tail"), n=100_000, s=0.99,
                          head=4096)
    draws = 40_000
    tail = sum(1 for _ in range(draws) if sampler.sample() >= 4096)
    assert tail / draws == pytest.approx(1.0 - sampler._tail_start,
                                         abs=0.01)


def test_mixture_sizes_respect_bounds():
    stream = RandomStream(9, "sizes")
    dist = MixtureSizeDistribution(
        stream, [(0.9, 6.0, 1.0), (0.1, 11.0, 1.0)],
        min_size=16, max_size=65536)
    draws = [dist.sample() for _ in range(5000)]
    assert all(16 <= d <= 65536 for d in draws)


def test_mixture_has_small_body_and_large_tail():
    stream = RandomStream(9, "sizes2")
    dist = MixtureSizeDistribution(
        stream, [(0.9, 6.0, 0.5), (0.1, 11.0, 0.5)])
    draws = sorted(dist.sample() for _ in range(20000))
    assert percentile(draws, 50) < 2000
    assert percentile(draws, 99) > 20000


def test_mixture_rejects_empty_components():
    with pytest.raises(ValueError):
        MixtureSizeDistribution(RandomStream(1), [])


def test_mixture_cdf_points_monotone():
    stream = RandomStream(2, "cdf")
    dist = MixtureSizeDistribution(stream, [(1.0, 7.0, 1.0)])
    points = dist.cdf_points(samples=2000)
    fracs = [f for _s, f in points]
    assert fracs == sorted(fracs)
    assert fracs[-1] == 1.0


def test_percentile_nearest_rank():
    values = [1.0, 2.0, 3.0, 4.0]
    assert percentile(values, 0) == 1.0
    assert percentile(values, 50) == 2.0
    assert percentile(values, 100) == 4.0
    assert percentile(values, 99) == 4.0


def test_percentile_rejects_empty():
    with pytest.raises(ValueError):
        percentile([], 50)
