"""Unit tests for the coalesced multi-entry read op (§7.1).

The batched op's contract, on all three transports:

* correctness — every entry returns the same snapshot bytes a singleton
  read would, aligned with the request list;
* partial failure — a revoked region yields a per-entry error value,
  never discarding sibling entries; a dead host still fails the batch;
* amortization — N entries in one batch cost strictly less engine/NIC
  CPU and less simulated time than N singleton reads;
* transport idioms — 1RMA executes the batch as one command (one window
  slot, one PCIe transaction, one command timestamp).
"""

import pytest

from repro.net import Fabric, FabricConfig, gbps
from repro.sim import Simulator
from repro.transport import (Arena, MemoryRegion, OneRmaTransport,
                             PonyTransport, RdmaTransport,
                             RegionRevokedError, RemoteHostDownError)

ALL_TRANSPORTS = [RdmaTransport, OneRmaTransport, PonyTransport]


def setup_pair(transport_cls, **kwargs):
    sim = Simulator()
    fabric = Fabric(sim, FabricConfig(host_rate_bytes_per_sec=gbps(50.0),
                                      one_way_delay=4e-6, delay_jitter=0.0))
    client = fabric.add_host("client")
    server = fabric.add_host("server")
    transport = transport_cls(sim, fabric, **kwargs)
    endpoint = transport.attach(server)
    transport.attach(client)
    arena = Arena(4096, 65536)
    window = endpoint.expose(MemoryRegion(arena))
    return sim, fabric, client, server, transport, endpoint, arena, window


def drive(sim, gen):
    return sim.run(until=sim.process(gen))


def write_entries(arena, count, size=16):
    requests, expected = [], []
    for i in range(count):
        payload = bytes([65 + i]) * size
        arena.write(i * 64, payload)
        expected.append(payload)
        requests.append((None, i * 64, size))  # region filled in by caller
    return requests, expected


@pytest.mark.parametrize("transport_cls", ALL_TRANSPORTS)
def test_read_multi_returns_aligned_snapshots(transport_cls):
    sim, _f, client, _s, transport, _e, arena, window = setup_pair(
        transport_cls)
    requests, expected = write_entries(arena, 8)
    requests = [(window.region_id, off, size) for _r, off, size in requests]
    results = drive(sim, transport.read_multi(client, "server", requests))
    assert results == expected
    assert transport.counters.batched_reads == 1
    assert transport.counters.batched_keys == 8
    assert transport.counters.bytes_fetched == 8 * 16


@pytest.mark.parametrize("transport_cls", ALL_TRANSPORTS)
def test_read_multi_empty_batch(transport_cls):
    sim, _f, client, _s, transport, *_ = setup_pair(transport_cls)
    results = drive(sim, transport.read_multi(client, "server", []))
    assert results == []
    assert transport.counters.batched_reads == 0


@pytest.mark.parametrize("transport_cls", ALL_TRANSPORTS)
def test_read_multi_revoked_entry_is_error_value(transport_cls):
    """One revoked region must not discard its siblings' data."""
    sim, _f, client, _s, transport, endpoint, arena, window = setup_pair(
        transport_cls)
    arena.write(0, b"a" * 16)
    arena.write(64, b"b" * 16)
    requests = [(window.region_id, 0, 16),
                (window.region_id + 999, 0, 16),   # unknown region
                (window.region_id, 64, 16)]
    results = drive(sim, transport.read_multi(client, "server", requests))
    assert results[0] == b"a" * 16
    assert isinstance(results[1], RegionRevokedError)
    assert results[2] == b"b" * 16
    assert transport.counters.failures >= 1


@pytest.mark.parametrize("transport_cls", ALL_TRANSPORTS)
def test_read_multi_dead_host_raises(transport_cls):
    sim, _f, client, server, transport, *_ = setup_pair(transport_cls)
    server.crash()
    with pytest.raises(RemoteHostDownError):
        drive(sim, transport.read_multi(client, "server",
                                        [(1, 0, 8), (1, 64, 8)]))


@pytest.mark.parametrize("transport_cls", ALL_TRANSPORTS)
def test_batched_cheaper_than_n_singletons(transport_cls):
    """The amortization claim: batched < N x singleton, CPU and time."""
    n, size = 16, 32
    component = "pony" if transport_cls is PonyTransport else "rma-client"

    # N singleton reads, sequentially.
    sim, _f, client, server, transport, _e, arena, window = setup_pair(
        transport_cls)
    requests, _ = write_entries(arena, n, size)
    requests = [(window.region_id, off, sz) for _r, off, sz in requests]

    def singles():
        for region_id, offset, sz in requests:
            yield from transport.read(client, "server", region_id,
                                      offset, sz)

    start = sim.now
    drive(sim, singles())
    single_elapsed = sim.now - start
    single_cpu = (client.ledger.seconds(component) +
                  server.ledger.seconds(component))

    # The same entries as one coalesced op on a fresh pair.
    sim, _f, client, server, transport, _e, arena, window = setup_pair(
        transport_cls)
    requests, expected = write_entries(arena, n, size)
    requests = [(window.region_id, off, sz) for _r, off, sz in requests]
    start = sim.now
    results = drive(sim, transport.read_multi(client, "server", requests))
    batch_elapsed = sim.now - start
    batch_cpu = (client.ledger.seconds(component) +
                 server.ledger.seconds(component))

    assert results == expected
    assert batch_cpu < single_cpu / 2, (batch_cpu, single_cpu)
    assert batch_elapsed < single_elapsed / 2, (batch_elapsed,
                                                single_elapsed)


def test_onerma_batch_is_one_command():
    """1RMA batches execute as one command: one timestamp, one PCIe txn."""
    sim, _f, client, _s, transport, _e, arena, window = setup_pair(
        OneRmaTransport)
    n = 8
    requests, expected = write_entries(arena, n, 32)
    requests = [(window.region_id, off, sz) for _r, off, sz in requests]
    results = drive(sim, transport.read_multi(client, "server", requests))
    assert results == expected
    assert len(transport.command_timestamps) == 1

    # The batch pays the RTT, the NIC hop, and pcie_base_latency once; a
    # loop of n singletons pays each of them n times.
    _t, batch_latency = transport.command_timestamps[0]
    sim2, _f2, client2, _s2, single, _e2, arena2, window2 = setup_pair(
        OneRmaTransport)
    arena2.write(0, b"y" * 32)
    drive(sim2, single.read(client2, "server", window2.region_id, 0, 32))
    _t2, single_latency = single.command_timestamps[0]
    assert batch_latency < n * single_latency


def test_onerma_batch_takes_one_window_slot():
    sim, _f, client, _s, transport, _e, arena, window = setup_pair(
        OneRmaTransport)
    n = transport.cost.solicitation_window_ops * 2  # > window as singletons
    arena.write(0, b"z" * 8)
    requests = [(window.region_id, 0, 8)] * n
    results = drive(sim, transport.read_multi(client, "server", requests))
    assert results == [b"z" * 8] * n
    # Never queued behind the solicitation window: the whole batch is one
    # solicited command.
    assert transport.counters.batched_reads == 1


def test_pony_batch_single_server_engine_op():
    """The serving engines see one op per batch, not one per entry."""
    sim, _f, client, server, transport, _e, arena, window = setup_pair(
        PonyTransport)
    n = 12
    requests, expected = write_entries(arena, n, 16)
    requests = [(window.region_id, off, sz) for _r, off, sz in requests]
    results = drive(sim, transport.read_multi(client, "server", requests))
    assert results == expected
    server_cpu = server.ledger.seconds("pony")
    # One dispatch plus (n-1) per-entry increments — far below n
    # dispatches.
    ceiling = (transport.cost.server_read +
               transport.cost.batch_entry * n +
               transport._payload_cost(16 * n) + 1e-9)
    assert server_cpu <= ceiling
    assert server_cpu < n * transport.cost.server_read
