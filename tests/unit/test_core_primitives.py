"""Unit tests for hashing, checksums, TrueTime, and VersionNumbers."""

import pytest

from repro.core.checksum import checksum_ok, kv_checksum
from repro.core.hashing import (KEY_HASH_BYTES, Placement, default_key_hash)
from repro.core.truetime import TrueTime
from repro.core.version import VersionFactory, VersionNumber
from repro.sim import RandomStream, Simulator


# -- hashing ---------------------------------------------------------------

def test_key_hash_is_128_bits_and_deterministic():
    h = default_key_hash(b"key-1")
    assert len(h) == KEY_HASH_BYTES
    assert h == default_key_hash(b"key-1")
    assert h != default_key_hash(b"key-2")


def test_placement_replicas_are_adjacent():
    placement = Placement(num_shards=10, replication=3)
    kh = placement.key_hash(b"some-key")
    shards = placement.shards_for(kh)
    assert len(shards) == 3
    primary = shards[0]
    assert shards == [primary, (primary + 1) % 10, (primary + 2) % 10]


def test_placement_r1_single_shard():
    placement = Placement(num_shards=5, replication=1)
    kh = placement.key_hash(b"k")
    assert len(placement.shards_for(kh)) == 1


def test_placement_wraps_modulo():
    placement = Placement(num_shards=3, replication=3)
    for key in [b"a", b"b", b"c", b"d"]:
        shards = placement.shards_for(placement.key_hash(key))
        assert sorted(shards) == [0, 1, 2]


def test_placement_cohort_excludes_self():
    placement = Placement(num_shards=10, replication=3)
    cohort = placement.cohort_of(4)
    assert 4 not in cohort
    # Shard 4 shares keys with shards 2,3 (as replica) and 5,6 (as primary).
    assert set(cohort) == {2, 3, 5, 6}


def test_placement_validates_args():
    with pytest.raises(ValueError):
        Placement(num_shards=0)
    with pytest.raises(ValueError):
        Placement(num_shards=3, replication=4)


def test_placement_custom_hash_function():
    placement = Placement(num_shards=4, replication=1,
                          hash_function=lambda key: bytes(16))
    assert placement.primary_shard(placement.key_hash(b"anything")) == 0


def test_keys_spread_over_shards():
    placement = Placement(num_shards=8, replication=1)
    counts = [0] * 8
    for i in range(4000):
        counts[placement.primary_shard(
            placement.key_hash(f"key-{i}".encode()))] += 1
    assert min(counts) > 300  # roughly uniform


# -- checksum ----------------------------------------------------------------

def test_checksum_roundtrip():
    version = VersionNumber(5, 1, 2).pack()
    kh = default_key_hash(b"k")
    check = kv_checksum(b"k", b"v", version, kh)
    assert checksum_ok(b"k", b"v", version, kh, check)


@pytest.mark.parametrize("mutation", [
    ("key", b"K", b"v", None, None),
    ("value", b"k", b"V", None, None),
    ("version", b"k", b"v", VersionNumber(9, 9, 9).pack(), None),
    ("keyhash", b"k", b"v", None, default_key_hash(b"other")),
])
def test_checksum_detects_any_field_change(mutation):
    _name, key, value, version, kh = mutation
    base_version = VersionNumber(5, 1, 2).pack()
    base_kh = default_key_hash(b"k")
    check = kv_checksum(b"k", b"v", base_version, base_kh)
    assert not checksum_ok(key, value, version or base_version,
                           kh or base_kh, check)


def test_checksum_detects_torn_value():
    version = VersionNumber(5, 1, 2).pack()
    kh = default_key_hash(b"k")
    check = kv_checksum(b"k", b"old-value!", version, kh)
    torn = b"old-vNEW!!"  # half old, half new bytes
    assert not checksum_ok(b"k", torn, version, kh, check)


# -- TrueTime -----------------------------------------------------------------

def test_truetime_is_monotone():
    sim = Simulator()
    tt = TrueTime(sim, epsilon=1e-3, stream=RandomStream(1, "tt"))
    values = []
    for _ in range(5):
        values.append(tt.now_micros())
    assert values == sorted(values)
    assert len(set(values)) == 5


def test_truetime_tracks_sim_time():
    sim = Simulator()
    tt = TrueTime(sim, epsilon=1e-6, stream=RandomStream(1, "tt"))
    first = tt.now_micros()
    sim.call_in(1.0, lambda: None)
    sim.run()
    later = tt.now_micros()
    assert later - first >= 0.9e6  # ~1 second in micros


def test_truetime_skew_bounded():
    sim = Simulator()
    for seed in range(20):
        tt = TrueTime(sim, epsilon=1e-3, stream=RandomStream(seed, "tt"))
        assert abs(tt._offset) <= 1e-3


# -- VersionNumber ---------------------------------------------------------

def test_version_ordering_truetime_dominates():
    assert VersionNumber(2, 0, 0) > VersionNumber(1, 99, 99)
    assert VersionNumber(1, 2, 0) > VersionNumber(1, 1, 99)
    assert VersionNumber(1, 1, 2) > VersionNumber(1, 1, 1)


def test_version_pack_unpack_roundtrip():
    v = VersionNumber(123456789, 42, 7)
    assert VersionNumber.unpack(v.pack()) == v
    assert len(v.pack()) == 16


def test_version_zero():
    assert VersionNumber.zero().is_zero()
    assert not VersionNumber(1, 0, 0).is_zero()
    assert VersionNumber.zero() < VersionNumber(1, 0, 0)


def test_version_factory_monotone_per_client():
    sim = Simulator()
    tt = TrueTime(sim, stream=RandomStream(3, "tt"))
    factory = VersionFactory(client_id=9, truetime=tt)
    versions = [factory.next() for _ in range(10)]
    assert versions == sorted(versions)
    assert all(v.client_id == 9 for v in versions)


def test_version_factories_globally_unique():
    sim = Simulator()
    factories = [VersionFactory(i, TrueTime(sim, stream=RandomStream(i, "t")))
                 for i in range(5)]
    versions = [f.next() for f in factories for _ in range(20)]
    assert len(set(versions)) == len(versions)
