"""Small-surface coverage: rendering edge cases, host priority, misc."""


from repro.analysis import (cdf_points, render_percentile_lines,
                            render_series, render_table)
from repro.net import Host, HostConfig
from repro.sim import Simulator


def test_render_series_empty():
    assert "(no data)" in render_series("empty", [])


def test_render_table_handles_mixed_types():
    out = render_table("mixed", ["a", "b"],
                       [[0, 0.0], [1_000_000.0, 0.000123],
                        ["text", 3.14159]])
    assert "1,000,000" in out   # large floats get thousands separators
    assert "0.000123" in out
    assert "3.14" in out


def test_render_percentile_lines_sparse_series():
    out = render_percentile_lines(
        "sparse", [("s1", [(1.0, 10.0)]), ("s2", [(2.0, 20.0)])])
    # Each series only fills its own x rows.
    assert "10.00" in out and "20.00" in out


def test_cdf_points_empty():
    assert cdf_points([]) == []


def test_cdf_points_single_value():
    points = cdf_points([5.0])
    assert points[-1] == (5.0, 1.0)


def test_host_priority_orders_core_grants():
    sim = Simulator()
    host = Host(sim, "h", HostConfig(cores=1))
    order = []

    def holder():
        yield from host.execute(10e-6, "holder")

    def low():
        yield sim.timeout(1e-6)
        yield from host.execute(1e-6, "low", priority=10)
        order.append("low")

    def high():
        yield sim.timeout(2e-6)
        yield from host.execute(1e-6, "high", priority=0)
        order.append("high")

    sim.process(holder())
    sim.process(low())
    sim.process(high())
    sim.run()
    assert order == ["high", "low"]


def test_host_zero_cost_execute():
    sim = Simulator()
    host = Host(sim, "h", HostConfig(cores=1))

    def proc():
        yield from host.execute(0.0, "noop")
        return sim.now

    assert sim.run(until=sim.process(proc())) == 0.0


def test_ledger_components_sorted():
    sim = Simulator()
    host = Host(sim, "h")
    host.charge_inline(1e-6, "zeta")
    host.charge_inline(1e-6, "alpha")
    assert host.ledger.components() == ["alpha", "zeta"]


def test_version_repr_is_compact():
    from repro.core import VersionNumber
    assert repr(VersionNumber(1, 2, 3)) == "v(1,2,3)"


def test_placement_shards_for_primary_wraps():
    from repro.core import Placement
    placement = Placement(num_shards=4, replication=3)
    assert placement.shards_for_primary(3) == [3, 0, 1]


def test_store_len_tracks_items():
    from repro.sim import Store
    sim = Simulator()
    store = Store(sim)
    store.put(1)
    store.put(2)
    assert len(store) == 2
    assert store.try_get() == 1
    assert len(store) == 1
