"""Tests for the R=3.2 explicit-state model checker (§5.1 footnote 3)."""

import pytest

from repro.model import (ABSENT, ModelState, check,
                         check_double_failure_breaks, check_invariants,
                         successors)


# -- ModelState mechanics ----------------------------------------------------

def test_initial_state_is_empty():
    state = ModelState()
    assert state.stored == (0, 0, 0)
    assert state.pending == ()
    assert state.crashed is None


def test_issue_and_deliver_set():
    state = ModelState().issue("set")
    assert len(state.pending) == 1
    mutation = state.pending[0]
    state = state.apply(mutation, 0)
    assert state.stored[0] == mutation.version
    assert state.stored[1] == ABSENT


def test_monotonic_apply_rejects_stale():
    state = ModelState().issue("set").issue("set")
    old, new = state.pending
    state = state.apply(new, 0)
    state = state.apply(old, 0)   # stale: must not regress
    assert state.stored[0] == new.version


def test_erase_sets_tombstone_floor():
    state = ModelState().issue("set")
    set_m = state.pending[0]
    for r in range(3):
        state = state.apply(set_m, r)
    state = state.issue("erase")
    erase_m = state.pending[0]
    state = state.apply(erase_m, 1)
    assert state.stored[1] == ABSENT
    assert state.erased[1] == erase_m.version
    # A later redelivery of the old set must not resurrect.
    assert state.stored[1] == ABSENT


def test_fully_delivered_mutations_leave_pending():
    state = ModelState().issue("set")
    mutation = state.pending[0]
    for r in range(3):
        state = state.apply(mutation, r)
    assert state.pending == ()


def test_crash_wipes_replica_and_restart_repairs():
    state = ModelState().issue("set")
    mutation = state.pending[0]
    for r in range(3):
        state = state.apply(mutation, r)
    state = state.crash(1)
    assert state.stored[1] == ABSENT
    assert state.crashed == 1
    state = state.restart_with_repair()
    assert state.crashed is None
    assert state.stored[1] == mutation.version


def test_restart_repair_adopts_erase_floor():
    state = ModelState().issue("erase")
    erase_m = state.pending[0]
    for r in range(3):
        state = state.apply(erase_m, r)
    state = state.crash(0)
    state = state.restart_with_repair()
    assert state.erased[0] == erase_m.version
    assert state.stored[0] == ABSENT


def test_at_most_one_crash():
    state = ModelState().crash(0)
    with pytest.raises(ValueError):
        state.crash(1)


def test_cannot_deliver_to_crashed_replica():
    state = ModelState().issue("set").crash(0)
    with pytest.raises(ValueError):
        state.apply(state.pending[0], 0)


def test_quorum_reads_decide_on_agreement():
    state = ModelState().issue("set")
    mutation = state.pending[0]
    state = state.apply(mutation, 0)
    state = state.apply(mutation, 1)
    reads = state.quorum_reads()
    # Both "v (replicas 0,1 agree)" and nothing else is decided; the
    # third replica disagrees with each of them individually.
    assert mutation.version in reads
    assert ABSENT not in reads


def test_acked_sets_reconstructed_from_replica_state():
    state = ModelState().issue("set")
    mutation = state.pending[0]
    for r in range(3):
        state = state.apply(mutation, r)
    assert state.acked_sets() == (mutation.version,)


# -- the checker --------------------------------------------------------------

def test_successors_cover_issue_deliver_crash():
    state = ModelState().issue("set")
    labels = {label for label, _s, _b in successors(
        state, {"set": 1, "erase": 0, "crash": 1})}
    assert any(l.startswith("issue-set") for l in labels)
    assert any(l.startswith("deliver-set") for l in labels)
    assert any(l.startswith("crash") for l in labels)


def test_invariants_hold_on_simple_path():
    state = ModelState()
    prev = None
    state = state.issue("set")
    assert check_invariants(state, prev) is None
    mutation = state.pending[0]
    for r in range(3):
        prev, state = state, state.apply(mutation, r)
        assert check_invariants(state, prev) is None


def test_full_check_no_crash():
    result = check(max_sets=2, max_erases=1, allow_crash=False)
    assert result.ok, result.counterexample
    assert result.states_explored > 100


def test_full_check_single_failure_tolerance():
    """The paper's TLA+ result: R=3.2 is safe under a single failure."""
    result = check(max_sets=2, max_erases=1, allow_crash=True)
    assert result.ok, (result.counterexample.detail,
                       result.counterexample.trace)
    assert result.states_explored > 1000


def test_model_is_not_vacuous():
    """Two failures genuinely break durability — the invariants bite."""
    assert check_double_failure_breaks()


def test_injected_bug_is_caught():
    """Break monotonic apply and the checker must find a counterexample."""
    import repro.model.state as state_mod

    original = state_mod.ModelState.apply

    def buggy_apply(self, mutation, replica):
        # Bug: last-delivery-wins instead of monotonic versions.
        if replica == self.crashed:
            raise ValueError("cannot deliver to a crashed replica")
        stored = list(self.stored)
        erased = list(self.erased)
        if mutation.kind == "set":
            stored[replica] = mutation.version
        else:
            stored[replica] = 0
            erased[replica] = max(erased[replica], mutation.version)
        new_mutation = mutation.deliver_to(replica, True)
        pending = tuple(
            new_mutation
            if (m.kind, m.version) == (mutation.kind, mutation.version)
            else m for m in self.pending)
        pending = tuple(m for m in pending if not m.fully_delivered)
        return state_mod.ModelState(tuple(stored), tuple(erased), pending,
                                    self.crashed, self.issued_max)

    state_mod.ModelState.apply = buggy_apply
    try:
        result = check(max_sets=2, max_erases=1, allow_crash=False)
    finally:
        state_mod.ModelState.apply = original
    assert not result.ok
    assert "I" in result.counterexample.detail


# -- CAS in the model (I5 lost-update freedom) -------------------------------

def test_cas_applies_only_on_expectation_match():
    state = ModelState().issue("set")
    set_m = state.pending[0]
    for r in range(3):
        state = state.apply(set_m, r)
    state = state.issue("cas", expected=set_m.version)
    cas_m = state.pending[0]
    state = state.apply(cas_m, 0)
    assert state.stored[0] == cas_m.version
    # A second CAS against the now-stale expectation is rejected.
    state = state.issue("cas", expected=set_m.version)
    stale = state.pending[-1]
    state = state.apply(stale, 0)
    assert state.stored[0] == cas_m.version  # unchanged


def test_cas_tracks_applied_separately_from_delivered():
    state = ModelState().issue("cas", expected=5)  # nothing stored: reject
    cas_m = state.pending[0]
    state = state.apply(cas_m, 0)
    remaining = state.pending[0]
    assert 0 in remaining.delivered
    assert 0 not in remaining.applied


def test_full_check_with_cas_holds_lost_update_freedom():
    from repro.model import check
    # Two racing CAS (the I5-critical shape) plus a set+cas combination;
    # bigger bounds (1 set + 2 cas: ~245k states, ok) run via the CLI.
    result = check(max_sets=0, max_erases=0, max_cas=2, allow_crash=False)
    assert result.ok, result.counterexample and result.counterexample.detail
    result = check(max_sets=1, max_erases=0, max_cas=1, allow_crash=False)
    assert result.ok, result.counterexample and result.counterexample.detail


def test_injected_cas_toctou_bug_is_caught():
    """Remove the atomic expected-check (the real bug fixed in the
    backend) and the checker must produce an I5 counterexample."""
    import repro.model.state as state_mod
    from repro.model import check

    original = state_mod.ModelState.apply

    def buggy_apply(self, mutation, replica):
        if mutation.kind != "cas":
            return original(self, mutation, replica)
        # Bug: apply the CAS as a plain monotonic SET — the expected
        # check happened earlier, outside the lock (TOCTOU).
        stored = list(self.stored)
        erased = list(self.erased)
        floor = max(stored[replica], erased[replica])
        did_apply = False
        if mutation.version > floor:
            stored[replica] = mutation.version
            did_apply = True
        pending = tuple(
            m.deliver_to(replica, did_apply)
            if (m.kind, m.version) == (mutation.kind, mutation.version)
            else m for m in self.pending)
        history = self.history | frozenset(
            m for m in pending if m.fully_delivered and m.kind == "cas")
        pending = tuple(m for m in pending if not m.fully_delivered)
        return state_mod.ModelState(tuple(stored), tuple(erased), pending,
                                    self.crashed, self.issued_max, history)

    state_mod.ModelState.apply = buggy_apply
    try:
        result = check(max_sets=0, max_erases=0, max_cas=2,
                       allow_crash=False)
    finally:
        state_mod.ModelState.apply = original
    assert not result.ok
    assert "I5" in result.counterexample.detail
