"""Documentation integrity: docs reference files and modules that exist."""

import importlib
import pathlib
import re


ROOT = pathlib.Path(__file__).resolve().parents[2]


def read(name):
    return (ROOT / name).read_text()


def test_required_documents_exist():
    for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md", "LICENSE",
                 "docs/ARCHITECTURE.md", "docs/USAGE.md",
                 "benchmarks/README.md"):
        assert (ROOT / name).exists(), name


def test_design_references_existing_benchmarks():
    text = read("DESIGN.md")
    for match in set(re.findall(r"benchmarks/(bench_\w+\.py)", text)):
        assert (ROOT / "benchmarks" / match).exists(), match


def test_experiments_references_existing_benchmarks():
    text = read("EXPERIMENTS.md")
    for match in set(re.findall(r"`(bench_\w+\.py)`", text)):
        assert (ROOT / "benchmarks" / match).exists(), match


def test_every_benchmark_is_documented():
    documented = set(re.findall(r"bench_\w+\.py", read("EXPERIMENTS.md")))
    documented |= set(re.findall(r"bench_\w+\.py", read("DESIGN.md")))
    on_disk = {p.name for p in (ROOT / "benchmarks").glob("bench_*.py")}
    undocumented = on_disk - documented
    assert undocumented == set(), undocumented


def test_readme_references_existing_examples():
    text = read("README.md")
    for match in set(re.findall(r"examples/(\w+\.py)", text)):
        assert (ROOT / "examples" / match).exists(), match


def test_design_module_references_are_importable():
    text = read("DESIGN.md")
    for match in sorted(set(re.findall(r"`(repro(?:\.\w+)+)`", text))):
        parts = match.split(".")
        # Allow attribute references like repro.core.client; import the
        # longest importable prefix and resolve the rest as attributes.
        module = None
        for i in range(len(parts), 0, -1):
            try:
                module = importlib.import_module(".".join(parts[:i]))
                rest = parts[i:]
                break
            except ImportError:
                continue
        assert module is not None, match
        obj = module
        for attr in rest:
            assert hasattr(obj, attr), f"{match} ({attr})"
            obj = getattr(obj, attr)


def test_usage_doc_module_references_are_importable():
    text = read("docs/USAGE.md")
    for match in sorted(set(re.findall(r"from (repro(?:\.\w+)*) import",
                                       text))):
        importlib.import_module(match)


def test_all_examples_have_docstrings_and_main():
    for path in (ROOT / "examples").glob("*.py"):
        source = path.read_text()
        assert source.lstrip().startswith(("#!", '"""')), path.name
        assert "def main" in source, path.name
        assert '__name__ == "__main__"' in source, path.name
