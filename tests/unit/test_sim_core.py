"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim import Interrupt, SimulationError, Simulator


def test_time_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_timeout_advances_time():
    sim = Simulator()
    log = []

    def proc():
        yield sim.timeout(1.5)
        log.append(sim.now)
        yield sim.timeout(0.5)
        log.append(sim.now)

    sim.process(proc())
    sim.run()
    assert log == [1.5, 2.0]


def test_timeout_value_passthrough():
    sim = Simulator()
    seen = []

    def proc():
        value = yield sim.timeout(1.0, "hello")
        seen.append(value)

    sim.process(proc())
    sim.run()
    assert seen == ["hello"]


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.timeout(-1)


def test_run_until_time():
    sim = Simulator()
    log = []

    def proc():
        while True:
            yield sim.timeout(1.0)
            log.append(sim.now)

    sim.process(proc())
    sim.run(until=3.5)
    assert log == [1.0, 2.0, 3.0]
    assert sim.now == 3.5


def test_run_until_event_returns_value():
    sim = Simulator()

    def proc():
        yield sim.timeout(2.0)
        return 42

    result = sim.run(until=sim.process(proc()))
    assert result == 42
    assert sim.now == 2.0


def test_events_process_in_fifo_order_at_same_time():
    sim = Simulator()
    order = []

    def proc(tag):
        yield sim.timeout(1.0)
        order.append(tag)

    for tag in "abc":
        sim.process(proc(tag))
    sim.run()
    assert order == ["a", "b", "c"]


def test_process_waits_on_another_process():
    sim = Simulator()
    log = []

    def child():
        yield sim.timeout(3.0)
        return "done"

    def parent():
        result = yield sim.process(child())
        log.append((sim.now, result))

    sim.process(parent())
    sim.run()
    assert log == [(3.0, "done")]


def test_process_failure_propagates_to_waiter():
    sim = Simulator()
    caught = []

    def child():
        yield sim.timeout(1.0)
        raise ValueError("boom")

    def parent():
        try:
            yield sim.process(child())
        except ValueError as exc:
            caught.append(str(exc))

    sim.process(parent())
    sim.run()
    assert caught == ["boom"]


def test_unhandled_process_failure_raises_in_run():
    sim = Simulator()

    def child():
        yield sim.timeout(1.0)
        raise ValueError("unhandled")

    sim.process(child())
    with pytest.raises(ValueError, match="unhandled"):
        sim.run()


def test_defused_failure_does_not_raise():
    sim = Simulator()

    def child():
        yield sim.timeout(1.0)
        raise ValueError("defused")

    proc = sim.process(child())
    proc.defused = True
    sim.run()
    assert not proc.ok


def test_manual_event_succeed():
    sim = Simulator()
    ev = sim.event()
    got = []

    def waiter():
        got.append((yield ev))

    def firer():
        yield sim.timeout(5.0)
        ev.succeed("fired")

    sim.process(waiter())
    sim.process(firer())
    sim.run()
    assert got == ["fired"]


def test_event_double_trigger_rejected():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_wait_on_already_processed_event():
    sim = Simulator()
    ev = sim.event()
    ev.succeed("early")
    got = []

    def waiter():
        yield sim.timeout(2.0)
        got.append((yield ev))

    sim.process(waiter())
    sim.run()
    assert got == ["early"]


def test_all_of_waits_for_all():
    sim = Simulator()
    got = []

    def child(delay, value):
        yield sim.timeout(delay)
        return value

    def parent():
        values = yield sim.all_of(
            [sim.process(child(d, v)) for d, v in [(3, "a"), (1, "b")]])
        got.append((sim.now, values))

    sim.process(parent())
    sim.run()
    assert got == [(3.0, ["a", "b"])]


def test_any_of_returns_first():
    sim = Simulator()
    got = []

    def child(delay, value):
        yield sim.timeout(delay)
        return value

    def parent():
        event, value = yield sim.any_of(
            [sim.process(child(d, v)) for d, v in [(3, "slow"), (1, "fast")]])
        got.append((sim.now, value))

    sim.process(parent())
    sim.run()
    assert got == [(1.0, "fast")]


def test_any_of_defuses_later_failures():
    sim = Simulator()
    got = []

    def fast():
        yield sim.timeout(1.0)
        return "fast"

    def slow_fail():
        yield sim.timeout(2.0)
        raise RuntimeError("late failure")

    def parent():
        _ev, value = yield sim.any_of(
            [sim.process(fast()), sim.process(slow_fail())])
        got.append(value)
        yield sim.timeout(10.0)

    sim.process(parent())
    sim.run()
    assert got == ["fast"]


def test_interrupt_wakes_process():
    sim = Simulator()
    log = []

    def sleeper():
        try:
            yield sim.timeout(100.0)
        except Interrupt as intr:
            log.append((sim.now, intr.cause))

    def interrupter(target):
        yield sim.timeout(2.0)
        target.interrupt("stop")

    target = sim.process(sleeper())
    sim.process(interrupter(target))
    sim.run()
    assert log == [(2.0, "stop")]


def test_interrupted_process_not_double_resumed():
    sim = Simulator()
    wakeups = []

    def sleeper():
        try:
            yield sim.timeout(5.0)
            wakeups.append("timeout")
        except Interrupt:
            wakeups.append("interrupt")
        yield sim.timeout(10.0)
        wakeups.append("after")

    def interrupter(target):
        yield sim.timeout(1.0)
        target.interrupt()

    target = sim.process(sleeper())
    sim.process(interrupter(target))
    sim.run()
    assert wakeups == ["interrupt", "after"]


def test_interrupt_after_exit_is_noop():
    sim = Simulator()

    def quick():
        yield sim.timeout(1.0)

    proc = sim.process(quick())
    sim.run()
    proc.interrupt()  # must not raise
    sim.run()


def test_yield_non_event_fails_process():
    sim = Simulator()

    def bad():
        yield 42

    proc = sim.process(bad())
    proc.defused = True
    sim.run()
    assert not proc.ok
    assert isinstance(proc.value, SimulationError)


def test_call_in_runs_function_later():
    sim = Simulator()
    log = []
    sim.call_in(4.0, log.append, "later")
    sim.call_soon(log.append, "soon")
    sim.run()
    assert log == ["soon", "later"]


def test_peek_reports_next_event_time():
    sim = Simulator()
    assert sim.peek() == float("inf")
    sim.call_in(7.0, lambda: None)
    assert sim.peek() == 7.0


def test_process_return_value_via_until():
    sim = Simulator()

    def nested():
        inner = yield sim.process(child())
        return inner * 2

    def child():
        yield sim.timeout(1.0)
        return 21

    assert sim.run(until=sim.process(nested())) == 42


def test_call_in_rejects_negative_delay():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.call_in(-1.0, lambda: None)


def test_negative_delay_rejected_mid_run():
    # Scheduling into the past from inside a running simulation would
    # make time run backwards for everything already queued.
    sim = Simulator()
    failures = []

    def proc():
        yield sim.timeout(2.0)
        try:
            sim.call_in(-0.5, lambda: None)
        except SimulationError as exc:
            failures.append(exc)

    sim.process(proc())
    sim.run()
    assert len(failures) == 1
    assert sim.now == 2.0


def test_call_in_zero_delay_still_allowed():
    sim = Simulator()
    fired = []
    sim.call_in(0.0, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [0.0]
