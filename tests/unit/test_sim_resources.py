"""Unit tests for Resource and Store primitives."""

import pytest

from repro.sim import Resource, SimulationError, Simulator, Store


def test_resource_grants_up_to_capacity():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    log = []

    def worker(tag, hold):
        req = res.request()
        yield req
        log.append(("start", tag, sim.now))
        yield sim.timeout(hold)
        res.release(req)
        log.append(("end", tag, sim.now))

    for tag, hold in [("a", 5.0), ("b", 5.0), ("c", 5.0)]:
        sim.process(worker(tag, hold))
    sim.run()
    starts = {tag: t for kind, tag, t in log if kind == "start"}
    assert starts["a"] == 0.0
    assert starts["b"] == 0.0
    assert starts["c"] == 5.0  # queued behind the first two


def test_resource_fifo_order():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    order = []

    def worker(tag):
        req = res.request()
        yield req
        order.append(tag)
        yield sim.timeout(1.0)
        res.release(req)

    for tag in "abcd":
        sim.process(worker(tag))
    sim.run()
    assert order == ["a", "b", "c", "d"]


def test_resource_priority_order():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    order = []

    def holder():
        req = res.request()
        yield req
        yield sim.timeout(1.0)
        res.release(req)

    def worker(tag, priority, delay):
        yield sim.timeout(delay)
        req = res.request(priority=priority)
        yield req
        order.append(tag)
        res.release(req)

    sim.process(holder())
    sim.process(worker("low", 10, 0.1))
    sim.process(worker("high", 0, 0.2))
    sim.run()
    assert order == ["high", "low"]


def test_cancel_queued_request():
    sim = Simulator()
    res = Resource(sim, capacity=1)

    def holder():
        req = res.request()
        yield req
        yield sim.timeout(10.0)
        res.release(req)

    sim.process(holder())
    sim.run(until=1.0)
    queued = res.request()
    assert not queued.triggered
    res.release(queued)  # cancel while still queued
    assert res.queue_len == 0


def test_release_unknown_request_raises():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    other = Resource(sim, capacity=1)
    req = other.request()
    with pytest.raises(SimulationError):
        res.release(req)


def test_set_capacity_grows_and_grants():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    started = []

    def worker(tag):
        req = res.request()
        yield req
        started.append((tag, sim.now))
        yield sim.timeout(100.0)
        res.release(req)

    def grower():
        yield sim.timeout(5.0)
        res.set_capacity(2)

    sim.process(worker("a"))
    sim.process(worker("b"))
    sim.process(grower())
    sim.run(until=50.0)
    assert ("a", 0.0) in started
    assert ("b", 5.0) in started


def test_capacity_must_be_positive():
    sim = Simulator()
    with pytest.raises(SimulationError):
        Resource(sim, capacity=0)
    res = Resource(sim, capacity=1)
    with pytest.raises(SimulationError):
        res.set_capacity(0)


def test_utilization_tracking():
    sim = Simulator()
    res = Resource(sim, capacity=1)

    def worker():
        req = res.request()
        yield req
        yield sim.timeout(4.0)
        res.release(req)

    sim.process(worker())
    sim.run(until=8.0)
    # Busy 4s of 8s on one slot -> 50% utilization.
    assert res.utilization() == pytest.approx(0.5)


def test_utilization_checkpoint_window():
    sim = Simulator()
    res = Resource(sim, capacity=2)

    def worker(start, hold):
        yield sim.timeout(start)
        req = res.request()
        yield req
        yield sim.timeout(hold)
        res.release(req)

    sim.process(worker(0.0, 10.0))
    sim.run(until=5.0)
    ckpt = res.checkpoint()
    sim.process(worker(0.0, 5.0))  # second slot busy from t=5 to t=10
    sim.run(until=10.0)
    # Window [5, 10]: both slots busy -> utilization 1.0.
    assert res.utilization_since(ckpt) == pytest.approx(1.0)


def test_store_put_then_get():
    sim = Simulator()
    store = Store(sim)
    store.put("x")
    got = []

    def getter():
        got.append((yield store.get()))

    sim.process(getter())
    sim.run()
    assert got == ["x"]


def test_store_get_blocks_until_put():
    sim = Simulator()
    store = Store(sim)
    got = []

    def getter():
        item = yield store.get()
        got.append((sim.now, item))

    def putter():
        yield sim.timeout(3.0)
        store.put("y")

    sim.process(getter())
    sim.process(putter())
    sim.run()
    assert got == [(3.0, "y")]


def test_store_fifo_between_getters():
    sim = Simulator()
    store = Store(sim)
    got = []

    def getter(tag):
        item = yield store.get()
        got.append((tag, item))

    sim.process(getter("g1"))
    sim.process(getter("g2"))

    def putter():
        yield sim.timeout(1.0)
        store.put(1)
        store.put(2)

    sim.process(putter())
    sim.run()
    assert got == [("g1", 1), ("g2", 2)]


def test_store_try_get():
    sim = Simulator()
    store = Store(sim)
    assert store.try_get() is None
    store.put(5)
    assert store.try_get() == 5
    assert len(store) == 0
