"""Tests for the public experiment-harness utilities (repro.testing)."""


from repro.core import Cell, CellSpec, LookupStrategy, ReplicationMode
from repro.testing import (cell_cpu_hosts, drive, key_with_primary_shard,
                           measure_gets, preload_keys, run_closed_loop,
                           total_cpu)


def build():
    cell = Cell(CellSpec(mode=ReplicationMode.R3_2, num_shards=3,
                         transport="pony"))
    return cell, cell.connect_client(strategy=LookupStrategy.TWO_R)


def test_drive_returns_generator_value():
    cell, _client = build()

    def gen():
        yield cell.sim.timeout(1e-3)
        return 42

    assert drive(cell, gen()) == 42


def test_preload_and_measure():
    cell, client = build()
    keys = [b"key-%d" % i for i in range(10)]
    preload_keys(cell, client, keys, 256)
    recorder = measure_gets(cell, client, keys, count=30)
    assert recorder.count == 30
    assert recorder.percentile(50) > 0


def test_key_with_primary_shard_pins_correctly():
    cell, _client = build()
    for shard in range(3):
        key = key_with_primary_shard(cell, shard)
        assert cell.placement.primary_shard(
            cell.placement.key_hash(key)) == shard


def test_total_cpu_sums_hosts():
    cell, client = build()
    preload_keys(cell, client, [b"k"], 64)
    hosts = cell_cpu_hosts(cell) + [client.host]
    assert len(hosts) == 4
    assert total_cpu(*hosts) > 0


def test_run_closed_loop_collects_hits():
    cell, client = build()
    keys = [b"key-%d" % i for i in range(5)]
    preload_keys(cell, client, keys, 128)
    recorder = run_closed_loop(cell, [client], keys, ops_per_worker=20,
                               workers_per_client=2)
    assert recorder.count == 40
