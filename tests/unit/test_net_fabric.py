"""Unit tests for NIC links, MTU framing, and the fabric delivery model."""

import pytest

from repro.net import Fabric, FabricConfig, Link, MtuConfig, gbps
from repro.sim import Simulator


def make_fabric(rate=gbps(50.0), delay=4e-6, jitter=0.0):
    sim = Simulator()
    fabric = Fabric(sim, FabricConfig(
        host_rate_bytes_per_sec=rate,
        one_way_delay=delay,
        delay_jitter=jitter,
    ))
    return sim, fabric


def test_gbps_conversion():
    assert gbps(8.0) == pytest.approx(1e9)


def test_mtu_wire_bytes_single_frame():
    mtu = MtuConfig(mtu_bytes=5000, header_bytes=66)
    assert mtu.wire_bytes(100) == 166
    assert mtu.frames(100) == 1


def test_mtu_wire_bytes_multi_frame():
    mtu = MtuConfig(mtu_bytes=5000, header_bytes=66)
    assert mtu.frames(12000) == 3
    assert mtu.wire_bytes(12000) == 12000 + 3 * 66


def test_link_serialization_delay():
    sim = Simulator()
    link = Link(sim, rate_bytes_per_sec=1e6)
    done = []

    def proc():
        yield from link.transmit(1000)
        done.append(sim.now)

    sim.process(proc())
    sim.run()
    assert done == [pytest.approx(1e-3)]
    assert link.bytes_carried == 1000


def test_link_queues_concurrent_transfers():
    sim = Simulator()
    link = Link(sim, rate_bytes_per_sec=1e6)
    ends = []

    def proc():
        yield from link.transmit(1000)
        ends.append(sim.now)

    sim.process(proc())
    sim.process(proc())
    sim.run()
    assert ends == [pytest.approx(1e-3), pytest.approx(2e-3)]


def test_link_rejects_zero_rate():
    sim = Simulator()
    with pytest.raises(ValueError):
        Link(sim, rate_bytes_per_sec=0)


def test_deliver_end_to_end_latency():
    sim, fabric = make_fabric(rate=1e9, delay=5e-6)
    a = fabric.add_host("a")
    b = fabric.add_host("b")
    done = []

    def proc():
        yield from fabric.deliver(a, b, 1000)
        done.append(sim.now)

    sim.process(proc())
    sim.run()
    wire = fabric.config.mtu.wire_bytes(1000)
    expected = wire / 1e9 + 5e-6 + wire / 1e9
    assert done == [pytest.approx(expected)]


def test_deliver_counts_nic_bytes():
    sim, fabric = make_fabric()
    a = fabric.add_host("a")
    b = fabric.add_host("b")

    def proc():
        yield from fabric.deliver(a, b, 1000)

    sim.process(proc())
    sim.run()
    wire = fabric.config.mtu.wire_bytes(1000)
    assert a.nic.bytes_sent == wire
    assert b.nic.bytes_received == wire
    assert a.nic.bytes_received == 0


def test_loopback_delivery_is_fast():
    sim, fabric = make_fabric()
    a = fabric.add_host("a")
    done = []

    def proc():
        yield from fabric.deliver(a, a, 10 ** 6)
        done.append(sim.now)

    sim.process(proc())
    sim.run()
    assert done[0] < 1e-6
    assert a.nic.bytes_sent == 0


def test_duplicate_host_name_rejected():
    _sim, fabric = make_fabric()
    fabric.add_host("a")
    with pytest.raises(ValueError):
        fabric.add_host("a")


def test_incast_delays_concurrent_senders():
    """Many senders converging on one receiver serialize at its ingress."""
    sim, fabric = make_fabric(rate=1e8, delay=1e-6)
    receiver = fabric.add_host("rx")
    senders = [fabric.add_host(f"tx{i}") for i in range(4)]
    ends = []

    def proc(src):
        yield from fabric.deliver(src, receiver, 100_000)
        ends.append(sim.now)

    for src in senders:
        sim.process(proc(src))
    sim.run()
    wire = fabric.config.mtu.wire_bytes(100_000)
    one = wire / 1e8
    # First finishes after ~2 serializations; last queues behind 3 others
    # at the receiver ingress.
    assert min(ends) == pytest.approx(2 * one + 1e-6, rel=0.01)
    assert max(ends) >= 0.99 * (one + 4 * one)


def test_antagonist_consumes_bandwidth():
    sim, fabric = make_fabric(rate=1e8, delay=1e-6)
    victim = fabric.add_host("victim")
    other = fabric.add_host("other")
    fabric.start_antagonist(victim, offered_bytes_per_sec=0.95e8,
                            direction="ingress")
    latencies = []

    def probe():
        # Let the antagonist build up queue first.
        yield sim.timeout(5e-3)
        for _ in range(20):
            start = sim.now
            yield from fabric.deliver(other, victim, 4096)
            latencies.append(sim.now - start)
            yield sim.timeout(1e-4)

    sim.process(probe())
    sim.run(until=0.1)
    wire = fabric.config.mtu.wire_bytes(4096)
    unloaded = 2 * wire / 1e8 + 1e-6
    # Queueing behind antagonist chunks must visibly exceed unloaded latency.
    assert sorted(latencies)[len(latencies) // 2] > 2 * unloaded


def test_antagonist_direction_validated():
    _sim, fabric = make_fabric()
    victim = fabric.add_host("v")
    with pytest.raises(ValueError):
        fabric.start_antagonist(victim, 1e6, direction="sideways")
