"""Property-based tests (hypothesis) on core data structures & invariants."""

from hypothesis import given, settings, strategies as st

from repro.core.checksum import checksum_ok, kv_checksum
from repro.core.data import encode_entry_parts, entry_size, try_decode
from repro.core.hashing import Placement, default_key_hash
from repro.core.index import IndexRegion, make_scar_program, parse_bucket
from repro.core.quorum import (QuorumOutcome, ReplicaVote, evaluate)
from repro.core.slab import SlabAllocator
from repro.core.tombstone import TombstoneCache
from repro.core.version import VersionNumber
from repro.core.index import ParsedIndexEntry
from repro.transport import Arena


versions = st.builds(VersionNumber,
                     truetime_micros=st.integers(0, 2 ** 40),
                     client_id=st.integers(0, 2 ** 20),
                     sequence=st.integers(0, 2 ** 20))

keys = st.binary(min_size=1, max_size=64)
values = st.binary(min_size=0, max_size=512)


# -- versions ---------------------------------------------------------------

@given(versions)
def test_version_pack_roundtrip(v):
    assert VersionNumber.unpack(v.pack()) == v


@given(versions, versions)
def test_version_order_matches_tuple_order(a, b):
    assert (a < b) == ((a.truetime_micros, a.client_id, a.sequence) <
                       (b.truetime_micros, b.client_id, b.sequence))


# -- checksums ------------------------------------------------------------

@given(keys, values, versions)
def test_checksum_roundtrip_always_validates(key, value, version):
    kh = default_key_hash(key)
    check = kv_checksum(key, value, version.pack(), kh)
    assert checksum_ok(key, value, version.pack(), kh, check)


@given(keys, values, values, versions)
def test_checksum_rejects_different_value(key, v1, v2, version):
    if v1 == v2:
        return
    kh = default_key_hash(key)
    check = kv_checksum(key, v1, version.pack(), kh)
    assert not checksum_ok(key, v2, version.pack(), kh, check)


# -- data entries ----------------------------------------------------------

@given(keys, values, versions)
def test_entry_encode_decode_roundtrip(key, value, version):
    kh = default_key_hash(key)
    body, check = encode_entry_parts(key, value, version, kh)
    assert len(body) + len(check) == entry_size(len(key), len(value))
    entry = try_decode(body + check)
    assert entry is not None
    assert entry.key == key
    assert entry.value == value
    assert entry.version == version
    assert entry.checksum_ok(kh)


@given(st.binary(max_size=256))
def test_decode_never_crashes_on_garbage(raw):
    entry = try_decode(raw)
    if entry is not None:
        # Decoding may succeed structurally, but never beyond the buffer.
        assert len(entry.key) + len(entry.value) <= len(raw)


@given(keys, values, versions, st.integers(0, 200), st.binary(min_size=1,
                                                              max_size=8))
def test_corrupted_entry_never_validates_silently(key, value, version,
                                                  position, junk):
    """Flip bytes anywhere: either decode fails or the checksum catches it."""
    kh = default_key_hash(key)
    body, check = encode_entry_parts(key, value, version, kh)
    raw = bytearray(body + check)
    position %= len(raw)
    original = bytes(raw)
    raw[position:position + len(junk)] = junk[:max(0, len(raw) - position)]
    if bytes(raw) == original:
        return
    entry = try_decode(bytes(raw))
    if entry is None:
        return
    if entry.key == key and entry.value == value and \
            entry.version == version:
        return  # semantic fields untouched (corruption hit padding)
    assert not entry.checksum_ok(kh)


# -- slab allocator ---------------------------------------------------------

@settings(max_examples=50, deadline=None)
@given(st.lists(st.tuples(st.sampled_from(["alloc", "free"]),
                          st.integers(1, 8192)), max_size=200))
def test_slab_never_double_allocates(ops):
    arena = Arena(512 * 1024, 512 * 1024)
    allocator = SlabAllocator(arena, slab_bytes=64 * 1024, min_block=64)
    live = {}
    for op, size in ops:
        if op == "alloc":
            offset = allocator.alloc(size)
            if offset is None:
                continue
            block = allocator.block_size(offset)
            # No overlap with any live block.
            for other, other_block in live.items():
                assert offset + block <= other or \
                    other + other_block <= offset
            assert block >= size
            live[offset] = block
        elif live:
            victim = sorted(live)[size % len(live)]
            allocator.free(victim)
            del live[victim]
    assert allocator.used_bytes == sum(live.values())


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(1, 4096), min_size=1, max_size=100))
def test_slab_alloc_free_all_restores_emptiness(sizes):
    arena = Arena(1024 * 1024, 1024 * 1024)
    allocator = SlabAllocator(arena, slab_bytes=64 * 1024, min_block=64)
    offsets = [allocator.alloc(s) for s in sizes]
    for offset in offsets:
        if offset is not None:
            allocator.free(offset)
    assert allocator.used_bytes == 0


# -- tombstones ---------------------------------------------------------------

@settings(max_examples=50, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 10), versions), max_size=100),
       st.integers(1, 8))
def test_tombstone_floor_is_conservative(erases, capacity):
    """version_floor never under-reports: any erase recorded for a key is
    bounded above by the floor reported later (exact or via summary)."""
    cache = TombstoneCache(capacity=capacity)
    highest = {}
    for key_i, version in erases:
        kh = key_i.to_bytes(16, "little")
        cache.note_erase(kh, version)
        highest[kh] = max(highest.get(kh, VersionNumber.zero()), version)
    for kh, recorded in highest.items():
        # The floor must never under-report a recorded erase: a SET below
        # the highest erase version must always be rejected.
        assert cache.version_floor(kh) >= recorded


# -- quorum ---------------------------------------------------------------

def _vote(task, kind, version_n=0):
    if kind == "absent":
        return ReplicaVote.absent(task)
    if kind == "error":
        return ReplicaVote.error(task)
    entry = ParsedIndexEntry(way=0, key_hash=b"h" * 16,
                             version=VersionNumber(version_n, 0, 0),
                             region_id=1, offset=0, size=8, valid=True)
    return ReplicaVote.present(task, entry)


vote_strategy = st.tuples(st.sampled_from(["present", "absent", "error"]),
                          st.integers(0, 3))


@settings(max_examples=200, deadline=None)
@given(st.lists(vote_strategy, min_size=0, max_size=3))
def test_quorum_decision_is_sound(vote_specs):
    """Whatever evaluate() decides must actually be supported by >= 2
    matching votes, and UNDECIDED only while more votes could arrive."""
    votes = [_vote(f"t{i}", kind, n)
             for i, (kind, n) in enumerate(vote_specs)]
    decision = evaluate(votes, total_replicas=3, quorum=2)
    if decision.outcome is QuorumOutcome.PRESENT:
        matching = [v for v in votes
                    if v.version == decision.version and
                    v.kind.value == "present"]
        assert len(matching) >= 2
        assert set(decision.members) == {v.task for v in matching}
    elif decision.outcome is QuorumOutcome.ABSENT:
        absents = [v for v in votes if v.kind.value == "absent"]
        assert len(absents) >= 2
    elif decision.outcome is QuorumOutcome.UNDECIDED:
        assert len(votes) < 3
    else:  # INQUORATE
        # With the outstanding votes (if any) no tally could reach 2.
        from collections import Counter
        tallies = Counter()
        for v in votes:
            if v.kind.value != "error":
                tallies[(v.kind.value, v.version)] += 1
        best = max(tallies.values(), default=0)
        assert best + (3 - len(votes)) < 2


@settings(max_examples=100, deadline=None)
@given(st.lists(vote_strategy, min_size=3, max_size=3))
def test_quorum_never_undecided_with_all_votes(vote_specs):
    votes = [_vote(f"t{i}", kind, n)
             for i, (kind, n) in enumerate(vote_specs)]
    decision = evaluate(votes, total_replicas=3, quorum=2)
    assert decision.outcome is not QuorumOutcome.UNDECIDED


# -- placement ----------------------------------------------------------------

@settings(max_examples=50, deadline=None)
@given(keys, st.integers(1, 32), st.integers(1, 3))
def test_placement_shards_distinct_and_in_range(key, num_shards, replication):
    replication = min(replication, num_shards)
    placement = Placement(num_shards, replication)
    shards = placement.shards_for(placement.key_hash(key))
    assert len(shards) == replication
    assert len(set(shards)) == replication
    assert all(0 <= s < num_shards for s in shards)


# -- index region byte format ---------------------------------------------------

@settings(max_examples=50, deadline=None)
@given(st.lists(st.tuples(keys, versions, st.integers(0, 2 ** 30),
                          st.integers(1, 2 ** 20)),
                min_size=0, max_size=6))
def test_bucket_bytes_roundtrip_through_parse(entries):
    index = IndexRegion(num_buckets=1, ways=8, config_id=7)
    expected = {}
    for way, (key, version, offset, size) in enumerate(entries):
        kh = default_key_hash(key)
        index.write_entry(0, way, kh, version, 3, offset, size)
        expected[way] = (kh, version, offset, size)
    raw = index.window.read(0, index.bucket_bytes)
    parsed = parse_bucket(raw, 8)
    assert parsed.magic_ok
    for way, (kh, version, offset, size) in expected.items():
        entry = parsed.entries[way]
        assert entry.valid
        assert (entry.key_hash, entry.version, entry.offset, entry.size) == \
            (kh, version, offset, size)
    program = make_scar_program(8)
    for way, (kh, version, offset, size) in expected.items():
        assert program(raw, kh) is not None
