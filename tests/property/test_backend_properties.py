"""Property-based tests over backend storage management.

Random sequences of sets/erases/defrags/grows must never lose or corrupt
resident data — the strongest statement of "server-side code only has to
keep retryable conditions transient, detectable, and rare" (§4).
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import (BackendConfig, Cell, CellSpec, GetStatus,
                        LookupStrategy, ReplicationMode, SetStatus)


ops = st.lists(
    st.tuples(
        st.sampled_from(["set", "erase", "defrag", "grow_pressure"]),
        st.integers(0, 12),           # key id
        st.integers(1, 60),           # value size multiplier (x100 bytes)
    ),
    min_size=1, max_size=40)


def new_cell():
    return Cell(CellSpec(
        mode=ReplicationMode.R1, num_shards=1, transport="pony",
        backend_config=BackendConfig(
            data_initial_bytes=256 * 1024, data_virtual_limit=2 << 20,
            slab_bytes=64 * 1024, num_buckets=256, ways=7)))


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(ops)
def test_storage_management_never_loses_data(op_list):
    cell = new_cell()
    client = cell.connect_client(strategy=LookupStrategy.TWO_R)
    backend = cell.backend_by_task("backend-0")
    model = {}

    def driver():
        for op, key_i, size in op_list:
            key = b"key-%d" % key_i
            if op == "set":
                value = bytes([key_i % 251]) * (size * 100)
                result = yield from client.set(key, value)
                if result.status is SetStatus.APPLIED:
                    model[key] = value
            elif op == "erase":
                result = yield from client.erase(key)
                if result.status is SetStatus.APPLIED:
                    model.pop(key, None)
            elif op == "defrag":
                yield from backend.defragment(0.9)
            elif op == "grow_pressure":
                # A burst of bulky inserts drives growth machinery.
                filler = b"f-%d" % key_i
                result = yield from client.set(filler, bytes(size * 300))
                if result.status is SetStatus.APPLIED:
                    model[filler] = bytes(size * 300)
        # Verify the model after the dust settles.
        yield cell.sim.timeout(0.1)
        for key, value in model.items():
            got = yield from client.get(key)
            assert got.status is GetStatus.HIT, (key, got)
            assert got.value == value, key
        # And absent keys stay absent.
        for key_i in range(13):
            key = b"key-%d" % key_i
            if key not in model:
                got = yield from client.get(key)
                assert got.status is GetStatus.MISS, key

    cell.sim.run(until=cell.sim.process(driver()))


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(st.integers(0, 30), min_size=5, max_size=60),
       st.integers(2, 9))
def test_bucket_overflow_and_promotion_preserve_corpus(key_ids, ways_seed):
    """Tiny index: constant spill/promote churn must never lose a key."""
    cell = Cell(CellSpec(
        mode=ReplicationMode.R1, num_shards=1, transport="pony",
        backend_config=BackendConfig(num_buckets=2, ways=2,
                                     overflow_rpc_fallback=True,
                                     index_resize_load_factor=2.0,
                                     overflow_capacity=64)))
    client = cell.connect_client(strategy=LookupStrategy.TWO_R)
    model = {}

    def driver():
        for i, key_i in enumerate(key_ids):
            key = b"k-%d" % key_i
            if i % ways_seed == 0 and key in model:
                result = yield from client.erase(key)
                if result.status is SetStatus.APPLIED:
                    model.pop(key, None)
            else:
                value = b"v-%d-%d" % (key_i, i)
                result = yield from client.set(key, value)
                if result.status is SetStatus.APPLIED:
                    model[key] = value
        for key, value in model.items():
            got = yield from client.get(key)
            assert got.status is GetStatus.HIT, key
            assert got.value == value

    cell.sim.run(until=cell.sim.process(driver()))
