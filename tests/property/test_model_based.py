"""Model-based testing of R=3.2: sequential ops must match a dict model.

The paper proved single-failure tolerance of R=3.2 in TLA+ (§5.1). Here
we check the corresponding refinement property in simulation: under any
sequence of SET/ERASE/GET/CAS operations — including one backend crash
and recovery — sequential GETs always return exactly what an ideal
key-value map would.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import (Cell, CellSpec, GetStatus, LookupStrategy,
                        RepairConfig, ReplicationMode, SetStatus)


ops = st.lists(
    st.tuples(
        st.sampled_from(["set", "get", "erase", "crash", "restore"]),
        st.integers(0, 5),            # key id
        st.integers(0, 3),            # value id / crash target
    ),
    min_size=1, max_size=30)


def new_cell():
    return Cell(CellSpec(mode=ReplicationMode.R3_2, num_shards=3,
                         transport="pony",
                         repair_config=RepairConfig(enabled=False)))


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(ops)
def test_sequential_ops_match_model_with_single_failure(op_list):
    cell = new_cell()
    client = cell.connect_client(strategy=LookupStrategy.TWO_R)
    model = {}
    crashed = [None]  # at most one backend down at a time

    def driver():
        for op, key_i, value_i in op_list:
            key = b"key-%d" % key_i
            if op == "set":
                value = b"value-%d" % value_i
                result = yield from client.set(key, value)
                if result.status is SetStatus.APPLIED:
                    model[key] = value
            elif op == "erase":
                result = yield from client.erase(key)
                if result.status is SetStatus.APPLIED:
                    model.pop(key, None)
            elif op == "get":
                result = yield from client.get(key)
                if key in model:
                    assert result.status is GetStatus.HIT, \
                        f"lost {key!r}: {result}"
                    assert result.value == model[key]
                else:
                    assert result.status is GetStatus.MISS, \
                        f"phantom {key!r}: {result}"
            elif op == "crash" and crashed[0] is None:
                task = f"backend-{value_i % 3}"
                cell.backend_by_task(task).crash()
                crashed[0] = task
            elif op == "restore" and crashed[0] is not None:
                task = crashed[0]
                shard = int(task.split("-")[1])
                cell.restart_backend_task(task, shard=shard)
                crashed[0] = None
                # Recover its contents so a *future* crash of a different
                # backend doesn't leave keys inquorate.
                from repro.core.repair import RepairScanner
                recovery = RepairScanner(cell.sim, cell,
                                         cell.backend_by_task(task))
                yield from recovery.restart_recovery()
                # Single-failure tolerance presumes failures don't overlap:
                # let clients reconnect and a cohort scan clear any dirty
                # quorums (in production the periodic scanner does this,
                # §5.4) before the next fault can be injected.
                yield cell.sim.timeout(10e-3)
                yield from recovery.scan_once()

    cell.sim.run(until=cell.sim.process(driver()))


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(st.tuples(st.integers(0, 3), st.integers(0, 100)),
                min_size=1, max_size=25))
def test_last_writer_wins_across_clients(writes):
    """Interleaved writers from different clients: the final state equals
    the highest-version write per key (= the last applied in sim order)."""
    cell = new_cell()
    clients = [cell.connect_client() for _ in range(2)]
    reader = cell.connect_client(strategy=LookupStrategy.TWO_R)
    expected = {}

    def driver():
        for i, (key_i, value_i) in enumerate(writes):
            client = clients[i % 2]
            key = b"k%d" % key_i
            value = b"v%d" % value_i
            result = yield from client.set(key, value)
            assert result.status is SetStatus.APPLIED
            expected[key] = value
        for key, value in expected.items():
            got = yield from reader.get(key)
            assert got.status is GetStatus.HIT
            assert got.value == value

    cell.sim.run(until=cell.sim.process(driver()))
