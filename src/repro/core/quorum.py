"""Client-side quorum evaluation for replicated GETs (§5.1).

Under R=3.2 a GET fetches IndexEntries from all three replicas and takes a
per-KV-pair majority vote on (KeyHash, VersionNumber). A *present* vote is
the entry's version; an *absent* vote is the key's absence from a fetched
bucket. Two matching votes decide; a slow or failed third replica can be
ignored — the property that both masks single failures and lets the client
prefer the first responder.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Tuple

from .index import ParsedIndexEntry
from .version import VersionNumber


class VoteKind(enum.Enum):
    """What a replica's fetched bucket said about the key."""

    PRESENT = "present"
    ABSENT = "absent"
    ERROR = "error"       # fetch failed; contributes nothing


@dataclass(frozen=True)
class ReplicaVote:
    """One replica's answer to "what do you know about this key?"."""

    task: str
    kind: VoteKind
    version: Optional[VersionNumber] = None
    entry: Optional[ParsedIndexEntry] = None

    @classmethod
    def present(cls, task: str, entry: ParsedIndexEntry) -> "ReplicaVote":
        return cls(task=task, kind=VoteKind.PRESENT, version=entry.version,
                   entry=entry)

    @classmethod
    def absent(cls, task: str) -> "ReplicaVote":
        return cls(task=task, kind=VoteKind.ABSENT)

    @classmethod
    def error(cls, task: str) -> "ReplicaVote":
        return cls(task=task, kind=VoteKind.ERROR)


class QuorumOutcome(enum.Enum):
    """Result of evaluating the votes received so far."""

    PRESENT = "present"     # >= quorum agree the key exists at one version
    ABSENT = "absent"       # >= quorum agree the key does not exist
    UNDECIDED = "undecided"  # more votes could still settle it
    INQUORATE = "inquorate"  # all votes in; no majority exists


@dataclass
class QuorumDecision:
    outcome: QuorumOutcome
    version: Optional[VersionNumber] = None
    members: Tuple[str, ...] = ()
    # True when the decision is clean: all replicas (not just a quorum)
    # agree. A two-of-three agreement is a *dirty quorum* (§5.4).
    unanimous: bool = False

    def includes(self, task: str) -> bool:
        return task in self.members


def evaluate(votes: List[ReplicaVote], total_replicas: int,
             quorum: int) -> QuorumDecision:
    """Evaluate the votes received so far.

    ``votes`` holds every response received (including errors);
    ``total_replicas`` is how many were asked. Returns UNDECIDED while an
    outstanding response could still change the outcome.
    """
    tallies: dict = {}
    for vote in votes:
        if vote.kind == VoteKind.ERROR:
            continue
        key = vote.version if vote.kind == VoteKind.PRESENT else None
        tallies.setdefault(key, []).append(vote.task)

    # A decided quorum right now?
    best_key, best_tasks = None, ()
    for key, tasks in tallies.items():
        if len(tasks) >= quorum and len(tasks) > len(best_tasks):
            best_key, best_tasks = key, tuple(tasks)
    if best_tasks:
        unanimous = (len(best_tasks) == total_replicas)
        if best_key is None:
            return QuorumDecision(QuorumOutcome.ABSENT, members=best_tasks,
                                  unanimous=unanimous)
        return QuorumDecision(QuorumOutcome.PRESENT, version=best_key,
                              members=best_tasks, unanimous=unanimous)

    outstanding = total_replicas - len(votes)
    if outstanding > 0:
        # Could any tally still reach quorum with the outstanding votes?
        best_current = max((len(t) for t in tallies.values()), default=0)
        if best_current + outstanding >= quorum:
            return QuorumDecision(QuorumOutcome.UNDECIDED)
    return QuorumDecision(QuorumOutcome.INQUORATE)
