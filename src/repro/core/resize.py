"""Online cell resize: grow/shrink shard count under live traffic.

Production CliqueMap resizes cells while they serve (§6.1): capacity is
added or returned without failing a request. The
:class:`ResizeController` (a sibling of
:class:`~repro.core.maintenance.MaintenanceController`) executes a
key-range handoff in phases:

1. **prepare** — joining backend tasks are created (grow) and a new
   configuration generation is CAS-published carrying the *dual
   assignment*: the authoritative layout stays frozen (GETs keep their
   quorum on the old cohort) while ``migrating_to`` names the task that
   will serve each target-layout shard. Every backend stamps the new
   generation into its bucket headers, so clients discover the resize
   through normal response validation, rebuild their views, and start
   dual-writing: SETs land on the old cohort (authoritative for acks)
   *and* are shadowed onto the target cohort.
2. **backfill** — converging repair sweeps ride the RPC plane: every
   task in the target layout pulls the entries its new primaries own
   from every old-layout task, via the existing
   :class:`~repro.core.repair.RepairScanner` machinery (ScanSummary
   version diff, RepairGet, version-arbitrated installs — re-running a
   sweep is idempotent). Sweeps repeat until one copies nothing new.
3. **cutover** — the final layout is CAS-published (``num_shards``
   changes, ``shard_tasks`` becomes the target assignment), placements
   are swapped on the cell and every serving backend, and repair
   scanners start on joining tasks.
4. **drain** — one post-cutover reconcile sweep catches any write acked
   on the old cohort whose shadow copy was lost, survivors purge the
   entries they no longer own, and (after a grace period for stale
   clients to refresh) departing tasks stop gracefully.

A crash of a migration target mid-handoff is retried across sweeps; if
the target never returns within ``max_sweeps`` the resize aborts
cleanly, restoring the previous assignment. The whole operation holds
the cell's topology lock, serializing against planned maintenance; the
config store's compare-and-swap is the backstop if a controller bypasses
the lock.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, List, Optional, Sequence

from ..sim import Simulator
from .config import CellConfig
from .errors import CliqueMapError
from .hashing import Placement
from .repair import RepairConfig, RepairScanner
from .truetime import TrueTime
from .version import VersionFactory

# Version-factory id space for resize-driven installs, disjoint from
# application clients and the per-backend repair scanners.
RESIZE_CLIENT_ID_BASE = 1 << 25


@dataclass
class ResizeConfig:
    """Handoff pacing and limits."""

    max_sweeps: int = 12          # backfill rounds before abort/cutover
    sweep_interval: float = 0.01  # pause between converging sweeps
    drain_grace: float = 0.05     # cutover -> stop of departing tasks
    rpc_deadline: float = 50e-3
    batch_size: int = 64          # installs per MigrateIn RPC

    def __post_init__(self) -> None:
        if self.max_sweeps < 1:
            raise CliqueMapError(
                f"ResizeConfig.max_sweeps must be >= 1, "
                f"got {self.max_sweeps!r}")
        if self.sweep_interval < 0 or self.drain_grace < 0:
            raise CliqueMapError(
                "ResizeConfig intervals must be >= 0")


@dataclass
class ResizeStats:
    grows: int = 0
    shrinks: int = 0
    aborted: int = 0
    sweeps: int = 0
    entries_backfilled: int = 0
    entries_purged: int = 0
    last_handoff_seconds: float = 0.0


class ResizeController:
    """Drives online grow/shrink handoffs on a cell."""

    def __init__(self, sim: Simulator, cell,
                 config: Optional[ResizeConfig] = None):
        self.sim = sim
        self.cell = cell
        self.config = config or ResizeConfig()
        self.stats = ResizeStats()
        self.active = False
        self._m_events = cell.metrics.counter(
            "cliquemap_resize_events_total",
            "Resize lifecycle events by kind and outcome")
        self._m_backfill = cell.metrics.counter(
            "cliquemap_resize_backfill_entries_total",
            "Entries installed on target-cohort tasks during handoff")
        self._scanners: Dict[str, RepairScanner] = {}

    # ------------------------------------------------------------------
    # Public operations
    # ------------------------------------------------------------------

    def grow(self, count: int = 1) -> Generator:
        """Add ``count`` backend tasks and extend the layout online."""
        if count < 1:
            raise CliqueMapError(f"grow count must be >= 1, got {count!r}")
        return (yield from self._resize("grow", grow_count=count))

    def shrink(self, tasks: Optional[Sequence[str]] = None,
               count: int = 1) -> Generator:
        """Drain ``tasks`` (default: the layout's tail ``count`` tasks)
        out of the cell and contract the layout online."""
        return (yield from self._resize("shrink", shrink_tasks=tasks,
                                        shrink_count=count))

    # ------------------------------------------------------------------
    # The phased handoff
    # ------------------------------------------------------------------

    def _resize(self, action: str, grow_count: int = 0,
                shrink_tasks: Optional[Sequence[str]] = None,
                shrink_count: int = 1) -> Generator:
        if self.active:
            raise CliqueMapError("a resize is already in flight")
        cell = self.cell
        request = cell.topology_lock.request()
        yield request
        self.active = True
        started = self.sim.now
        joining: List[str] = []
        leaving: List[str] = []
        outcome = "aborted"
        try:
            current = cell.config_store.peek(cell.spec.name)
            old_tasks = list(current.shard_tasks)
            if action == "grow":
                joining = [cell.new_task_name() for _ in range(grow_count)]
                target = old_tasks + joining
            else:
                if shrink_tasks is None:
                    leaving = old_tasks[-shrink_count:]
                else:
                    leaving = list(shrink_tasks)
                unknown = [t for t in leaving if t not in old_tasks]
                if unknown:
                    raise CliqueMapError(
                        f"cannot shrink: {unknown!r} not in the layout")
                target = [t for t in old_tasks if t not in leaving]
                if len(target) < current.mode.replicas:
                    raise CliqueMapError(
                        f"cannot shrink below replication: {len(target)} "
                        f"shards < {current.mode.replicas} replicas")
            target_placement = Placement(
                len(target), current.mode.replicas,
                hash_function=cell.placement.hash_function)

            # Phase 1: create joining backends, publish the dual
            # assignment (CAS against the generation we planned from).
            for idx, task in enumerate(target):
                if task in joining:
                    cell._create_backend(task, shard=idx,
                                         placement=target_placement)
            self._m_events.labels(kind=action, outcome="started").inc()
            if cell.flight:
                cell.flight.record("resize", origin="resize-controller",
                                   phase="started", action=action,
                                   shards_before=len(old_tasks),
                                   shards_after=len(target))

            def publish_prepare(config: CellConfig) -> None:
                config.resize_num_shards = len(target)
                config.migrating_to = {i: t for i, t in enumerate(target)}
                config.draining = list(leaving)

            updated = cell.config_store.update(
                cell.spec.name, publish_prepare,
                expected_config_id=current.config_id)
            cell.adopt_config(updated)

            # Phase 2: converging backfill sweeps over the RPC plane.
            converged = yield from self._backfill(
                target, target_placement, old_tasks)
            if not converged and not self._targets_alive(target):
                # A migration target never came back: abort cleanly.
                yield from self._abort(action, joining, updated.config_id)
                self.stats.aborted += 1
                return self._summary(action, "aborted", started,
                                     len(old_tasks), len(old_tasks))

            # Phase 3: cutover to the target layout.
            def publish_cutover(config: CellConfig) -> None:
                config.num_shards = len(target)
                config.shard_tasks = list(target)
                config.resize_num_shards = 0
                config.migrating_to = {}
                config.draining = []

            updated = cell.config_store.update(
                cell.spec.name, publish_cutover,
                expected_config_id=updated.config_id)
            cell.placement = target_placement
            for idx, task in enumerate(target):
                backend = cell.backends[task]
                backend.shard = idx
                backend.placement = target_placement
            cell.adopt_config(updated)
            for task in leaving:
                scanner = cell.scanners.pop(task, None)
                if scanner is not None:
                    scanner.stop()
            if cell.spec.repair_config.enabled:
                for task in joining:
                    existing = cell.scanner_for(task)
                    if existing is None or \
                            existing.backend is not cell.backends[task]:
                        cell._start_scanner(task)

            # Phase 4: wait out the drain grace FIRST — stale clients
            # keep writing under the old placement until they discover
            # the cutover, and those writes must land (and dual-write
            # their shadows) before we reconcile and purge, or a late
            # old-layout write leaves residue on a surviving non-cohort
            # task. Then one reconcile sweep catches anything acked on
            # the old cohort whose shadow was lost, survivors purge the
            # entries they no longer own, and departing tasks stop.
            if self.config.drain_grace:
                yield self.sim.timeout(self.config.drain_grace)
            yield from self._backfill(target, target_placement, old_tasks,
                                      max_sweeps=1)
            for idx, task in enumerate(target):
                backend = cell.backends[task]
                if not backend.alive:
                    continue
                purged = yield from backend.purge_nonresident(
                    target_placement, idx)
                self.stats.entries_purged += purged
            for task in leaving:
                backend = cell.backends[task]
                if backend.alive:
                    backend.stop()

            if action == "grow":
                self.stats.grows += 1
            else:
                self.stats.shrinks += 1
            outcome = "completed"
            return self._summary(action, "completed", started,
                                 len(old_tasks), len(target))
        finally:
            self.stats.last_handoff_seconds = self.sim.now - started
            self._m_events.labels(kind=action, outcome=outcome).inc()
            if cell.flight:
                cell.flight.record("resize", origin="resize-controller",
                                   phase=outcome, action=action,
                                   duration=self.sim.now - started)
            self._scanners.clear()
            self.active = False
            cell.topology_lock.release(request)

    # ------------------------------------------------------------------
    # Phase helpers
    # ------------------------------------------------------------------

    def _backfill(self, target: List[str], placement: Placement,
                  old_tasks: List[str],
                  max_sweeps: Optional[int] = None) -> Generator:
        """Run converging sweeps; True once a full sweep installs
        nothing new with every target task alive."""
        sweeps = max_sweeps if max_sweeps is not None \
            else self.config.max_sweeps
        for sweep in range(sweeps):
            installed = 0
            all_alive = True
            for idx, task in enumerate(target):
                backend = self.cell.backends[task]
                if not backend.alive:
                    all_alive = False
                    continue  # the next sweep retries this target
                peers = [t for t in old_tasks
                         if t != task and self.cell.backends[t].alive]
                scanner = self._scanner_for(task, idx)
                count = yield from scanner.recover_from(
                    peers, placement=placement, shard=idx)
                installed += count
            self.stats.sweeps += 1
            if installed:
                self._m_backfill.labels().inc(installed)
                self.stats.entries_backfilled += installed
            if installed == 0 and all_alive:
                return True
            if self.config.sweep_interval:
                yield self.sim.timeout(self.config.sweep_interval)
        return False

    def _abort(self, action: str, joining: List[str],
               expected_config_id: int) -> Generator:
        """Clear the dual assignment and retire any joining tasks."""

        def publish_abort(config: CellConfig) -> None:
            config.resize_num_shards = 0
            config.migrating_to = {}
            config.draining = []

        updated = self.cell.config_store.update(
            self.cell.spec.name, publish_abort,
            expected_config_id=expected_config_id)
        self.cell.adopt_config(updated)
        for task in joining:
            backend = self.cell.backends.get(task)
            if backend is not None and backend.alive:
                backend.stop()
        yield self.sim.timeout(0)

    def _targets_alive(self, target: List[str]) -> bool:
        return all(self.cell.backends[t].alive for t in target)

    def _scanner_for(self, task: str, shard: int) -> RepairScanner:
        """An ephemeral (loop-less) repair scanner co-located with one
        target task, reused across this resize's sweeps."""
        scanner = self._scanners.get(task)
        if scanner is None or \
                scanner.backend is not self.cell.backends[task]:
            scanner = RepairScanner(
                self.sim, self.cell, self.cell.backends[task],
                RepairConfig(rpc_deadline=self.config.rpc_deadline,
                             batch_size=self.config.batch_size))
            # Disjoint version-id space (the backfill installs at source
            # versions, but keep the factory distinct regardless).
            scanner.versions = VersionFactory(
                RESIZE_CLIENT_ID_BASE + shard, TrueTime(self.sim))
            self._scanners[task] = scanner
        return scanner

    def _summary(self, action: str, outcome: str, started: float,
                 shards_before: int, shards_after: int) -> dict:
        return {
            "action": action,
            "outcome": outcome,
            "shards_before": shards_before,
            "shards_after": shards_after,
            "sweeps": self.stats.sweeps,
            "entries_backfilled": self.stats.entries_backfilled,
            "entries_purged": self.stats.entries_purged,
            "duration": self.sim.now - started,
        }
