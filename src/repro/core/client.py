"""The CliqueMap client library (§3, §5).

The client is where CliqueMap's design concentrates its cleverness:

* **2xR GETs** — bucket fetch, scan, data fetch, all one-sided;
* **SCAR GETs** — one round trip via the software NIC (§6.3);
* **RPC lookups** — fallback for WAN access and overflowed buckets;
* **client-side quoruming** with first-responder preference (§5.1);
* **self-validation** of every response: checksum, full-key compare,
  version-vs-quorum, bucket magic, and configuration id (§3, §6.1);
* **layered retries**: checksum failures retry the RMA; revoked regions
  re-handshake over RPC; config mismatches refresh from the external
  store; dead backends are skipped while a reconnect loop runs (§9);
* **mutations** via RPC to all replicas with client-nominated
  VersionNumbers (§5.2);
* **batched touch reporting** so backends can run recency-based
  eviction despite never seeing GETs (§4.2).
"""

from __future__ import annotations

import itertools
import zlib
from dataclasses import dataclass, field
from typing import Callable, Dict, Generator, List, Optional, Tuple

from ..net import Fabric, Host, NetworkDropError
from ..rpc import (PermissionDeniedError, Principal, RpcChannel, RpcError,
                   connect as rpc_connect)
from ..sim import Interrupt, RandomStream, Simulator
from ..telemetry import (NULL_FLIGHT, NULL_SPAN, MetricsRegistry,
                         TraceContext, Tracer)
from ..transport import (RegionRevokedError, RemoteHostDownError, RmaError,
                         Transport)
from .config import CellConfig, ConfigStore, GetStrategy, ReplicationMode
from .data import try_decode
from .errors import CliqueMapError, GetStatus, SetStatus
from .hashing import Placement
from .index import ParsedBucket, parse_bucket
from .quorum import (QuorumDecision, QuorumOutcome, ReplicaVote, VoteKind,
                     evaluate)
from .resilience import (BackendHealth, BackoffPolicy, HealthPolicy,
                         RetryBudget)
from .truetime import TrueTime
from .version import VersionFactory, VersionNumber

# Fallback id space for clients created outside a Cell; Cell-created
# clients get deterministic per-cell ids (reproducibility requires that
# version tiebreaks and backoff seeds not depend on process history).
_client_ids = itertools.count(1 << 20)


@dataclass
class ClientCostModel:
    """CliqueMap-client CPU costs (distinct from transport/engine CPU)."""

    issue_op_cpu: float = 0.22e-6       # set up one RMA op
    completion_cpu: float = 0.28e-6     # process one RMA completion
    validate_cpu: float = 0.30e-6       # checksum + key comparison
    validate_per_kb: float = 0.045e-6
    quorum_cpu: float = 0.12e-6         # evaluate votes
    mutation_cpu: float = 0.60e-6       # build mutation RPCs


@dataclass
class ClientConfig:
    """Client behavior knobs."""

    default_deadline: float = 10e-3
    max_retries: int = 10
    # Backoff between retries: exponential with decorrelated jitter,
    # starting at retry_backoff and capped at retry_backoff_cap. Set
    # retry_backoff=0 to disable (no sleep between attempts).
    retry_backoff: float = 15e-6
    retry_backoff_cap: float = 2e-3
    # Token-bucket retry budget shared by all of this client's ops: each
    # retry spends one token; when dry, retries are shed and the op fails
    # fast with a "budget-exhausted" reason. capacity <= 0 disables.
    retry_budget_capacity: float = 128.0
    retry_budget_fill_rate: float = 1000.0      # tokens per second
    health: HealthPolicy = field(default_factory=HealthPolicy)
    mutation_rpc_deadline: float = 5e-3
    touch_enabled: bool = True
    touch_flush_interval: float = 20e-3
    touch_batch_max: int = 512
    reconnect_interval: float = 2e-3
    overflow_rpc_lookup: bool = True
    # Ablation switch: always fetch the datum from the logical primary
    # instead of the first responder (a primary/backup-style read path).
    force_primary_data_fetch: bool = False
    # Transparent value compression (a post-launch feature, §9). This is
    # a *corpus-level* convention: every client of the corpus must agree,
    # since values are stored wrapped with a 1-byte scheme header.
    compression_enabled: bool = False
    compression_min_bytes: int = 512
    compress_cpu_per_kb: float = 10e-6      # ~100 MB/s deflate
    decompress_cpu_per_kb: float = 3e-6     # ~300 MB/s inflate
    costs: ClientCostModel = field(default_factory=ClientCostModel)

    def __post_init__(self) -> None:
        for name, minimum in (("default_deadline", 0.0),
                              ("mutation_rpc_deadline", 0.0),
                              ("touch_flush_interval", 0.0),
                              ("reconnect_interval", 0.0)):
            value = getattr(self, name)
            if value <= minimum:
                raise CliqueMapError(
                    f"ClientConfig.{name} must be > {minimum:g}, "
                    f"got {value!r}")
        if self.max_retries < 1:
            raise CliqueMapError(
                "ClientConfig.max_retries must be >= 1 (it counts "
                f"attempts, including the first), got {self.max_retries!r}")
        if self.retry_backoff < 0:
            raise CliqueMapError(
                "ClientConfig.retry_backoff must be >= 0, "
                f"got {self.retry_backoff!r}")
        if self.retry_backoff_cap < self.retry_backoff:
            raise CliqueMapError(
                "ClientConfig.retry_backoff_cap must be >= retry_backoff, "
                f"got {self.retry_backoff_cap!r} < {self.retry_backoff!r}")
        if self.retry_budget_fill_rate < 0:
            raise CliqueMapError(
                "ClientConfig.retry_budget_fill_rate must be >= 0, "
                f"got {self.retry_budget_fill_rate!r}")
        if self.touch_batch_max < 1:
            raise CliqueMapError(
                "ClientConfig.touch_batch_max must be >= 1, "
                f"got {self.touch_batch_max!r}")
        if self.compression_min_bytes < 0:
            raise CliqueMapError(
                "ClientConfig.compression_min_bytes must be >= 0, "
                f"got {self.compression_min_bytes!r}")


@dataclass
class OpResult:
    """Common shape of every client operation outcome.

    :class:`GetResult` and :class:`MutationResult` share this surface:
    a ``status`` enum, the end-to-end simulated ``latency``, how many
    ``attempts`` the layered retry machinery used, an ``error`` reason
    string for terminal failures, and — when tracing is enabled — the
    operation's :class:`~repro.telemetry.TraceContext` in ``trace``.

    ``source`` says which tier produced a read's answer: ``"cache"``
    (the CliqueMap tier, the only source without an attached SoR),
    ``"sor"`` (resolved by the read-through miss pipeline), or
    ``"negative"`` (a remembered-absent entry short-circuited the SoR).
    """

    status: object
    latency: float = 0.0
    attempts: int = 1
    error: Optional[str] = None
    trace: Optional[TraceContext] = None
    source: str = "cache"

    @property
    def ok(self) -> bool:
        """True unless the operation terminally failed."""
        return self.status not in (GetStatus.ERROR, SetStatus.FAILED)


@dataclass
class GetResult(OpResult):
    """Outcome of one GET."""

    status: GetStatus = GetStatus.ERROR
    value: Optional[bytes] = None
    version: Optional[VersionNumber] = None

    @property
    def hit(self) -> bool:
        return self.status is GetStatus.HIT


@dataclass
class MutationResult(OpResult):
    """Outcome of a SET/ERASE/CAS."""

    status: SetStatus = SetStatus.FAILED
    version: Optional[VersionNumber] = None
    replicas_applied: int = 0
    stored_version: Optional[VersionNumber] = None


@dataclass
class BackendView:
    """Connection-time metadata for one backend task (§3).

    Liveness is delegated to a :class:`~repro.core.resilience.
    BackendHealth` scoreboard: ``healthy`` (kept as a read-only property
    for compatibility) now means *connected and not quarantined*, so a
    flapping replica is excluded from the read cohort for a cooldown
    instead of toggling a binary flag on every error.
    """

    task: str
    host_name: str
    channel: RpcChannel
    health: BackendHealth
    config_id: int = 0
    index_region_id: int = 0
    num_buckets: int = 0
    ways: int = 0
    bucket_bytes: int = 0
    data_region_id: int = 0

    @property
    def healthy(self) -> bool:
        return self.health.available()


class _AttemptRetry(Exception):
    """Internal: this attempt failed; retry after the indicated recovery."""

    def __init__(self, reason: str, refresh_config: bool = False,
                 stale_tasks: Tuple[str, ...] = ()):
        super().__init__(reason)
        self.reason = reason
        self.refresh_config = refresh_config
        self.stale_tasks = stale_tasks


def _parent_span(trace):
    """Normalize a ``trace=`` argument (TraceContext | Span | None) to
    the parent span it designates, or None for an unparented op."""
    if trace is None:
        return None
    if isinstance(trace, TraceContext):
        return trace.root
    return trace


class CliqueMapClient:
    """One application client of a CliqueMap cell."""

    def __init__(self, sim: Simulator, fabric: Fabric, host: Host,
                 cell_name: str, config_store: ConfigStore,
                 directory: Callable[[str], object],
                 transport: Transport,
                 principal: Optional[Principal] = None,
                 strategy: Optional[GetStrategy] = None,
                 config: Optional[ClientConfig] = None,
                 truetime: Optional[TrueTime] = None,
                 registry: Optional[MetricsRegistry] = None,
                 tracer: Optional[Tracer] = None,
                 flight=None,
                 client_id: Optional[int] = None):
        self.sim = sim
        self.fabric = fabric
        self.host = host
        self.cell_name = cell_name
        self.config_store = config_store
        self.directory = directory
        self.transport = transport
        self.principal = principal or Principal(f"client@{host.name}")
        self.client_id = client_id if client_id is not None \
            else next(_client_ids)
        self.config = config or ClientConfig()
        if strategy is None:
            strategy = (GetStrategy.SCAR
                        if transport is not None and transport.supports_scar
                        else GetStrategy.TWO_R)
        self.strategy = GetStrategy.coerce(strategy)
        self.truetime = truetime or TrueTime(sim)
        self.versions = VersionFactory(self.client_id, self.truetime)

        self.cell: Optional[CellConfig] = None
        self.placement: Optional[Placement] = None
        # Target-layout placement while a resize is in flight (None
        # otherwise): reads keep their quorum on ``placement``; mutations
        # are additionally shadowed onto the target cohort.
        self.next_placement: Optional[Placement] = None
        self._views: Dict[str, BackendView] = {}
        self._pending_touches: Dict[str, List[bytes]] = {}
        self._pending_touch_count = 0
        self._touch_flusher_started = False
        self._reconnecting: set = set()
        self._config_refreshing = False
        self._closed = False
        # Miss-path coordinator; wired by Cell.attach_sor / make_client.
        # When set, cache MISSes read through to the system of record
        # and acknowledged mutations are noted for write-behind.
        self.read_through = None

        self.stats = {
            "gets": 0, "hits": 0, "misses": 0, "get_errors": 0,
            "retries": 0, "retries_shed": 0, "validation_failures": 0,
            "inquorate": 0, "config_refreshes": 0, "view_refreshes": 0,
            "sets": 0, "erases": 0, "cas": 0, "overflow_lookups": 0,
            "torn_reads": 0, "version_races": 0, "sor_hits": 0,
        }

        # Degradation machinery: decorrelated-jitter backoff (seeded per
        # client id, so runs with the same topology are reproducible) and
        # a token-bucket retry budget shared by all of this client's ops.
        self._retry_rand = RandomStream(self.client_id, "client-backoff")
        self._retry_budget = RetryBudget(
            clock=lambda: self.sim.now,
            capacity=self.config.retry_budget_capacity,
            fill_rate=self.config.retry_budget_fill_rate)

        # Telemetry: a cell-shared registry when created via Cell, a
        # private one for standalone clients; the tracer retains recent
        # operation span trees (see repro.telemetry).
        self.metrics = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer or Tracer(clock=lambda: self.sim.now)
        # Flight recorder (cell-shared ring of structured events).
        # NULL_FLIGHT is falsy, so every hook site below guards with
        # ``if self._flight:`` and a disabled recorder costs nothing.
        self._flight = flight if flight is not None else NULL_FLIGHT
        self._flight_origin = f"client-{self.client_id}"
        self._m_ops = self.metrics.counter(
            "cliquemap_ops_total",
            "Completed client operations by op and terminal status")
        self._m_latency = self.metrics.histogram(
            "cliquemap_op_latency_seconds",
            "End-to-end operation latency by op and lookup strategy")
        self._m_retries = self.metrics.counter(
            "cliquemap_retries_total",
            "Per-attempt retries by op and hazard reason")
        self._m_touch_pending = self.metrics.gauge(
            "cliquemap_pending_touches",
            "Key touches buffered awaiting the next batched Touch RPC")
        self._m_retries_shed = self.metrics.counter(
            "cliquemap_retries_shed_total",
            "Retries refused because the client's retry budget was dry")
        self._m_quarantine = self.metrics.counter(
            "cliquemap_backend_quarantine_total",
            "Backend quarantine transitions by task and event (enter/exit)")
        self._m_batch_size = self.metrics.histogram(
            "cliquemap_batch_size_keys",
            "Keys per batched multi-key client operation")
        self._m_batch_keys = self.metrics.counter(
            "cliquemap_client_batch_keys_total",
            "Keys resolved on the batched fast path, by op")
        self._m_batch_fallback = self.metrics.counter(
            "cliquemap_batch_fallback_total",
            "Batch keys diverted to the singleton retry path, by op/reason")
        self._m_shadow = self.metrics.counter(
            "cliquemap_shadow_writes_total",
            "Dual-write shadows onto a resize target cohort, by "
            "method and outcome")

        # Pre-bound series handles for the per-op hot path. Resolving
        # ``labels(...)`` sorts and hashes the label set on every call;
        # the strategy label is fixed for the client's lifetime, so the
        # common (op, status) series are bound once here and the rest
        # memoized on first use in :meth:`_finish_op`.
        strategy = self.strategy.value
        self._h_ops = {
            (op, status): self._m_ops.labels(op=op, status=status)
            for op, status in (("get", "hit"), ("get", "miss"),
                               ("get", "error"), ("set", "applied"),
                               ("set", "failed"))}
        self._h_latency = {
            op: self._m_latency.labels(op=op, strategy=strategy)
            for op in ("get", "set", "erase", "append")}
        self._h_batched_get_latency = self._m_latency.labels(
            op="get", strategy="batched")
        self._h_batched_set_latency = self._m_latency.labels(
            op="set", strategy="batched")
        self._h_batch_size_get = self._m_batch_size.labels(op="get_multi")
        self._h_batch_size_set = self._m_batch_size.labels(op="set_multi")
        self._h_batch_keys_get = self._m_batch_keys.labels(op="get")
        self._h_batch_keys_set = self._m_batch_keys.labels(op="set")
        self._h_touch_pending = self._m_touch_pending.labels(
            client=self.client_id)

    # ------------------------------------------------------------------
    # Connection management
    # ------------------------------------------------------------------

    def connect(self) -> Generator:
        """Fetch cell config and handshake with every serving backend."""
        config = yield from self.config_store.get(self.cell_name)
        self._adopt_config(config)
        for task in set(self.cell.serving_tasks()):
            yield from self._build_view(task)

    def _adopt_config(self, config: CellConfig) -> None:
        """Install a config generation: rebuild the authoritative
        placement and, mid-resize, the target-layout placement too."""
        self.cell = config
        if self._flight:
            self._flight.record("config", origin=self._flight_origin,
                                config_id=config.config_id,
                                num_shards=config.num_shards,
                                resize_active=config.resize_active)
        self.placement = Placement(config.num_shards,
                                   config.mode.replicas)
        if config.resize_active:
            self.next_placement = Placement(config.resize_num_shards,
                                            config.mode.replicas)
        else:
            self.next_placement = None

    def _health_event(self, task: str, event: str) -> None:
        self._m_quarantine.labels(task=task, event=event).inc()
        if self._flight:
            self._flight.record("quarantine", origin=self._flight_origin,
                                task=task, event=event)

    def _new_health(self, task: str) -> BackendHealth:
        return BackendHealth(task, clock=lambda: self.sim.now,
                             policy=self.config.health,
                             on_event=self._health_event)

    def _build_view(self, task: str) -> Generator:
        backend = self.directory(task)
        view = self._views.get(task)
        new_incarnation = False
        if view is None or view.channel.server is not backend.rpc_server:
            new_incarnation = view is not None
            channel = rpc_connect(self.sim, self.fabric, self.host,
                                  backend.rpc_server, self.principal,
                                  client_component="cliquemap-client")
            health = view.health if view is not None \
                else self._new_health(task)
            view = BackendView(task=task, host_name=backend.host.name,
                               channel=channel, health=health)
            self._views[task] = view
        try:
            info = yield from view.channel.call(
                "Info", {}, deadline=self.config.mutation_rpc_deadline)
        except RpcError:
            view.health.mark_down()
            self._start_reconnect(task)
            return view
        view.config_id = info["config_id"]
        view.index_region_id = info["index_region_id"]
        view.num_buckets = info["num_buckets"]
        view.ways = info["ways"]
        view.bucket_bytes = info["bucket_bytes"]
        view.data_region_id = info["data_region_id"]
        # A handshake proves the control channel, not the data path: it
        # reconnects the view but does not clear quarantine — only op
        # successes do, so a gray replica cannot flap back in. The one
        # exception is a brand-new server incarnation: its predecessor's
        # failure history died with the old process.
        view.health.mark_connected()
        if new_incarnation:
            view.health.reset_for_new_incarnation()
        self.stats["view_refreshes"] += 1
        return view

    def _refresh_config(self) -> Generator:
        """Re-read cell topology from the external HA store (§6.1)."""
        config = yield from self.config_store.get(self.cell_name)
        self._adopt_config(config)
        self.stats["config_refreshes"] += 1
        for task in set(self.cell.serving_tasks()):
            yield from self._build_view(task)

    def _note_stale_config(self, config_id: int) -> None:
        """A reply proved the cell moved on: refresh in the background.

        Mutation replies carry the backend's serving generation, so even
        a SET-only client (which never validates bucket headers, the
        usual discovery path) learns about resize phases and cutover.
        Deduped: one refresh in flight at a time.
        """
        if self._closed or self.cell is None:
            return
        if config_id <= self.cell.config_id or self._config_refreshing:
            return
        self._config_refreshing = True

        def refresh() -> Generator:
            try:
                yield from self._refresh_config()
            finally:
                self._config_refreshing = False

        proc = self.sim.process(refresh(),
                                name=f"config-refresh:{self.client_id}")
        proc.defused = True

    def _start_reconnect(self, task: str) -> None:
        if task in self._reconnecting:
            return
        self._reconnecting.add(task)
        proc = self.sim.process(self._reconnect_loop(task),
                                name=f"reconnect:{task}")
        proc.defused = True

    def _reconnect_loop(self, task: str) -> Generator:
        try:
            while True:
                yield self.sim.sleep(self.config.reconnect_interval)
                if task not in set(self.cell.serving_tasks()):
                    return  # task no longer serves; a refresh will rebuild
                view = yield from self._build_view(task)
                if view.health.connected:
                    # Reconnected; any remaining quarantine expires on
                    # its own cooldown (or on the next op success).
                    return
        finally:
            self._reconnecting.discard(task)

    def _replica_views(self, key_hash: bytes) -> List[BackendView]:
        """Healthy views for the key's replica cohort, shard order."""
        views = []
        for shard in self.placement.shards_for(key_hash):
            task = self.cell.task_for_shard(shard)
            view = self._views.get(task)
            if view is None:
                continue  # will be built on next config refresh
            if view.healthy:
                views.append(view)
        return views

    def _shadow_views(self, key_hash: bytes) -> List[BackendView]:
        """Target-cohort views a mutation must dual-write to (resize).

        The key's cohort under the *target* layout, minus any task that
        is already in its authoritative cohort (those get the real
        mutation). Empty when no resize is in flight.
        """
        cell = self.cell
        if cell is None or not cell.resize_active or \
                self.next_placement is None:
            return []
        exclude = {cell.task_for_shard(shard)
                   for shard in self.placement.shards_for(key_hash)}
        views = []
        for shard in self.next_placement.shards_for(key_hash):
            task = cell.migrating_to.get(shard)
            if task is None or task in exclude:
                continue
            view = self._views.get(task)
            if view is not None and view.healthy:
                views.append(view)
        return views

    def _shadow_mutate(self, view: BackendView, method: str, payload: dict,
                       payload_size: int) -> None:
        """Fire-and-forget one shadow mutation at a target-cohort task.

        Shadows never count toward the quorum (acks come only from the
        authoritative cohort) and never block the foreground op; a lost
        shadow is caught by the post-cutover reconcile sweep.
        """

        def one() -> Generator:
            try:
                yield from view.channel.call(
                    method, payload,
                    deadline=self.config.mutation_rpc_deadline,
                    request_size=payload_size)
                self._m_shadow.labels(method=method, outcome="ok").inc()
            except (PermissionDeniedError, RpcError):
                self._m_shadow.labels(method=method, outcome="error").inc()

        proc = self.sim.process(one(), name=f"shadow:{view.task}")
        proc.defused = True

    # ------------------------------------------------------------------
    # GET
    # ------------------------------------------------------------------

    def get(self, key: bytes, deadline: Optional[float] = None,
            trace=None) -> Generator:
        """Look up a key; retries transparently, returns a GetResult.

        ``trace`` (a :class:`TraceContext` or :class:`Span`, optional)
        parents this op's span tree under an enclosing operation — a
        federated fan-out or a WAN gateway serve — instead of starting
        a standalone root.
        """
        self.stats["gets"] += 1
        started = self.sim.now
        deadline_at = started + (deadline or self.config.default_deadline)
        key_hash = self.placement.key_hash(key)
        attempts = 0
        last_reason = "no-healthy-replicas"
        backoff = BackoffPolicy(self.config.retry_backoff,
                                self.config.retry_backoff_cap,
                                self._retry_rand)
        root = self.tracer.start("get", parent=_parent_span(trace),
                                 client=self.client_id,
                                 strategy=self.strategy.value)

        while attempts < self.config.max_retries and \
                self.sim.now < deadline_at:
            attempts += 1
            try:
                status, value, version = yield from self._attempt(
                    key, key_hash, deadline_at, root, attempts)
            except _AttemptRetry as retry:
                self.stats["retries"] += 1
                self._m_retries.labels(op="get", reason=retry.reason).inc()
                if self._flight:
                    self._flight.record("retry", origin=self._flight_origin,
                                        op="get", reason=retry.reason,
                                        attempt=attempts)
                last_reason = retry.reason
                if retry.reason.startswith("validation"):
                    self.stats["validation_failures"] += 1
                if retry.reason == "inquorate":
                    self.stats["inquorate"] += 1
                if attempts >= self.config.max_retries or \
                        self.sim.now >= deadline_at:
                    continue  # terminal: no further attempt to pay for
                if not self._retry_budget.try_spend():
                    # Budget dry: shed the retry instead of amplifying
                    # the overload; fail fast with a distinct reason.
                    self.stats["retries_shed"] += 1
                    self._m_retries_shed.labels(op="get",
                                                reason=retry.reason).inc()
                    if self._flight:
                        self._flight.record("retry_shed",
                                            origin=self._flight_origin,
                                            op="get", reason=retry.reason,
                                            attempt=attempts)
                    last_reason = "budget-exhausted"
                    root.annotate(shed_retry=True)
                    break
                recovery = root.child("retry", attempt=attempts,
                                      reason=retry.reason)
                for task in retry.stale_tasks:
                    yield from self._build_view(task)
                if retry.refresh_config:
                    yield from self._refresh_config()
                if retry.reason in ("no-healthy-replicas", "inquorate",
                                    "replica-down", "replica-error"):
                    # Failed-RMA retries contact backends via RPC as part
                    # of the retry procedure (§4.1) — re-handshake any
                    # disconnected cohort member inline rather than
                    # waiting for the background reconnect loop.
                    # Quarantined members are left to cool down — unless
                    # the directory shows the task restarted, in which
                    # case the quarantine belongs to a dead incarnation
                    # and a handshake re-admits the new one.
                    for shard in self.placement.shards_for(key_hash):
                        task = self.cell.task_for_shard(shard)
                        view = self._views.get(task)
                        if view is None or (not view.health.connected and
                                            not view.health.quarantined):
                            yield from self._build_view(task)
                        elif view.channel.server is not \
                                self.directory(task).rpc_server:
                            yield from self._build_view(task)
                delay = backoff.next_delay()
                if self.sim.now + delay >= deadline_at:
                    # The backoff would sleep past the deadline; stop now
                    # instead of burning the remaining attempts in a
                    # zero-delay spin at the deadline instant.
                    recovery.finish()
                    break
                if delay:
                    yield self.sim.sleep(delay)
                recovery.finish()
                continue
            if status is GetStatus.HIT:
                latency = self.sim.now - started
                root.finish()  # at the same instant latency is measured
                self.stats["hits"] += 1
                self._note_touch(key_hash)
                value = yield from self._decode_value(value)
                return GetResult(GetStatus.HIT, value=value, version=version,
                                 attempts=attempts, latency=latency,
                                 trace=self._finish_op("get", "hit", latency,
                                                       root))
            if self.read_through is not None and \
                    self.read_through.policy.read_through:
                return (yield from self._read_through_miss(
                    key, attempts, started, root))
            latency = self.sim.now - started
            root.finish()
            self.stats["misses"] += 1
            return GetResult(GetStatus.MISS, attempts=attempts,
                             latency=latency,
                             trace=self._finish_op("get", "miss", latency,
                                                   root))

        self.stats["get_errors"] += 1
        latency = self.sim.now - started
        root.annotate(error=last_reason).finish()
        return GetResult(GetStatus.ERROR, attempts=attempts, latency=latency,
                         error=last_reason,
                         trace=self._finish_op("get", "error", latency, root))

    def _finish_op(self, op: str, status: str, latency: float,
                   root) -> Optional[TraceContext]:
        """Record terminal metrics + trace + flight event for one op."""
        handle = self._h_ops.get((op, status))
        if handle is None:
            handle = self._h_ops[(op, status)] = self._m_ops.labels(
                op=op, status=status)
        handle.inc()
        latency_handle = self._h_latency.get(op)
        if latency_handle is None:
            latency_handle = self._h_latency[op] = self._m_latency.labels(
                op=op, strategy=self.strategy.value)
        latency_handle.observe(latency)
        if self._flight:
            self._flight.record("op", origin=self._flight_origin, op=op,
                                status=status, latency=latency,
                                trace_id=root.trace_id if root else None)
        if not root:  # tracing disabled: NULL_SPAN is falsy
            return None
        root.annotate(status=status)
        # Only standalone roots enter the tracer's retained history — a
        # parented op (federated fan-out leg, gateway serve) is part of
        # its enclosing trace, which is recorded by whoever started it.
        if root.parent is None:
            self.tracer.record(root)
            if root.trace_id and self.tracer.finished and \
                    self.tracer.finished[-1] is root:
                # Exemplar: link this (retained) trace to the latency
                # histogram sample it produced.
                latency_handle.exemplar(latency, root.trace_id,
                                        self.sim.now)
        return TraceContext(root)

    def _read_through_miss(self, key: bytes, attempts: int, started: float,
                           root) -> Generator:
        """Resolve a cache MISS through the attached SoR coordinator.

        A fetched value is returned as a HIT with ``source="sor"`` (the
        coordinator fills the cache in the background, so the *next*
        read is a plain cache hit); an authoritative or remembered
        absence stays a MISS with the source telling the tiers apart.
        """
        span = root.child("sor.fetch")
        status, value = yield from self.read_through.fetch(key)
        span.annotate(result=status).finish()
        latency = self.sim.now - started
        root.finish()
        if status == "hit":
            self.stats["hits"] += 1
            self.stats["sor_hits"] += 1
            return GetResult(GetStatus.HIT, value=value, attempts=attempts,
                             latency=latency, source="sor",
                             trace=self._finish_op("get", "hit", latency,
                                                   root))
        self.stats["misses"] += 1
        source = "negative" if status == "negative" else "sor"
        error = {"shed": "sor-backfill-shed",
                 "error": "sor-fetch-failed"}.get(status)
        return GetResult(GetStatus.MISS, attempts=attempts, latency=latency,
                         source=source, error=error,
                         trace=self._finish_op("get", "miss", latency, root))

    def _read_through_multi(self, keys: List[bytes],
                            results: List["GetResult"]) -> Generator:
        """Drive leftover batch MISSes through the miss pipeline.

        The batched/RPC fast paths settle against the cache tier only;
        this pass fans their misses out to the coordinator (single-
        flight dedupes same-key siblings) and upgrades resolved entries
        in place. Cache-tier op metrics are untouched — SoR outcomes
        are counted by the coordinator's own families.
        """
        rt = self.read_through
        if rt is None or not rt.policy.read_through:
            return results
        miss_idx = [i for i, r in enumerate(results)
                    if r is not None and r.status is GetStatus.MISS and
                    r.source == "cache"]
        if not miss_idx:
            return results
        t0 = self.sim.now
        procs = {self.sim.process(rt.fetch(keys[i])): i for i in miss_idx}
        while procs:
            event, outcome = yield self.sim.any_of(list(procs))
            i = procs.pop(event)
            status, value = outcome
            result = results[i]
            result.latency += self.sim.now - t0
            if status == "hit":
                self.stats["sor_hits"] += 1
                result.status = GetStatus.HIT
                result.value = value
                result.source = "sor"
            else:
                result.source = "negative" if status == "negative" else "sor"
        return results

    def get_multi(self, keys: List[bytes],
                  deadline: Optional[float] = None) -> Generator:
        """Batched lookup; returns a result list aligned with ``keys``.

        On RMA strategies (2xR/SCAR) the batch takes the wire-level fast
        path (§7.1): keys are grouped by replica backend, each backend
        gets *one* coalesced index fetch carrying every wanted bucket
        address, quorum is evaluated per key over the scattered votes,
        and data is fetched per key from its first responder. Keys the
        fast path cannot settle — inquorate, stale view, failed
        validation, a quarantined cohort — fall back to the singleton
        :meth:`get` retry machinery *individually*, so one poisoned or
        slow key never aborts its batch siblings.
        """
        if not keys:
            return []
        if len(keys) >= 2 and self.cell is not None:
            if self.strategy in (GetStrategy.TWO_R, GetStrategy.SCAR) and \
                    self.transport is not None and \
                    self.cell.mode is not ReplicationMode.R2_IMMUTABLE:
                results = yield from self._batched_get_multi(keys, deadline)
                return (yield from self._read_through_multi(keys, results))
            if self.strategy is GetStrategy.RPC:
                results = yield from self._rpc_get_multi(keys, deadline)
                return (yield from self._read_through_multi(keys, results))
        return (yield from self._fanout_get_multi(keys, deadline))

    def _fanout_get_multi(self, keys: List[bytes],
                          deadline: Optional[float]) -> Generator:
        """Per-key parallel fan-out, with per-key failure isolation."""
        procs = [self.sim.process(self._isolate(self.get(key, deadline),
                                                self._get_error_result))
                 for key in keys]
        results = yield self.sim.all_of(procs)
        return results

    @staticmethod
    def _get_error_result(exc: Exception) -> "GetResult":
        return GetResult(GetStatus.ERROR,
                         error=f"unhandled-{type(exc).__name__}")

    @staticmethod
    def _mutation_error_result(exc: Exception) -> "MutationResult":
        return MutationResult(SetStatus.FAILED,
                              error=f"unhandled-{type(exc).__name__}")

    def _isolate(self, gen: Generator, on_error) -> Generator:
        """Contain one key's failure to its own slot of a batch.

        ``sim.all_of`` fails the whole condition on the first child
        failure, discarding sibling results; batches instead map an
        unhandled per-key exception to that key's error result.
        """
        try:
            return (yield from gen)
        except Interrupt:
            raise
        except Exception as exc:
            return on_error(exc)

    def _batched_get_multi(self, keys: List[bytes],
                           deadline: Optional[float]) -> Generator:
        """The wire-level batched GET path (§7.1)."""
        started = self.sim.now
        deadline_at = started + (deadline or self.config.default_deadline)
        n = len(keys)
        quorum = self.cell.mode.quorum
        self._h_batch_size_get.observe(n)
        root = self.tracer.start("get_multi", client=self.client_id, batch=n)

        key_hashes = [self.placement.key_hash(key) for key in keys]
        results: List[Optional[GetResult]] = [None] * n
        fallback: Dict[int, str] = {}

        # Group every (key, bucket address) by backend task so each
        # backend serves exactly one coalesced fetch for the whole batch.
        cohorts: List[List[BackendView]] = []
        per_view: Dict[str, List[Tuple[int, int]]] = {}
        for i, key_hash in enumerate(key_hashes):
            views = self._replica_views(key_hash)
            cohorts.append(views)
            if len(views) < quorum:
                fallback[i] = "no-healthy-replicas"
                continue
            for view in views:
                _bucket, offset = self._bucket_location(view, key_hash)
                per_view.setdefault(view.task, []).append((i, offset))

        votes: List[List[ReplicaVote]] = [[] for _ in keys]
        stale: List[List[str]] = [[] for _ in keys]
        overflow_seen: List[List[bool]] = [[False] for _ in keys]
        config_mismatch = [False] * n
        decisions: List[QuorumDecision] = [
            QuorumDecision(QuorumOutcome.UNDECIDED) for _ in keys]
        asked = [len(cohort) for cohort in cohorts]

        index_span = root.child("index", batch=n, backends=len(per_view))
        pending: Dict[object, Tuple[BackendView, List[Tuple[int, int]]]] = {}
        for task, entries in per_view.items():
            view = self._views[task]
            proc = self.sim.process(self._fetch_index_batch(
                view, [offset for _i, offset in entries], index_span))
            pending[proc] = (view, entries)

        data_procs: Dict[object, Tuple[int, str]] = {}
        fetching: set = set()

        def start_data_fetch(i: int, span) -> None:
            decision = decisions[i]
            task = None
            if self.config.force_primary_data_fetch:
                for view in cohorts[i]:
                    if decision.includes(view.task):
                        task = view.task
                        break
            else:
                for vote in votes[i]:
                    if vote.kind is VoteKind.PRESENT and \
                            decision.includes(vote.task):
                        task = vote.task
                        break
            if task is None:
                task = decision.members[0]
            entry = next(v.entry for v in votes[i]
                         if v.task == task and v.kind is VoteKind.PRESENT)
            proc = self.sim.process(self._fetch_data(
                self._views[task], entry, span))
            data_procs[proc] = (i, task)
            fetching.add(i)

        # Drain the coalesced index fetches as they land, evaluating each
        # key's quorum incrementally so its data fetch starts the instant
        # its first responders agree — exactly like the singleton path,
        # but over scattered votes.
        while pending:
            event, items = yield self.sim.any_of(list(pending))
            view, entries = pending.pop(event)
            for (i, _offset), item in zip(entries, items):
                vote = self._vote_from(view, item, stale[i], key_hashes[i],
                                       overflow_seen[i])
                if item[0] == "config":
                    config_mismatch[i] = True
                votes[i].append(vote)
                self.host.charge_inline(self.config.costs.quorum_cpu,
                                        "cliquemap-client")
                if decisions[i].outcome is not QuorumOutcome.UNDECIDED:
                    continue  # this key already settled
                decisions[i] = evaluate(votes[i], asked[i], quorum)
                if decisions[i].outcome is QuorumOutcome.PRESENT:
                    if self.config.force_primary_data_fetch and not any(
                            v.task == cohorts[i][0].task for v in votes[i]):
                        # Primary/backup ablation: await the primary.
                        decisions[i] = QuorumDecision(
                            QuorumOutcome.UNDECIDED)
                        continue
                    # Speculative: this key's data fetch starts while
                    # sibling index fetches are still draining, so it is
                    # recorded under the phase that initiated it — the
                    # phase spans themselves stay contiguous.
                    start_data_fetch(i, index_span)
        index_span.finish()
        # The data phase starts at the simulated instant the index phase
        # ends, so index.duration + data.duration == op latency (the PR 1
        # sum-invariant, kept for the batched path).
        data_span = root.child("data", batch=n)

        def finish_key(i: int, status: GetStatus, value, version) -> None:
            latency = self.sim.now - started
            if status is GetStatus.HIT:
                self.stats["hits"] += 1
            else:
                self.stats["misses"] += 1
            self.stats["gets"] += 1
            self._h_batch_keys_get.inc()
            status_str = "hit" if status is GetStatus.HIT else "miss"
            self._h_ops[("get", status_str)].inc()
            self._h_batched_get_latency.observe(latency)
            results[i] = GetResult(status, value=value, version=version,
                                   latency=latency,
                                   trace=TraceContext(root) if root else None)

        # Keys still undecided after every vote arrived, plus misses.
        overflow_procs: Dict[object, int] = {}
        for i in range(n):
            if i in fallback or results[i] is not None:
                continue
            if decisions[i].outcome is QuorumOutcome.UNDECIDED:
                decisions[i] = evaluate(votes[i], len(votes[i]), quorum)
                if decisions[i].outcome is QuorumOutcome.PRESENT and \
                        i not in fetching:
                    start_data_fetch(i, data_span)
            outcome = decisions[i].outcome
            if outcome is QuorumOutcome.PRESENT:
                continue  # data fetch in flight
            if outcome is QuorumOutcome.ABSENT:
                if self.config.overflow_rpc_lookup and overflow_seen[i][0]:
                    view_by_task = {v.task: v for v in cohorts[i]}
                    proc = self.sim.process(self._isolate(
                        self._maybe_overflow_lookup(
                            keys[i], view_by_task, True, root),
                        lambda _exc: (GetStatus.MISS, None, None)))
                    overflow_procs[proc] = i
                else:
                    finish_key(i, GetStatus.MISS, None, None)
            elif config_mismatch[i]:
                fallback[i] = "config-mismatch"
            elif stale[i]:
                fallback[i] = "stale-view"
            else:
                fallback[i] = "inquorate"

        while data_procs:
            event, outcome = yield self.sim.any_of(list(data_procs))
            i, task = data_procs.pop(event)
            try:
                status, value, version = self._validate_data(
                    keys[i], key_hashes[i], outcome, decisions[i],
                    stale[i], task)
            except _AttemptRetry as retry:
                fallback[i] = retry.reason
                continue
            if status is GetStatus.HIT:
                self._note_touch(key_hashes[i])
                value = yield from self._decode_value(value)
            finish_key(i, status, value, version)
        data_span.finish()

        while overflow_procs:
            event, outcome = yield self.sim.any_of(list(overflow_procs))
            i = overflow_procs.pop(event)
            status, value, version = outcome
            if status is GetStatus.HIT:
                self._note_touch(key_hashes[i])
                value = yield from self._decode_value(value)
            finish_key(i, status, value, version)

        if fallback:
            yield from self._finish_batch_fallback(
                "get_multi", keys, results, fallback, started, deadline_at,
                config_mismatch, stale)
        root.annotate(resolved=n - len(fallback),
                      fallback=len(fallback)).finish()
        if root and root.parent is None:
            self.tracer.record(root)
        return results

    def _finish_batch_fallback(self, op: str, keys: List[bytes],
                               results: List[Optional[GetResult]],
                               fallback: Dict[int, str], started: float,
                               deadline_at: float,
                               config_mismatch: List[bool],
                               stale: List[List[str]]) -> Generator:
        """Run the singleton retry path for each unsettled batch key."""
        for reason in fallback.values():
            self._m_batch_fallback.labels(op=op, reason=reason).inc()
        # Recover shared state once, up front, so the per-key singletons
        # start from fresh views instead of each re-discovering the same
        # staleness (§4.1 retry procedure, amortized over the batch).
        if any(config_mismatch[i] for i in fallback):
            yield from self._refresh_config()
        stale_tasks = {task for i in fallback for task in stale[i]}
        for task in stale_tasks:
            yield from self._build_view(task)
        prefix = self.sim.now - started
        remaining = max(1e-6, deadline_at - self.sim.now)
        ordered = sorted(fallback)
        procs = [self.sim.process(self._isolate(
            self.get(keys[i], remaining), self._get_error_result))
            for i in ordered]
        outcomes = yield self.sim.all_of(procs)
        for i, result in zip(ordered, outcomes):
            result.latency += prefix  # account the batch phase too
            results[i] = result

    def _fetch_index_batch(self, view: BackendView, offsets: List[int],
                           trace=NULL_SPAN) -> Generator:
        """One coalesced index fetch; per-entry tagged outcomes.

        Returns a list aligned with ``offsets`` of the same tuples
        :meth:`_fetch_index` produces, so votes can be formed with
        :meth:`_vote_from` unchanged. Never raises: a whole-batch
        transport failure yields a ``down`` outcome for every entry.
        """
        self.host.charge_inline(self.config.costs.issue_op_cpu,
                                "cliquemap-client")
        op = trace.child("transport.read_multi", task=view.task,
                         kind="index", batch=len(offsets))
        try:
            raw_items = yield from self.transport.read_multi(
                self.host, view.host_name,
                [(view.index_region_id, offset, view.bucket_bytes)
                 for offset in offsets], trace=op)
        except RegionRevokedError:
            op.annotate(outcome="stale").finish()
            return [("stale", view.task, None)] * len(offsets)
        except (RemoteHostDownError, RmaError, NetworkDropError):
            op.annotate(outcome="down").finish()
            self._leg_down(view)
            return [("down", view.task, None)] * len(offsets)
        op.finish()
        self.host.charge_inline(self.config.costs.completion_cpu,
                                "cliquemap-client")
        view.health.record_success()
        items = []
        for raw in raw_items:
            if isinstance(raw, RegionRevokedError):
                items.append(("stale", view.task, None))
                continue
            if isinstance(raw, RmaError):
                items.append(("down", view.task, None))
                continue
            parsed = parse_bucket(raw, view.ways)
            if not parsed.magic_ok:
                items.append(("stale", view.task, None))
            elif parsed.config_id != view.config_id:
                items.append(("config", view.task, parsed.config_id))
            else:
                items.append(("ok", view.task, parsed))
        return items

    def _rpc_get_multi(self, keys: List[bytes],
                       deadline: Optional[float]) -> Generator:
        """Batched WAN/fallback lookup: one MultiLookup RPC per backend."""
        started = self.sim.now
        deadline_at = started + (deadline or self.config.default_deadline)
        n = len(keys)
        self._h_batch_size_get.observe(n)
        root = self.tracer.start("get_multi", client=self.client_id,
                                 batch=n, strategy="rpc")
        results: List[Optional[GetResult]] = [None] * n
        fallback: Dict[int, str] = {}
        per_view: Dict[str, List[int]] = {}
        for i, key in enumerate(keys):
            views = self._replica_views(self.placement.key_hash(key))
            if not views:
                fallback[i] = "no-healthy-replicas"
                continue
            per_view.setdefault(views[0].task, []).append(i)

        def one(view: BackendView, idxs: List[int]) -> Generator:
            lookup_span = root.child("rpc-multilookup", task=view.task,
                                     batch=len(idxs))
            try:
                reply = yield from view.channel.call(
                    "MultiLookup", {"keys": [keys[i] for i in idxs]},
                    deadline=max(1e-6, deadline_at - self.sim.now),
                    request_size=sum(len(keys[i]) for i in idxs) + 64,
                    trace=lookup_span)
            except RpcError:
                return None
            finally:
                lookup_span.finish()
            view.health.record_success()
            return reply.get("results", [])

        procs = {self.sim.process(one(self._views[task], idxs)): idxs
                 for task, idxs in per_view.items()}
        while procs:
            event, replies = yield self.sim.any_of(list(procs))
            idxs = procs.pop(event)
            if replies is None:
                for i in idxs:
                    fallback[i] = "rpc-replica-unavailable"
                continue
            latency = self.sim.now - started
            for i, reply in zip(idxs, replies):
                self.stats["gets"] += 1
                self._h_batch_keys_get.inc()
                if reply.get("found"):
                    self.stats["hits"] += 1
                    self._h_ops[("get", "hit")].inc()
                    value = yield from self._decode_value(reply["value"])
                    results[i] = GetResult(
                        GetStatus.HIT, value=value,
                        version=VersionNumber.unpack(reply["version"]),
                        latency=latency)
                else:
                    self.stats["misses"] += 1
                    self._h_ops[("get", "miss")].inc()
                    results[i] = GetResult(GetStatus.MISS, latency=latency)
                self._h_batched_get_latency.observe(latency)
        if fallback:
            yield from self._finish_batch_fallback(
                "get_multi", keys, results, fallback, started, deadline_at,
                [False] * n, [[] for _ in keys])
        root.annotate(resolved=n - len(fallback),
                      fallback=len(fallback)).finish()
        if root and root.parent is None:
            self.tracer.record(root)
        return results

    # -- one attempt ---------------------------------------------------------

    def _attempt(self, key: bytes, key_hash: bytes, deadline_at: float,
                 span=NULL_SPAN, attempt: int = 1) -> Generator:
        if self.strategy is GetStrategy.RPC:
            return (yield from self._attempt_rpc(key, key_hash, deadline_at,
                                                 span, attempt))
        if self.strategy is GetStrategy.MSG:
            return (yield from self._attempt_msg(key, key_hash, span,
                                                 attempt))
        views = self._replica_views(key_hash)
        quorum = self.cell.mode.quorum
        if len(views) < quorum:
            raise _AttemptRetry("no-healthy-replicas")
        if self.cell.mode is ReplicationMode.R2_IMMUTABLE:
            return (yield from self._attempt_serial(key, key_hash, views,
                                                    span, attempt))
        if self.strategy is GetStrategy.SCAR:
            return (yield from self._attempt_scar(key, key_hash, views,
                                                  quorum, span, attempt))
        return (yield from self._attempt_2xr(key, key_hash, views, quorum,
                                             span, attempt))

    def _attempt_2xr(self, key: bytes, key_hash: bytes,
                     views: List[BackendView], quorum: int,
                     span=NULL_SPAN, attempt: int = 1) -> Generator:
        """Index fetch from all replicas; data from the first responder.

        Phase spans (``index`` → ``data`` → ``validate``) are contiguous:
        each starts the simulated instant the previous one ends, so their
        durations sum to the attempt's share of the op latency.
        """
        total = len(views)
        index_span = span.child("index", attempt=attempt)
        pending = {self.sim.process(self._fetch_index(view, key_hash,
                                                      index_span)): view
                   for view in views}
        votes: List[ReplicaVote] = []
        entries: Dict[str, object] = {}
        view_by_task = {view.task: view for view in views}
        preferred_task: Optional[str] = None
        data_proc = None
        data_task: Optional[str] = None
        stale: List[str] = []
        overflow_seen = [False]
        config_mismatch = False
        decision = QuorumDecision(QuorumOutcome.UNDECIDED)

        while pending:
            event, result = yield self.sim.any_of(list(pending))
            view = pending.pop(event)
            vote = self._vote_from(view, result, stale, key_hash,
                                   overflow_seen)
            if isinstance(result, tuple) and result[0] == "config":
                config_mismatch = True
            votes.append(vote)
            if vote.kind is VoteKind.PRESENT:
                entries[view.task] = vote.entry
            speculate = (not self.config.force_primary_data_fetch or
                         view.task == views[0].task)
            if preferred_task is None and vote.kind is not VoteKind.ERROR \
                    and speculate:
                preferred_task = view.task
                if vote.kind is VoteKind.PRESENT:
                    # Speculative data fetch from the first responder (or
                    # from the logical primary under the ablation). Its
                    # transport span lands under the *index* phase — the
                    # phase that initiated the speculation.
                    data_proc = self.sim.process(
                        self._fetch_data(view, vote.entry, index_span))
                    data_task = view.task
            self.host.charge_inline(self.config.costs.quorum_cpu,
                                    "cliquemap-client")
            decision = evaluate(votes, total, quorum)
            if decision.outcome in (QuorumOutcome.PRESENT,
                                    QuorumOutcome.ABSENT):
                if self.config.force_primary_data_fetch and \
                        not any(v.task == views[0].task for v in votes):
                    continue  # primary/backup ablation: await the primary
                break

        if decision.outcome is QuorumOutcome.UNDECIDED:
            decision = evaluate(votes, len(votes), quorum)
        index_span.finish()  # quorum settled: the index phase is over
        self._raise_for_failures(decision, stale, config_mismatch)

        if decision.outcome is QuorumOutcome.ABSENT:
            if data_proc is not None:
                data_proc.defused = True
            return (yield from self._maybe_overflow_lookup(
                key, view_by_task, overflow_seen[0], span, attempt))

        # PRESENT: the data must come from a quorum member at the quorumed
        # version (§5.1 condition 4).
        data_span = span.child("data", attempt=attempt)
        if data_task is None or data_task not in decision.members:
            if data_proc is not None:
                data_proc.defused = True  # speculation failed; ignore it
            if self.config.force_primary_data_fetch:
                # Primary/backup-style: insist on the primary when it is
                # in the quorum, paying its latency even when slow.
                primary = views[0].task
                data_task = primary if primary in decision.members \
                    else decision.members[0]
            else:
                data_task = decision.members[0]
            data_proc = self.sim.process(self._fetch_data(
                view_by_task[data_task], entries[data_task], data_span))
        result = yield data_proc
        data_span.finish()
        validate_span = span.child("validate", attempt=attempt)
        try:
            return self._validate_data(key, key_hash, result, decision,
                                       stale, data_task)
        finally:
            validate_span.finish()

    def _attempt_scar(self, key: bytes, key_hash: bytes,
                      views: List[BackendView], quorum: int,
                      span=NULL_SPAN, attempt: int = 1) -> Generator:
        """SCAR to all replicas: one round trip, three full data copies."""
        total = len(views)
        scar_span = span.child("index", attempt=attempt, op="scar")
        pending = {self.sim.process(self._fetch_scar(view, key_hash,
                                                     scar_span)): view
                   for view in views}
        votes: List[ReplicaVote] = []
        data_by_task: Dict[str, Optional[bytes]] = {}
        stale: List[str] = []
        overflow_seen = [False]
        config_mismatch = False
        decision = QuorumDecision(QuorumOutcome.UNDECIDED)

        while pending:
            event, result = yield self.sim.any_of(list(pending))
            view = pending.pop(event)
            vote = self._vote_from(view, result, stale, key_hash,
                                   overflow_seen)
            if isinstance(result, tuple) and result[0] == "config":
                config_mismatch = True
            votes.append(vote)
            if vote.kind is VoteKind.PRESENT:
                data_by_task[view.task] = result[3]
            self.host.charge_inline(self.config.costs.quorum_cpu,
                                    "cliquemap-client")
            decision = evaluate(votes, total, quorum)
            if decision.outcome in (QuorumOutcome.PRESENT,
                                    QuorumOutcome.ABSENT):
                break

        if decision.outcome is QuorumOutcome.UNDECIDED:
            decision = evaluate(votes, len(votes), quorum)
        scar_span.finish()
        self._raise_for_failures(decision, stale, config_mismatch)

        if decision.outcome is QuorumOutcome.ABSENT:
            view_by_task = {view.task: view for view in views}
            return (yield from self._maybe_overflow_lookup(
                key, view_by_task, overflow_seen[0], span, attempt))

        # Prefer validating a copy fetched from a quorum member.
        validate_span = span.child("validate", attempt=attempt)
        for task in decision.members:
            raw = data_by_task.get(task)
            if raw is None:
                continue
            outcome = self._try_validate(key, key_hash, raw, decision)
            yield from self._charge_validation(raw)
            if outcome is not None:
                validate_span.finish()
                return outcome
        validate_span.finish()
        # No SCAR copy validated. If the NIC-side scan followed a pointer
        # into a superseded (reshaped) window it returns the bucket only;
        # fall back to a client-side data fetch, which can converge to the
        # currently-advertised window.
        entry_by_task = {v.task: v.entry for v in votes
                         if v.kind is VoteKind.PRESENT}
        view_by_task = {view.task: view for view in views}
        for task in decision.members:
            entry = entry_by_task.get(task)
            if entry is None:
                continue
            data_span = span.child("data", attempt=attempt)
            result = yield from self._fetch_data(view_by_task[task], entry,
                                                 data_span)
            data_span.finish()
            return self._validate_data(key, key_hash, result, decision,
                                       stale, task)
        raise _AttemptRetry("validation-torn-or-stale", stale_tasks=())

    def _attempt_serial(self, key: bytes, key_hash: bytes,
                        views: List[BackendView], span=NULL_SPAN,
                        attempt: int = 1) -> Generator:
        """R=1 / R=2-immutable: consult one replica, fall back on failure."""
        last_reason = "no-healthy-replicas"
        for view in views:
            overflow_seen = [False]
            index_span = span.child("index", attempt=attempt, task=view.task)
            result = yield from self._fetch_index(view, key_hash, index_span)
            index_span.finish()
            vote = self._vote_from(view, result, [], key_hash, overflow_seen)
            if isinstance(result, tuple) and result[0] == "config":
                raise _AttemptRetry("config-mismatch", refresh_config=True)
            if vote.kind is VoteKind.ERROR:
                last_reason = "replica-error"
                continue
            if vote.kind is VoteKind.ABSENT:
                return (yield from self._maybe_overflow_lookup(
                    key, {view.task: view}, overflow_seen[0], span, attempt))
            data_span = span.child("data", attempt=attempt, task=view.task)
            data_result = yield from self._fetch_data(view, vote.entry,
                                                      data_span)
            data_span.finish()
            decision = QuorumDecision(QuorumOutcome.PRESENT,
                                      version=vote.version,
                                      members=(view.task,), unanimous=True)
            try:
                return self._validate_data(key, key_hash, data_result,
                                           decision, [], view.task)
            except _AttemptRetry as retry:
                last_reason = retry.reason
                continue
        raise _AttemptRetry(last_reason)

    def _attempt_msg(self, key: bytes, key_hash: bytes, span=NULL_SPAN,
                     attempt: int = 1) -> Generator:
        """Two-sided messaging lookup through the software NIC (Fig 7).

        Cheaper than a full RPC, but wakes a server application thread —
        the CPU cost SCAR exists to avoid (§6.3).
        """
        views = self._replica_views(key_hash)
        if not views:
            raise _AttemptRetry("no-healthy-replicas")
        for view in views:
            self.host.charge_inline(self.config.costs.issue_op_cpu,
                                    "cliquemap-client")
            msg_span = span.child("msg", attempt=attempt, task=view.task)
            try:
                reply = yield from self.transport.message(
                    self.host, view.host_name, "cliquemap-lookup",
                    len(key) + 64, {"key": key}, trace=msg_span)
            except (RemoteHostDownError, RmaError, NetworkDropError):
                msg_span.annotate(outcome="down").finish()
                view.health.mark_down()
                self._start_reconnect(view.task)
                continue
            finally:
                msg_span.finish()
            view.health.record_success()
            self.host.charge_inline(self.config.costs.completion_cpu,
                                    "cliquemap-client")
            if not reply.get("found"):
                return GetStatus.MISS, None, None
            if reply.get("key") != key:
                return GetStatus.MISS, None, None  # hash collision guard
            return (GetStatus.HIT, reply["value"],
                    VersionNumber.unpack(reply["version"]))
        raise _AttemptRetry("replica-down")

    def _attempt_rpc(self, key: bytes, key_hash: bytes, deadline_at: float,
                     span=NULL_SPAN, attempt: int = 1) -> Generator:
        """Two-sided lookup via the RPC framework (WAN / fallback)."""
        views = self._replica_views(key_hash)
        if not views:
            raise _AttemptRetry("no-healthy-replicas")
        for view in views:
            lookup_span = span.child("rpc-lookup", attempt=attempt,
                                     task=view.task)
            try:
                reply = yield from view.channel.call(
                    "Lookup", {"key": key},
                    deadline=max(1e-6, deadline_at - self.sim.now),
                    trace=lookup_span)
            except RpcError:
                continue
            finally:
                lookup_span.finish()
            if not reply.get("found"):
                return GetStatus.MISS, None, None
            version = VersionNumber.unpack(reply["version"])
            return GetStatus.HIT, reply["value"], version
        raise _AttemptRetry("rpc-replicas-unavailable")

    # -- fetch helpers ---------------------------------------------------------

    def _leg_down(self, view: BackendView) -> None:
        """One RMA leg found the backend unreachable.

        Recorded at the leg, not at vote collection: once a quorum
        settles, the losing legs are abandoned — but a gray (lossy)
        replica's failures must still feed the health scoreboard or it
        never trips quarantine while the quorum keeps masking it.
        """
        view.health.mark_down()
        self._start_reconnect(view.task)

    def _bucket_location(self, view: BackendView,
                         key_hash: bytes) -> Tuple[int, int]:
        bucket = int.from_bytes(key_hash[:8], "little") % view.num_buckets
        return bucket, bucket * view.bucket_bytes

    def _fetch_index(self, view: BackendView, key_hash: bytes,
                     trace=NULL_SPAN) -> Generator:
        """RMA-read one bucket; returns a tagged outcome tuple (never raises)."""
        _bucket, offset = self._bucket_location(view, key_hash)
        self.host.charge_inline(self.config.costs.issue_op_cpu,
                                "cliquemap-client")
        op = trace.child("transport.read", task=view.task, kind="index")
        try:
            raw = yield from self.transport.read(
                self.host, view.host_name, view.index_region_id, offset,
                view.bucket_bytes, trace=op)
        except RegionRevokedError:
            op.annotate(outcome="stale").finish()
            return ("stale", view.task, None)
        except (RemoteHostDownError, RmaError, NetworkDropError):
            op.annotate(outcome="down").finish()
            self._leg_down(view)
            return ("down", view.task, None)
        op.finish()
        self.host.charge_inline(self.config.costs.completion_cpu,
                                "cliquemap-client")
        view.health.record_success()
        parsed = parse_bucket(raw, view.ways)
        if not parsed.magic_ok:
            return ("stale", view.task, None)
        if parsed.config_id != view.config_id:
            return ("config", view.task, parsed.config_id)
        return ("ok", view.task, parsed)

    def _fetch_scar(self, view: BackendView, key_hash: bytes,
                    trace=NULL_SPAN) -> Generator:
        _bucket, offset = self._bucket_location(view, key_hash)
        self.host.charge_inline(self.config.costs.issue_op_cpu,
                                "cliquemap-client")
        op = trace.child("transport.scar", task=view.task)
        try:
            bucket_raw, data_raw = yield from self.transport.scar(
                self.host, view.host_name, view.index_region_id, offset,
                view.bucket_bytes, key_hash, trace=op)
        except RegionRevokedError:
            op.annotate(outcome="stale").finish()
            return ("stale", view.task, None)
        except (RemoteHostDownError, RmaError, NetworkDropError):
            op.annotate(outcome="down").finish()
            self._leg_down(view)
            return ("down", view.task, None)
        op.finish()
        self.host.charge_inline(self.config.costs.completion_cpu,
                                "cliquemap-client")
        view.health.record_success()
        parsed = parse_bucket(bucket_raw, view.ways)
        if not parsed.magic_ok:
            return ("stale", view.task, None)
        if parsed.config_id != view.config_id:
            return ("config", view.task, parsed.config_id)
        return ("ok", view.task, parsed, data_raw)

    def _fetch_data(self, view: BackendView, entry,
                    trace=NULL_SPAN) -> Generator:
        self.host.charge_inline(self.config.costs.issue_op_cpu,
                                "cliquemap-client")
        op = trace.child("transport.read", task=view.task, kind="data")
        try:
            try:
                raw = yield from self.transport.read(
                    self.host, view.host_name, entry.region_id, entry.offset,
                    entry.size, trace=op)
            except RegionRevokedError:
                # The entry's window was superseded by a data-region
                # reshape. Windows overlap the same virtually-contiguous
                # pool (§4.1), so the offset is still valid through the
                # currently-advertised window — converge to it, perhaps
                # after a view refresh.
                if view.data_region_id == entry.region_id:
                    op.annotate(outcome="stale")
                    return ("stale", view.task, None)
                try:
                    raw = yield from self.transport.read(
                        self.host, view.host_name, view.data_region_id,
                        entry.offset, entry.size, trace=op)
                except RegionRevokedError:
                    op.annotate(outcome="stale")
                    return ("stale", view.task, None)
                except (RemoteHostDownError, RmaError, NetworkDropError):
                    op.annotate(outcome="down")
                    self._leg_down(view)
                    return ("down", view.task, None)
            except (RemoteHostDownError, RmaError, NetworkDropError):
                op.annotate(outcome="down")
                self._leg_down(view)
                return ("down", view.task, None)
        finally:
            op.finish()
        self.host.charge_inline(self.config.costs.completion_cpu,
                                "cliquemap-client")
        view.health.record_success()
        return ("ok", view.task, raw)

    # -- vote/validation helpers ------------------------------------------------

    def _vote_from(self, view: BackendView, result, stale: List[str],
                   key_hash: bytes, overflow_seen: List[bool]
                   ) -> ReplicaVote:
        kind = result[0]
        if kind == "ok":
            parsed: ParsedBucket = result[2]
            if parsed.overflow:
                overflow_seen[0] = True
            entry = parsed.find(key_hash)
            if entry is None:
                return ReplicaVote.absent(view.task)
            return ReplicaVote.present(view.task, entry)
        if kind == "stale":
            stale.append(view.task)
            return ReplicaVote.error(view.task)
        if kind == "down":
            # Health already recorded at the leg (see _leg_down).
            return ReplicaVote.error(view.task)
        if kind == "config":
            return ReplicaVote.error(view.task)
        return ReplicaVote.error(view.task)

    def _raise_for_failures(self, decision: QuorumDecision,
                            stale: List[str], config_mismatch: bool) -> None:
        if decision.outcome in (QuorumOutcome.PRESENT, QuorumOutcome.ABSENT):
            return
        if config_mismatch:
            raise _AttemptRetry("config-mismatch", refresh_config=True,
                                stale_tasks=tuple(stale))
        if stale:
            raise _AttemptRetry("stale-view", stale_tasks=tuple(stale))
        raise _AttemptRetry("inquorate")

    def _charge_validation(self, raw: bytes) -> Generator:
        cost = self.config.costs
        yield from self.host.execute(
            cost.validate_cpu + len(raw) / 1024.0 * cost.validate_per_kb,
            "cliquemap-client")

    def _try_validate(self, key: bytes, key_hash: bytes, raw: bytes,
                      decision: QuorumDecision):
        """Full §5.1 validation; returns a result tuple or None."""
        entry = try_decode(raw)
        if entry is None:
            self.stats["torn_reads"] += 1    # structurally torn
            return None
        if not entry.checksum_ok(key_hash):
            self.stats["torn_reads"] += 1    # torn read
            return None
        if entry.key != key:
            return GetStatus.MISS, None, None  # 128-bit hash collision
        if decision.version is not None and entry.version != decision.version:
            self.stats["version_races"] += 1  # raced a newer mutation
            return None
        return GetStatus.HIT, entry.value, entry.version

    def _validate_data(self, key: bytes, key_hash: bytes, result,
                       decision: QuorumDecision, stale: List[str],
                       data_task: str):
        kind = result[0]
        if kind == "stale":
            raise _AttemptRetry("stale-view", stale_tasks=(data_task,))
        if kind == "down":
            raise _AttemptRetry("replica-down")
        raw = result[2]
        outcome = self._try_validate(key, key_hash, raw, decision)
        if outcome is None:
            raise _AttemptRetry("validation-torn-or-stale",
                                stale_tasks=tuple(stale))
        return outcome

    def _maybe_overflow_lookup(self, key: bytes,
                               view_by_task: Dict[str, BackendView],
                               overflow_seen: bool, span=NULL_SPAN,
                               attempt: int = 1) -> Generator:
        """On a miss under an overflowed bucket, optionally try RPC (§4.2)."""
        if self.config.overflow_rpc_lookup and overflow_seen:
            self.stats["overflow_lookups"] += 1
            overflow_span = span.child("overflow", attempt=attempt)
            try:
                for view in view_by_task.values():
                    try:
                        reply = yield from view.channel.call(
                            "Lookup", {"key": key},
                            deadline=self.config.mutation_rpc_deadline,
                            trace=overflow_span)
                    except RpcError:
                        continue
                    if reply.get("found"):
                        return (GetStatus.HIT, reply["value"],
                                VersionNumber.unpack(reply["version"]))
            finally:
                overflow_span.finish()
        return GetStatus.MISS, None, None

    # ------------------------------------------------------------------
    # Transparent value compression (§9)
    # ------------------------------------------------------------------

    _RAW = b"\x00"
    _ZLIB = b"\x01"

    def _encode_value(self, value: bytes) -> Generator:
        """Wrap (and maybe compress) a value for storage."""
        if not self.config.compression_enabled:
            return value
        if len(value) >= self.config.compression_min_bytes:
            yield from self.host.execute(
                len(value) / 1024.0 * self.config.compress_cpu_per_kb,
                "cliquemap-client")
            compressed = zlib.compress(value)
            if len(compressed) < len(value):
                return self._ZLIB + compressed
        return self._RAW + value

    def _decode_value(self, stored: Optional[bytes]) -> Generator:
        """Unwrap a stored value; inverse of :meth:`_encode_value`."""
        if not self.config.compression_enabled or stored is None:
            return stored
        if not stored:
            return stored
        scheme, body = stored[:1], stored[1:]
        if scheme == self._ZLIB:
            yield from self.host.execute(
                len(body) / 1024.0 * self.config.decompress_cpu_per_kb,
                "cliquemap-client")
            return zlib.decompress(body)
        return body

    # ------------------------------------------------------------------
    # Mutations (§5.2)
    # ------------------------------------------------------------------

    def _note_write_behind(self, key: bytes,
                           value: Optional[bytes]) -> Generator:
        """Propagate an acknowledged mutation to the SoR (write-behind).

        Values are noted *raw* (pre-compression): the SoR stores
        application bytes, and a later read-through fill re-encodes
        them under the filling client's corpus convention. ``None``
        notes an erase (a delete marker flushes to the SoR). When the
        dirty buffer is full the write degrades to synchronous
        write-through instead of being dropped.
        """
        rt = self.read_through
        if rt is None:
            return
        if not rt.note_write(key, value):
            yield from rt.write_through(key, value)

    def set(self, key: bytes, value: bytes,
            deadline: Optional[float] = None, trace=None) -> Generator:
        """SET via RPC to all replicas with a fresh VersionNumber."""
        self.stats["sets"] += 1
        started = self.sim.now
        deadline_at = started + (deadline or self.config.default_deadline)
        root = self.tracer.start("set", parent=_parent_span(trace),
                                 client=self.client_id)
        raw_value = value
        value = yield from self._encode_value(value)
        payload_size = len(key) + len(value) + 64
        quorum = self.cell.mode.quorum
        last = MutationResult(SetStatus.FAILED)
        backoff = BackoffPolicy(self.config.retry_backoff,
                                self.config.retry_backoff_cap,
                                self._retry_rand)

        for _attempt in range(self.config.max_retries):
            if self.sim.now >= deadline_at:
                break
            version = self.versions.next()
            replies = yield from self._mutate_all(
                "Set", {"key": key, "value": value,
                        "version": version.pack()},
                self.placement.key_hash(key), payload_size,
                root, _attempt + 1)
            applied = sum(1 for r in replies
                          if r is not None and r.get("applied"))
            superseded = sum(1 for r in replies if r is not None and
                             not r.get("applied") and
                             r.get("reason") == "superseded")
            latency = self.sim.now - started
            if applied >= quorum:
                root.finish()
                # Acked at quorum: the SoR learns of it via write-behind
                # (or a sync write-through when the buffer is full); the
                # op's acknowledged latency is the cache-tier latency.
                yield from self._note_write_behind(key, raw_value)
                return MutationResult(SetStatus.APPLIED, version=version,
                                      replicas_applied=applied,
                                      latency=latency,
                                      attempts=_attempt + 1,
                                      trace=self._finish_op(
                                          "set", "applied", latency, root))
            if superseded >= quorum:
                root.finish()
                return MutationResult(SetStatus.SUPERSEDED, version=version,
                                      replicas_applied=applied,
                                      latency=latency,
                                      attempts=_attempt + 1,
                                      trace=self._finish_op(
                                          "set", "superseded", latency,
                                          root))
            self._m_retries.labels(op="set", reason="inquorate").inc()
            if self._flight:
                self._flight.record("retry", origin=self._flight_origin,
                                    op="set", reason="inquorate",
                                    attempt=_attempt + 1)
            last = MutationResult(SetStatus.FAILED, version=version,
                                  replicas_applied=applied, latency=latency,
                                  attempts=_attempt + 1)
            if _attempt + 1 >= self.config.max_retries or \
                    self.sim.now >= deadline_at:
                continue  # loop is about to end; nothing to pay for
            if not self._retry_budget.try_spend():
                self.stats["retries_shed"] += 1
                self._m_retries_shed.labels(op="set",
                                            reason="inquorate").inc()
                if self._flight:
                    self._flight.record("retry_shed",
                                        origin=self._flight_origin,
                                        op="set", reason="inquorate",
                                        attempt=_attempt + 1)
                last.error = "budget-exhausted"
                root.annotate(shed_retry=True)
                break
            delay = backoff.next_delay()
            if self.sim.now + delay >= deadline_at:
                break  # would sleep past the deadline: no attempt left
            if delay:
                yield self.sim.sleep(delay)
        root.finish()
        last.trace = self._finish_op("set", "failed", last.latency, root)
        return last

    def set_multi(self, items: List[Tuple[bytes, bytes]],
                  deadline: Optional[float] = None) -> Generator:
        """Batched SETs; returns a result list aligned with ``items``.

        Mutations to the same backend coalesce into one multi-entry
        ``MultiSet`` RPC (backfill jobs depend on this, §7.1): the RPC
        dispatch and the client's mutation CPU are paid once per
        (backend, batch) instead of once per key. Quorum is still counted
        per key, and keys that miss quorum retry through the singleton
        :meth:`set` path without disturbing their siblings.
        """
        if not items:
            return []
        if len(items) < 2 or self.cell is None:
            return (yield from self._fanout_set_multi(items, deadline))
        started = self.sim.now
        deadline_at = started + (deadline or self.config.default_deadline)
        n = len(items)
        quorum = self.cell.mode.quorum
        self._h_batch_size_set.observe(n)
        root = self.tracer.start("set_multi", client=self.client_id, batch=n)
        # The "build" phase covers the batch's client-side CPU (mutation
        # build + value encoding); "mutate" then starts the instant it
        # ends, so phase durations sum to the op latency (the PR 1
        # sum-invariant, kept for the batched path).
        build_span = root.child("build", batch=n)
        # One mutation-build charge for the whole batch — the per-op CPU
        # the coalesced path amortizes.
        yield from self.host.execute(self.config.costs.mutation_cpu,
                                     "cliquemap-client")
        encoded: List[bytes] = []
        versions: List[VersionNumber] = []
        for _key, value in items:
            encoded.append((yield from self._encode_value(value)))
            versions.append(self.versions.next())
        build_span.finish()

        results: List[Optional[MutationResult]] = [None] * n
        fallback: Dict[int, str] = {}
        per_view: Dict[str, List[int]] = {}
        per_shadow: Dict[str, List[int]] = {}
        for i, (key, _value) in enumerate(items):
            key_hash = self.placement.key_hash(key)
            views = self._replica_views(key_hash)
            for shadow in self._shadow_views(key_hash):
                per_shadow.setdefault(shadow.task, []).append(i)
            if not views:
                fallback[i] = "no-healthy-replicas"
                continue
            for view in views:
                per_view.setdefault(view.task, []).append(i)
        # Dual-write shadows: fire-and-forget MultiSets at the resize
        # target cohort; never counted toward per-key quorum below.
        for task, idxs in per_shadow.items():
            entries = [[items[i][0], encoded[i], versions[i].pack()]
                       for i in idxs]
            size = sum(len(items[i][0]) + len(encoded[i])
                       for i in idxs) + 64 + 24 * len(idxs)
            self._shadow_mutate(self._views[task], "MultiSet",
                                {"entries": entries}, size)
        applied = [0] * n
        superseded = [0] * n
        span = root.child("mutate", method="MultiSet",
                          backends=len(per_view))

        def one(view: BackendView, idxs: List[int]) -> Generator:
            entries = [[items[i][0], encoded[i], versions[i].pack()]
                       for i in idxs]
            size = sum(len(items[i][0]) + len(encoded[i])
                       for i in idxs) + 64 + 24 * len(idxs)
            try:
                reply = yield from view.channel.call(
                    "MultiSet", {"entries": entries},
                    deadline=self.config.mutation_rpc_deadline,
                    request_size=size, trace=span)
                view.health.record_success()
                reply_config = reply.get("config_id")
                if reply_config is not None and \
                        reply_config > self.cell.config_id:
                    self._note_stale_config(reply_config)
                return reply.get("results", [])
            except PermissionDeniedError:
                return None  # unauthorized: not retryable
            except RpcError:
                view_alive = self.directory(view.task).alive \
                    if self.directory else True
                if not view_alive:
                    view.health.mark_down()
                    self._start_reconnect(view.task)
                else:
                    view.health.record_failure()
                return None

        procs = {self.sim.process(self._isolate(
            one(self._views[task], idxs), lambda _exc: None)): idxs
            for task, idxs in per_view.items()}
        while procs:
            event, replies = yield self.sim.any_of(list(procs))
            idxs = procs.pop(event)
            if replies is None:
                continue
            for i, reply in zip(idxs, replies):
                if reply.get("applied"):
                    applied[i] += 1
                elif reply.get("reason") == "superseded":
                    superseded[i] += 1
        span.finish()

        for i in range(n):
            if i in fallback:
                continue
            self.host.charge_inline(self.config.costs.quorum_cpu,
                                    "cliquemap-client")
            latency = self.sim.now - started
            if applied[i] >= quorum:
                status, status_str = SetStatus.APPLIED, "applied"
                yield from self._note_write_behind(items[i][0], items[i][1])
            elif superseded[i] >= quorum:
                status, status_str = SetStatus.SUPERSEDED, "superseded"
            else:
                fallback[i] = "inquorate"
                continue
            self.stats["sets"] += 1
            self._h_batch_keys_set.inc()
            handle = self._h_ops.get(("set", status_str))
            if handle is None:
                handle = self._h_ops[("set", status_str)] = \
                    self._m_ops.labels(op="set", status=status_str)
            handle.inc()
            self._h_batched_set_latency.observe(latency)
            results[i] = MutationResult(
                status, version=versions[i], replicas_applied=applied[i],
                latency=latency,
                trace=TraceContext(root) if root else None)

        if fallback:
            for reason in fallback.values():
                self._m_batch_fallback.labels(op="set_multi",
                                              reason=reason).inc()
            prefix = self.sim.now - started
            remaining = max(1e-6, deadline_at - self.sim.now)
            ordered = sorted(fallback)
            procs_list = [self.sim.process(self._isolate(
                self.set(items[i][0], items[i][1], remaining),
                self._mutation_error_result)) for i in ordered]
            outcomes = yield self.sim.all_of(procs_list)
            for i, result in zip(ordered, outcomes):
                result.latency += prefix
                results[i] = result
        root.annotate(resolved=n - len(fallback),
                      fallback=len(fallback)).finish()
        if root and root.parent is None:
            self.tracer.record(root)
        return results

    def _fanout_set_multi(self, items: List[Tuple[bytes, bytes]],
                          deadline: Optional[float]) -> Generator:
        """Per-key parallel fan-out, with per-key failure isolation."""
        procs = [self.sim.process(self._isolate(
            self.set(key, value, deadline), self._mutation_error_result))
            for key, value in items]
        results = yield self.sim.all_of(procs)
        return results

    def erase(self, key: bytes,
              deadline: Optional[float] = None, trace=None) -> Generator:
        """ERASE via RPC; tombstoned so late SETs cannot resurrect (§5.2)."""
        self.stats["erases"] += 1
        started = self.sim.now
        deadline_at = started + (deadline or self.config.default_deadline)
        root = self.tracer.start("erase", parent=_parent_span(trace),
                                 client=self.client_id)
        quorum = self.cell.mode.quorum
        last = MutationResult(SetStatus.FAILED)
        backoff = BackoffPolicy(self.config.retry_backoff,
                                self.config.retry_backoff_cap,
                                self._retry_rand)

        for _attempt in range(self.config.max_retries):
            if self.sim.now >= deadline_at:
                break
            version = self.versions.next()
            replies = yield from self._mutate_all(
                "Erase", {"key": key, "version": version.pack()},
                self.placement.key_hash(key), len(key) + 64,
                root, _attempt + 1)
            applied = sum(1 for r in replies
                          if r is not None and r.get("applied"))
            superseded = sum(1 for r in replies if r is not None and
                             not r.get("applied"))
            latency = self.sim.now - started
            if applied >= quorum:
                root.finish()
                yield from self._note_write_behind(key, None)
                return MutationResult(SetStatus.APPLIED, version=version,
                                      replicas_applied=applied,
                                      latency=latency,
                                      attempts=_attempt + 1,
                                      trace=self._finish_op(
                                          "erase", "applied", latency, root))
            if superseded >= quorum:
                root.finish()
                return MutationResult(SetStatus.SUPERSEDED, version=version,
                                      latency=latency,
                                      attempts=_attempt + 1,
                                      trace=self._finish_op(
                                          "erase", "superseded", latency,
                                          root))
            self._m_retries.labels(op="erase", reason="inquorate").inc()
            if self._flight:
                self._flight.record("retry", origin=self._flight_origin,
                                    op="erase", reason="inquorate",
                                    attempt=_attempt + 1)
            last = MutationResult(SetStatus.FAILED, version=version,
                                  replicas_applied=applied, latency=latency,
                                  attempts=_attempt + 1)
            if _attempt + 1 >= self.config.max_retries or \
                    self.sim.now >= deadline_at:
                continue
            if not self._retry_budget.try_spend():
                self.stats["retries_shed"] += 1
                self._m_retries_shed.labels(op="erase",
                                            reason="inquorate").inc()
                if self._flight:
                    self._flight.record("retry_shed",
                                        origin=self._flight_origin,
                                        op="erase", reason="inquorate",
                                        attempt=_attempt + 1)
                last.error = "budget-exhausted"
                root.annotate(shed_retry=True)
                break
            delay = backoff.next_delay()
            if self.sim.now + delay >= deadline_at:
                break  # would sleep past the deadline: no attempt left
            if delay:
                yield self.sim.sleep(delay)
        root.finish()
        last.trace = self._finish_op("erase", "failed", last.latency, root)
        return last

    def cas(self, key: bytes, value: bytes, expected: VersionNumber,
            deadline: Optional[float] = None, trace=None) -> Generator:
        """Compare-and-set: install only if the stored version matches."""
        self.stats["cas"] += 1
        started = self.sim.now
        root = self.tracer.start("cas", parent=_parent_span(trace),
                                 client=self.client_id)
        raw_value = value
        value = yield from self._encode_value(value)
        version = self.versions.next()
        replies = yield from self._mutate_all(
            "Cas", {"key": key, "value": value, "new_version": version.pack(),
                    "expected_version": expected.pack()},
            self.placement.key_hash(key), len(key) + len(value) + 96, root)
        applied = sum(1 for r in replies
                      if r is not None and r.get("applied"))
        latency = self.sim.now - started
        root.finish()
        stored = None
        for reply in replies:
            if reply is not None and "stored_version" in reply:
                candidate = VersionNumber.unpack(reply["stored_version"])
                stored = candidate if stored is None else max(stored,
                                                              candidate)
        if applied >= self.cell.mode.quorum:
            yield from self._note_write_behind(key, raw_value)
            return MutationResult(SetStatus.APPLIED, version=version,
                                  replicas_applied=applied, latency=latency,
                                  trace=self._finish_op("cas", "applied",
                                                        latency, root))
        return MutationResult(SetStatus.FAILED, version=version,
                              replicas_applied=applied, latency=latency,
                              stored_version=stored,
                              trace=self._finish_op("cas", "failed", latency,
                                                    root))

    def append(self, key: bytes, suffix: bytes,
               deadline: Optional[float] = None) -> Generator:
        """Append to a value: a new mutation type built as a CAS loop (§9).

        Uncoordinated per-replica read-modify-write would diverge, so the
        append is resolved at the client: GET, extend, CAS against the
        observed version; retried on conflict. Creates the key if absent.
        """
        started = self.sim.now
        deadline_at = started + (deadline or self.config.default_deadline)
        for _attempt in range(self.config.max_retries):
            if self.sim.now >= deadline_at:
                break
            if _attempt:
                # Linear backoff de-synchronizes contending CAS loops.
                yield self.sim.sleep(self.config.retry_backoff *
                                       _attempt * (1 + self.client_id % 3))
            current = yield from self.get(key)
            if current.status is GetStatus.ERROR:
                continue
            if current.status is GetStatus.MISS:
                # Creation race: a plain SET; a concurrent newer mutation
                # simply supersedes us, and we retry.
                result = yield from self.set(key, suffix)
                if result.status is SetStatus.APPLIED:
                    return result
                continue
            result = yield from self.cas(key, current.value + suffix,
                                         current.version)
            if result.status is SetStatus.APPLIED:
                result.latency = self.sim.now - started
                return result
        return MutationResult(SetStatus.FAILED,
                              latency=self.sim.now - started)

    def _mutate_all(self, method: str, payload: dict, key_hash: bytes,
                    payload_size: int, span=NULL_SPAN,
                    attempt: int = 1) -> Generator:
        """Issue one mutation RPC to every replica; None for failures."""
        yield from self.host.execute(self.config.costs.mutation_cpu,
                                     "cliquemap-client")
        views = self._replica_views(key_hash)
        for shadow in self._shadow_views(key_hash):
            self._shadow_mutate(shadow, method, payload, payload_size)
        if not views:
            return []
        fanout_span = span.child("mutate", attempt=attempt, method=method)

        def one(view: BackendView):
            try:
                reply = yield from view.channel.call(
                    method, payload,
                    deadline=self.config.mutation_rpc_deadline,
                    request_size=payload_size, trace=fanout_span)
                view.health.record_success()
                reply_config = reply.get("config_id")
                if reply_config is not None and \
                        reply_config > self.cell.config_id:
                    self._note_stale_config(reply_config)
                return reply
            except PermissionDeniedError:
                return None  # unauthorized: not retryable
            except RpcError:
                view_alive = self.directory(view.task).alive \
                    if self.directory else True
                if not view_alive:
                    view.health.mark_down()
                    self._start_reconnect(view.task)
                else:
                    view.health.record_failure()
                return None

        procs = [self.sim.process(one(view)) for view in views]
        replies = yield self.sim.all_of(procs)
        fanout_span.finish()
        return replies

    # ------------------------------------------------------------------
    # Touch reporting (§4.2)
    # ------------------------------------------------------------------

    def _note_touch(self, key_hash: bytes) -> None:
        if not self.config.touch_enabled or self._closed:
            return
        pending = self._pending_touches
        for shard in self.placement.shards_for(key_hash):
            task = self.cell.task_for_shard(shard)
            bucket = pending.get(task)
            if bucket is None:
                bucket = pending[task] = []
            bucket.append(key_hash)
            self._pending_touch_count += 1
        self._update_touch_gauge()
        if not self._touch_flusher_started:
            self._touch_flusher_started = True
            proc = self.sim.process(self._touch_flusher(),
                                    name=f"touch-flush:{self.client_id}")
            proc.defused = True

    def _update_touch_gauge(self) -> None:
        # A running count instead of summing every bucket: this fires on
        # each touched key, which on a hit-heavy workload is every GET.
        self._h_touch_pending.set(self._pending_touch_count)

    def _touch_flusher(self) -> Generator:
        """Background batch reporting of accesses, amortizing RPC cost."""
        while not self._closed:
            yield self.sim.sleep(self.config.touch_flush_interval)
            yield from self._flush_touches_once()

    def _flush_touches_once(self) -> Generator:
        """Report every buffered touch batch now (one sweep)."""
        pending, self._pending_touches = self._pending_touches, {}
        self._pending_touch_count = 0
        self._update_touch_gauge()
        for task, hashes in pending.items():
            view = self._views.get(task)
            if view is None or not view.healthy:
                continue
            for i in range(0, len(hashes), self.config.touch_batch_max):
                batch = hashes[i:i + self.config.touch_batch_max]
                try:
                    yield from view.channel.call(
                        "Touch", {"key_hashes": batch},
                        deadline=self.config.mutation_rpc_deadline,
                        request_size=16 * len(batch) + 32)
                except RpcError:
                    break

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def retry_budget(self) -> RetryBudget:
        return self._retry_budget

    def backend_health(self, task: str) -> Optional[BackendHealth]:
        view = self._views.get(task)
        return view.health if view is not None else None

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Flush buffered touches and release this client's telemetry.

        Safe to call repeatedly. When the simulator is idle (the usual
        case: test/benchmark code closing a client between ``sim.run``
        calls) the final Touch flush is driven to completion inside the
        simulation; when called from within a running simulation the
        flusher process performs the sweep instead.
        """
        if self._closed:
            return
        if any(self._pending_touches.values()) and \
                not getattr(self.sim, "_running", False):
            self.sim.run(until=self.sim.process(self._flush_touches_once()))
        self._closed = True
        self._m_touch_pending.remove(client=self.client_id)

    def __enter__(self) -> "CliqueMapClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
