"""CliqueMap core: the hybrid RMA/RPC key-value caching system."""

from .backend import Backend, BackendConfig, BackendStats
from .cell import Cell, CellSpec, make_transport
from .checksum import CHECKSUM_BYTES, checksum_ok, kv_checksum
from .client import (BackendView, ClientConfig, ClientCostModel,
                     CliqueMapClient, GetResult, MutationResult, OpResult)
from .config import (CellConfig, ConfigStore, GetStrategy, LookupStrategy,
                     ReplicationMode)
from .data import (DataEntryView, DataRegion, encode_entry_parts, entry_size,
                   try_decode)
from .errors import CliqueMapError, ConfigCasError, GetStatus, SetStatus
from .eviction import (ArcPolicy, EvictionPolicy, LruPolicy, RandomPolicy,
                       make_policy)
from .federation import (FederatedClient, Federation, FederationSpec,
                         build_zone_cell)
from .hashing import (KEY_HASH_BYTES, Placement, default_key_hash,
                      key_hash_to_int)
from .parallelfed import (RemoteZoneProxy, ZoneShard, ZoneShardSpec,
                          ZoneWorkloadSpec, run_plain_federation,
                          shard_builders)
from .index import (ENTRY_BYTES, IndexRegion, ParsedBucket, ParsedIndexEntry,
                    bucket_size, make_scar_program, parse_bucket)
from .maintenance import (MaintenanceConfig, MaintenanceController,
                          MaintenanceStats)
from .quorum import (QuorumDecision, QuorumOutcome, ReplicaVote, VoteKind,
                     evaluate)
from .repair import RepairConfig, RepairScanner, RepairStats
from .resize import ResizeConfig, ResizeController, ResizeStats
from .resilience import (BackendHealth, BackoffPolicy, HealthPolicy,
                         RetryBudget)
from .slab import SlabAllocator
from .tombstone import TombstoneCache
from .truetime import TrueTime
from .version import VERSION_BYTES, VersionFactory, VersionNumber

__all__ = [
    "Backend", "BackendConfig", "BackendStats",
    "Cell", "CellSpec", "make_transport",
    "CHECKSUM_BYTES", "checksum_ok", "kv_checksum",
    "BackendView", "ClientConfig", "ClientCostModel", "CliqueMapClient",
    "GetResult", "MutationResult", "OpResult",
    "CellConfig", "ConfigStore", "GetStrategy", "LookupStrategy",
    "ReplicationMode",
    "DataEntryView", "DataRegion", "encode_entry_parts", "entry_size",
    "try_decode",
    "CliqueMapError", "ConfigCasError", "GetStatus", "SetStatus",
    "ArcPolicy", "EvictionPolicy", "LruPolicy", "RandomPolicy", "make_policy",
    "FederatedClient", "Federation", "FederationSpec", "build_zone_cell",
    "RemoteZoneProxy", "ZoneShard", "ZoneShardSpec", "ZoneWorkloadSpec",
    "run_plain_federation", "shard_builders",
    "KEY_HASH_BYTES", "Placement", "default_key_hash", "key_hash_to_int",
    "ENTRY_BYTES", "IndexRegion", "ParsedBucket", "ParsedIndexEntry",
    "bucket_size", "make_scar_program", "parse_bucket",
    "MaintenanceConfig", "MaintenanceController", "MaintenanceStats",
    "QuorumDecision", "QuorumOutcome", "ReplicaVote", "VoteKind", "evaluate",
    "RepairConfig", "RepairScanner", "RepairStats",
    "ResizeConfig", "ResizeController", "ResizeStats",
    "BackendHealth", "BackoffPolicy", "HealthPolicy", "RetryBudget",
    "SlabAllocator", "TombstoneCache", "TrueTime",
    "VERSION_BYTES", "VersionFactory", "VersionNumber",
]
