"""Quorum repairs: cohort scans, on-demand repair, restart recovery (§5.4).

A key with only two agreeing backends is a *dirty quorum* — one more
failure degrades it to an inquorate state (a miss). To bound that risk,
backends independently scan their cohorts for missing or stale KV pairs
(detected via KeyHash/version exchange to minimize overhead) and repair
key-by-key: source the value from a quorum member, then re-install it at a
fresh VersionNumber on *all* replicas so the cohort settles on a single
consistent view.

The same machinery runs en masse when a backend restarts after a crash:
the restarted (empty) backend requests repairs from its two healthy
cohort members.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, List, Optional

from ..rpc import Principal, RpcError, connect as rpc_connect
from ..sim import Simulator
from .errors import CliqueMapError
from .truetime import TrueTime
from .version import VersionFactory, VersionNumber

# Client-id space for backend-originated repair versions; keeps them
# disjoint from application clients.
REPAIR_CLIENT_ID_BASE = 1 << 24


@dataclass
class RepairConfig:
    """Scanner cadence and limits."""

    scan_interval: float = 10.0          # tens of seconds typical (§5.4)
    rpc_deadline: float = 50e-3
    batch_size: int = 64                 # repair installs per MigrateIn RPC
    enabled: bool = True

    def __post_init__(self) -> None:
        if self.scan_interval <= 0:
            raise CliqueMapError(
                f"RepairConfig.scan_interval must be > 0, "
                f"got {self.scan_interval!r}")
        if self.rpc_deadline <= 0:
            raise CliqueMapError(
                f"RepairConfig.rpc_deadline must be > 0, "
                f"got {self.rpc_deadline!r}")
        if self.batch_size < 1:
            raise CliqueMapError(
                f"RepairConfig.batch_size must be >= 1, "
                f"got {self.batch_size!r}")


@dataclass
class RepairStats:
    scans: int = 0
    dirty_quorums_found: int = 0
    keys_repaired: int = 0
    restart_recoveries: int = 0
    keys_recovered: int = 0
    rpc_errors: int = 0          # repair RPCs that failed (no longer silent)


class RepairScanner:
    """The repair process co-located with one backend task."""

    def __init__(self, sim: Simulator, cell, backend,
                 config: Optional[RepairConfig] = None):
        self.sim = sim
        self.cell = cell          # the Cell: resolves shard -> Backend
        self.backend = backend
        self.config = config or RepairConfig()
        self.stats = RepairStats()
        self._channels: Dict[str, object] = {}
        self.versions = VersionFactory(
            REPAIR_CLIENT_ID_BASE + backend.shard,
            TrueTime(sim))
        self._proc = None
        # Repair RPC failures are retried by later scans, but they are
        # no longer silent: every one is counted by method.
        registry = getattr(cell, "metrics", None)
        self._m_rpc_errors = registry.counter(
            "cliquemap_repair_rpc_errors_total",
            "Repair-plane RPCs that failed, by method"
        ) if registry is not None else None

    # -- wiring -----------------------------------------------------------

    def start(self) -> None:
        if not self.config.enabled or self._proc is not None:
            return
        self._proc = self.sim.process(self._scan_loop(),
                                      name=f"repair:{self.backend.task_name}")
        self._proc.defused = True

    def stop(self) -> None:
        """Stop the periodic scan loop (a draining task leaves the
        cell; its scanner must not keep repairing under a stale
        placement)."""
        if self._proc is not None and self._proc.is_alive:
            self._proc.interrupt()
        self._proc = None

    def _count_rpc_error(self, method: str) -> None:
        self.stats.rpc_errors += 1
        if self._m_rpc_errors is not None:
            self._m_rpc_errors.labels(method=method).inc()

    def _channel_to(self, task: str):
        peer = self.cell.backend_by_task(task)
        channel = self._channels.get(task)
        if channel is None or channel.server is not peer.rpc_server:
            channel = rpc_connect(
                self.sim, self.cell.fabric, self.backend.host,
                peer.rpc_server, Principal(f"repair@{self.backend.task_name}"),
                client_component=f"repair:{self.backend.task_name}")
            self._channels[task] = channel
        return channel

    # -- periodic cohort scanning -------------------------------------------

    def _scan_loop(self) -> Generator:
        while True:
            yield self.sim.timeout(self.config.scan_interval)
            if not self.backend.alive:
                return
            try:
                yield from self.scan_once()
            except RpcError:
                continue  # a peer was down mid-scan; next interval retries

    def scan_once(self) -> Generator:
        """One full cohort scan + repairs for every dirty quorum found."""
        self.stats.scans += 1
        placement = self.backend.placement
        # Every primary shard whose keys this backend stores.
        primaries = [(self.backend.shard - back) % placement.num_shards
                     for back in range(placement.replication)]
        for primary in primaries:
            yield from self._scan_primary(primary)

    def _scan_primary(self, primary: int) -> Generator:
        placement = self.backend.placement
        replica_shards = placement.shards_for_primary(primary)
        tasks = [self.cell.task_for_shard(s) for s in replica_shards]

        summaries: Dict[str, Dict[bytes, VersionNumber]] = {}
        for task in tasks:
            if task == self.backend.task_name:
                summaries[task] = {
                    kh: version
                    for kh, version in self.backend._iter_versions()
                    if placement.primary_shard(kh) == primary}
                continue
            channel = self._channel_to(task)
            try:
                reply = yield from channel.call(
                    "ScanSummary", {"primary_shard": primary},
                    deadline=self.config.rpc_deadline)
            except RpcError:
                self._count_rpc_error("ScanSummary")
                return  # peer unreachable; skip this round
            summaries[task] = {
                kh: VersionNumber.unpack(vb)
                for kh, vb in reply["entries"].items()}

        dirty = self._find_dirty(summaries)
        for key_hash, source_task in dirty:
            self.stats.dirty_quorums_found += 1
            yield from self._repair_key(key_hash, source_task, tasks)

    def _find_dirty(self, summaries: Dict[str, Dict[bytes, VersionNumber]]
                    ) -> List:
        """Keys where the replicas disagree, with a quorum-source task."""
        all_hashes = set()
        for entries in summaries.values():
            all_hashes.update(entries)
        dirty = []
        for key_hash in all_hashes:
            votes: Dict[Optional[VersionNumber], List[str]] = {}
            for task, entries in summaries.items():
                votes.setdefault(entries.get(key_hash), []).append(task)
            if len(votes) == 1:
                continue  # unanimous: clean
            # Source from the highest version present anywhere.
            best_version = max(v for v in votes if v is not None)
            dirty.append((key_hash, votes[best_version][0]))
        return dirty

    # -- key-by-key repair -----------------------------------------------------

    def _repair_key(self, key_hash: bytes, source_task: str,
                    replica_tasks: List[str]) -> Generator:
        """Fetch the datum, re-install everywhere at a new version (§5.4)."""
        kv = yield from self._fetch_kv(key_hash, source_task)
        if kv is None:
            return
        key, value, _old_version = kv
        new_version = self.versions.next()
        entry = (key, value, new_version.pack())
        for task in replica_tasks:
            yield from self._install(task, [entry])
        self.stats.keys_repaired += 1

    def _fetch_kv(self, key_hash: bytes, source_task: str) -> Generator:
        if source_task == self.backend.task_name:
            key = self.backend._keys.get(key_hash)
            if key is None:
                return None
            found = self.backend.lookup_local(key)
            if found is None:
                return None
            return key, found[0], found[1]
        channel = self._channel_to(source_task)
        try:
            reply = yield from channel.call(
                "RepairGet", {"key_hash": key_hash},
                deadline=self.config.rpc_deadline)
        except RpcError:
            self._count_rpc_error("RepairGet")
            return None
        if not reply.get("found"):
            return None
        return (reply["key"], reply["value"],
                VersionNumber.unpack(reply["version"]))

    def _install(self, task: str, entries) -> Generator:
        size = sum(len(k) + len(v) + 32 for k, v, _ in entries)
        if task == self.backend.task_name:
            for key, value, version_bytes in entries:
                yield from self.backend._apply_set(
                    key, value, VersionNumber.unpack(version_bytes))
            return
        channel = self._channel_to(task)
        try:
            yield from channel.call("MigrateIn", {"entries": entries},
                                    deadline=self.config.rpc_deadline,
                                    request_size=size)
        except RpcError:
            # The peer will be caught by a later scan — but the failure
            # is counted, not swallowed silently.
            self._count_rpc_error("MigrateIn")

    # -- pull-based recovery (restarts, resize backfill) ----------------------

    def recover_from(self, peer_tasks: List[str],
                     placement=None, shard: Optional[int] = None
                     ) -> Generator:
        """Pull every entry this backend should hold — serving ``shard``
        under ``placement`` (defaults: its own) — that a peer holds at a
        newer version or that is missing locally. Returns the number of
        entries installed.

        This is restart recovery generalized for elastic cells: during a
        resize the new replica pulls its key ranges from the *old*
        cohort, filtering peer summaries under the target modulus (the
        ``num_shards`` override on ScanSummary). Installs keep the
        source versions and are arbitrated by the backend, so re-running
        a sweep is idempotent — the converging-handoff property resize
        cutover relies on.
        """
        placement = placement if placement is not None \
            else self.backend.placement
        shard = self.backend.shard if shard is None else shard
        primaries = [(shard - back) % placement.num_shards
                     for back in range(placement.replication)]
        have: Dict[bytes, VersionNumber] = dict(
            self.backend._iter_versions())
        installed = 0
        for primary in primaries:
            merged: Dict[bytes, VersionNumber] = {}
            source: Dict[bytes, str] = {}
            for task in peer_tasks:
                if task == self.backend.task_name:
                    continue
                channel = self._channel_to(task)
                try:
                    reply = yield from channel.call(
                        "ScanSummary",
                        {"primary_shard": primary,
                         "num_shards": placement.num_shards},
                        deadline=self.config.rpc_deadline)
                except RpcError:
                    self._count_rpc_error("ScanSummary")
                    continue
                for kh, vb in reply["entries"].items():
                    version = VersionNumber.unpack(vb)
                    if kh not in merged or version > merged[kh]:
                        merged[kh] = version
                        source[kh] = task
            batch = []
            for key_hash, version in merged.items():
                mine = have.get(key_hash)
                if mine is not None and mine >= version:
                    continue
                kv = yield from self._fetch_kv(key_hash, source[key_hash])
                if kv is None:
                    continue
                key, value, src_version = kv
                batch.append((key, value, src_version.pack()))
                if len(batch) >= self.config.batch_size:
                    yield from self._install(self.backend.task_name, batch)
                    installed += len(batch)
                    batch = []
            if batch:
                yield from self._install(self.backend.task_name, batch)
                installed += len(batch)
        self.stats.keys_recovered += installed
        return installed

    # -- restart recovery --------------------------------------------------------

    def restart_recovery(self) -> Generator:
        """En-masse repair after an unplanned restart: pull everything this
        shard should hold from the two healthy cohort members."""
        self.stats.restart_recoveries += 1
        placement = self.backend.placement
        primaries = [(self.backend.shard - back) % placement.num_shards
                     for back in range(placement.replication)]
        for primary in primaries:
            replica_shards = placement.shards_for_primary(primary)
            peer_tasks = [self.cell.task_for_shard(s)
                          for s in replica_shards
                          if self.cell.task_for_shard(s) !=
                          self.backend.task_name]
            merged: Dict[bytes, VersionNumber] = {}
            source: Dict[bytes, str] = {}
            for task in peer_tasks:
                channel = self._channel_to(task)
                try:
                    reply = yield from channel.call(
                        "ScanSummary", {"primary_shard": primary},
                        deadline=self.config.rpc_deadline)
                except RpcError:
                    continue
                for kh, vb in reply["entries"].items():
                    version = VersionNumber.unpack(vb)
                    if kh not in merged or version > merged[kh]:
                        merged[kh] = version
                        source[kh] = task
            batch = []
            for key_hash, version in merged.items():
                kv = yield from self._fetch_kv(key_hash, source[key_hash])
                if kv is None:
                    continue
                key, value, src_version = kv
                batch.append((key, value, src_version.pack()))
                if len(batch) >= self.config.batch_size:
                    yield from self._install(self.backend.task_name, batch)
                    self.stats.keys_recovered += len(batch)
                    batch = []
            if batch:
                yield from self._install(self.backend.task_name, batch)
                self.stats.keys_recovered += len(batch)
