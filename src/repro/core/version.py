"""VersionNumbers: globally unique, per-client monotone mutation versions.

A VersionNumber is the tuple {TrueTime, ClientId, SequenceNumber} (§5.2).
TrueTime occupies the uppermost bits, so a client retrying a mutation
eventually nominates the highest version in the system — the property that
guarantees per-client forward progress. Backends apply a mutation only
when its proposed version exceeds the stored one, so all replicas converge
on the same final order with no coordination.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from functools import total_ordering

from .truetime import TrueTime

VERSION_BYTES = 16
_PACK = struct.Struct("<QII")  # truetime micros, client id, sequence


@total_ordering
@dataclass(frozen=True)
class VersionNumber:
    """A totally-ordered mutation version."""

    truetime_micros: int
    client_id: int
    sequence: int

    def pack(self) -> bytes:
        return _PACK.pack(self.truetime_micros, self.client_id, self.sequence)

    @classmethod
    def unpack(cls, data: bytes) -> "VersionNumber":
        tt, cid, seq = _PACK.unpack(data)
        return cls(tt, cid, seq)

    @classmethod
    def zero(cls) -> "VersionNumber":
        return cls(0, 0, 0)

    def is_zero(self) -> bool:
        return self == VersionNumber(0, 0, 0)

    def _key(self):
        return (self.truetime_micros, self.client_id, self.sequence)

    def __lt__(self, other: "VersionNumber") -> bool:
        return self._key() < other._key()

    def __repr__(self) -> str:
        return f"v({self.truetime_micros},{self.client_id},{self.sequence})"


class VersionFactory:
    """Nominates fresh VersionNumbers for one client (or repairing backend)."""

    def __init__(self, client_id: int, truetime: TrueTime):
        self.client_id = client_id
        self.truetime = truetime
        self._sequence = 0

    def next(self) -> VersionNumber:
        self._sequence += 1
        return VersionNumber(self.truetime.now_micros(), self.client_id,
                             self._sequence)
