"""Cell configuration and the external high-availability config store.

Clients learn the cell topology — which backend task serves each shard,
the replication mode, the configuration generation — from an external HA
storage system (Chubby/Spanner in the paper, §6.1). When a client's
validation detects a configuration-id mismatch in a fetched bucket, it
refreshes from this store and discovers all migrations in flight and the
(temporary) roles of any warm spares.
"""

from __future__ import annotations

import copy
import enum
from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional

from ..sim import Simulator
from .errors import CliqueMapError, ConfigCasError


class ReplicationMode(enum.Enum):
    """Deployment replication modes (§5, §6.4)."""

    R1 = "r1"                    # single copy
    R2_IMMUTABLE = "r2imm"       # two copies, immutable corpus
    R3_2 = "r3.2"                # three copies, quorum of two

    @property
    def replicas(self) -> int:
        return {ReplicationMode.R1: 1,
                ReplicationMode.R2_IMMUTABLE: 2,
                ReplicationMode.R3_2: 3}[self]

    @property
    def quorum(self) -> int:
        return {ReplicationMode.R1: 1,
                ReplicationMode.R2_IMMUTABLE: 1,
                ReplicationMode.R3_2: 2}[self]


class GetStrategy(enum.Enum):
    """How GETs are performed (§3, §6.3).

    Part of the public API: :func:`repro.core.Cell.make_client` and
    :class:`CliqueMapClient` accept either a member or its string value
    (``"2xr"``, ``"scar"``, ``"msg"``, ``"rpc"``) and validate it via
    :meth:`coerce`.
    """

    TWO_R = "2xr"     # two RMA reads in sequence
    SCAR = "scar"     # single round trip via the software NIC
    MSG = "msg"       # two-sided messaging through the software NIC (Fig 7)
    RPC = "rpc"       # two-sided lookup over the full RPC stack (WAN)

    @classmethod
    def coerce(cls, value) -> "GetStrategy":
        """Normalize a strategy given as an enum member or string value.

        Raises :class:`~repro.core.errors.CliqueMapError` for anything
        else, so a typo'd strategy name fails at client construction
        rather than deep inside the GET path.
        """
        if isinstance(value, cls):
            return value
        if isinstance(value, str):
            try:
                return cls(value.lower())
            except ValueError:
                pass
        valid = ", ".join(repr(m.value) for m in cls)
        raise CliqueMapError(
            f"unknown GET strategy {value!r}; expected one of {valid} "
            f"or a GetStrategy member")


#: Backwards-compatible alias; ``GetStrategy`` is the public name.
LookupStrategy = GetStrategy


@dataclass
class CellConfig:
    """A snapshot of cell topology at one configuration generation."""

    name: str
    mode: ReplicationMode
    num_shards: int
    config_id: int = 1
    # shard index -> backend task name currently serving it.
    shard_tasks: List[str] = field(default_factory=list)
    # Idle warm-spare task names.
    spares: List[str] = field(default_factory=list)
    # task name -> shard it is temporarily covering (migrations in flight).
    spare_roles: Dict[str, int] = field(default_factory=dict)
    # --- Online resize (elastic cells) ---------------------------------
    # While a resize is in flight the authoritative layout above stays
    # frozen (reads keep quorum on the old cohort); these fields publish
    # the target so clients dual-write and controllers coordinate.
    resize_num_shards: int = 0                 # 0 = no resize in flight
    # Target-layout shard index -> task that will serve it after cutover.
    migrating_to: Dict[int, str] = field(default_factory=dict)
    # Tasks leaving the cell at cutover (shrink); drained afterwards.
    draining: List[str] = field(default_factory=list)

    @property
    def resize_active(self) -> bool:
        return self.resize_num_shards > 0

    def task_for_shard(self, shard: int) -> str:
        if shard < len(self.shard_tasks):
            return self.shard_tasks[shard]
        # A joining shard index (resize in flight): resolve through the
        # dual-assignment so repair/backfill machinery can reach it.
        if self.resize_active and shard in self.migrating_to:
            return self.migrating_to[shard]
        return self.shard_tasks[shard]  # IndexError: genuinely unknown

    def serving_tasks(self) -> List[str]:
        """Every task addressable this generation: the authoritative
        layout plus (mid-resize) the target cohort, de-duplicated."""
        tasks = list(self.shard_tasks)
        seen = set(tasks)
        for shard in sorted(self.migrating_to):
            task = self.migrating_to[shard]
            if task not in seen:
                seen.add(task)
                tasks.append(task)
        return tasks

    def clone(self) -> "CellConfig":
        return copy.deepcopy(self)


class ConfigStore:
    """The external HA store clients refresh configuration from."""

    def __init__(self, sim: Simulator, read_latency: float = 300e-6):
        self.sim = sim
        self.read_latency = read_latency
        self._cells: Dict[str, CellConfig] = {}
        self.reads = 0
        self.updates = 0

    def publish(self, config: CellConfig) -> None:
        """Install or replace a cell's configuration (bumps nothing)."""
        self._cells[config.name] = config.clone()

    def update(self, name: str, mutate,
               expected_config_id: Optional[int] = None) -> CellConfig:
        """Apply ``mutate(config)`` and bump the configuration generation.

        With ``expected_config_id`` the update is a compare-and-swap:
        it applies only if the store's current generation matches, and
        raises :class:`~repro.core.errors.ConfigCasError` otherwise.
        Concurrent controllers (resize + maintenance) use this so one
        cannot silently clobber the other's generation bump.
        """
        config = self._cells[name]
        if expected_config_id is not None and \
                config.config_id != expected_config_id:
            raise ConfigCasError(
                f"config CAS failed for cell {name!r}: expected generation "
                f"{expected_config_id}, store has {config.config_id}")
        mutate(config)
        config.config_id += 1
        self.updates += 1
        return config.clone()

    def get(self, name: str) -> Generator:
        """Read a configuration snapshot (a generator; costs latency)."""
        yield self.sim.timeout(self.read_latency)
        self.reads += 1
        config = self._cells.get(name)
        if config is None:
            raise KeyError(f"no such cell {name!r}")
        return config.clone()

    def peek(self, name: str) -> CellConfig:
        """Zero-cost read for assertions and controllers."""
        return self._cells[name].clone()
