"""Cell configuration and the external high-availability config store.

Clients learn the cell topology — which backend task serves each shard,
the replication mode, the configuration generation — from an external HA
storage system (Chubby/Spanner in the paper, §6.1). When a client's
validation detects a configuration-id mismatch in a fetched bucket, it
refreshes from this store and discovers all migrations in flight and the
(temporary) roles of any warm spares.
"""

from __future__ import annotations

import copy
import enum
from dataclasses import dataclass, field
from typing import Dict, Generator, List

from ..sim import Simulator
from .errors import CliqueMapError


class ReplicationMode(enum.Enum):
    """Deployment replication modes (§5, §6.4)."""

    R1 = "r1"                    # single copy
    R2_IMMUTABLE = "r2imm"       # two copies, immutable corpus
    R3_2 = "r3.2"                # three copies, quorum of two

    @property
    def replicas(self) -> int:
        return {ReplicationMode.R1: 1,
                ReplicationMode.R2_IMMUTABLE: 2,
                ReplicationMode.R3_2: 3}[self]

    @property
    def quorum(self) -> int:
        return {ReplicationMode.R1: 1,
                ReplicationMode.R2_IMMUTABLE: 1,
                ReplicationMode.R3_2: 2}[self]


class GetStrategy(enum.Enum):
    """How GETs are performed (§3, §6.3).

    Part of the public API: :func:`repro.core.Cell.make_client` and
    :class:`CliqueMapClient` accept either a member or its string value
    (``"2xr"``, ``"scar"``, ``"msg"``, ``"rpc"``) and validate it via
    :meth:`coerce`.
    """

    TWO_R = "2xr"     # two RMA reads in sequence
    SCAR = "scar"     # single round trip via the software NIC
    MSG = "msg"       # two-sided messaging through the software NIC (Fig 7)
    RPC = "rpc"       # two-sided lookup over the full RPC stack (WAN)

    @classmethod
    def coerce(cls, value) -> "GetStrategy":
        """Normalize a strategy given as an enum member or string value.

        Raises :class:`~repro.core.errors.CliqueMapError` for anything
        else, so a typo'd strategy name fails at client construction
        rather than deep inside the GET path.
        """
        if isinstance(value, cls):
            return value
        if isinstance(value, str):
            try:
                return cls(value.lower())
            except ValueError:
                pass
        valid = ", ".join(repr(m.value) for m in cls)
        raise CliqueMapError(
            f"unknown GET strategy {value!r}; expected one of {valid} "
            f"or a GetStrategy member")


#: Backwards-compatible alias; ``GetStrategy`` is the public name.
LookupStrategy = GetStrategy


@dataclass
class CellConfig:
    """A snapshot of cell topology at one configuration generation."""

    name: str
    mode: ReplicationMode
    num_shards: int
    config_id: int = 1
    # shard index -> backend task name currently serving it.
    shard_tasks: List[str] = field(default_factory=list)
    # Idle warm-spare task names.
    spares: List[str] = field(default_factory=list)
    # task name -> shard it is temporarily covering (migrations in flight).
    spare_roles: Dict[str, int] = field(default_factory=dict)

    def task_for_shard(self, shard: int) -> str:
        return self.shard_tasks[shard]

    def clone(self) -> "CellConfig":
        return copy.deepcopy(self)


class ConfigStore:
    """The external HA store clients refresh configuration from."""

    def __init__(self, sim: Simulator, read_latency: float = 300e-6):
        self.sim = sim
        self.read_latency = read_latency
        self._cells: Dict[str, CellConfig] = {}
        self.reads = 0
        self.updates = 0

    def publish(self, config: CellConfig) -> None:
        """Install or replace a cell's configuration (bumps nothing)."""
        self._cells[config.name] = config.clone()

    def update(self, name: str, mutate) -> CellConfig:
        """Apply ``mutate(config)`` and bump the configuration generation."""
        config = self._cells[name]
        mutate(config)
        config.config_id += 1
        self.updates += 1
        return config.clone()

    def get(self, name: str) -> Generator:
        """Read a configuration snapshot (a generator; costs latency)."""
        yield self.sim.timeout(self.read_latency)
        self.reads += 1
        config = self._cells.get(name)
        if config is None:
            raise KeyError(f"no such cell {name!r}")
        return config.clone()

    def peek(self, name: str) -> CellConfig:
        """Zero-cost read for assertions and controllers."""
        return self._cells[name].clone()
