"""Tombstone cache: VersionNumbers for ERASEd keys (§5.2).

ERASE versions cannot live in the index region (that would spend
RMA-registered DRAM on deleted data), and need not be RMA-accessible —
only mutations consult them. So each backend keeps a fixed-size, fully
associative tombstone cache on its heap, plus a *summary* VersionNumber:
the largest version ever evicted from the cache. For a key absent from
the cache, the summary is a safe upper bound — reasoning becomes
coarse-grained (a fresh SET below the summary is rejected even if the key
was never erased) but never inconsistent.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from .version import VersionNumber


class TombstoneCache:
    """Bounded map of key-hash -> erase VersionNumber, with a summary."""

    def __init__(self, capacity: int = 4096):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._entries: "OrderedDict[bytes, VersionNumber]" = OrderedDict()
        self.summary = VersionNumber.zero()
        self.evictions = 0

    def note_erase(self, key_hash: bytes, version: VersionNumber) -> None:
        """Record an erase, evicting the oldest tombstone if full."""
        existing = self._entries.get(key_hash)
        if existing is not None and existing >= version:
            return
        self._entries[key_hash] = version
        self._entries.move_to_end(key_hash)
        while len(self._entries) > self.capacity:
            _kh, evicted = self._entries.popitem(last=False)
            if evicted > self.summary:
                self.summary = evicted
            self.evictions += 1

    def erased_version(self, key_hash: bytes) -> Optional[VersionNumber]:
        """Exact tombstone version for the key, if still cached."""
        return self._entries.get(key_hash)

    def version_floor(self, key_hash: bytes) -> VersionNumber:
        """Lowest version a mutation of this key must exceed.

        Exact when the tombstone is cached; otherwise bounded above by the
        summary (coarse-grained but never inconsistent).
        """
        exact = self._entries.get(key_hash)
        if exact is not None:
            # The key may *also* have had a higher tombstone that was
            # evicted before this one was recorded; the summary bounds it.
            return max(exact, self.summary)
        return self.summary

    def forget(self, key_hash: bytes) -> None:
        """Drop a tombstone (its key was re-installed at a higher version)."""
        self._entries.pop(key_hash, None)

    def __len__(self) -> int:
        return len(self._entries)
