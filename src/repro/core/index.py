"""The RMA-accessible index region: Buckets of IndexEntries (Fig 1).

The index region is a flat byte array of fixed-size Buckets. Each Bucket
holds a small header (magic, configuration id, overflow flag) plus a fixed
number of 64-byte IndexEntries. An IndexEntry is tagged with the 128-bit
KeyHash, carries the KV pair's VersionNumber (§5.1), and points (region
id, offset, size) at the DataEntry in the data region.

Both sides speak this byte format: the backend writes entries through
:class:`IndexRegion`, clients parse raw bucket bytes fetched via RMA with
:func:`parse_bucket`, and the SCAR program (installed into the software
NIC) scans the same bytes server-side with :func:`make_scar_program`.

Entries reserve trailing bytes for future evolution — protocol changes
must be tolerable to deployed readers (§6), which self-validation makes
safe.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Iterator, Optional, Tuple

from ..transport import Arena, MemoryRegion
from .version import VersionNumber

BUCKET_MAGIC = 0xC11C3A90
BUCKET_HEADER = struct.Struct("<IIII")     # magic, config_id, flags, reserved
BUCKET_HEADER_BYTES = BUCKET_HEADER.size   # 16

ENTRY = struct.Struct("<16s16sQQII8x")     # key_hash, version, region, offset,
ENTRY_BYTES = ENTRY.size                   # size, flags (+8 reserved) = 64

FLAG_OVERFLOW = 0x1        # bucket flag: an entry spilled to the RPC path
ENTRY_FLAG_VALID = 0x1     # entry flag: slot is occupied


def bucket_size(ways: int) -> int:
    return BUCKET_HEADER_BYTES + ways * ENTRY_BYTES


@dataclass(frozen=True)
class ParsedIndexEntry:
    """A client-side view of one IndexEntry."""

    way: int
    key_hash: bytes
    version: VersionNumber
    region_id: int
    offset: int
    size: int
    valid: bool


class ParsedBucket:
    """A client-side view of one fetched Bucket.

    Entries decode lazily: the hot GET path calls :meth:`find`, which
    scans the raw bytes and materializes only the matching entry, so a
    lookup does not pay ``ways`` dataclass + version constructions just
    to discard all but one.
    """

    __slots__ = ("config_id", "overflow", "magic_ok", "_raw", "_ways",
                 "_entries")

    def __init__(self, config_id: int, overflow: bool, magic_ok: bool,
                 raw: bytes, ways: int):
        self.config_id = config_id
        self.overflow = overflow
        self.magic_ok = magic_ok
        self._raw = raw
        self._ways = ways
        self._entries: Optional[Tuple[ParsedIndexEntry, ...]] = None

    def _parse_way(self, way: int) -> ParsedIndexEntry:
        kh, ver, region, offset, size, eflags = ENTRY.unpack_from(
            self._raw, BUCKET_HEADER_BYTES + way * ENTRY_BYTES)
        return ParsedIndexEntry(
            way=way, key_hash=kh, version=VersionNumber.unpack(ver),
            region_id=region, offset=offset, size=size,
            valid=bool(eflags & ENTRY_FLAG_VALID))

    @property
    def entries(self) -> Tuple[ParsedIndexEntry, ...]:
        if self._entries is None:
            self._entries = tuple(
                self._parse_way(way) for way in range(self._ways))
        return self._entries

    def find(self, key_hash: bytes) -> Optional[ParsedIndexEntry]:
        raw = self._raw
        unpack_from = ENTRY.unpack_from
        for way in range(self._ways):
            kh, _ver, _region, _offset, _size, eflags = unpack_from(
                raw, BUCKET_HEADER_BYTES + way * ENTRY_BYTES)
            if (eflags & ENTRY_FLAG_VALID) and kh == key_hash:
                return self._parse_way(way)
        return None


def parse_bucket(data: bytes, ways: int) -> ParsedBucket:
    """Decode raw bucket bytes fetched via RMA."""
    if len(data) < bucket_size(ways):
        raise ValueError(
            f"bucket bytes too short: {len(data)} < {bucket_size(ways)}")
    magic, config_id, flags, _reserved = BUCKET_HEADER.unpack_from(data, 0)
    return ParsedBucket(config_id, bool(flags & FLAG_OVERFLOW),
                        magic == BUCKET_MAGIC, data, ways)


def make_scar_program(ways: int):
    """Build the NIC-resident scan for Scan-and-Read (§6.3).

    Returns ``program(bucket_bytes, key_hash) -> (region, offset, size)``
    or ``None`` on scan miss — a pure function over raw bytes, exactly the
    "small computation in the server-side NIC".
    """

    def program(bucket_bytes: bytes, key_hash: bytes):
        for way in range(ways):
            off = BUCKET_HEADER_BYTES + way * ENTRY_BYTES
            kh, _ver, region, offset, size, eflags = ENTRY.unpack_from(
                bucket_bytes, off)
            if (eflags & ENTRY_FLAG_VALID) and kh == key_hash:
                return (region, offset, size)
        return None

    return program


class IndexRegion:
    """The backend-side owner of the index bytes.

    All mutation happens here (inside RPC handlers); clients only ever see
    raw bytes via RMA.
    """

    def __init__(self, num_buckets: int, ways: int, config_id: int):
        if num_buckets < 1 or ways < 1:
            raise ValueError("num_buckets and ways must be positive")
        self.num_buckets = num_buckets
        self.ways = ways
        self.config_id = config_id
        total = num_buckets * bucket_size(ways)
        self.arena = Arena(total, total)
        self.window = MemoryRegion(self.arena)
        self._used_entries = 0
        for b in range(num_buckets):
            self._write_header(b, flags=0)

    # -- geometry -------------------------------------------------------

    @property
    def bucket_bytes(self) -> int:
        return bucket_size(self.ways)

    @property
    def total_bytes(self) -> int:
        return self.num_buckets * self.bucket_bytes

    def bucket_for(self, key_hash: bytes) -> int:
        # Low 64 bits pick the bucket (high bits picked the shard).
        return int.from_bytes(key_hash[:8], "little") % self.num_buckets

    def bucket_offset(self, bucket: int) -> int:
        if not 0 <= bucket < self.num_buckets:
            raise IndexError(f"bucket {bucket} out of range")
        return bucket * self.bucket_bytes

    def entry_offset(self, bucket: int, way: int) -> int:
        if not 0 <= way < self.ways:
            raise IndexError(f"way {way} out of range")
        return self.bucket_offset(bucket) + BUCKET_HEADER_BYTES + \
            way * ENTRY_BYTES

    @property
    def load_factor(self) -> float:
        return self._used_entries / (self.num_buckets * self.ways)

    # -- header ------------------------------------------------------------

    def _write_header(self, bucket: int, flags: int) -> None:
        self.arena.write(self.bucket_offset(bucket),
                         BUCKET_HEADER.pack(BUCKET_MAGIC, self.config_id,
                                            flags, 0))

    def read_flags(self, bucket: int) -> int:
        raw = self.arena.read(self.bucket_offset(bucket), BUCKET_HEADER_BYTES)
        return BUCKET_HEADER.unpack(raw)[2]

    def set_overflow(self, bucket: int, value: bool) -> None:
        flags = self.read_flags(bucket)
        flags = (flags | FLAG_OVERFLOW) if value else (flags & ~FLAG_OVERFLOW)
        self._write_header(bucket, flags)

    def set_config_id(self, config_id: int) -> None:
        """Stamp a new configuration id into every bucket header (§6.1)."""
        self.config_id = config_id
        for b in range(self.num_buckets):
            self._write_header(b, self.read_flags(b))

    # -- entries ----------------------------------------------------------

    def write_entry(self, bucket: int, way: int, key_hash: bytes,
                    version: VersionNumber, region_id: int, offset: int,
                    size: int) -> None:
        was_valid = self.read_entry(bucket, way).valid
        self.arena.write(
            self.entry_offset(bucket, way),
            ENTRY.pack(key_hash, version.pack(), region_id, offset, size,
                       ENTRY_FLAG_VALID))
        if not was_valid:
            self._used_entries += 1

    def clear_entry(self, bucket: int, way: int) -> None:
        if self.read_entry(bucket, way).valid:
            self._used_entries -= 1
        self.arena.write(self.entry_offset(bucket, way), bytes(ENTRY_BYTES))

    def read_entry(self, bucket: int, way: int) -> ParsedIndexEntry:
        raw = self.arena.read(self.entry_offset(bucket, way), ENTRY_BYTES)
        kh, ver, region, offset, size, eflags = ENTRY.unpack(raw)
        return ParsedIndexEntry(
            way=way, key_hash=kh, version=VersionNumber.unpack(ver),
            region_id=region, offset=offset, size=size,
            valid=bool(eflags & ENTRY_FLAG_VALID))

    def find_way(self, bucket: int, key_hash: bytes) -> Optional[int]:
        for way in range(self.ways):
            entry = self.read_entry(bucket, way)
            if entry.valid and entry.key_hash == key_hash:
                return way
        return None

    def find_free_way(self, bucket: int) -> Optional[int]:
        for way in range(self.ways):
            if not self.read_entry(bucket, way).valid:
                return way
        return None

    def entries(self) -> Iterator[Tuple[int, ParsedIndexEntry]]:
        """Yield (bucket, entry) for every valid entry."""
        for bucket in range(self.num_buckets):
            for way in range(self.ways):
                entry = self.read_entry(bucket, way)
                if entry.valid:
                    yield bucket, entry

    @property
    def used_entries(self) -> int:
        return self._used_entries
