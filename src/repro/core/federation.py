"""Multi-cell federation: the fleet view (§1, §3).

CliqueMap is "deployed across some 50 production clusters distributed
among 20 warehouse-scale datacenters". A corpus is typically replicated
per-cluster: applications talk to the cell in their own datacenter over
RMA, and fall back to a remote cell over WAN RPC when the local cell
cannot serve (the Table 1 row-5 posture).

:class:`Federation` wires several cells (one per zone) onto one fabric
and hands out :class:`FederatedClient` handles that (a) serve GETs from
the local cell, (b) optionally fall back to remote cells on local
misses/errors, and (c) fan writes out to every cell (regional writers
keeping corpus copies in sync — each cell still runs its own internal
R=3.2 replication underneath).
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional

from ..net import Fabric, FabricConfig
from ..sim import Simulator
from .cell import Cell, CellSpec
from .client import CliqueMapClient
from .config import LookupStrategy
from .errors import GetStatus


@dataclass
class FederationSpec:
    """Zones and the per-zone cell template."""

    zones: List[str] = field(default_factory=lambda: ["dc-a", "dc-b"])
    cell_spec: CellSpec = field(default_factory=CellSpec)
    fabric_config: FabricConfig = field(default_factory=FabricConfig)


def build_zone_cell(zone: str, cell_spec: CellSpec, sim: Simulator,
                    fabric: Fabric) -> Cell:
    """Stand up one zone's cell from the federation's template spec.

    The cell is constructed zone-aware (hosts land in ``zone`` with
    zone-prefixed names) from a deep copy of the template, so every zone
    gets identical-but-independent backend/repair/maintenance config.
    Shared by :class:`Federation` (all zones on one fabric) and
    :class:`~repro.core.parallelfed.ZoneShard` (one zone per shard
    fabric) so both build bit-identical cells from the same spec.
    """
    spec = copy.deepcopy(cell_spec)
    spec.name = f"{spec.name}-{zone}"
    return Cell(spec, sim=sim, fabric=fabric, zone=zone)


class Federation:
    """Several cells, one per datacenter, over one simulated world."""

    def __init__(self, spec: Optional[FederationSpec] = None):
        self.spec = spec or FederationSpec()
        self.sim = Simulator()
        self.fabric = Fabric(self.sim, self.spec.fabric_config)
        self.cells: Dict[str, Cell] = {}
        self._fed_client_seq = 0
        for zone in self.spec.zones:
            self.cells[zone] = build_zone_cell(
                zone, self.spec.cell_spec, self.sim, self.fabric)

    def cell(self, zone: str) -> Cell:
        return self.cells[zone]

    def make_client(self, zone: str, remote_fallback: bool = True,
                    **kwargs) -> "FederatedClient":
        """A client homed in ``zone``; connect with ``client.connect()``."""
        local = self.cells[zone]
        # Deterministic host naming (a counter, not id()): sharded runs
        # compare op digests across processes, so two same-seed builds
        # must produce byte-identical host names.
        self._fed_client_seq += 1
        host = self.fabric.add_host(
            f"{zone}/host/fed-client-{self._fed_client_seq}", zone=zone)
        local_client = local.make_client(host=host, **kwargs)
        remote_clients = {}
        if remote_fallback:
            for other_zone, other_cell in self.cells.items():
                if other_zone == zone:
                    continue
                # zone != "local" selects the RPC strategy and
                # WAN-appropriate deadlines inside make_client.
                remote_clients[other_zone] = other_cell.make_client(
                    host=host, strategy=LookupStrategy.RPC, zone=zone)
        return FederatedClient(zone, local_client, remote_clients)


class FederatedClient:
    """Local-cell RMA serving with WAN RPC fallback to remote cells."""

    def __init__(self, zone: str, local: CliqueMapClient,
                 remotes: Dict[str, CliqueMapClient]):
        self.zone = zone
        self.local = local
        self.remotes = remotes
        self.sim = local.sim
        self.stats = {"local_hits": 0, "remote_hits": 0, "misses": 0}

    def connect(self) -> Generator:
        yield from self.local.connect()
        for remote in self.remotes.values():
            yield from remote.connect()

    def _start_fed_span(self, name: str):
        """Root span covering the whole federated operation.

        Local and remote legs attach under it via their ``trace=``
        parameter, so one span tree covers client → local cell →
        WAN fan-out → remote cell (the stitcher joins the halves that
        live in another zone's tracer, see analysis.stitch).
        """
        return self.local.tracer.start(name, zone=self.zone)

    def get(self, key: bytes, deadline: Optional[float] = None) -> Generator:
        """Serve locally; on miss/error, try remote cells over WAN RPC."""
        root = self._start_fed_span("fed.get")
        result = yield from self.local.get(key, deadline, trace=root)
        if result.status is GetStatus.HIT:
            self.stats["local_hits"] += 1
            self._finish_fed_span(root, "local_hit")
            return result
        for zone, remote in self.remotes.items():
            remote_result = yield from remote.get(key, trace=root)
            if remote_result.status is GetStatus.HIT:
                self.stats["remote_hits"] += 1
                # Fill the local cell so the next GET is an RMA hit.
                yield from self.local.set(key, remote_result.value,
                                          trace=root)
                self._finish_fed_span(root, "remote_hit", remote_zone=zone)
                return remote_result
        self.stats["misses"] += 1
        self._finish_fed_span(root, "miss")
        return result

    def set(self, key: bytes, value: bytes,
            deadline: Optional[float] = None) -> Generator:
        """Write everywhere: the local cell plus every remote cell."""
        root = self._start_fed_span("fed.set")
        result = yield from self.local.set(key, value, deadline, trace=root)
        for remote in self.remotes.values():
            yield from remote.set(key, value, trace=root)
        self._finish_fed_span(root, result.status.name.lower())
        return result

    def erase(self, key: bytes,
              deadline: Optional[float] = None) -> Generator:
        root = self._start_fed_span("fed.erase")
        result = yield from self.local.erase(key, deadline, trace=root)
        for remote in self.remotes.values():
            yield from remote.erase(key, trace=root)
        self._finish_fed_span(root, result.status.name.lower())
        return result

    def _finish_fed_span(self, root, outcome: str, **labels) -> None:
        if not root:
            return
        root.annotate(outcome=outcome, **labels).finish()
        self.local.tracer.record(root)
