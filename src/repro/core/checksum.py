"""End-to-end checksums guarding every KV pair.

Inspired by Pilaf (§3): each KV pair carries a checksum across its key,
value, and metadata (version + key hash). RMA reads are not atomic, so
clients validate the checksum on every lookup; a mismatch is attributed to
a torn read and retried. Because the checksum covers the IndexEntry and
DataEntry *in combination*, server-side code may nullify pointers and
rewrite entries knowing any racing read poisons itself (§4.2).
"""

from __future__ import annotations

import hashlib

CHECKSUM_BYTES = 8


def kv_checksum(key: bytes, value: bytes, version_bytes: bytes,
                key_hash: bytes) -> bytes:
    """64-bit checksum over the full self-validating unit."""
    h = hashlib.blake2b(digest_size=CHECKSUM_BYTES)
    h.update(len(key).to_bytes(4, "little"))
    h.update(key)
    h.update(len(value).to_bytes(4, "little"))
    h.update(value)
    h.update(version_bytes)
    h.update(key_hash)
    return h.digest()


def checksum_ok(key: bytes, value: bytes, version_bytes: bytes,
                key_hash: bytes, stored: bytes) -> bool:
    return kv_checksum(key, value, version_bytes, key_hash) == stored
