"""Sharded federation: one zone per shard, WAN traffic at the boundary.

Binds the model layer to the conservative-lookahead engine
(:mod:`repro.sim.parallel`): each federation zone becomes a
:class:`ZoneShard` owning its own :class:`~repro.sim.Simulator`,
:class:`~repro.net.Fabric`, and :class:`~repro.core.Cell` (built by the
same :func:`~repro.core.federation.build_zone_cell` the single-process
:class:`~repro.core.Federation` uses), so microsecond-scale intra-cell
traffic never leaves the shard. The only inter-shard traffic is what
crosses the WAN in the paper's federation posture (§1/§3): fan-out
writes, remote-fallback GETs, and their replies — each modeled as a
:class:`~repro.net.CrossShardLink` hop whose minimum latency is the
coordinator's lookahead.

Cross-shard RPC shape: a federated client's remote op parks on an
:class:`~repro.sim.Event` and sends a ``req`` message; the destination
shard injects the request at its WAN arrival time, executes it through a
local *gateway* client (standing in for the single-fabric federation's
remote RPC client), and sends a ``rsp`` message whose arrival resumes
the parked process. Both legs pay the WAN link; the gateway op pays
intra-zone costs on the destination fabric.

The zone workload (scripted federated ops plus an optional
population-model riding along per zone) is shared, verbatim, with the
plain single-process federation arm in
:func:`run_plain_federation` — that is what makes the digest-equivalence
checks in :mod:`repro.analysis.parallel` meaningful.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..net import CrossShardLink, Fabric, FabricConfig
from ..sim import Event, RandomStream, ShardProgram, Simulator
from .cell import Cell, CellSpec
from .errors import GetStatus
from .federation import FederatedClient, Federation, FederationSpec, \
    build_zone_cell


@dataclass(frozen=True)
class ZoneWorkloadSpec:
    """Per-zone workload for a (sharded or plain) federation run.

    Each zone runs ``clients`` federated clients in an open think-time
    loop of scripted ops: every ``fanout_every``-th op is a fan-out SET
    of a zone-shared key (written to every zone), every
    ``remote_every``-th is a GET of another zone's *private* key (a
    local miss served by WAN remote fallback, which then fills the local
    cell), the rest are local GETs of the zone's shared keys. On top of
    that, ``population_clients`` modeled clients per zone (PR 8
    aggregate population model) offer pure intra-zone GET load — the
    traffic that makes sharding pay.
    """

    clients: int = 4
    think_mean: float = 200e-6
    fanout_every: int = 16
    remote_every: int = 8
    shared_keys: int = 64
    private_keys: int = 16
    value_bytes: int = 128
    population_clients: int = 0
    population_rate: float = 0.0        # key-ops/sec per modeled client
    population_drivers: int = 4
    population_keys: int = 512
    seed: int = 1
    # Export each zone's retained span trees (as plain dicts) in its
    # run digest, so the post-run stitcher can merge cross-zone traces.
    # Off by default: trace payloads ride in worker result pickles and
    # the equivalence digests deliberately ignore them.
    export_traces: bool = False


@dataclass(frozen=True)
class ZoneShardSpec:
    """Everything one worker needs to build its zone (fully picklable)."""

    zone: str
    zones: Tuple[str, ...]
    cell_spec: CellSpec = field(default_factory=CellSpec)
    fabric_config: FabricConfig = field(default_factory=FabricConfig)
    workload: ZoneWorkloadSpec = field(default_factory=ZoneWorkloadSpec)
    duration: float = 1.0


@dataclass
class RemoteOpResult:
    """What a WAN remote op returned (reconstructed shard-side)."""

    status: object
    value: Optional[bytes] = None


class RemoteZoneProxy:
    """Duck-types the remote :class:`~repro.core.CliqueMapClient` in a
    :class:`FederatedClient`'s remotes map, but executes ops on another
    shard via the WAN message protocol instead of a shared fabric."""

    def __init__(self, shard: "ZoneShard", dst_index: int):
        self.shard = shard
        self.dst_index = dst_index

    def connect(self):
        # Gateway clients connect on the destination shard at build time.
        return
        yield  # pragma: no cover - makes this a generator

    def _wan_span(self, trace, op: str):
        """Local span covering the parked WAN round trip (or None).

        Its :meth:`~repro.telemetry.Span.ref` rides in the request
        message; the destination starts a ``wan.serve`` root whose
        ``remote_parent`` is exactly this span — the joint the post-run
        stitcher reassembles.
        """
        if not trace:
            return None, None
        span = trace.child("wan.call", op=op,
                           dst=self.shard.spec.zones[self.dst_index])
        return span, span.ref(self.shard.zone)

    def get(self, key: bytes, deadline: Optional[float] = None,
            trace=None):
        span, ref = self._wan_span(trace, "get")
        status_name, value = yield from self.shard.wan_call(
            self.dst_index, "get", key, None, trace_ref=ref)
        if span is not None:
            span.annotate(status=status_name).finish()
        return RemoteOpResult(GetStatus[status_name], value)

    def set(self, key: bytes, value: bytes,
            deadline: Optional[float] = None, trace=None):
        span, ref = self._wan_span(trace, "set")
        status_name, _ = yield from self.shard.wan_call(
            self.dst_index, "set", key, value, trace_ref=ref)
        if span is not None:
            span.annotate(status=status_name).finish()
        return RemoteOpResult(status_name)

    def erase(self, key: bytes, deadline: Optional[float] = None,
              trace=None):
        span, ref = self._wan_span(trace, "erase")
        status_name, _ = yield from self.shard.wan_call(
            self.dst_index, "erase", key, None, trace_ref=ref)
        if span is not None:
            span.annotate(status=status_name).finish()
        return RemoteOpResult(status_name)


class OpDigest:
    """Order-sensitive digest of every completed federated op."""

    def __init__(self):
        self._h = hashlib.blake2b(digest_size=16)
        self.ops = 0

    def add(self, client: int, op: int, kind: str, key: bytes,
            status: str, value_len: int, latency: float) -> None:
        self.ops += 1
        self._h.update(b"%d|%d|%s|%s|%s|%d|%s;" % (
            client, op, kind.encode(), key, status.encode(), value_len,
            repr(latency).encode()))

    def hexdigest(self) -> str:
        return self._h.hexdigest()


# ---------------------------------------------------------------------------
# The zone workload — shared between the sharded and plain arms.
# ---------------------------------------------------------------------------


def _shared_key(zone: str, i: int) -> bytes:
    return b"%s/s-%d" % (zone.encode(), i)


def _private_key(zone: str, i: int) -> bytes:
    return b"%s/p-%d" % (zone.encode(), i)


def preload_zone(cell: Cell, zone: str, workload: ZoneWorkloadSpec) -> None:
    """Install the zone's shared + private keys in its own cell (only —
    other zones learn private keys through remote fallback)."""
    client = cell.connect_client()
    value = bytes(workload.value_bytes)

    def loader():
        for i in range(workload.shared_keys):
            yield from client.set(_shared_key(zone, i), value)
        for i in range(workload.private_keys):
            yield from client.set(_private_key(zone, i), value)

    cell.sim.run(until=cell.sim.process(loader()))
    client.close()


def make_population(cell: Cell, zone: str, workload: ZoneWorkloadSpec):
    """Build (and preload) the zone's population-model load generator,
    or None when the workload carries no population."""
    if not workload.population_clients:
        return None
    from ..workloads import KeySpace, LoadGenerator, populate
    stream = RandomStream(workload.seed, f"pop:{zone}")
    keyspace = KeySpace(stream.child("keys"), workload.population_keys,
                        prefix=b"%s/pop" % zone.encode())
    drivers = [cell.connect_client()
               for _ in range(workload.population_drivers)]
    cell.sim.run(until=cell.sim.process(
        populate(drivers[0], keyspace, workload.value_bytes)))
    return LoadGenerator(cell.sim, drivers, keyspace, stream)


def _fed_client_loop(sim: Simulator, zone: str, zones: Tuple[str, ...],
                     fed_client: FederatedClient, index: int,
                     workload: ZoneWorkloadSpec, digest: OpDigest):
    stream = RandomStream(workload.seed, f"fed:{zone}:{index}")
    value = bytes(workload.value_bytes)
    others = [z for z in zones if z != zone]
    op = 0
    while True:
        yield sim.timeout(stream.expovariate(1.0 / workload.think_mean))
        op += 1
        started = sim.now
        if workload.fanout_every and op % workload.fanout_every == 0:
            key = _shared_key(zone,
                              stream.randint(0, workload.shared_keys - 1))
            result = yield from fed_client.set(key, value)
            kind, value_len = "set", workload.value_bytes
        elif others and workload.remote_every and \
                op % workload.remote_every == 1:
            other = others[stream.randint(0, len(others) - 1)]
            key = _private_key(
                other, stream.randint(0, workload.private_keys - 1))
            result = yield from fed_client.get(key)
            kind = "remote-get"
            value_len = len(result.value or b"")
        else:
            key = _shared_key(zone,
                              stream.randint(0, workload.shared_keys - 1))
            result = yield from fed_client.get(key)
            kind = "get"
            value_len = len(result.value or b"")
        digest.add(index, op, kind, key, result.status.name, value_len,
                   sim.now - started)


def start_zone_workload(sim: Simulator, zone: str, zones: Tuple[str, ...],
                        fed_clients: List[FederatedClient], generator,
                        workload: ZoneWorkloadSpec, duration: float,
                        digest: OpDigest) -> None:
    """Start the zone's federated-client loops and (if any) population."""
    for index, fed_client in enumerate(fed_clients):
        sim.process(_fed_client_loop(sim, zone, zones, fed_client, index,
                                     workload, digest))
    if generator is not None:
        generator.start_population_gets(
            workload.population_clients, workload.population_rate,
            duration)


def _zone_digest(zone: str, digest: OpDigest, fed_clients, generator,
                 metrics, tracer=None,
                 export_traces: bool = False) -> Dict[str, object]:
    stats = {"local_hits": 0, "remote_hits": 0, "misses": 0}
    for fed_client in fed_clients:
        for name in stats:
            stats[name] += fed_client.stats[name]
    population = None
    if generator is not None:
        m = generator.metrics
        population = {"gets": m.gets, "hits": m.hits,
                      "offered": m.offered, "shed": m.shed,
                      "thinned": m.thinned}
    out = {
        "zone": zone,
        "ops": digest.ops,
        "ops_digest": digest.hexdigest(),
        "fed_stats": stats,
        "population": population,
        "metrics": {name: metrics.total(name)
                    for name in metrics.families()},
    }
    if export_traces and tracer is not None:
        # Extra key, deliberately ignored by the equivalence digests
        # (analysis.parallel compares a fixed field list): the zone's
        # retained span trees as plain picklable dicts for the stitcher.
        out["traces"] = [span.to_dict() for span in tracer.finished]
    return out


# ---------------------------------------------------------------------------
# The shard program.
# ---------------------------------------------------------------------------


class ZoneShard(ShardProgram):
    """One federation zone as a conservative-PDES shard."""

    def __init__(self, spec: ZoneShardSpec):
        super().__init__()
        self.spec = spec
        self.zone = spec.zone

    def build(self) -> None:
        spec = self.spec
        self.sim = Simulator()
        self.fabric = Fabric(self.sim, spec.fabric_config)
        self.cell = build_zone_cell(spec.zone, spec.cell_spec, self.sim,
                                    self.fabric)
        preload_zone(self.cell, spec.zone, spec.workload)
        # WAN links to every other shard; min latency == the fabric's
        # cross-zone delay, so the boundary costs what the shared-fabric
        # federation's WAN hop costs.
        self._links: Dict[int, CrossShardLink] = {}
        for index, other in enumerate(spec.zones):
            if other != spec.zone:
                self._links[index] = CrossShardLink.from_config(
                    spec.fabric_config, spec.zone, other)
        self._pending: Dict[int, Event] = {}
        self._req_seq = 0
        self.op_digest = OpDigest()
        # Federated clients, named/created exactly as Federation
        # .make_client does so a 1-zone shard is bit-identical to the
        # plain run (per-zone counter == the federation-global one).
        self.fed_clients: List[FederatedClient] = []
        for n in range(1, spec.workload.clients + 1):
            host = self.fabric.add_host(
                f"{spec.zone}/host/fed-client-{n}", zone=spec.zone)
            local = self.cell.make_client(host=host)
            remotes = {other: RemoteZoneProxy(self, index)
                       for index, other in enumerate(spec.zones)
                       if other != spec.zone}
            fed_client = FederatedClient(spec.zone, local, remotes)
            self.sim.run(until=self.sim.process(fed_client.connect()))
            self.fed_clients.append(fed_client)
        self.generator = make_population(self.cell, spec.zone,
                                         spec.workload)
        # The gateway executes inbound WAN ops; RPC strategy, like the
        # remote clients it stands in for (RMA is WAN-inapplicable).
        self._gateway = None
        if len(spec.zones) > 1:
            self._gateway = self.cell.connect_client(strategy="rpc")

    def start(self) -> None:
        start_zone_workload(self.sim, self.spec.zone, self.spec.zones,
                            self.fed_clients, self.generator,
                            self.spec.workload, self.spec.duration,
                            self.op_digest)

    # -- WAN protocol ------------------------------------------------------

    def wan_call(self, dst_index: int, op: str, key: bytes,
                 value: Optional[bytes],
                 trace_ref: Optional[tuple] = None):
        """Issue one remote op; parks until the reply arrives (generator).

        ``trace_ref`` (a :data:`~repro.telemetry.SpanRef` or None) rides
        in the request message's ``trace`` field — propagation only,
        never consulted by the window protocol.
        """
        self._req_seq += 1
        req_id = self._req_seq
        event = Event(self.sim)
        self._pending[req_id] = event
        link = self._links[dst_index]
        self.send(dst_index, "req", (req_id, self.index, op, key, value),
                  arrival=link.arrival(self.sim.now), trace=trace_ref)
        payload = yield event
        return payload

    def receive(self, message) -> None:
        if message.kind == "req":
            self.sim.inject(message.arrival, self._spawn_serve,
                            (message.payload, message.trace))
        elif message.kind == "rsp":
            self.sim.inject(message.arrival, self._complete_call,
                            message.payload)
        else:
            raise ValueError(f"unknown message kind {message.kind!r}")

    def _spawn_serve(self, request) -> None:
        payload, trace_ref = request
        self.sim.process(self._serve(payload, trace_ref))

    def _serve(self, payload, trace_ref=None):
        req_id, src_index, op, key, value = payload
        # Serve-side root: joins the originating trace (same trace_id)
        # with the WAN caller's span as its remote parent, so the
        # stitcher can hang this zone's whole serve tree under the
        # origin zone's wan.call span. Untraced requests serve exactly
        # as before (the gateway op becomes its own standalone root).
        root = None
        if trace_ref is not None:
            root = self.cell.tracer.start(
                "wan.serve", remote_parent=tuple(trace_ref), op=op,
                zone=self.zone, src=self.spec.zones[src_index])
        if op == "get":
            result = yield from self._gateway.get(key, trace=root)
            reply = (req_id, result.status.name, result.value)
        elif op == "set":
            result = yield from self._gateway.set(key, value, trace=root)
            reply = (req_id, result.status.name, None)
        else:
            result = yield from self._gateway.erase(key, trace=root)
            reply = (req_id, result.status.name, None)
        if root:
            root.annotate(status=result.status.name).finish()
            self.cell.tracer.record(root)
        link = self._links[src_index]
        self.send(src_index, "rsp", reply,
                  arrival=link.arrival(self.sim.now))

    def _complete_call(self, payload) -> None:
        req_id, status_name, value = payload
        self._pending.pop(req_id).succeed((status_name, value))

    def digest(self) -> Dict[str, object]:
        return _zone_digest(self.zone, self.op_digest, self.fed_clients,
                            self.generator, self.cell.metrics,
                            tracer=self.cell.tracer,
                            export_traces=self.spec.workload.export_traces)


# ---------------------------------------------------------------------------
# The plain (single-loop) arm over the identical workload.
# ---------------------------------------------------------------------------


def run_plain_federation(zones: Tuple[str, ...],
                         cell_spec: CellSpec,
                         fabric_config: FabricConfig,
                         workload: ZoneWorkloadSpec,
                         duration: float) -> Dict[str, object]:
    """Run the same per-zone workload on a plain single-event-loop
    :class:`Federation` (all zones, one fabric, one simulator).

    Per-zone build steps happen in the same order as
    :meth:`ZoneShard.build`, so with a single zone this run is
    event-for-event identical to the sharded one and the digests match
    bitwise. Returns per-zone digests plus kernel totals.
    """
    federation = Federation(FederationSpec(
        zones=list(zones), cell_spec=cell_spec,
        fabric_config=fabric_config))
    sim = federation.sim
    digests = {}
    runtimes = []
    for zone in zones:
        cell = federation.cells[zone]
        preload_zone(cell, zone, workload)
        digest = OpDigest()
        fed_clients = []
        for _ in range(workload.clients):
            fed_client = federation.make_client(zone)
            sim.run(until=sim.process(fed_client.connect()))
            fed_clients.append(fed_client)
        generator = make_population(cell, zone, workload)
        runtimes.append((zone, cell, digest, fed_clients, generator))
    start = sim.now
    for zone, _cell, digest, fed_clients, generator in runtimes:
        start_zone_workload(sim, zone, zones, fed_clients, generator,
                            workload, duration, digest)
    sim.run(until=start + duration)
    for zone, cell, digest, fed_clients, generator in runtimes:
        digests[zone] = _zone_digest(zone, digest, fed_clients, generator,
                                     cell.metrics, tracer=cell.tracer,
                                     export_traces=workload.export_traces)
    return {
        "mode": "plain",
        "digests": digests,
        "events": sim._seq,
        "start": start,
        "horizon": start + duration,
    }


def shard_builders(zones: Tuple[str, ...], cell_spec: CellSpec,
                   fabric_config: FabricConfig,
                   workload: ZoneWorkloadSpec,
                   duration: float) -> List[Tuple[type, tuple]]:
    """(factory, args) pairs for :class:`~repro.sim.ShardCoordinator`."""
    zones = tuple(zones)
    return [(ZoneShard, (ZoneShardSpec(
        zone=zone, zones=zones, cell_spec=cell_spec,
        fabric_config=fabric_config, workload=workload,
        duration=duration),)) for zone in zones]


__all__ = ["ZoneWorkloadSpec", "ZoneShardSpec", "ZoneShard",
           "RemoteZoneProxy", "RemoteOpResult", "OpDigest",
           "preload_zone", "make_population", "start_zone_workload",
           "run_plain_federation", "shard_builders"]
