"""Client-side degradation policy: backoff, retry budgets, quarantine.

Under overload or gray failure, a fleet of clients retrying on a fixed
short interval is a metastable amplifier: every failed attempt adds load
to the component least able to absorb it. This module holds the three
production-shaped reactions the client composes instead (§4.1, §9):

* :class:`BackoffPolicy` — exponential backoff with *decorrelated
  jitter*: each delay is drawn uniformly from ``[base, prev * 3]`` and
  capped, which de-synchronizes retrying clients without the lockstep
  ramps of plain exponential backoff.
* :class:`RetryBudget` — a token bucket over simulated time shared by
  all of one client's operations. First attempts are free; each retry
  spends a token. When the bucket is dry the retry is *shed* and the
  operation fails fast with a ``budget-exhausted`` reason, so retry
  volume is capped at the refill rate rather than multiplying with
  ``max_retries``.
* :class:`BackendHealth` — a per-backend scoreboard replacing the old
  binary ``healthy`` flag. Consecutive failures past a threshold put
  the backend in *quarantine* for an escalating cooldown; a single
  success after the cooldown clears it. Quarantine keeps a flapping
  (gray) replica out of the read cohort without forgetting that its
  RPC channel still works.

All randomness comes from a seeded :class:`~repro.sim.RandomStream`, so
two runs with the same seed schedule identical retries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..sim import RandomStream
from .errors import CliqueMapError


class BackoffPolicy:
    """Exponential backoff with decorrelated jitter.

    ``next_delay()`` draws uniformly from ``[base, max(base, prev * 3)]``
    and caps the result at ``cap``. With ``base == 0`` the policy is
    disabled: it returns ``0.0`` without consuming randomness, so
    no-backoff configurations leave the random stream untouched.
    """

    def __init__(self, base: float, cap: float, rand: RandomStream):
        self.base = base
        self.cap = cap
        self.rand = rand
        self._prev = base

    def next_delay(self) -> float:
        if self.base <= 0:
            return 0.0
        delay = min(self.cap,
                    self.rand.uniform(self.base,
                                      max(self.base, self._prev * 3)))
        self._prev = delay
        return delay

    def reset(self) -> None:
        self._prev = self.base


class RetryBudget:
    """A token bucket over simulated time; one token per retry.

    ``capacity <= 0`` disables the budget (every spend succeeds), which
    keeps unit tests and micro-benchmarks free to hammer retries.
    """

    def __init__(self, clock: Callable[[], float], capacity: float,
                 fill_rate: float):
        self.clock = clock
        self.capacity = float(capacity)
        self.fill_rate = float(fill_rate)
        self._tokens = max(0.0, self.capacity)
        self._last = clock()
        self.spent = 0
        self.shed = 0

    @property
    def unlimited(self) -> bool:
        return self.capacity <= 0

    def _refill(self) -> None:
        now = self.clock()
        if now > self._last and self.fill_rate > 0:
            self._tokens = min(self.capacity,
                               self._tokens +
                               (now - self._last) * self.fill_rate)
        self._last = now

    def tokens(self) -> float:
        if self.unlimited:
            return float("inf")
        self._refill()
        return self._tokens

    def try_spend(self, cost: float = 1.0) -> bool:
        """Spend ``cost`` tokens; False (and counted shed) when dry."""
        if self.unlimited:
            self.spent += 1
            return True
        self._refill()
        if self._tokens >= cost:
            self._tokens -= cost
            self.spent += 1
            return True
        self.shed += 1
        return False


@dataclass
class HealthPolicy:
    """Knobs for the per-backend health scoreboard."""

    failure_threshold: int = 3        # consecutive failures -> quarantine
    quarantine_base: float = 25e-3    # first cooldown
    quarantine_max: float = 0.5       # cooldown ceiling
    quarantine_backoff: float = 2.0   # cooldown escalation per re-entry

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise CliqueMapError(
                f"HealthPolicy.failure_threshold must be >= 1, "
                f"got {self.failure_threshold}")
        if self.quarantine_base <= 0:
            raise CliqueMapError(
                f"HealthPolicy.quarantine_base must be > 0, "
                f"got {self.quarantine_base}")
        if self.quarantine_max < self.quarantine_base:
            raise CliqueMapError(
                "HealthPolicy.quarantine_max must be >= quarantine_base, "
                f"got {self.quarantine_max} < {self.quarantine_base}")
        if self.quarantine_backoff < 1.0:
            raise CliqueMapError(
                f"HealthPolicy.quarantine_backoff must be >= 1, "
                f"got {self.quarantine_backoff}")


class BackendHealth:
    """Failure/success scoreboard for one backend, with quarantine.

    Two orthogonal facts are tracked:

    * ``connected`` — the last handshake (Info RPC) succeeded and the
      view's region metadata is current. Cleared by :meth:`mark_down`;
      set by :meth:`mark_connected`. A successful handshake does *not*
      clear quarantine — a gray link can handshake fine and still fail
      data ops, and re-admitting it on handshake would flap forever.
    * quarantine — entered after ``failure_threshold`` consecutive op
      failures, for a cooldown that escalates on re-entry. Exited
      lazily when the cooldown expires (checked on the next
      :meth:`available` call) or immediately on an op success.

    ``on_event(task, event)`` fires with ``"enter"``/``"exit"`` so the
    owner can count quarantine transitions in its metrics registry.
    """

    def __init__(self, task: str, clock: Callable[[], float],
                 policy: Optional[HealthPolicy] = None,
                 on_event: Optional[Callable[[str, str], None]] = None):
        self.task = task
        self.clock = clock
        self.policy = policy or HealthPolicy()
        self.on_event = on_event
        self.connected = False
        self.consecutive_failures = 0
        self.consecutive_successes = 0
        self.quarantines = 0
        self._quarantined_until: Optional[float] = None
        self._cooldown = self.policy.quarantine_base

    # -- state queries ------------------------------------------------------

    @property
    def quarantined(self) -> bool:
        if self._quarantined_until is not None and \
                self.clock() >= self._quarantined_until:
            self._exit_quarantine()
        return self._quarantined_until is not None

    def available(self) -> bool:
        """Eligible for the op path: connected and not quarantined."""
        return self.connected and not self.quarantined

    # -- transitions --------------------------------------------------------

    def mark_connected(self) -> None:
        self.connected = True

    def mark_down(self) -> None:
        """Handshake or op found the backend unreachable."""
        self.connected = False
        self.record_failure()

    def record_success(self) -> None:
        self.consecutive_failures = 0
        self.consecutive_successes += 1
        self._cooldown = self.policy.quarantine_base
        if self._quarantined_until is not None:
            self._exit_quarantine()

    def record_failure(self) -> None:
        self.consecutive_successes = 0
        self.consecutive_failures += 1
        if self.consecutive_failures >= self.policy.failure_threshold and \
                not self.quarantined:
            self.quarantines += 1
            self._quarantined_until = self.clock() + self._cooldown
            self._cooldown = min(self.policy.quarantine_max,
                                 self._cooldown *
                                 self.policy.quarantine_backoff)
            if self.on_event is not None:
                self.on_event(self.task, "enter")

    def reset_for_new_incarnation(self) -> None:
        """The task restarted: drop the dead process's failure history.

        Quarantine guards against the *same* incarnation flapping (a gray
        link that handshakes fine but fails data ops). Pinning a freshly
        restarted process to its predecessor's record turns one tolerated
        failure into two: the client shuns a healthy replica while a
        second, real fault is live — exactly the double-failure R=3.2
        cannot mask.
        """
        self.consecutive_failures = 0
        self.consecutive_successes = 0
        self._cooldown = self.policy.quarantine_base
        if self._quarantined_until is not None:
            self._exit_quarantine()

    def _exit_quarantine(self) -> None:
        self._quarantined_until = None
        if self.on_event is not None:
            self.on_event(self.task, "exit")
