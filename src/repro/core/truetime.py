"""TrueTime: a globally-consistent coordinated clock (simulated).

CliqueMap's VersionNumbers put TrueTime in the uppermost bits so that
retried mutations from a client eventually nominate the highest version
(§5.2). The simulation models per-client clock skew bounded by an epsilon,
which is all the version scheme relies on: roughly-synchronized, and
monotone per client.
"""

from __future__ import annotations

from ..sim import RandomStream, Simulator


class TrueTime:
    """Per-process clock view with bounded uncertainty."""

    def __init__(self, sim: Simulator, epsilon: float = 1e-3,
                 stream: RandomStream = None):
        self.sim = sim
        self.epsilon = epsilon
        stream = stream or RandomStream(0, "truetime")
        # A fixed per-process offset within [-eps, +eps].
        self._offset = stream.uniform(-epsilon, epsilon)
        self._last_micros = 0

    def now_micros(self) -> int:
        """Current TrueTime in microseconds; monotone for this process."""
        micros = int((self.sim.now + self._offset) * 1e6)
        # Never step backwards even if the offset would allow it at t~0.
        micros = max(micros, self._last_micros + 1)
        self._last_micros = micros
        return micros

    def uncertainty_micros(self) -> int:
        return int(self.epsilon * 1e6)
