"""Slab-based allocator for the data region (§4.1).

DataEntries are random-access, so the memory pool is governed by a slab
allocator [Bonwick '94]: the arena is carved into fixed-size slabs, each
slab is dedicated to one size class, and empty slabs are repurposed to
different classes as value-size mixes drift over the backend's lifetime.

The allocator only sees the *populated* prefix of the arena; as the arena
grows (data-region reshaping), newly-populated bytes become carvable slab
space with no other bookkeeping.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..transport import Arena


class SlabInfo:
    """One slab: a contiguous run of equal-size blocks."""

    __slots__ = ("start", "block_size", "free_blocks", "allocated")

    def __init__(self, start: int, block_size: int, slab_bytes: int):
        self.start = start
        self.block_size = block_size
        count = slab_bytes // block_size
        self.free_blocks: List[int] = [start + i * block_size
                                       for i in range(count)]
        self.allocated: Set[int] = set()

    @property
    def empty(self) -> bool:
        return not self.allocated


class SlabAllocator:
    """Allocates blocks out of size-classed slabs carved from an arena."""

    def __init__(self, arena: Arena, slab_bytes: int = 64 * 1024,
                 min_block: int = 64, growth_factor: float = 2.0):
        if slab_bytes <= 0 or min_block <= 0:
            raise ValueError("slab_bytes and min_block must be positive")
        self.arena = arena
        self.slab_bytes = slab_bytes
        self._classes: List[int] = []
        size = min_block
        while size <= slab_bytes:
            self._classes.append(size)
            size = int(size * growth_factor)
        if self._classes[-1] != slab_bytes:
            self._classes.append(slab_bytes)
        self._carved = 0                      # bytes carved into slabs so far
        self._slabs: Dict[int, SlabInfo] = {}  # slab start -> info
        self._partial: Dict[int, Set[int]] = {c: set() for c in self._classes}
        self._empty_slabs: List[int] = []
        self._block_owner: Dict[int, int] = {}  # block offset -> slab start
        self.used_bytes = 0

    # -- size classes ------------------------------------------------------

    @property
    def size_classes(self) -> List[int]:
        return list(self._classes)

    def class_for(self, nbytes: int) -> Optional[int]:
        for c in self._classes:
            if nbytes <= c:
                return c
        return None

    # -- allocation ----------------------------------------------------------

    def alloc(self, nbytes: int,
              exclude_slab: Optional[int] = None) -> Optional[int]:
        """Return a block offset for ``nbytes``, or None if out of memory.

        ``exclude_slab`` skips one slab (defragmentation must not move a
        block into the very slab it is vacating)."""
        cls = self.class_for(nbytes)
        if cls is None:
            return None
        slab = self._slab_with_free_block(cls, exclude_slab)
        if slab is None:
            return None
        offset = slab.free_blocks.pop()
        slab.allocated.add(offset)
        if not slab.free_blocks:
            self._partial[cls].discard(slab.start)
        self._block_owner[offset] = slab.start
        self.used_bytes += cls
        return offset

    def free(self, offset: int) -> None:
        slab_start = self._block_owner.pop(offset, None)
        if slab_start is None:
            raise ValueError(f"free of unallocated offset {offset}")
        slab = self._slabs[slab_start]
        slab.allocated.discard(offset)
        slab.free_blocks.append(offset)
        self.used_bytes -= slab.block_size
        if slab.empty:
            # Repurposable: return the whole slab to the free pool.
            self._partial[slab.block_size].discard(slab.start)
            del self._slabs[slab.start]
            self._empty_slabs.append(slab.start)
        else:
            self._partial[slab.block_size].add(slab.start)

    def block_size(self, offset: int) -> int:
        slab_start = self._block_owner.get(offset)
        if slab_start is None:
            raise ValueError(f"offset {offset} is not allocated")
        return self._slabs[slab_start].block_size

    def is_allocated(self, offset: int) -> bool:
        return offset in self._block_owner

    def can_satisfy(self, nbytes: int) -> bool:
        """True if an alloc of ``nbytes`` would succeed right now."""
        cls = self.class_for(nbytes)
        if cls is None:
            return False
        if self._partial[cls] or self._empty_slabs:
            return True
        return self._carved + self.slab_bytes <= self.arena.populated

    # -- internals ----------------------------------------------------------

    def _slab_with_free_block(self, cls: int,
                              exclude_slab: Optional[int] = None
                              ) -> Optional[SlabInfo]:
        for start in self._partial[cls]:
            if start != exclude_slab:
                return self._slabs[start]
        start = self._take_empty_slab()
        if start is None:
            return None
        slab = SlabInfo(start, cls, self.slab_bytes)
        self._slabs[start] = slab
        self._partial[cls].add(start)
        return slab

    def _take_empty_slab(self) -> Optional[int]:
        if self._empty_slabs:
            return self._empty_slabs.pop()
        if self._carved + self.slab_bytes <= self.arena.populated:
            start = self._carved
            self._carved += self.slab_bytes
            return start
        return None

    # -- defragmentation support -----------------------------------------------

    def slab_of(self, offset: int) -> int:
        slab_start = self._block_owner.get(offset)
        if slab_start is None:
            raise ValueError(f"offset {offset} is not allocated")
        return slab_start

    def slab_utilization(self, slab_start: int) -> float:
        slab = self._slabs[slab_start]
        total = self.slab_bytes // slab.block_size
        return len(slab.allocated) / total

    def sparse_slabs(self, threshold: float = 0.5):
        """Slab starts whose occupancy is below ``threshold`` — candidates
        for compaction so the whole slab can be repurposed."""
        return [start for start, slab in self._slabs.items()
                if slab.allocated and
                self.slab_utilization(start) < threshold]

    def blocks_in_slab(self, slab_start: int):
        return sorted(self._slabs[slab_start].allocated)

    @property
    def live_slab_count(self) -> int:
        return len(self._slabs)

    # -- accounting ---------------------------------------------------------

    @property
    def carved_bytes(self) -> int:
        return self._carved

    @property
    def headroom_bytes(self) -> int:
        """Uncarved populated bytes plus empty-slab bytes."""
        return (self.arena.populated - self._carved +
                len(self._empty_slabs) * self.slab_bytes)

    def utilization_of_populated(self) -> float:
        if self.arena.populated == 0:
            return 0.0
        return self.used_bytes / self.arena.populated
