"""Planned maintenance via warm spares; unplanned crash/restart (§6.1).

Binary upgrades are essentially always in progress at fleet scale. A
backend notified of planned maintenance migrates its identity and data to
a *warm spare*; the cell configuration is updated (new generation) and
every backend stamps the new configuration id into its bucket headers, so
clients discover the migration during normal response validation and
refresh from the external HA store — no request ever has to fail over a
dead server. After the restart, the spare hands the shard back.

Unplanned failures skip the graceful hand-off: the host simply dies, the
task restarts after a delay, and en-masse repairs (§5.4) repopulate it
from the healthy cohort.

Planned maintenance holds the cell's topology lock for its whole cycle,
so it serializes against an online resize (and vice versa); unplanned
crashes, being crashes, take no lock.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List, Optional, Tuple

from ..rpc import Principal, RpcError, connect as rpc_connect
from ..sim import Simulator
from .errors import CliqueMapError


@dataclass
class MaintenanceConfig:
    migrate_batch: int = 64            # entries per MigrateIn RPC
    rpc_deadline: float = 100e-3
    restart_delay: float = 30.0        # binary restart time (planned)
    crash_restart_delay: float = 90.0  # reschedule + cold start (unplanned)


@dataclass
class MaintenanceStats:
    planned_migrations: int = 0
    entries_migrated: int = 0
    unplanned_restarts: int = 0
    migration_rpc_errors: int = 0


class MaintenanceController:
    """Drives planned and unplanned maintenance events on a cell."""

    def __init__(self, sim: Simulator, cell,
                 config: Optional[MaintenanceConfig] = None):
        self.sim = sim
        self.cell = cell
        self.config = config or MaintenanceConfig()
        self.stats = MaintenanceStats()
        self._m_events = cell.metrics.counter(
            "cliquemap_maintenance_events_total",
            "Maintenance events driven on the cell, by kind")
        self._m_rpc_errors = cell.metrics.counter(
            "cliquemap_migration_rpc_errors_total",
            "Migration MigrateIn batches that failed (reconciled by "
            "repair), by direction")

    # ------------------------------------------------------------------
    # Planned maintenance
    # ------------------------------------------------------------------

    def planned_restart(self, shard: int) -> Generator:
        """Full cycle: migrate to spare, restart primary, migrate back.

        Serialized against other topology changes (resize, concurrent
        planned restarts) via the cell's topology lock.
        """
        request = self.cell.topology_lock.request()
        yield request
        try:
            yield from self._planned_restart_locked(shard)
        finally:
            self.cell.topology_lock.release(request)

    def _planned_restart_locked(self, shard: int) -> Generator:
        primary_task = self.cell.task_for_shard(shard)
        spare_task = self.cell.take_spare()
        if spare_task is None:
            raise CliqueMapError(
                f"no warm spare available for planned maintenance of "
                f"shard {shard} (cell has an empty spare pool)")
        primary = self.cell.backend_by_task(primary_task)
        spare = self.cell.backend_by_task(spare_task)
        self.stats.planned_migrations += 1
        self._m_events.labels(kind="planned-restart").inc()

        # 1. Transfer identity and data to the spare (RPC traffic).
        spare.shard = shard
        yield from self._transfer(primary, spare, direction="to-spare")

        # 2. Point the shard at the spare and bump the config generation;
        #    backends stamp the new id into bucket headers so clients
        #    validating any response notice and refresh.
        self.cell.repoint_shard(shard, spare_task, spare_role=True)

        # 3. The primary exits and restarts with the new binary.
        primary.stop()
        yield self.sim.timeout(self.config.restart_delay)
        restarted = self.cell.restart_backend_task(primary_task, shard=shard)

        # 4. The spare returns the shard's data (RPC traffic again), then
        #    releases its copy (a non-disruptive restart to empty state,
        #    freeing the DRAM for the next maintenance event).
        yield from self._transfer(spare, restarted, direction="from-spare")
        self.cell.return_spare(spare_task)
        self.cell.repoint_shard(shard, primary_task, spare_role=False)
        spare.stop()
        self.cell.restart_backend_task(spare_task, shard=-1)

    def _transfer(self, source, target,
                  direction: str = "to-spare") -> Generator:
        """Stream every resident entry from source to target in batches."""
        entries = source.snapshot_entries()
        channel = rpc_connect(
            self.sim, self.cell.fabric, source.host, target.rpc_server,
            Principal(f"migrate@{source.task_name}"),
            client_component=f"migrate:{source.task_name}")
        batch: List[Tuple[bytes, bytes, bytes]] = []
        for entry in entries:
            batch.append(entry)
            if len(batch) >= self.config.migrate_batch:
                yield from self._send_batch(channel, batch, direction)
                self.stats.entries_migrated += len(batch)
                batch = []
        if batch:
            yield from self._send_batch(channel, batch, direction)
            self.stats.entries_migrated += len(batch)

    def _send_batch(self, channel, batch, direction: str) -> Generator:
        size = sum(len(k) + len(v) + 32 for k, v, _ in batch)
        try:
            yield from channel.call("MigrateIn", {"entries": batch},
                                    deadline=self.config.rpc_deadline,
                                    request_size=size)
        except RpcError:
            # Repairs reconcile the gap, but the failure must be visible:
            # a silent drop here looks identical to a healthy migration.
            self.stats.migration_rpc_errors += 1
            self._m_rpc_errors.labels(direction=direction).inc()

    # ------------------------------------------------------------------
    # Unplanned maintenance
    # ------------------------------------------------------------------

    def unplanned_crash(self, shard: int,
                        restart_delay: Optional[float] = None) -> Generator:
        """Forcibly crash the shard's backend, restart it later, repair."""
        task = self.cell.task_for_shard(shard)
        return (yield from self.unplanned_crash_task(task, restart_delay))

    def unplanned_crash_task(self, task: str,
                             restart_delay: Optional[float] = None
                             ) -> Generator:
        """Crash a backend *task* (it may be mid-migration or a resize
        joiner, i.e. not currently resolvable through a shard index)."""
        backend = self.cell.backend_by_task(task)
        shard = backend.shard
        backend.crash()
        self.stats.unplanned_restarts += 1
        self._m_events.labels(kind="unplanned-crash").inc()
        yield self.sim.timeout(restart_delay
                               if restart_delay is not None
                               else self.config.crash_restart_delay)
        restarted = self.cell.restart_backend_task(task, shard=shard)
        scanner = self.cell.scanner_for(task)
        if scanner is not None:
            yield from scanner.restart_recovery()
        return restarted
