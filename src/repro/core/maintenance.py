"""Planned maintenance via warm spares; unplanned crash/restart (§6.1).

Binary upgrades are essentially always in progress at fleet scale. A
backend notified of planned maintenance migrates its identity and data to
a *warm spare*; the cell configuration is updated (new generation) and
every backend stamps the new configuration id into its bucket headers, so
clients discover the migration during normal response validation and
refresh from the external HA store — no request ever has to fail over a
dead server. After the restart, the spare hands the shard back.

Unplanned failures skip the graceful hand-off: the host simply dies, the
task restarts after a delay, and en-masse repairs (§5.4) repopulate it
from the healthy cohort.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List, Optional, Tuple

from ..rpc import Principal, RpcError, connect as rpc_connect
from ..sim import Simulator


@dataclass
class MaintenanceConfig:
    migrate_batch: int = 64            # entries per MigrateIn RPC
    rpc_deadline: float = 100e-3
    restart_delay: float = 30.0        # binary restart time (planned)
    crash_restart_delay: float = 90.0  # reschedule + cold start (unplanned)


@dataclass
class MaintenanceStats:
    planned_migrations: int = 0
    entries_migrated: int = 0
    unplanned_restarts: int = 0


class MaintenanceController:
    """Drives planned and unplanned maintenance events on a cell."""

    def __init__(self, sim: Simulator, cell,
                 config: Optional[MaintenanceConfig] = None):
        self.sim = sim
        self.cell = cell
        self.config = config or MaintenanceConfig()
        self.stats = MaintenanceStats()
        self._m_events = cell.metrics.counter(
            "cliquemap_maintenance_events_total",
            "Maintenance events driven on the cell, by kind")

    # ------------------------------------------------------------------
    # Planned maintenance
    # ------------------------------------------------------------------

    def planned_restart(self, shard: int) -> Generator:
        """Full cycle: migrate to spare, restart primary, migrate back."""
        primary_task = self.cell.task_for_shard(shard)
        spare_task = self.cell.take_spare()
        if spare_task is None:
            raise RuntimeError("no warm spare available")
        primary = self.cell.backend_by_task(primary_task)
        spare = self.cell.backend_by_task(spare_task)
        self.stats.planned_migrations += 1
        self._m_events.labels(kind="planned-restart").inc()

        # 1. Transfer identity and data to the spare (RPC traffic).
        spare.shard = shard
        yield from self._transfer(primary, spare)

        # 2. Point the shard at the spare and bump the config generation;
        #    backends stamp the new id into bucket headers so clients
        #    validating any response notice and refresh.
        self.cell.repoint_shard(shard, spare_task, spare_role=True)

        # 3. The primary exits and restarts with the new binary.
        primary.stop()
        yield self.sim.timeout(self.config.restart_delay)
        restarted = self.cell.restart_backend_task(primary_task, shard=shard)

        # 4. The spare returns the shard's data (RPC traffic again), then
        #    releases its copy (a non-disruptive restart to empty state,
        #    freeing the DRAM for the next maintenance event).
        yield from self._transfer(spare, restarted)
        self.cell.return_spare(spare_task)
        self.cell.repoint_shard(shard, primary_task, spare_role=False)
        spare.stop()
        self.cell.restart_backend_task(spare_task, shard=-1)

    def _transfer(self, source, target) -> Generator:
        """Stream every resident entry from source to target in batches."""
        entries = source.snapshot_entries()
        channel = rpc_connect(
            self.sim, self.cell.fabric, source.host, target.rpc_server,
            Principal(f"migrate@{source.task_name}"),
            client_component=f"migrate:{source.task_name}")
        batch: List[Tuple[bytes, bytes, bytes]] = []
        for entry in entries:
            batch.append(entry)
            if len(batch) >= self.config.migrate_batch:
                yield from self._send_batch(channel, batch)
                self.stats.entries_migrated += len(batch)
                batch = []
        if batch:
            yield from self._send_batch(channel, batch)
            self.stats.entries_migrated += len(batch)

    def _send_batch(self, channel, batch) -> Generator:
        size = sum(len(k) + len(v) + 32 for k, v, _ in batch)
        try:
            yield from channel.call("MigrateIn", {"entries": batch},
                                    deadline=self.config.rpc_deadline,
                                    request_size=size)
        except RpcError:
            pass  # repairs will reconcile any gap

    # ------------------------------------------------------------------
    # Unplanned maintenance
    # ------------------------------------------------------------------

    def unplanned_crash(self, shard: int,
                        restart_delay: Optional[float] = None) -> Generator:
        """Forcibly crash the shard's backend, restart it later, repair."""
        task = self.cell.task_for_shard(shard)
        backend = self.cell.backend_by_task(task)
        backend.crash()
        self.stats.unplanned_restarts += 1
        self._m_events.labels(kind="unplanned-crash").inc()
        yield self.sim.timeout(restart_delay
                               if restart_delay is not None
                               else self.config.crash_restart_delay)
        restarted = self.cell.restart_backend_task(task, shard=shard)
        scanner = self.cell.scanner_for(task)
        if scanner is not None:
            yield from scanner.restart_recovery()
        return restarted
