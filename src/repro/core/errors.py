"""CliqueMap-level errors and operation status codes.

Most failure handling in CliqueMap is *not* exception-shaped: the client
converts every per-attempt hazard (torn read, revoked region, config
mismatch, inquorate vote) into an internal retry and surfaces only a
terminal :class:`GetStatus`/:class:`SetStatus` plus a reason string —
§9's "clients become resilient to a variety of hazards across all layers
of the stack". The exception type below covers genuine API misuse.
"""

from __future__ import annotations

import enum


class CliqueMapError(Exception):
    """Base class for CliqueMap application errors (API misuse, bad
    configuration); operational failures surface as statuses instead."""


class ConfigCasError(CliqueMapError):
    """A compare-and-swap config update lost a race: the store's
    generation no longer matches the caller's expected ``config_id``.
    Controllers re-read the config and re-decide rather than clobber a
    concurrent controller's generation bump."""


class GetStatus(enum.Enum):
    """Outcome of a GET operation."""

    HIT = "hit"
    MISS = "miss"
    ERROR = "error"


class SetStatus(enum.Enum):
    """Outcome of a SET/ERASE/CAS operation."""

    APPLIED = "applied"          # quorum of replicas applied the mutation
    SUPERSEDED = "superseded"    # a newer version already present
    FAILED = "failed"            # could not reach enough replicas
