"""Cache eviction policies (§4.2).

Backends have no direct record of GET accesses (GETs are one-sided RMAs),
so clients report touches via batched background RPCs and backends ingest
those records to drive configurable recency-based policies: LRU, ARC
[Megiddo & Modha '03], and random as a baseline.

A policy orders *eviction victims*; the backend walks that order when a
mutation hits a capacity conflict (data pool full) or an associativity
conflict (bucket full).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator, Optional

from ..sim import RandomStream


class EvictionPolicy:
    """Interface: track residency/access, yield victims in eviction order."""

    name = "base"

    def record_insert(self, key_hash: bytes) -> None:
        raise NotImplementedError

    def record_access(self, key_hash: bytes) -> None:
        raise NotImplementedError

    def record_remove(self, key_hash: bytes) -> None:
        raise NotImplementedError

    def victims(self) -> Iterator[bytes]:
        """Resident keys, best-victim first. Must tolerate removals between
        yields (the backend evicts as it walks)."""
        raise NotImplementedError

    def __contains__(self, key_hash: bytes) -> bool:
        raise NotImplementedError


class LruPolicy(EvictionPolicy):
    """Least-recently-used over client-reported touches."""

    name = "lru"

    def __init__(self):
        self._order: "OrderedDict[bytes, None]" = OrderedDict()

    def record_insert(self, key_hash: bytes) -> None:
        self._order[key_hash] = None
        self._order.move_to_end(key_hash)

    def record_access(self, key_hash: bytes) -> None:
        if key_hash in self._order:
            self._order.move_to_end(key_hash)

    def record_remove(self, key_hash: bytes) -> None:
        self._order.pop(key_hash, None)

    def victims(self) -> Iterator[bytes]:
        while self._order:
            # Oldest first; re-check each yield since the backend mutates us.
            key_hash = next(iter(self._order))
            yield key_hash
            if key_hash in self._order:
                # Not evicted (wrong size class); skip it this walk.
                self._order.move_to_end(key_hash)

    def __contains__(self, key_hash: bytes) -> bool:
        return key_hash in self._order

    def __len__(self) -> int:
        return len(self._order)


class RandomPolicy(EvictionPolicy):
    """Uniform-random victims; the no-information baseline."""

    name = "random"

    def __init__(self, stream: Optional[RandomStream] = None):
        self._stream = stream or RandomStream(0, "evict-random")
        self._resident = {}

    def record_insert(self, key_hash: bytes) -> None:
        self._resident[key_hash] = None

    def record_access(self, key_hash: bytes) -> None:
        pass

    def record_remove(self, key_hash: bytes) -> None:
        self._resident.pop(key_hash, None)

    def victims(self) -> Iterator[bytes]:
        while self._resident:
            keys = list(self._resident)
            self._stream.shuffle(keys)
            progressed = False
            for key_hash in keys:
                if key_hash in self._resident:
                    yield key_hash
                    progressed = True
            if not progressed:
                return

    def __contains__(self, key_hash: bytes) -> bool:
        return key_hash in self._resident

    def __len__(self) -> int:
        return len(self._resident)


class ArcPolicy(EvictionPolicy):
    """Adaptive Replacement Cache over key hashes.

    T1 holds keys seen once recently, T2 keys seen at least twice; B1/B2
    are ghost lists of recently-evicted keys that steer the adaptation
    target ``p`` between recency and frequency.
    """

    name = "arc"

    def __init__(self, capacity: int = 10000):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.p = 0.0
        self.t1: "OrderedDict[bytes, None]" = OrderedDict()
        self.t2: "OrderedDict[bytes, None]" = OrderedDict()
        self.b1: "OrderedDict[bytes, None]" = OrderedDict()
        self.b2: "OrderedDict[bytes, None]" = OrderedDict()

    def record_insert(self, key_hash: bytes) -> None:
        if key_hash in self.t1 or key_hash in self.t2:
            self.record_access(key_hash)
            return
        if key_hash in self.b1:
            # Recency ghost hit: grow p toward recency.
            self.p = min(self.capacity,
                         self.p + max(1.0, len(self.b2) / max(1, len(self.b1))))
            del self.b1[key_hash]
            self.t2[key_hash] = None
            self.t2.move_to_end(key_hash)
        elif key_hash in self.b2:
            self.p = max(0.0,
                         self.p - max(1.0, len(self.b1) / max(1, len(self.b2))))
            del self.b2[key_hash]
            self.t2[key_hash] = None
            self.t2.move_to_end(key_hash)
        else:
            self.t1[key_hash] = None
            self.t1.move_to_end(key_hash)
        self._trim_ghosts()

    def record_access(self, key_hash: bytes) -> None:
        if key_hash in self.t1:
            del self.t1[key_hash]
            self.t2[key_hash] = None
            self.t2.move_to_end(key_hash)
        elif key_hash in self.t2:
            self.t2.move_to_end(key_hash)

    def record_remove(self, key_hash: bytes) -> None:
        if key_hash in self.t1:
            del self.t1[key_hash]
            self.b1[key_hash] = None
            self.b1.move_to_end(key_hash)
        elif key_hash in self.t2:
            del self.t2[key_hash]
            self.b2[key_hash] = None
            self.b2.move_to_end(key_hash)
        self._trim_ghosts()

    def victims(self) -> Iterator[bytes]:
        while self.t1 or self.t2:
            prefer_t1 = len(self.t1) >= max(1.0, self.p)
            source = self.t1 if (prefer_t1 and self.t1) or not self.t2 \
                else self.t2
            key_hash = next(iter(source))
            yield key_hash
            if key_hash in source:
                source.move_to_end(key_hash)

    def _trim_ghosts(self) -> None:
        while len(self.b1) > self.capacity:
            self.b1.popitem(last=False)
        while len(self.b2) > self.capacity:
            self.b2.popitem(last=False)

    def __contains__(self, key_hash: bytes) -> bool:
        return key_hash in self.t1 or key_hash in self.t2

    def __len__(self) -> int:
        return len(self.t1) + len(self.t2)


def make_policy(name: str, stream: Optional[RandomStream] = None,
                capacity: int = 10000) -> EvictionPolicy:
    """Factory keyed by policy name: 'lru', 'arc', or 'random'."""
    if name == "lru":
        return LruPolicy()
    if name == "arc":
        return ArcPolicy(capacity=capacity)
    if name == "random":
        return RandomPolicy(stream)
    raise ValueError(f"unknown eviction policy {name!r}")
