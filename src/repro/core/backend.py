"""The CliqueMap backend task: memory owner and RPC mutation engine (§4).

The backend owns the index and data regions and exposes them for RMA
reads; *all* mutation happens inside RPC handlers, which gives the server
the familiar programming abstraction for allocation, eviction,
defragmentation, index resizing, and data-region reshaping. Server-side
logic only needs to make retryable conditions transient, detectable, and
rare — client-side validation poisons any racing lookup.

DataEntry writes happen in two steps separated by simulated time (body,
then checksum), so a concurrent RMA read genuinely observes a torn entry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, List, Optional, Tuple

from ..net import Host
from ..rpc import HandlerContext, RpcServer
from ..sim import Resource, Simulator
from ..telemetry import MetricsRegistry
from ..transport import RegistrationCostModel, Transport
from .config import CellConfig
from .data import DataRegion, encode_entry_parts, entry_size, try_decode
from .eviction import make_policy
from .hashing import Placement, primary_for
from .index import IndexRegion, make_scar_program
from .tombstone import TombstoneCache
from .version import VersionNumber


@dataclass
class BackendConfig:
    """Tunables for one backend task."""

    num_buckets: int = 512
    ways: int = 7
    data_initial_bytes: int = 1 << 20          # 1 MiB populated at start
    data_virtual_limit: int = 1 << 28          # 256 MiB reserved virtually
    slab_bytes: int = 256 * 1024               # slab size (max object ~slab)
    grow_watermark: float = 0.80               # grow when used/populated above
    grow_factor: float = 1.5
    index_resize_load_factor: float = 0.85
    index_resize_multiplier: int = 2
    eviction_policy: str = "lru"
    tombstone_capacity: int = 4096
    overflow_rpc_fallback: bool = True
    overflow_capacity: int = 1024
    # Timing of multi-step DataEntry writes: the tear window.
    write_bytes_per_sec: float = 8e9
    min_write_step: float = 0.2e-6
    # Ablation switch: write body+checksum in one indivisible step (no
    # tear window). Unrealistic for RMA-exposed memory; used to show the
    # design's torn-read handling is actually load-bearing.
    atomic_entry_writes: bool = False
    # Handler CPU costs.
    set_cpu: float = 2.0e-6
    lookup_cpu: float = 1.5e-6
    touch_cpu_per_record: float = 0.08e-6
    scan_cpu_per_entry: float = 0.05e-6
    per_kilobyte_cpu: float = 0.10e-6
    # Each extra entry of a batched MultiSet/MultiLookup RPC: the request
    # dispatch is paid once, so additional entries are much cheaper than
    # standalone ops (§7.1 backfill batching).
    multi_entry_cpu: float = 0.5e-6
    old_window_grace: float = 20e-3


@dataclass
class BackendStats:
    """Operation counters (benchmarks and tests read these)."""

    sets_applied: int = 0
    sets_superseded: int = 0
    erases_applied: int = 0
    cas_applied: int = 0
    cas_failed: int = 0
    evictions_capacity: int = 0
    evictions_associativity: int = 0
    overflow_inserts: int = 0
    rpc_lookups: int = 0
    data_region_grows: int = 0
    index_resizes: int = 0
    repairs_applied: int = 0
    defrag_moves: int = 0


class Backend:
    """One backend task serving one shard of the cell."""

    def __init__(self, sim: Simulator, host: Host, task_name: str,
                 shard: int, placement: Placement, cell: CellConfig,
                 config: Optional[BackendConfig] = None,
                 transport: Optional[Transport] = None,
                 registration_cost: Optional[RegistrationCostModel] = None,
                 registry: Optional[MetricsRegistry] = None):
        self.sim = sim
        self.host = host
        self.task_name = task_name
        self.shard = shard
        self.placement = placement
        self.cell = cell
        self.config_id = cell.config_id
        self.config = config or BackendConfig()
        self.transport = transport
        self.registration_cost = registration_cost or RegistrationCostModel()
        self.stats = BackendStats()
        self.metrics = registry if registry is not None else MetricsRegistry()
        self._m_handled = self.metrics.counter(
            "cliquemap_backend_rpcs_total",
            "RPCs handled by backend task and method")
        self._m_up = self.metrics.gauge(
            "cliquemap_backend_up",
            "1 while the backend task is serving, 0 after stop/crash")
        self._m_up.labels(task=task_name).set(1)

        cfg = self.config
        self.index = IndexRegion(cfg.num_buckets, cfg.ways, self.config_id)
        self.data = DataRegion(cfg.data_initial_bytes, cfg.data_virtual_limit,
                               slab_bytes=cfg.slab_bytes)
        self.tombstones = TombstoneCache(cfg.tombstone_capacity)
        self.policy = make_policy(cfg.eviction_policy)
        # key_hash -> (key, value, version) for bucket-overflow spills.
        self.overflow: Dict[bytes, Tuple[bytes, bytes, VersionNumber]] = {}
        # key_hash -> key bytes for every resident entry (repair scans need
        # to hand full keys to peers; DRAM-cheap server-side heap state).
        self._keys: Dict[bytes, bytes] = {}

        self._resizing_index = False
        self._resize_waiters: List = []
        # Per-key mutexes: concurrent mutation handlers for the same key
        # must serialize (server-side mutual exclusion is exactly what the
        # RPC-based mutation path buys, §3).
        self._key_locks: Dict[bytes, Resource] = {}
        self._growing_data = False
        self._grow_waiters: List = []
        self._stopped = False

        self.rpc_server = RpcServer(sim, host, f"cliquemap/{task_name}")
        self._register_handlers()
        self.endpoint = None
        if transport is not None:
            self._expose_rma()

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    def _expose_rma(self) -> None:
        self.endpoint = self.transport.attach(self.host)
        self.endpoint.expose(self.index.window)
        self.endpoint.expose(self.data.active_window)
        if self.transport.supports_scar:
            self.endpoint.install_scar_program(
                make_scar_program(self.config.ways))
        if hasattr(self.transport, "register_message_handler"):
            self.transport.register_message_handler(
                self.host, "cliquemap-lookup", self._message_lookup)

    def _register_handlers(self) -> None:
        server = self.rpc_server
        for method, handler in (
                ("Info", self._handle_info),
                ("Set", self._handle_set),
                ("MultiSet", self._handle_multi_set),
                ("Erase", self._handle_erase),
                ("Cas", self._handle_cas),
                ("Lookup", self._handle_lookup),
                ("MultiLookup", self._handle_multi_lookup),
                ("Touch", self._handle_touch),
                ("ScanSummary", self._handle_scan_summary),
                ("RepairGet", self._handle_repair_get),
                ("MigrateIn", self._handle_migrate_in),
                ("Defragment", self._handle_defragment)):
            server.register(method, self._instrumented(method, handler))

    def _instrumented(self, method: str, handler):
        """Wrap a handler: count it and open a per-method child span."""
        handled = self._m_handled.labels(task=self.task_name, method=method)

        def wrapped(payload, context: HandlerContext) -> Generator:
            handled.inc()
            span = context.span.child(f"handler.{method.lower()}",
                                      task=self.task_name)
            try:
                return (yield from handler(payload, context))
            finally:
                span.finish()

        return wrapped

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def alive(self) -> bool:
        return not self._stopped and self.host.alive

    def stop(self) -> None:
        """Graceful exit (e.g. after migrating to a spare)."""
        self._stopped = True
        self._m_up.labels(task=self.task_name).set(0)
        self.rpc_server.stop()
        if self.endpoint is not None:
            self.endpoint.revoke(self.index.window)
            self.endpoint.revoke(self.data.active_window)

    def crash(self) -> None:
        """Unplanned failure: the whole host goes down."""
        self._stopped = True
        self._m_up.labels(task=self.task_name).set(0)
        self.host.crash()

    def dram_used_bytes(self) -> int:
        """DRAM footprint: index + populated data region (Fig 3)."""
        return self.index.total_bytes + self.data.populated_bytes

    @property
    def resident_keys(self) -> int:
        return self.index.used_entries + len(self.overflow)

    # ------------------------------------------------------------------
    # RPC handlers
    # ------------------------------------------------------------------

    def _handle_info(self, payload, context: HandlerContext) -> Generator:
        """Connection-time metadata: layout, region ids, config generation."""
        yield from self.host.execute(0.5e-6, self._component)
        return {
            "task": self.task_name,
            "shard": self.shard,
            "config_id": self.config_id,
            "index_region_id": self.index.window.region_id,
            "num_buckets": self.index.num_buckets,
            "ways": self.index.ways,
            "bucket_bytes": self.index.bucket_bytes,
            "data_region_id": self.data.region_id,
            "supports_scar": bool(self.transport and
                                  self.transport.supports_scar),
        }

    def _handle_set(self, payload, context: HandlerContext) -> Generator:
        key: bytes = payload["key"]
        value: bytes = payload["value"]
        version = VersionNumber.unpack(payload["version"])
        yield from self._charge_mutation_cpu(len(key) + len(value))
        applied, reason = yield from self._apply_set(key, value, version)
        if applied:
            self.stats.sets_applied += 1
        else:
            self.stats.sets_superseded += 1
        # Replies carry the serving generation so even SET-only clients
        # (which never validate bucket headers) discover config changes.
        return {"applied": applied, "reason": reason,
                "config_id": self.config_id}

    def _handle_multi_set(self, payload,
                          context: HandlerContext) -> Generator:
        """Batched SET: many client-nominated mutations in one RPC (§7.1).

        The per-RPC dispatch CPU (``set_cpu``) is paid once; each extra
        entry costs only ``multi_entry_cpu`` plus payload handling. Every
        entry is applied independently and reported per-entry, so one
        superseded or rejected entry never poisons its batch siblings.
        """
        entries = payload["entries"]
        total_bytes = sum(len(key) + len(value)
                          for key, value, _version in entries)
        yield from self.host.execute(
            self.config.set_cpu +
            self.config.multi_entry_cpu * max(0, len(entries) - 1) +
            total_bytes / 1024.0 * self.config.per_kilobyte_cpu,
            self._component)
        results = []
        for key, value, version_bytes in entries:
            applied, reason = yield from self._apply_set(
                key, value, VersionNumber.unpack(version_bytes))
            if applied:
                self.stats.sets_applied += 1
            else:
                self.stats.sets_superseded += 1
            results.append({"applied": applied, "reason": reason})
        context.response_size_override = 32 + 16 * max(1, len(entries))
        return {"results": results, "config_id": self.config_id}

    def _handle_erase(self, payload, context: HandlerContext) -> Generator:
        key: bytes = payload["key"]
        version = VersionNumber.unpack(payload["version"])
        yield from self._charge_mutation_cpu(len(key))
        yield from self._stall_if_resizing()
        key_hash = self.placement.key_hash(key)
        lock = yield from self._lock_key(key_hash)
        try:
            stored = self._stored_version(key_hash)
            if version <= stored:
                return {"applied": False, "reason": "superseded",
                        "config_id": self.config_id}
            yield from self._remove_entry(key_hash)
            self.tombstones.note_erase(key_hash, version)
            self.stats.erases_applied += 1
            return {"applied": True, "reason": "ok",
                    "config_id": self.config_id}
        finally:
            self._unlock_key(key_hash, lock)

    def _handle_cas(self, payload, context: HandlerContext) -> Generator:
        key: bytes = payload["key"]
        value: bytes = payload["value"]
        new_version = VersionNumber.unpack(payload["new_version"])
        expected = VersionNumber.unpack(payload["expected_version"])
        yield from self._charge_mutation_cpu(len(key) + len(value))
        yield from self._stall_if_resizing()
        key_hash = self.placement.key_hash(key)
        # The expected-version check and the install must be atomic under
        # the key lock: two CAS racing on the same expected version must
        # not both pass the check (that would lose one update).
        lock = yield from self._lock_key(key_hash)
        try:
            stored = self._stored_version(key_hash)
            if stored != expected:
                self.stats.cas_failed += 1
                return {"applied": False, "reason": "version-mismatch",
                        "stored_version": stored.pack(),
                        "config_id": self.config_id}
            applied, reason = yield from self._apply_set_locked(
                key, key_hash, value, new_version)
        finally:
            self._unlock_key(key_hash, lock)
        if applied:
            self.stats.cas_applied += 1
        else:
            self.stats.cas_failed += 1
        return {"applied": applied, "reason": reason,
                "stored_version": stored.pack(),
                "config_id": self.config_id}

    def _handle_lookup(self, payload, context: HandlerContext) -> Generator:
        """Two-sided lookup: RPC fallback, WAN access, overflow hits."""
        key: bytes = payload["key"]
        yield from self.host.execute(self.config.lookup_cpu, self._component)
        self.stats.rpc_lookups += 1
        found = self.lookup_local(key)
        if found is None:
            return {"found": False}
        value, version = found
        context.response_size_override = len(value) + 64
        return {"found": True, "value": value, "version": version.pack()}

    def _handle_multi_lookup(self, payload,
                             context: HandlerContext) -> Generator:
        """Batched two-sided lookup: the RPC-strategy analog of MultiSet."""
        keys: List[bytes] = payload["keys"]
        yield from self.host.execute(
            self.config.lookup_cpu +
            self.config.multi_entry_cpu * max(0, len(keys) - 1),
            self._component)
        self.stats.rpc_lookups += len(keys)
        results = []
        response_bytes = 0
        for key in keys:
            found = self.lookup_local(key)
            if found is None:
                results.append({"found": False})
                continue
            value, version = found
            response_bytes += len(value) + 64
            results.append({"found": True, "value": value,
                            "version": version.pack()})
        context.response_size_override = max(
            32, response_bytes + 16 * len(keys))
        return {"results": results}

    def _handle_touch(self, payload, context: HandlerContext) -> Generator:
        """Ingest batched client access records to drive eviction (§4.2)."""
        records: List[bytes] = payload["key_hashes"]
        yield from self.host.execute(
            self.config.touch_cpu_per_record * max(1, len(records)),
            self._component)
        for key_hash in records:
            self.policy.record_access(key_hash)
        return {"ingested": len(records)}

    def _handle_scan_summary(self, payload, context: HandlerContext
                             ) -> Generator:
        """KeyHash -> version exchange for cohort repair scans (§5.4).

        An optional ``num_shards`` evaluates the primary filter under a
        different modulus than this backend's own placement — resize
        backfill asks old-layout tasks "what do you hold that shard *i*
        of the target layout owns" this way.
        """
        shard_filter = payload.get("primary_shard")
        num_shards = payload.get("num_shards") or self.placement.num_shards
        yield from self.host.execute(
            self.config.scan_cpu_per_entry * max(1, self.resident_keys),
            self._component)
        summary: Dict[bytes, bytes] = {}
        for key_hash, version in self._iter_versions():
            if shard_filter is not None and \
                    primary_for(key_hash, num_shards) != shard_filter:
                continue
            summary[key_hash] = version.pack()
        context.response_size_override = 32 * max(1, len(summary))
        return {"entries": summary}

    def _handle_repair_get(self, payload, context: HandlerContext
                           ) -> Generator:
        """Source a full KV pair for an on-demand repair."""
        key_hash: bytes = payload["key_hash"]
        yield from self.host.execute(self.config.lookup_cpu, self._component)
        key = self._keys.get(key_hash)
        if key is None:
            return {"found": False}
        found = self.lookup_local(key)
        if found is None:
            return {"found": False}
        value, version = found
        context.response_size_override = len(key) + len(value) + 64
        return {"found": True, "key": key, "value": value,
                "version": version.pack()}

    def _handle_migrate_in(self, payload, context: HandlerContext
                           ) -> Generator:
        """Bulk-install entries pushed by a migrating peer or repair."""
        entries = payload["entries"]
        applied = 0
        for key, value, version_bytes in entries:
            ok, _reason = yield from self._apply_set(
                key, value, VersionNumber.unpack(version_bytes))
            if ok:
                applied += 1
        self.stats.repairs_applied += applied
        return {"applied": applied}

    def _message_lookup(self, payload):
        """Two-sided (MSG) lookup handler: woken app thread, local read.

        Returns ``(response_payload, response_bytes)`` for the Pony
        messaging layer (§6.3's MSG strategy in Fig 7)."""
        key = payload["key"]
        found = self.lookup_local(key)
        if found is None:
            return {"found": False}, 32
        value, version = found
        return ({"found": True, "key": key, "value": value,
                 "version": version.pack()}, len(value) + len(key) + 64)

    def _handle_defragment(self, payload, context: HandlerContext
                           ) -> Generator:
        """Compact sparse slabs so they can be repurposed (§4.1).

        Relocating DataEntries is safe because client-side validation
        poisons any lookup that races a move: the old bytes are freed
        (and may be overwritten) only after the IndexEntry repoints.
        """
        threshold = payload.get("occupancy_threshold", 0.5)
        moved = yield from self.defragment(threshold)
        return {"moved": moved,
                "live_slabs": self.data.allocator.live_slab_count}

    def defragment(self, occupancy_threshold: float = 0.5) -> Generator:
        """Relocate entries out of sparse slabs; returns blocks moved."""
        allocator = self.data.allocator
        # Map data offsets back to their index entries.
        entry_at: Dict[int, Tuple[int, int]] = {}
        for bucket, entry in self.index.entries():
            entry_at[entry.offset] = (bucket, entry.way)
        moved = 0
        for slab_start in allocator.sparse_slabs(occupancy_threshold):
            for offset in allocator.blocks_in_slab(slab_start):
                location = entry_at.get(offset)
                if location is None:
                    continue  # mid-mutation or orphaned; skip this pass
                bucket, way = location
                entry = self.index.read_entry(bucket, way)
                if not entry.valid or entry.offset != offset:
                    continue  # the entry moved/was evicted meanwhile
                new_offset = allocator.alloc(entry.size,
                                             exclude_slab=slab_start)
                if new_offset is None:
                    return moved  # no room to compact into
                raw = self.data.read_at(offset, entry.size)
                self.data.write_at(new_offset, raw)
                yield self.sim.timeout(self.config.min_write_step)
                # Repoint, then reclaim: racing 2xR GETs of the old bytes
                # either complete (ordered-before) or fail validation
                # once the block is reused.
                self.index.write_entry(bucket, way, entry.key_hash,
                                       entry.version, self.data.region_id,
                                       new_offset, entry.size)
                self._free_block(offset)
                yield from self.host.execute(1.0e-6, self._component)
                self.stats.defrag_moves += 1
                moved += 1
        return moved

    # ------------------------------------------------------------------
    # Local state machine
    # ------------------------------------------------------------------

    @property
    def _component(self) -> str:
        return f"backend:{self.task_name}"

    def _charge_mutation_cpu(self, payload_bytes: int) -> Generator:
        yield from self.host.execute(
            self.config.set_cpu +
            payload_bytes / 1024.0 * self.config.per_kilobyte_cpu,
            self._component)

    def _stall_if_resizing(self) -> Generator:
        """Mutations stall during an index resize (§4.1)."""
        while self._resizing_index:
            ev = self.sim.event()
            self._resize_waiters.append(ev)
            yield ev

    def _lock_key(self, key_hash: bytes) -> Generator:
        lock = self._key_locks.get(key_hash)
        if lock is None:
            lock = Resource(self.sim, capacity=1)
            self._key_locks[key_hash] = lock
        request = lock.request()
        yield request
        return request

    def _unlock_key(self, key_hash: bytes, request) -> None:
        lock = self._key_locks.get(key_hash)
        if lock is None:
            return
        lock.release(request)
        if lock.count == 0 and lock.queue_len == 0:
            del self._key_locks[key_hash]

    def _stored_version(self, key_hash: bytes) -> VersionNumber:
        """Highest version known for this key: index, overflow, tombstones."""
        best = self.tombstones.version_floor(key_hash)
        bucket = self.index.bucket_for(key_hash)
        way = self.index.find_way(bucket, key_hash)
        if way is not None:
            best = max(best, self.index.read_entry(bucket, way).version)
        spilled = self.overflow.get(key_hash)
        if spilled is not None:
            best = max(best, spilled[2])
        return best

    def lookup_local(self, key: bytes) -> Optional[Tuple[bytes,
                                                         VersionNumber]]:
        """Server-side lookup used by the RPC and MSG paths."""
        key_hash = self.placement.key_hash(key)
        spilled = self.overflow.get(key_hash)
        if spilled is not None and spilled[0] == key:
            return spilled[1], spilled[2]
        bucket = self.index.bucket_for(key_hash)
        way = self.index.find_way(bucket, key_hash)
        if way is None:
            return None
        entry = self.index.read_entry(bucket, way)
        raw = self.data.read_at(entry.offset, entry.size)
        decoded = try_decode(raw)
        if decoded is None or decoded.key != key:
            return None
        return decoded.value, decoded.version

    def _iter_versions(self):
        for _bucket, entry in self.index.entries():
            yield entry.key_hash, entry.version
        for key_hash, (_k, _v, version) in self.overflow.items():
            yield key_hash, version

    # -- SET machinery -----------------------------------------------------

    def _apply_set(self, key: bytes, value: bytes,
                   version: VersionNumber) -> Generator:
        """Install key=value at version; monotonic, tearing-aware."""
        yield from self._stall_if_resizing()
        key_hash = self.placement.key_hash(key)
        lock = yield from self._lock_key(key_hash)
        try:
            return (yield from self._apply_set_locked(key, key_hash, value,
                                                      version))
        finally:
            self._unlock_key(key_hash, lock)

    def _apply_set_locked(self, key: bytes, key_hash: bytes, value: bytes,
                          version: VersionNumber) -> Generator:
        stored = self._stored_version(key_hash)
        if version <= stored:
            return False, "superseded"

        size = entry_size(len(key), len(value))
        bucket = self.index.bucket_for(key_hash)
        way = self.index.find_way(bucket, key_hash)

        if way is not None:
            entry = self.index.read_entry(bucket, way)
            block = self.data.allocator.block_size(entry.offset) \
                if self.data.allocator.is_allocated(entry.offset) else 0
            if block >= size:
                # In-place update: the classic tear window (§5.3, Fig 5).
                yield from self._write_entry_bytes(entry.offset, key, value,
                                                   version, key_hash)
                self.index.write_entry(bucket, way, key_hash, version,
                                       self.data.region_id, entry.offset,
                                       size)
                self._finish_set(key_hash, key)
                return True, "ok"
            # Size changed: allocate fresh, then swap the pointer.
            offset = yield from self._allocate_with_eviction(size, key_hash)
            if offset is None:
                return False, "out-of-memory"
            yield from self._write_entry_bytes(offset, key, value, version,
                                               key_hash)
            old_offset = entry.offset
            self.index.write_entry(bucket, way, key_hash, version,
                                   self.data.region_id, offset, size)
            self._free_block(old_offset)
            self._finish_set(key_hash, key)
            return True, "ok"

        # New key: need a free way and a data block.
        offset = yield from self._allocate_with_eviction(size, key_hash)
        if offset is None:
            return False, "out-of-memory"
        yield from self._write_entry_bytes(offset, key, value, version,
                                           key_hash)
        free_way = self.index.find_free_way(bucket)
        if free_way is None:
            free_way = yield from self._resolve_associativity_conflict(
                bucket, key_hash)
        if free_way is None:
            # Spill to the overflow store behind the bucket's overflow bit.
            self._free_block(offset)
            return self._spill_to_overflow(bucket, key_hash, key, value,
                                           version)
        self.index.write_entry(bucket, free_way, key_hash, version,
                               self.data.region_id, offset, size)
        self.policy.record_insert(key_hash)
        self._finish_set(key_hash, key)
        self._maybe_resize_index()
        return True, "ok"

    def _finish_set(self, key_hash: bytes, key: bytes) -> None:
        self._keys[key_hash] = key
        self.tombstones.forget(key_hash)
        self.overflow.pop(key_hash, None)
        self._maybe_grow_data_region()

    def _write_entry_bytes(self, offset: int, key: bytes, value: bytes,
                           version: VersionNumber,
                           key_hash: bytes) -> Generator:
        """Write body, wait, then checksum — the real tear window."""
        body, checksum = encode_entry_parts(key, value, version, key_hash)
        step = max(self.config.min_write_step,
                   len(body) / self.config.write_bytes_per_sec)
        if self.config.atomic_entry_writes:
            self.data.write_at(offset, body + checksum)
            yield self.sim.timeout(step)
            return
        self.data.write_at(offset, body)
        yield self.sim.timeout(step)
        self.data.write_at(offset + len(body), checksum)

    def _allocate_with_eviction(self, size: int,
                                incoming_hash: bytes) -> Generator:
        """Allocate a data block: grow the region if virtual headroom
        remains (§4.1), evicting only under a true capacity conflict
        (§4.2)."""
        offset = self.data.allocator.alloc(size)
        while offset is None:
            grown = yield from self._await_growth()
            if not grown:
                break
            offset = self.data.allocator.alloc(size)
        if offset is not None:
            return offset
        victims = self.policy.victims()
        for _attempt in range(64):
            victim = next(victims, None)
            if victim is None:
                break
            if victim == incoming_hash:
                continue
            yield from self._remove_entry(victim)
            self.stats.evictions_capacity += 1
            offset = self.data.allocator.alloc(size)
            if offset is not None:
                return offset
        return self.data.allocator.alloc(size)

    def _resolve_associativity_conflict(self, bucket: int,
                                        incoming_hash: bytes) -> Generator:
        """Evict within the bucket to make the new KV RMA-accessible."""
        if self.config.overflow_rpc_fallback and \
                len(self.overflow) < self.config.overflow_capacity:
            return None  # caller spills instead of evicting
        candidates = [self.index.read_entry(bucket, w)
                      for w in range(self.index.ways)]
        candidates = [e for e in candidates if e.valid]
        if not candidates:
            return None
        victim = min(candidates, key=lambda e: e.version)
        yield from self._remove_entry(victim.key_hash)
        self.stats.evictions_associativity += 1
        return self.index.find_free_way(bucket)

    def _spill_to_overflow(self, bucket: int, key_hash: bytes, key: bytes,
                           value: bytes, version: VersionNumber):
        if not self.config.overflow_rpc_fallback or \
                len(self.overflow) >= self.config.overflow_capacity:
            return False, "bucket-full"
        self.overflow[key_hash] = (key, value, version)
        self._keys[key_hash] = key
        self.index.set_overflow(bucket, True)
        self.stats.overflow_inserts += 1
        self.tombstones.forget(key_hash)
        return True, "overflow"

    def _remove_entry(self, key_hash: bytes) -> Generator:
        """Eviction/erase procedure: nullify the IndexEntry, then reclaim.

        The order (pointer first, data second) plus the combined checksum
        means in-flight 2xR GETs either complete (ordered-before) or
        poison themselves (§4.2).
        """
        self.overflow.pop(key_hash, None)
        bucket = self.index.bucket_for(key_hash)
        way = self.index.find_way(bucket, key_hash)
        if way is not None:
            entry = self.index.read_entry(bucket, way)
            self.index.clear_entry(bucket, way)
            yield self.sim.timeout(self.config.min_write_step)
            self._free_block(entry.offset)
            yield from self._maybe_promote_overflow(bucket)
        self.policy.record_remove(key_hash)
        self._keys.pop(key_hash, None)

    def _maybe_promote_overflow(self, bucket: int) -> Generator:
        """Re-install a spilled key into a freed slot of its bucket,
        restoring its RMA-accessibility (the overflow store serves only
        the slower RPC fallback path, §4.2)."""
        for key_hash, (key, value, version) in list(self.overflow.items()):
            if self.index.bucket_for(key_hash) != bucket:
                continue
            way = self.index.find_free_way(bucket)
            if way is None:
                return
            size = entry_size(len(key), len(value))
            offset = self.data.allocator.alloc(size)
            if offset is None:
                return  # capacity-bound; stays in overflow
            yield from self._write_entry_bytes(offset, key, value, version,
                                               key_hash)
            self.index.write_entry(bucket, way, key_hash, version,
                                   self.data.region_id, offset, size)
            self.overflow.pop(key_hash, None)
            self.policy.record_insert(key_hash)
        # Clear the overflow bit once nothing in this bucket is spilled.
        if not any(self.index.bucket_for(kh) == bucket
                   for kh in self.overflow):
            self.index.set_overflow(bucket, False)

    def _free_block(self, offset: int) -> None:
        if self.data.allocator.is_allocated(offset):
            self.data.allocator.free(offset)

    def _await_growth(self) -> Generator:
        """Kick (or join) an in-flight data-region grow; False when the
        arena is already at its virtual limit."""
        if self.data.populated_bytes >= self.data.arena.virtual_limit:
            return False
        if not self._growing_data:
            new_size = min(int(self.data.populated_bytes *
                               self.config.grow_factor),
                           self.data.arena.virtual_limit)
            if new_size <= self.data.populated_bytes:
                return False
            self._growing_data = True
            proc = self.sim.process(self._grow_data_region(new_size),
                                    name=f"{self.task_name}:grow")
            proc.defused = True
        waiter = self.sim.event()
        self._grow_waiters.append(waiter)
        yield waiter
        return True

    # -- reshaping -----------------------------------------------------------

    def _maybe_grow_data_region(self) -> None:
        """High-watermark growth, triggered by RPC work, done async (§4.1)."""
        allocator = self.data.allocator
        if self._growing_data:
            return
        if allocator.utilization_of_populated() < self.config.grow_watermark \
                and allocator.headroom_bytes >= allocator.slab_bytes:
            return
        new_size = min(int(self.data.populated_bytes *
                           self.config.grow_factor),
                       self.data.arena.virtual_limit)
        if new_size <= self.data.populated_bytes:
            return
        self._growing_data = True
        proc = self.sim.process(self._grow_data_region(new_size),
                                name=f"{self.task_name}:grow")
        proc.defused = True

    def _grow_data_region(self, new_size: int) -> Generator:
        grow_bytes = new_size - self.data.populated_bytes
        # Kernel memory management + registration, off the critical path.
        yield self.sim.timeout(
            self.registration_cost.registration_time(grow_bytes))
        if not self.alive:
            self._growing_data = False
            self._fire_grow_waiters()
            return
        new_window = self.data.grow(new_size)
        if self.endpoint is not None:
            self.endpoint.expose(new_window)
        self.stats.data_region_grows += 1
        self._growing_data = False
        self._fire_grow_waiters()
        # Retire the superseded window after a grace period. First rewrite
        # any IndexEntries still naming it so fresh bucket fetches carry
        # pointers into the live window (offsets are arena-absolute, so
        # only the region id changes); clients with stale buckets still
        # converge via their own retry path.
        yield self.sim.timeout(self.config.old_window_grace)
        retired = self.data.retire_oldest_window()
        if retired is not None:
            yield from self._refresh_stale_pointers(retired.region_id)
            if self.endpoint is not None:
                self.endpoint.revoke(retired)

    def _fire_grow_waiters(self) -> None:
        waiters, self._grow_waiters = self._grow_waiters, []
        for waiter in waiters:
            waiter.succeed()

    def _refresh_stale_pointers(self, old_region_id: int) -> Generator:
        """Repoint IndexEntries from a superseded window to the live one."""
        rewritten = 0
        for bucket, entry in list(self.index.entries()):
            if entry.region_id != old_region_id:
                continue
            self.index.write_entry(bucket, entry.way, entry.key_hash,
                                   entry.version, self.data.region_id,
                                   entry.offset, entry.size)
            rewritten += 1
            if rewritten % 64 == 0:
                yield from self.host.execute(2e-6, self._component)
        if rewritten % 64:
            yield from self.host.execute(2e-6, self._component)

    def shrink_data_region_on_restart(self, target_bytes: int) -> None:
        """Downsizing happens via non-disruptive restart (§4.1): rebuild the
        arena at the smaller size. Only valid when the region is empty."""
        if self.data.allocator.used_bytes:
            raise ValueError("shrink requires an empty data region")
        old_window = self.data.active_window
        self.data = DataRegion(target_bytes, self.config.data_virtual_limit,
                               slab_bytes=self.config.slab_bytes)
        if self.endpoint is not None:
            self.endpoint.revoke(old_window)
            self.endpoint.expose(self.data.active_window)

    def _maybe_resize_index(self) -> None:
        if self._resizing_index:
            return
        if self.index.load_factor < self.config.index_resize_load_factor:
            return
        self._resizing_index = True
        proc = self.sim.process(self._resize_index(),
                                name=f"{self.task_name}:index-resize")
        proc.defused = True

    def _resize_index(self) -> Generator:
        """Upsize the index: build, populate, revoke old region (§4.1)."""
        old = self.index
        new = IndexRegion(old.num_buckets *
                          self.config.index_resize_multiplier,
                          old.ways, self.config_id)
        yield self.sim.timeout(
            self.registration_cost.registration_time(new.total_bytes))
        for _bucket, entry in old.entries():
            bucket = new.bucket_for(entry.key_hash)
            way = new.find_free_way(bucket)
            if way is None:
                continue  # extraordinarily unlikely after doubling
            new.write_entry(bucket, way, entry.key_hash, entry.version,
                            entry.region_id, entry.offset, entry.size)
        # Spilled keys stay in the overflow store; their (new) buckets must
        # carry the overflow bit so clients keep trying the RPC fallback.
        for key_hash in self.overflow:
            new.set_overflow(new.bucket_for(key_hash), True)
        self.index = new
        if self.endpoint is not None:
            self.endpoint.revoke(old.window)   # in-flight RMAs now fail
            self.endpoint.expose(new.window)
        self.stats.index_resizes += 1
        self._resizing_index = False
        waiters, self._resize_waiters = self._resize_waiters, []
        for ev in waiters:
            ev.succeed()

    # ------------------------------------------------------------------
    # Migration & maintenance support (§6.1)
    # ------------------------------------------------------------------

    def snapshot_entries(self) -> List[Tuple[bytes, bytes, bytes]]:
        """All resident (key, value, packed-version) tuples."""
        out: List[Tuple[bytes, bytes, bytes]] = []
        for key_hash, key in list(self._keys.items()):
            found = self.lookup_local(key)
            if found is not None:
                value, version = found
                out.append((key, value, version.pack()))
        return out

    def purge_nonresident(self, placement: Placement,
                          shard: int) -> Generator:
        """Drop every entry this task does not own while serving
        ``shard`` under ``placement``; returns the number purged.

        Run after a resize cutover: survivors otherwise keep stale
        copies of key ranges that moved to other cohorts, and those
        copies would never again be repaired or mutated (repair scans
        and client quorums only visit the owning cohort). Purged via the
        standard removal procedure, so racing RMA reads poison
        themselves instead of observing freed bytes.
        """
        owned = set((shard - back) % placement.num_shards
                    for back in range(placement.replication))
        purged = 0
        for key_hash, _version in list(self._iter_versions()):
            if primary_for(key_hash, placement.num_shards) in owned:
                continue
            lock = yield from self._lock_key(key_hash)
            try:
                yield from self._remove_entry(key_hash)
                self.tombstones.forget(key_hash)
            finally:
                self._unlock_key(key_hash, lock)
            purged += 1
            if purged % 64 == 0:
                yield from self.host.execute(2e-6, self._component)
        return purged

    def adopt_config_id(self, config_id: int) -> None:
        """Stamp a new configuration generation into every bucket header,
        which is how clients discover in-flight migrations (§6.1)."""
        self.config_id = config_id
        self.index.set_config_id(config_id)
