"""DataEntries and the data region (Fig 1).

A DataEntry is ``key_len | data_len | version | key | value | checksum``.
The checksum (over key, value, version, key hash) makes every entry
self-validating end-to-end: a client that RMA-reads an entry mid-mutation
sees a checksum mismatch and retries (§3).

Encoding exposes the entry in two parts — body and trailing checksum — so
the backend can write them as *separate steps in simulated time*. The gap
between the two writes is the real tear window; nothing is faked.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Optional, Tuple

from ..transport import Arena, MemoryRegion
from .checksum import CHECKSUM_BYTES, kv_checksum
from .version import VersionNumber

DATA_HEADER = struct.Struct("<II16s")  # key_len, data_len, version
DATA_HEADER_BYTES = DATA_HEADER.size   # 24


def entry_size(key_len: int, value_len: int) -> int:
    return DATA_HEADER_BYTES + key_len + value_len + CHECKSUM_BYTES


def encode_entry_parts(key: bytes, value: bytes, version: VersionNumber,
                       key_hash: bytes) -> Tuple[bytes, bytes]:
    """Return ``(body, checksum)``; the full entry is their concatenation."""
    body = DATA_HEADER.pack(len(key), len(value), version.pack()) + key + value
    check = kv_checksum(key, value, version.pack(), key_hash)
    return body, check


@dataclass(frozen=True)
class DataEntryView:
    """A decoded DataEntry (client- or server-side)."""

    key: bytes
    value: bytes
    version: VersionNumber
    stored_checksum: bytes

    def checksum_ok(self, key_hash: bytes) -> bool:
        return kv_checksum(self.key, self.value, self.version.pack(),
                           key_hash) == self.stored_checksum


def try_decode(raw: bytes) -> Optional[DataEntryView]:
    """Decode raw bytes into a DataEntryView; None if structurally torn.

    Torn reads can corrupt the length fields themselves, so decoding must
    never trust them beyond the buffer it was handed.
    """
    if len(raw) < DATA_HEADER_BYTES + CHECKSUM_BYTES:
        return None
    key_len, value_len, version_raw = DATA_HEADER.unpack_from(raw, 0)
    end = DATA_HEADER_BYTES + key_len + value_len + CHECKSUM_BYTES
    if key_len > len(raw) or value_len > len(raw) or end > len(raw):
        return None
    key = raw[DATA_HEADER_BYTES:DATA_HEADER_BYTES + key_len]
    value = raw[DATA_HEADER_BYTES + key_len:
                DATA_HEADER_BYTES + key_len + value_len]
    checksum = raw[end - CHECKSUM_BYTES:end]
    return DataEntryView(key=key, value=value,
                         version=VersionNumber.unpack(version_raw),
                         stored_checksum=checksum)


class DataRegion:
    """Backend-side data pool: an arena, its allocator, and RMA windows.

    Reshaping (§4.1) keeps the pool virtually contiguous but only
    partially DRAM-backed. Growth creates a new, larger, overlapping
    window under a fresh region id; the old window stays readable until
    revoked, letting clients converge lazily.
    """

    def __init__(self, initial_bytes: int, virtual_limit: int,
                 slab_bytes: int = 64 * 1024,
                 allocator_factory=None):
        from .slab import SlabAllocator
        self.arena = Arena(initial_bytes, virtual_limit)
        factory = allocator_factory or SlabAllocator
        self.allocator = factory(self.arena, slab_bytes=slab_bytes)
        self.active_window = MemoryRegion(self.arena)
        self.old_windows = []

    @property
    def region_id(self) -> int:
        return self.active_window.region_id

    @property
    def populated_bytes(self) -> int:
        return self.arena.populated

    def write_at(self, offset: int, data: bytes) -> None:
        self.arena.write(offset, data)

    def read_at(self, offset: int, size: int) -> bytes:
        return self.arena.read(offset, size)

    def grow(self, new_size: int) -> MemoryRegion:
        """Populate more DRAM and open a new overlapping window."""
        self.arena.grow(new_size)
        self.old_windows.append(self.active_window)
        self.active_window = MemoryRegion(self.arena)
        return self.active_window

    def retire_oldest_window(self) -> Optional[MemoryRegion]:
        """Revoke the oldest superseded window (clients have converged)."""
        if not self.old_windows:
            return None
        window = self.old_windows.pop(0)
        window.revoke()
        return window
