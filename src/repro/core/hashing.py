"""Key hashing and consistent placement.

Every key maps to a 128-bit KeyHash which uniquely identifies (a) the
logical shard (and hence the replica cohort) and (b) the bucket within a
backend's index region (§3). Hash functions are customizable — a minor
feature the paper added for disaggregation use cases (§6.5).
"""

from __future__ import annotations

import hashlib
from typing import Callable, List

KEY_HASH_BYTES = 16

HashFunction = Callable[[bytes], bytes]


def default_key_hash(key: bytes) -> bytes:
    """128-bit keyed blake2b of the key."""
    return hashlib.blake2b(key, digest_size=KEY_HASH_BYTES).digest()


def key_hash_to_int(key_hash: bytes) -> int:
    return int.from_bytes(key_hash, "little")


def primary_for(key_hash: bytes, num_shards: int) -> int:
    """Logical primary shard of a KeyHash under an arbitrary modulus.

    The bucket selector uses the low bits; shard selection uses the
    *high* 64 bits so the two are independent. Exposed module-level so
    resize backfill can evaluate ownership under the *target* layout
    while backends still carry the old placement.
    """
    return int.from_bytes(key_hash[8:], "little") % num_shards


class Placement:
    """Maps KeyHashes to logical shards and replica cohorts.

    For each key the *logical primary* shard is ``hash mod num_shards``;
    with replication R copies live on shards ``i, i+1, .., i+R-1 (mod N)``
    (§5.1). Shards map to physical backend names through the cell
    configuration, which maintenance may repoint at warm spares.
    """

    def __init__(self, num_shards: int, replication: int = 3,
                 hash_function: HashFunction = default_key_hash):
        if num_shards < 1:
            raise ValueError("need at least one shard")
        if replication < 1 or replication > num_shards:
            raise ValueError("replication must be in [1, num_shards]")
        self.num_shards = num_shards
        self.replication = replication
        self.hash_function = hash_function

    def key_hash(self, key: bytes) -> bytes:
        return self.hash_function(key)

    def primary_shard(self, key_hash: bytes) -> int:
        return primary_for(key_hash, self.num_shards)

    def shards_for(self, key_hash: bytes) -> List[int]:
        """All shards holding copies of this key, primary first."""
        primary = self.primary_shard(key_hash)
        return [(primary + i) % self.num_shards
                for i in range(self.replication)]

    def cohort_of(self, shard: int) -> List[int]:
        """Shards whose keys this shard also stores (for repair scans).

        Shard ``s`` holds replicas for primaries ``s, s-1, .., s-R+1``; its
        cohort is every other shard holding any of those key ranges.
        """
        members = set()
        for back in range(self.replication):
            primary = (shard - back) % self.num_shards
            members.update(self.shards_for_primary(primary))
        members.discard(shard)
        return sorted(members)

    def shards_for_primary(self, primary: int) -> List[int]:
        return [(primary + i) % self.num_shards
                for i in range(self.replication)]
