"""Cell assembly: hosts, transport, backends, spares, repair, maintenance.

A :class:`Cell` is a deployed CliqueMap instance: N backend tasks (one per
shard) plus optional warm spares, all wired to a simulated fabric and an
RMA transport, published to the external config store, with repair
scanners and a maintenance controller attached. It is the top-level
object examples and benchmarks build.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..net import Fabric, FabricConfig, Host, HostConfig
from ..rpc import Acl, Principal
from ..sim import Resource, Simulator
from ..telemetry import (NULL_FLIGHT, FlightRecorder, MetricsRegistry,
                         Tracer)
from ..transport import (OneRmaTransport, PonyTransport, RdmaTransport,
                         Transport)
from .backend import Backend, BackendConfig
from .client import ClientConfig, CliqueMapClient
from .errors import CliqueMapError
from .config import (CellConfig, ConfigStore, GetStrategy, ReplicationMode)
from .hashing import Placement
from .maintenance import MaintenanceConfig, MaintenanceController
from .repair import RepairConfig, RepairScanner
from .resize import ResizeConfig, ResizeController


@dataclass
class CellSpec:
    """Everything needed to stand up a cell."""

    name: str = "cell"
    mode: ReplicationMode = ReplicationMode.R3_2
    num_shards: int = 6
    num_spares: int = 0
    transport: str = "pony"               # pony | 1rma | rdma | none
    backend_config: BackendConfig = field(default_factory=BackendConfig)
    repair_config: RepairConfig = field(
        default_factory=lambda: RepairConfig(enabled=False))
    maintenance_config: MaintenanceConfig = field(
        default_factory=MaintenanceConfig)
    resize_config: ResizeConfig = field(default_factory=ResizeConfig)
    fabric_config: FabricConfig = field(default_factory=FabricConfig)
    host_config: HostConfig = field(default_factory=HostConfig)
    config_store_latency: float = 300e-6
    # When set, only these principal names may mutate the corpus (Set /
    # Erase / Cas); reads stay open to any authenticated principal.
    # Internal principals (repair@*, migrate@*, loader) keep working.
    writer_principals: Optional[List[str]] = None
    seed: int = 1
    # Span tracing for every op. Disabling it takes the null-telemetry
    # fast path: zero span objects allocated anywhere on the op path.
    tracing: bool = True
    # Tail-based trace sampling: when set, the tracer retains full span
    # trees only for error/slow ops plus a deterministic 1-in-N of the
    # rest. None keeps every finished root (bounded by the tracer's
    # max_retained).
    trace_sample_every: Optional[int] = None
    trace_slow_threshold: Optional[float] = None
    # Flight recorder: bounded ring of structured events (op ends,
    # retries, quarantine flips, config bumps, resize phases, faults,
    # alerts). Off by default — hook sites hold NULL_FLIGHT and take
    # the same zero-allocation fast path as disabled tracing.
    flight_recorder: bool = False
    flight_capacity: int = 4096


def make_transport(name: str, sim: Simulator, fabric: Fabric,
                   **kwargs) -> Optional[Transport]:
    """Transport factory keyed by the spec's transport name."""
    if name == "pony":
        return PonyTransport(sim, fabric, **kwargs)
    if name == "1rma":
        return OneRmaTransport(sim, fabric, **kwargs)
    if name == "rdma":
        return RdmaTransport(sim, fabric, **kwargs)
    if name in ("none", ""):
        return None
    raise ValueError(f"unknown transport {name!r}")


class Cell:
    """A running CliqueMap cell."""

    def __init__(self, spec: Optional[CellSpec] = None,
                 sim: Optional[Simulator] = None,
                 fabric: Optional[Fabric] = None,
                 transport: Optional[Transport] = None,
                 zone: str = "local"):
        self.spec = spec or CellSpec()
        self.zone = zone
        self.sim = sim or Simulator()
        self.fabric = fabric or Fabric(self.sim, self.spec.fabric_config)
        self.transport = transport if transport is not None else \
            make_transport(self.spec.transport, self.sim, self.fabric)
        self.config_store = ConfigStore(
            self.sim, read_latency=self.spec.config_store_latency)
        self.placement = Placement(self.spec.num_shards,
                                   self.spec.mode.replicas)
        # One registry + tracer for the whole cell: every client created
        # through make_client() records into these, so benchmarks and the
        # dashboard read a single coherent snapshot. The fabric counts
        # drops/corruption/slow-links into the same registry.
        self.metrics = MetricsRegistry()
        self.tracer = Tracer(
            clock=lambda: self.sim.now, enabled=self.spec.tracing,
            seed=self.spec.seed, namespace=f"{self.spec.name}/{zone}",
            tail_sample_every=self.spec.trace_sample_every,
            tail_slow_threshold=self.spec.trace_slow_threshold)
        self.flight = FlightRecorder(
            clock=lambda: self.sim.now,
            capacity=self.spec.flight_capacity) \
            if self.spec.flight_recorder else NULL_FLIGHT
        self.fabric.registry = self.metrics
        if self.transport is not None:
            self.transport.registry = self.metrics

        # Attached lazily by observe(); None keeps the plane (scraper,
        # probers, SLO engine) entirely out of un-observed runs.
        self.observability = None

        # Attached by attach_sor(): the system of record behind this
        # cell and the read-through coordinator wiring clients to it.
        self.sor = None
        self.sor_coordinator = None

        self.backends: Dict[str, Backend] = {}
        self.scanners: Dict[str, RepairScanner] = {}
        self._spare_pool: List[str] = []
        self._client_count = 0
        self._client_seq = 0
        self._clients: List[CliqueMapClient] = []
        # Serializes topology-changing controllers (resize vs planned
        # maintenance); the config store's CAS backstops anyone who
        # bypasses it.
        self.topology_lock = Resource(self.sim, capacity=1)
        self._task_seq = self.spec.num_shards

        shard_tasks = []
        for shard in range(self.spec.num_shards):
            task = f"backend-{shard}"
            self._create_backend(task, shard)
            shard_tasks.append(task)
        for i in range(self.spec.num_spares):
            task = f"spare-{i}"
            self._create_backend(task, shard=-1)
            self._spare_pool.append(task)

        self.cell_config = CellConfig(
            name=self.spec.name, mode=self.spec.mode,
            num_shards=self.spec.num_shards, config_id=1,
            shard_tasks=shard_tasks, spares=list(self._spare_pool))
        self.config_store.publish(self.cell_config)

        self.maintenance = MaintenanceController(
            self.sim, self, self.spec.maintenance_config)
        self.resize = ResizeController(self.sim, self,
                                       self.spec.resize_config)
        if self.spec.repair_config.enabled:
            for task, backend in self.backends.items():
                if backend.shard >= 0:
                    self._start_scanner(task)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    def add_local_host(self, name: str,
                       host_config: Optional[HostConfig] = None,
                       nic_rate: Optional[float] = None) -> Host:
        """Add a fabric host placed in this cell's zone.

        Zone-aware host placement for everything a cell owns (backends,
        loaders, probers, SoR endpoints): when the cell lives in a named
        zone (federation / sharded runs), the host name is prefixed with
        the zone so names stay unique across co-resident cells, and the
        host is placed in that zone so the fabric charges inter-zone
        latency on WAN crossings.
        """
        if self.zone != "local":
            name = f"{self.zone}/{name}"
        return self.fabric.add_host(name, host_config, nic_rate,
                                    zone=self.zone)

    def _create_backend(self, task: str, shard: int,
                        placement: Optional[Placement] = None) -> Backend:
        host = self.add_local_host(f"host/{task}", self.spec.host_config)
        backend = Backend(self.sim, host, task, shard,
                          placement if placement is not None
                          else self.placement,
                          self._cell_config_view(),
                          config=self.spec.backend_config,
                          transport=self.transport, registry=self.metrics)
        if self.spec.writer_principals is not None:
            backend.rpc_server.acl = self._build_writer_acl()
        self.backends[task] = backend
        return backend

    def _build_writer_acl(self) -> Acl:
        acl = Acl()
        for method in ("Set", "MultiSet", "Erase", "Cas"):
            for principal in self.spec.writer_principals:
                acl.allow(method, principal)
        # Internal machinery: repairs, migrations, corpus loaders, and
        # the read-through coordinator's cache fills (sor@<cell>).
        for method in ("Set", "MultiSet", "Erase", "Cas", "MigrateIn"):
            acl.allow_prefix(method, "repair@")
            acl.allow_prefix(method, "migrate@")
            acl.allow_prefix(method, "sor@")
            acl.allow(method, "loader")
        # Reads / metadata / maintenance stay open to any authenticated
        # principal (matching the paper's per-RPC ACL posture).
        for method in ("Info", "Lookup", "MultiLookup", "Touch",
                       "ScanSummary", "RepairGet", "Defragment",
                       "MigrateIn"):
            acl.allow_prefix(method, "")
        return acl

    def _cell_config_view(self) -> CellConfig:
        # Before the store is published (during construction) synthesize
        # a minimal view; afterwards use the live generation.
        if hasattr(self, "cell_config"):
            return self.cell_config
        return CellConfig(name=self.spec.name, mode=self.spec.mode,
                          num_shards=self.spec.num_shards, config_id=1)

    def _start_scanner(self, task: str) -> None:
        scanner = RepairScanner(self.sim, self, self.backends[task],
                                self.spec.repair_config)
        self.scanners[task] = scanner
        scanner.start()

    # ------------------------------------------------------------------
    # Directory / topology
    # ------------------------------------------------------------------

    def backend_by_task(self, task: str) -> Backend:
        return self.backends[task]

    def task_for_shard(self, shard: int) -> str:
        return self.config_store.peek(self.spec.name).task_for_shard(shard)

    def new_task_name(self) -> str:
        """A backend task name never used in this cell (for grow)."""
        while True:
            task = f"backend-{self._task_seq}"
            self._task_seq += 1
            if task not in self.backends:
                return task

    def scanner_for(self, task: str) -> Optional[RepairScanner]:
        return self.scanners.get(task)

    def serving_backends(self) -> List[Backend]:
        config = self.config_store.peek(self.spec.name)
        return [self.backends[t] for t in config.shard_tasks]

    # ------------------------------------------------------------------
    # Reconfiguration (used by the maintenance controller)
    # ------------------------------------------------------------------

    def take_spare(self) -> Optional[str]:
        if not self._spare_pool:
            return None
        return self._spare_pool.pop(0)

    def return_spare(self, task: str) -> None:
        self._spare_pool.append(task)

    def repoint_shard(self, shard: int, task: str, spare_role: bool) -> None:
        """Point a shard at a (possibly spare) task; bump the generation."""

        def mutate(config: CellConfig) -> None:
            config.shard_tasks[shard] = task
            if spare_role:
                config.spare_roles[task] = shard
                if task in config.spares:
                    config.spares.remove(task)
            else:
                config.spare_roles = {t: s
                                      for t, s in config.spare_roles.items()
                                      if s != shard}
                config.spares = [t for t in self._spare_pool]

        updated = self.config_store.update(self.spec.name, mutate)
        self.adopt_config(updated)

    def adopt_config(self, updated: CellConfig) -> None:
        """Install a freshly-published generation cell-wide: backends
        stamp it into bucket headers so clients discover the
        reconfiguration during response validation (§6.1)."""
        self.cell_config = updated
        for backend in self.backends.values():
            if backend.alive:
                backend.adopt_config_id(updated.config_id)

    def restart_backend_task(self, task: str, shard: int) -> Backend:
        """Bring a task back with fresh (empty) state after a restart."""
        old = self.backends[task]
        old.host.restart()
        # Keep the old backend's placement: mid-resize a joining task
        # restarts under the *target* layout, not the cell's.
        backend = Backend(self.sim, old.host, task, shard, old.placement,
                          self.config_store.peek(self.spec.name),
                          config=self.spec.backend_config,
                          transport=self.transport, registry=self.metrics)
        self.backends[task] = backend
        if task in self.scanners or self.spec.repair_config.enabled:
            self._start_scanner(task)
        return backend

    # ------------------------------------------------------------------
    # Elastic resize (delegates to the resize controller)
    # ------------------------------------------------------------------

    def grow(self, count: int = 1):
        """Add ``count`` backend tasks online (a generator — drive it as
        a sim process). Returns the handoff summary dict."""
        return self.resize.grow(count)

    def shrink(self, tasks: Optional[List[str]] = None, count: int = 1):
        """Drain tasks out of the cell online (a generator)."""
        return self.resize.shrink(tasks=tasks, count=count)

    # ------------------------------------------------------------------
    # Clients
    # ------------------------------------------------------------------

    def make_client(self, host: Optional[Host] = None,
                    strategy: Optional[GetStrategy] = None,
                    client_config: Optional[ClientConfig] = None,
                    host_config: Optional[HostConfig] = None,
                    zone: Optional[str] = None,
                    principal: Optional[Principal] = None,
                    read_through: bool = True
                    ) -> CliqueMapClient:
        """Create (but do not connect) a client; drive ``client.connect()``.

        ``strategy`` accepts a :class:`GetStrategy` member or its string
        value (``"2xr"``, ``"scar"``, ``"msg"``, ``"rpc"``); anything else
        raises :class:`~repro.core.errors.CliqueMapError` here rather
        than failing mid-operation. ``zone`` places the client in a
        datacenter; None means this cell's own zone. A client in another
        zone than the cell is a WAN client: RMA is not applicable across
        the WAN, so it defaults to the RPC lookup strategy (Table 1,
        row 5) with WAN-scaled deadlines. ``read_through=False`` opts
        this client out of the attached SoR's miss pipeline (internal
        fill clients use this).
        """
        if strategy is not None:
            strategy = GetStrategy.coerce(strategy)
        if zone is None:
            zone = self.zone
        if host is None:
            self._client_count += 1
            name = f"host/client-{self._client_count}"
            if zone != "local":
                name = f"{zone}/{name}"
            host = self.fabric.add_host(
                name, host_config or self.spec.host_config, zone=zone)
        if zone != self.zone:
            if strategy is None:
                strategy = GetStrategy.RPC
            if client_config is None:
                # WAN-appropriate deadlines: each RPC crosses the
                # inter-zone link twice.
                wan_rtt = 2 * self.fabric.config.inter_zone_delay
                client_config = ClientConfig(
                    default_deadline=max(0.5, 20 * wan_rtt),
                    mutation_rpc_deadline=max(0.2, 10 * wan_rtt),
                    reconnect_interval=max(0.1, 5 * wan_rtt))
        if self.transport is None and strategy is None:
            strategy = GetStrategy.RPC
        # Per-cell client ids (not the process-global fallback counter):
        # ids feed version tiebreaks and backoff-jitter seeds, so two
        # identical runs in one process must hand out identical ids.
        self._client_seq += 1
        client = CliqueMapClient(
            self.sim, self.fabric, host, self.spec.name, self.config_store,
            self.backend_by_task, self.transport, strategy=strategy,
            config=client_config, principal=principal,
            registry=self.metrics, tracer=self.tracer,
            flight=self.flight, client_id=self._client_seq)
        if read_through and self.sor_coordinator is not None:
            client.read_through = self.sor_coordinator
        self._clients.append(client)
        return client

    def connect_client(self, **kwargs) -> CliqueMapClient:
        """Create a client and run its connect() to completion.

        The returned client is a context manager::

            with cell.connect_client() as client:
                ...

        flushes its buffered touch batches and releases its telemetry
        series on exit.
        """
        client = self.make_client(**kwargs)
        self.sim.run(until=self.sim.process(client.connect()))
        return client

    def observe(self, config=None):
        """Attach (and start) the observability plane for this cell.

        Idempotent: the first call builds and starts an
        :class:`~repro.observe.ObservabilityPlane` from ``config`` (an
        :class:`~repro.observe.ObserveConfig`, or None for defaults);
        later calls return the existing plane. Imported lazily so cells
        that never observe pay nothing for the plane.
        """
        if self.observability is None:
            from ..observe import ObservabilityPlane
            self.observability = ObservabilityPlane(self, config).start()
        return self.observability

    def attach_sor(self, sor, policy=None):
        """Attach a system of record behind this cell's miss path.

        ``sor`` must satisfy
        :class:`~repro.storage.SystemOfRecordProtocol`; ``policy`` is a
        :class:`~repro.storage.MissPolicy` (None -> defaults). Builds a
        :class:`~repro.storage.ReadThroughCoordinator` and wires it
        into every existing client and every client made afterwards
        (opt out per client with ``make_client(read_through=False)``).
        Returns the coordinator. Imported lazily so cells without an
        SoR pay nothing for the miss pipeline.
        """
        from ..storage import MissPolicy, SystemOfRecordProtocol
        from ..storage.readthrough import ReadThroughCoordinator
        if self.sor_coordinator is not None:
            raise CliqueMapError(
                "a system of record is already attached to this cell")
        if not isinstance(sor, SystemOfRecordProtocol):
            raise CliqueMapError(
                "attach_sor() needs a SystemOfRecordProtocol (name, "
                f"rpc_server, sealed, load, freeze); got {type(sor)!r}")
        if policy is None:
            policy = MissPolicy()
        existing = list(self._clients)
        coordinator = ReadThroughCoordinator(self, sor, policy)
        self.sor = sor
        self.sor_coordinator = coordinator
        for client in existing:
            client.read_through = coordinator
        if hasattr(sor, "bind_registry") and \
                getattr(sor, "registry", None) is None:
            sor.bind_registry(self.metrics)
        return coordinator

    def close(self) -> None:
        """Close every client created through this cell (idempotent).

        An attached read-through coordinator drains its write-behind
        buffer first, so acknowledged mutations reach the SoR before
        the cell is torn down.
        """
        if self.observability is not None:
            self.observability.stop()
        if self.sor_coordinator is not None:
            self.sor_coordinator.close()
        for client in self._clients:
            client.close()

    def __enter__(self) -> "Cell":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Aggregate stats
    # ------------------------------------------------------------------

    def total_dram_bytes(self) -> int:
        return sum(b.dram_used_bytes() for b in self.backends.values()
                   if b.alive)

    def total_backend_cpu_seconds(self) -> float:
        total = 0.0
        for backend in self.backends.values():
            ledger = backend.host.ledger
            total += ledger.seconds(f"backend:{backend.task_name}")
            total += ledger.seconds(f"rpc-server:{backend.rpc_server.name}")
        return total
