"""Deterministic fault plans and their injector.

A :class:`FaultPlan` is a seeded, inspectable schedule of fault events —
backend crashes, client↔backend partitions/heals, gray failures (loss,
corruption, slow links), and NIC antagonists. A :class:`FaultInjector`
replays a plan against a live :class:`~repro.core.Cell`, delegating
crashes to the cell's :class:`~repro.core.MaintenanceController` and
gray failures to :meth:`~repro.net.Fabric.degrade_host`, counting every
injection into the cell's metrics registry and dropping a marker span
into its tracer.

Because the plan is generated from a :class:`~repro.sim.RandomStream`
and the simulation itself is deterministic, the same seed produces the
same fault schedule *and* the same final metric counts, run after run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, List, Optional, Sequence, Tuple

from ..net import Host, LinkFault
from ..sim import RandomStream

# Kinds drawn by default plan generation. "sor_brownout" is opt-in (it
# needs an attached SoR and would perturb existing seeded plans), as are
# "resize" (drives an online grow/shrink) and "crash_task" (crashes a
# backend by task name — reaches resize joiners that have no shard index
# in the authoritative layout).
DEFAULT_KINDS = ("crash", "partition", "heal", "gray", "antagonist",
                 "nothing")


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault."""

    at: float                 # simulated seconds from injector start
    kind: str     # crash|partition|heal|heal_all|gray|antagonist|sor_brownout
    args: dict = field(default_factory=dict)
    duration: float = 0.0     # for self-clearing faults (gray, antagonist)

    def describe(self) -> str:
        parts = [f"t={self.at:.3f}s", self.kind]
        parts.extend(f"{k}={v:.3g}" if isinstance(v, float) else f"{k}={v}"
                     for k, v in sorted(self.args.items()))
        if self.duration:
            parts.append(f"for={self.duration:.3g}s")
        return " ".join(parts)


class FaultPlan:
    """An ordered schedule of :class:`FaultEvent`."""

    def __init__(self, events: Optional[Sequence[FaultEvent]] = None):
        self._events: List[FaultEvent] = list(events or [])

    def add(self, at: float, kind: str, duration: float = 0.0,
            **args) -> "FaultPlan":
        self._events.append(FaultEvent(at=at, kind=kind, args=dict(args),
                                       duration=duration))
        return self

    @property
    def events(self) -> List[FaultEvent]:
        """Events in firing order (stable for equal times)."""
        return sorted(self._events, key=lambda e: e.at)

    def __len__(self) -> int:
        return len(self._events)

    def schedule_lines(self) -> List[str]:
        return [event.describe() for event in self.events]

    # ------------------------------------------------------------------

    @classmethod
    def generate(cls, stream: RandomStream, duration: float,
                 num_shards: int, num_clients: int = 1,
                 mean_interval: float = 0.15,
                 kinds: Sequence[str] = DEFAULT_KINDS) -> "FaultPlan":
        """Draw a random plan; identical streams yield identical plans.

        ``"nothing"`` entries in ``kinds`` act as pacing: the slot is
        drawn but no event is scheduled. The plan always ends with a
        ``heal_all`` at ``duration`` so the system can converge.
        """
        plan = cls()
        t = 0.0
        while True:
            t += stream.uniform(0.5 * mean_interval, 1.5 * mean_interval)
            if t >= duration:
                break
            kind = stream.choice(list(kinds))
            if kind == "crash":
                plan.add(t, "crash",
                         shard=stream.randint(0, num_shards - 1),
                         restart_delay=stream.uniform(0.05, 0.2))
            elif kind == "partition":
                plan.add(t, "partition",
                         client=stream.randint(0, max(0, num_clients - 1)),
                         shard=stream.randint(0, num_shards - 1))
            elif kind == "heal":
                plan.add(t, "heal")
            elif kind == "gray":
                mode = stream.choice(["loss", "corrupt", "slow"])
                args = {"shard": stream.randint(0, num_shards - 1)}
                if mode == "loss":
                    args["loss_probability"] = stream.uniform(0.05, 0.4)
                elif mode == "corrupt":
                    args["corrupt_probability"] = stream.uniform(0.05, 0.4)
                else:
                    args["latency_multiplier"] = stream.uniform(2.0, 8.0)
                plan.add(t, "gray", duration=stream.uniform(0.1, 0.3),
                         **args)
            elif kind == "antagonist":
                plan.add(t, "antagonist",
                         shard=stream.randint(0, num_shards - 1),
                         fraction=stream.uniform(0.3, 0.9),
                         duration=stream.uniform(0.03, 0.1))
            elif kind == "sor_brownout":
                plan.add(t, "sor_brownout",
                         factor=stream.uniform(0.05, 0.3),
                         duration=stream.uniform(0.1, 0.4))
            elif kind == "nothing":
                continue
            else:
                raise ValueError(f"unknown fault kind {kind!r}")
        plan.add(duration, "heal_all")
        return plan


class FaultInjector:
    """Replays a :class:`FaultPlan` against a live cell.

    ``client_hosts`` are the hosts eligible to be a partition's client
    side (events carry a ``client`` index into this list). Crashes run
    in the background (so a long restart does not delay later events)
    and are skipped when the target backend is already down.
    """

    def __init__(self, cell, plan: FaultPlan,
                 client_hosts: Optional[Sequence[Host]] = None):
        self.cell = cell
        self.sim = cell.sim
        self.plan = plan
        self.client_hosts = list(client_hosts or [])
        self.injected: List[Tuple[float, FaultEvent, str]] = []
        self._partitions: List[Tuple[Host, Host]] = []
        self._antagonists: List = []
        self._m_injected = cell.metrics.counter(
            "cliquemap_faults_injected_total",
            "Fault-plan events by kind and outcome (fired/skipped)")

    # -- lifecycle ----------------------------------------------------------

    def start(self):
        """Run the plan as a background (defused) process."""
        proc = self.sim.process(self.run(), name="fault-injector")
        proc.defused = True
        return proc

    def run(self) -> Generator:
        """Drive the plan to completion, then heal everything."""
        started = self.sim.now
        try:
            for event in self.plan.events:
                delay = started + event.at - self.sim.now
                if delay > 0:
                    yield self.sim.timeout(delay)
                self._apply(event)
        finally:
            self.finish()

    def finish(self) -> None:
        """Heal partitions, clear gray faults, stop antagonists."""
        self.cell.fabric.heal_all()
        self.cell.fabric.clear_faults()
        self._partitions.clear()
        for proc in self._antagonists:
            proc.interrupt()  # no-op if already stopped
        self._antagonists.clear()

    # -- event application ---------------------------------------------------

    def _record(self, event: FaultEvent, outcome: str) -> None:
        self.injected.append((self.sim.now, event, outcome))
        self._m_injected.labels(kind=event.kind, outcome=outcome).inc()
        span = self.cell.tracer.start(f"fault.{event.kind}",
                                      outcome=outcome, **event.args)
        span.finish()
        self.cell.tracer.record(span)
        if self.cell.flight:
            self.cell.flight.record("fault", origin="fault-injector",
                                    fault=event.kind, outcome=outcome,
                                    **event.args)

    def _backend_host(self, shard: int) -> Host:
        task = self.cell.task_for_shard(shard)
        return self.cell.backend_by_task(task).host

    def _apply(self, event: FaultEvent) -> None:
        kind = event.kind
        if kind == "crash":
            shard = event.args["shard"]
            task = self.cell.task_for_shard(shard)
            if not self.cell.backend_by_task(task).alive:
                self._record(event, "skipped")
                return
            proc = self.sim.process(
                self.cell.maintenance.unplanned_crash(
                    shard, restart_delay=event.args.get("restart_delay")),
                name=f"fault-crash:{task}")
            proc.defused = True
        elif kind == "partition":
            if not self.client_hosts:
                self._record(event, "skipped")
                return
            client = self.client_hosts[event.args["client"] %
                                       len(self.client_hosts)]
            backend = self._backend_host(event.args["shard"])
            self.cell.fabric.partition(client, backend)
            self._partitions.append((client, backend))
        elif kind == "heal":
            if not self._partitions:
                self._record(event, "skipped")
                return
            a, b = self._partitions.pop()
            self.cell.fabric.heal(a, b)
        elif kind == "heal_all":
            self.cell.fabric.heal_all()
            self.cell.fabric.clear_faults()
            self._partitions.clear()
            sor = getattr(self.cell, "sor", None)
            if sor is not None and getattr(sor, "browned_out", False):
                sor.restore()
        elif kind == "gray":
            fault = LinkFault(
                loss_probability=event.args.get("loss_probability", 0.0),
                corrupt_probability=event.args.get("corrupt_probability",
                                                   0.0),
                latency_multiplier=event.args.get("latency_multiplier",
                                                  1.0))
            host = self._backend_host(event.args["shard"])
            fabric = self.cell.fabric
            fabric.degrade_host(host, fault)
            if event.duration > 0:
                def clear(host=host, fault=fault):
                    # A later gray on the same host supersedes this one;
                    # only clear the fault this event installed.
                    if fabric.host_fault(host) is fault:
                        fabric.clear_host_fault(host)
                self.sim.call_in(event.duration, clear)
        elif kind == "antagonist":
            host = self._backend_host(event.args["shard"])
            rate = event.args["fraction"] * \
                self.cell.fabric.config.host_rate_bytes_per_sec
            proc = self.cell.fabric.start_antagonist(host, rate)
            self._antagonists.append(proc)
            if event.duration > 0:
                self.sim.call_in(event.duration, proc.interrupt)
        elif kind == "sor_brownout":
            # Degrade the attached system of record's provisioned
            # capacity (self-restoring after event.duration).
            sor = getattr(self.cell, "sor", None)
            if sor is None:
                self._record(event, "skipped")
                return
            sor.brownout(event.args.get("factor", 0.1),
                         duration=event.duration)
        elif kind == "resize":
            # Online grow/shrink under whatever else the plan is doing.
            # Skipped (and recorded as such) while another topology
            # change is in flight, or when a shrink would take the cell
            # below its replication factor.
            action = event.args.get("action", "grow")
            count = event.args.get("count", 1)
            if self.cell.resize.active or self.cell.topology_lock.count:
                self._record(event, "skipped")
                return
            current = self.cell.config_store.peek(self.cell.spec.name)
            if action == "shrink" and \
                    len(current.shard_tasks) - count < \
                    current.mode.replicas:
                self._record(event, "skipped")
                return
            gen = self.cell.grow(count) if action == "grow" \
                else self.cell.shrink(count=count)
            proc = self.sim.process(gen, name=f"fault-resize:{action}")
            proc.defused = True
        elif kind == "crash_task":
            # Crash a backend by task name: reaches tasks with no shard
            # index in the authoritative layout (resize joiners).
            task = event.args["task"]
            backend = self.cell.backends.get(task)
            if backend is None or not backend.alive:
                self._record(event, "skipped")
                return
            proc = self.sim.process(
                self.cell.maintenance.unplanned_crash_task(
                    task, restart_delay=event.args.get("restart_delay")),
                name=f"fault-crash:{task}")
            proc.defused = True
        else:
            raise ValueError(f"unknown fault kind {kind!r}")
        self._record(event, "fired")
