"""A seeded chaos soak: plan faults, churn load, verify invariants.

``run_soak`` stands up a cell, generates a :class:`FaultPlan` from the
seed, and replays it through a :class:`FaultInjector` while writers and
a reader churn. It checks the two properties every CliqueMap mechanism
exists to protect:

1. a HIT never returns a value that was not written to that key;
2. after the faults heal and repairs settle, every key reads back as
   its last acknowledged write (or a concurrently-written value).

The report carries the plan, the violations (hopefully empty), and the
cell's final metrics snapshot, so a chaos run's whole story — injections
fired, retries spent and shed, quarantines entered, corrupt deliveries
caught — is printable from one object. Used by
``python -m repro.tools chaos`` and rebased chaos tests alike.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core import (BackendConfig, Cell, CellSpec, ClientConfig,
                    CliqueMapError, GetStatus, GetStrategy,
                    MaintenanceConfig, RepairConfig, ReplicationMode,
                    ResizeConfig, SetStatus)
from ..sim import RandomStream
from .plan import DEFAULT_KINDS, FaultInjector, FaultPlan

#: Resize chaos scenarios accepted by ``SoakConfig.resize`` (and the
#: ``chaos --resize`` / ``observe --fault resize`` CLIs). Each schedules
#: a grow+shrink cycle; all but "cycle" land an antagonist fault on it.
RESIZE_SCENARIOS = ("cycle", "partition", "gray", "target_crash",
                    "pressure")

# Metric families summarized in SoakReport.reaction_rows(); the soak's
# reaction story in one table.
_REACTION_FAMILIES = (
    "cliquemap_faults_injected_total",
    "cliquemap_fabric_dropped_total",
    "cliquemap_fabric_corrupted_total",
    "cliquemap_fabric_slowed_total",
    "cliquemap_retries_total",
    "cliquemap_retries_shed_total",
    "cliquemap_loadgen_shed_total",
    "cliquemap_backend_quarantine_total",
    "cliquemap_maintenance_events_total",
    # Miss-pipeline families (0 when no SoR is attached).
    "cliquemap_sor_fetches_total",
    "cliquemap_sor_writebacks_total",
    "cliquemap_sor_requests_total",
    # Elastic-cell families (0 when no resize ran).
    "cliquemap_resize_events_total",
    "cliquemap_resize_backfill_entries_total",
    "cliquemap_shadow_writes_total",
    "cliquemap_migration_rpc_errors_total",
    "cliquemap_repair_rpc_errors_total",
    "cliquemap_autoscaler_decisions_total",
)


def resize_plan(scenario: str, duration: float,
                num_shards: int) -> FaultPlan:
    """Handcrafted plan for one resize chaos scenario.

    Every scenario grows the cell by one task at 25% of the window and
    shrinks back at 65%; the antagonist fault (when the scenario has
    one) lands just after the grow starts, so it hits mid-handoff.
    ``"pressure"``'s antagonist is not a plan event — it is the
    eviction-pressure writer :func:`run_soak` runs alongside.
    """
    if scenario not in RESIZE_SCENARIOS:
        raise CliqueMapError(
            f"unknown resize scenario {scenario!r}; choose from "
            f"{', '.join(RESIZE_SCENARIOS)}")
    plan = FaultPlan()
    grow_at = 0.25 * duration
    plan.add(grow_at, "resize", action="grow", count=1)
    plan.add(0.65 * duration, "resize", action="shrink", count=1)
    if scenario == "partition":
        # Cut client_hosts[3] off from quorum-many backends (2 of R=3)
        # across the heart of the handoff. Under ``observe`` that index
        # is the first prober (writers, reader, then probers), so the
        # availability burn alert fires and resolves; without the plane
        # it wraps around to a writer, whose SETs must ride retries.
        plan.add(grow_at + 0.01 * duration, "partition", client=3, shard=0)
        plan.add(grow_at + 0.01 * duration, "partition", client=3, shard=1)
        plan.add(grow_at + 0.25 * duration, "heal")
        plan.add(grow_at + 0.25 * duration, "heal")
    elif scenario == "gray":
        plan.add(grow_at + 0.01 * duration, "gray",
                 duration=0.2 * duration, shard=1, loss_probability=0.25)
    elif scenario == "target_crash":
        # The first joiner a grow creates on a fresh cell is
        # deterministically named backend-<num_shards>.
        plan.add(grow_at + 0.005 * duration, "crash_task",
                 task=f"backend-{num_shards}",
                 restart_delay=0.02 * duration)
    plan.add(duration, "heal_all")
    return plan


@dataclass
class SoakConfig:
    """Everything a reproducible soak needs."""

    seed: int = 1
    duration: float = 2.0          # fault-injection window (simulated s)
    settle: float = 2.0            # post-heal repair/convergence window
    num_shards: int = 3
    num_keys: int = 12
    num_writers: int = 2
    transport: str = "pony"
    mean_fault_interval: float = 0.15
    kinds: Tuple[str, ...] = DEFAULT_KINDS
    repair_scan_interval: float = 0.25
    reader_config: ClientConfig = field(default_factory=lambda: ClientConfig(
        max_retries=6, default_deadline=5e-3))
    # Attach the observability plane (scraper + probers + SLO burn-rate
    # alerting) for the soak's duration; alerts and SLIs land in the
    # report. ``observe_config`` is an
    # :class:`~repro.observe.ObserveConfig` (None -> defaults).
    observe: bool = False
    observe_config: Optional[object] = None
    # Replay this exact plan instead of generating one from the seed.
    # Partition events index ``client_hosts`` as workload clients first
    # (writers then reader), then prober hosts — so with the default 2
    # writers, ``client=3`` partitions the first prober.
    plan: Optional[FaultPlan] = None
    # With observe: write timeseries.json + trace.json into this
    # directory before the plane stops (used by the observe CLI and CI).
    # When a run ends badly — an invariant violation or a fired SLO
    # alert — a postmortem bundle also lands here (healthy runs write
    # no bundle; see repro.observe.postmortem).
    export_dir: Optional[str] = None
    # Arm the cell's flight recorder (bounded structured event ring:
    # op outcomes, retries, quarantines, config bumps, resize phases,
    # fault injections, alert transitions). Off by default — recording
    # is cheap but not free, and default soaks stay byte-identical.
    flight: bool = False
    flight_capacity: int = 4096
    # System-of-record miss pipeline (all opt-in; defaults leave the
    # soak byte-identical to pre-PR-6 runs). With ``sor=True`` the soak
    # attaches a provisioned-throughput SoR pre-loaded with
    # ``sor_cold_keys`` cold keys, and a dedicated reader exercises the
    # read-through path on them throughout the run. ``sor_backfill``
    # adds a warming storm (admission-controlled backfill sweeps over
    # the cold keyspace) — the herd scenario's background pressure.
    sor: bool = False
    sor_policy: Optional[object] = None          # MissPolicy
    sor_throughput: Optional[object] = None      # ProvisionedThroughput
    sor_cold_keys: int = 64
    sor_backfill: bool = False
    # Resize chaos (opt-in; defaults leave existing seeded soaks
    # untouched). ``resize`` names a scenario from RESIZE_SCENARIOS and
    # replaces the generated plan with :func:`resize_plan` (unless an
    # explicit ``plan`` is given). ``resize_config`` shapes the handoff;
    # ``backend_config`` reaches the cell spec (the "pressure" scenario
    # shrinks ``data_virtual_limit`` through it so eviction churns
    # during the handoff). The pressure writer hammers a disjoint
    # ``pressure-%05d`` keyspace with padded values.
    resize: Optional[str] = None
    resize_config: Optional[ResizeConfig] = None
    backend_config: Optional[BackendConfig] = None
    pressure_keys: int = 128
    pressure_value_bytes: int = 512
    # Aggregate client population (opt-in; 0 leaves existing seeded
    # soaks byte-identical). ``population`` models that many clients
    # issuing zipf GETs over the chaos keyspace via Poisson
    # superposition on ``population_drivers`` real driver clients
    # (see repro.workloads.population); offered/shed/thinned accounting
    # lands in the report's population_stats.
    population: int = 0
    population_rate: float = 40.0        # offered GETs/s per modeled client
    population_drivers: int = 2
    population_sample_rate: float = 1.0


@dataclass
class SoakReport:
    """Outcome of one soak run."""

    config: SoakConfig
    plan_lines: List[str]
    injected: List[str]                  # events as applied (with outcome)
    bad_hits: List[Tuple[int, bytes]]    # HITs of never-written values
    unrecovered: List[Tuple[int, object, Optional[bytes]]]
    diverged: List[int]                  # keys where replicas disagree
    metric_totals: Dict[str, float]      # family -> total across series
    snapshot: dict                       # full registry snapshot
    # Populated when the soak ran with config.observe: fired/resolved
    # alert transitions (dicts, sim-timestamped), the SLI summary, the
    # scraped time series, and any files written to export_dir.
    alerts: List[dict] = field(default_factory=list)
    sli: Optional[dict] = None
    timeseries: Optional[dict] = None
    exports: List[str] = field(default_factory=list)
    # Path of the postmortem bundle written into export_dir, or None
    # when the run was healthy (or no export_dir was configured).
    bundle: Optional[str] = None
    # Populated when the soak ran with config.sor: the coordinator's
    # stat counters, SoR-side totals, and the cold-keyspace read tally.
    sor_stats: Optional[dict] = None
    # Foreground-impact accounting, always populated: terminal SET
    # failures seen by the writers (and the pressure writer, when one
    # ran), plus the reader's terminal errors and inquorate retries —
    # the counters a fault-free resize must keep at zero.
    foreground: Optional[dict] = None
    # Populated when config.resize named a scenario: the resize
    # controller's counters plus the dual-write/backfill metric totals.
    resize_stats: Optional[dict] = None
    # Populated when config.population > 0: the aggregate population's
    # offered/delivered/shed/thinned accounting and hit rate.
    population_stats: Optional[dict] = None

    @property
    def ok(self) -> bool:
        return not self.bad_hits and not self.unrecovered \
            and not self.diverged

    def fault_rows(self) -> List[List[str]]:
        return [[line] for line in self.injected]

    def reaction_rows(self) -> List[List[str]]:
        return [[family, f"{total:g}"]
                for family, total in self.metric_totals.items()]

    def alert_rows(self) -> List[List[str]]:
        return [[f"t={a['at']:.3f}s", a["kind"],
                 f"{a['cell']}/{a['objective']}", a["severity"],
                 f"burn={a['burn_long']:.1f}/{a['burn_short']:.1f}"]
                for a in self.alerts]


def _registry_totals(registry) -> Dict[str, float]:
    totals = {}
    for family in _REACTION_FAMILIES:
        totals[family] = registry.total(family)
    return totals


def run_soak(config: Optional[SoakConfig] = None) -> SoakReport:
    """Run one seeded chaos soak to completion and report."""
    config = config or SoakConfig()
    cell = Cell(CellSpec(
        mode=ReplicationMode.R3_2, num_shards=config.num_shards,
        transport=config.transport,
        backend_config=config.backend_config or BackendConfig(),
        repair_config=RepairConfig(
            enabled=True, scan_interval=config.repair_scan_interval),
        maintenance_config=MaintenanceConfig(),
        resize_config=config.resize_config or ResizeConfig(),
        flight_recorder=config.flight,
        flight_capacity=config.flight_capacity))
    sim = cell.sim
    sor = None
    coordinator = None
    if config.sor:
        from ..storage import (MissPolicy, ProvisionedThroughput,
                               SystemOfRecord)
        sor_host = cell.add_local_host("host/sor")
        sor = SystemOfRecord(
            sim, sor_host,
            throughput=config.sor_throughput or ProvisionedThroughput(
                read_units=400.0, write_units=400.0))
        sor.load({b"cold-%05d" % i: b"sor-%05d" % i
                  for i in range(config.sor_cold_keys)})
        coordinator = cell.attach_sor(sor, config.sor_policy or MissPolicy())
    plane = cell.observe(config.observe_config) if config.observe else None
    writers = [cell.connect_client() for _ in range(config.num_writers)]
    reader = cell.connect_client(strategy=GetStrategy.TWO_R,
                                 client_config=config.reader_config)
    clients = writers + [reader]
    stream = RandomStream(config.seed, "chaos")

    keys = config.num_keys
    written = {i: set() for i in range(keys)}   # all values ever written
    last_applied: Dict[int, bytes] = {}          # key -> last acked value
    bad_hits: List[Tuple[int, bytes]] = []
    foreground = {"writer_set_failures": 0, "pressure_set_failures": 0,
                  "reader_errors": 0, "reader_inquorate": 0}
    done = [False]

    def key_name(i):
        return b"chaos-key-%d" % i

    def seed_corpus():
        for i in range(keys):
            value = b"init-%d" % i
            result = yield from writers[0].set(key_name(i), value)
            assert result.status is SetStatus.APPLIED
            written[i].add(value)
            last_applied[i] = value

    sim.run(until=sim.process(seed_corpus()))

    def writer_loop(client, tag, rand):
        generation = 0
        # Each writer owns a disjoint slice of the keyspace so "last
        # acknowledged write" is unambiguous.
        own = [i for i in range(keys) if i % len(writers) == tag]
        while not done[0]:
            i = own[rand.randint(0, len(own) - 1)]
            generation += 1
            value = b"w%d-g%d" % (tag, generation)
            written[i].add(value)
            result = yield from client.set(key_name(i), value)
            if result.status is SetStatus.APPLIED:
                last_applied[i] = value
            else:
                foreground["writer_set_failures"] += 1
            yield sim.timeout(rand.uniform(1e-3, 5e-3))

    def reader_loop(rand):
        while not done[0]:
            i = rand.randint(0, keys - 1)
            result = yield from reader.get(key_name(i))
            if result.status is GetStatus.HIT and \
                    result.value not in written[i] and \
                    result.source == "cache":
                bad_hits.append((i, result.value))
            yield sim.timeout(rand.uniform(0.5e-3, 2e-3))

    # Cold-keyspace churn (config.sor): reads that MISS the cache and
    # resolve through the coordinator, so the soak exercises the miss
    # pipeline while faults fire. A HIT with a value that is neither
    # the SoR's nor a later write-behind overwrite is a real bug.
    sor_counts = {"hits": 0, "misses": 0, "errors": 0, "bad_hits": 0}

    def cold_reader_loop(rand):
        while not done[0]:
            i = rand.randint(0, config.sor_cold_keys - 1)
            result = yield from reader.get(b"cold-%05d" % i)
            if result.status is GetStatus.HIT:
                sor_counts["hits"] += 1
                if result.value != b"sor-%05d" % i:
                    sor_counts["bad_hits"] += 1
            elif result.ok:
                sor_counts["misses"] += 1
            else:
                sor_counts["errors"] += 1
            yield sim.timeout(rand.uniform(1e-3, 4e-3))

    # Eviction pressure (config.resize == "pressure"): a dedicated
    # writer hammers a disjoint padded keyspace so the cache churns
    # evictions while the handoff copies entries. Pair with a small
    # ``backend_config.data_virtual_limit`` to actually hit the limit.
    pressure_client = cell.connect_client() \
        if config.resize == "pressure" else None
    pressure_counts = {"writes": 0, "failed": 0}

    def pressure_loop(rand):
        pad = b"p" * config.pressure_value_bytes
        generation = 0
        while not done[0]:
            i = rand.randint(0, config.pressure_keys - 1)
            generation += 1
            result = yield from pressure_client.set(
                b"pressure-%05d" % i, pad + b"-%d" % generation)
            pressure_counts["writes"] += 1
            if result.status is not SetStatus.APPLIED:
                pressure_counts["failed"] += 1
                foreground["pressure_set_failures"] += 1
            yield sim.timeout(rand.uniform(0.5e-3, 2e-3))

    def backfill_loop():
        # A warming storm: sweep the whole cold keyspace through the
        # backfill class over and over. Admission control is what keeps
        # this from consuming the SoR's provisioned capacity.
        cold = [b"cold-%05d" % i for i in range(config.sor_cold_keys)]
        while not done[0]:
            yield from coordinator.warm(cold, concurrency=8)
            yield sim.timeout(0.02)

    plan = config.plan
    if plan is None and config.resize is not None:
        plan = resize_plan(config.resize, config.duration,
                           config.num_shards)
    if plan is None:
        plan = FaultPlan.generate(
            stream.child("plan"), duration=config.duration,
            num_shards=config.num_shards, num_clients=len(clients),
            mean_interval=config.mean_fault_interval, kinds=config.kinds)
    # Workload clients first (generated plans only index those), then
    # prober hosts so handcrafted plans can partition a prober, then the
    # pressure writer (keeping prober indices stable across scenarios).
    fault_targets = [c.host for c in clients]
    if plane is not None:
        fault_targets.extend(p.client.host for p in plane.probers)
    if pressure_client is not None:
        fault_targets.append(pressure_client.host)

    # Aggregate client population (config.population): N modeled
    # clients' zipf GET traffic over the chaos keyspace, superposed onto
    # a small driver pool. Reads only — the invariant checkers above
    # stay the sole writers/arbiters. Set up *after* the plan is drawn
    # (stream.child consumes parent state) so enabling a population
    # never changes the seeded fault schedule; its driver hosts go last
    # in fault_targets so handcrafted plans keep their prober/pressure
    # indices while large populations still take partition faults
    # through their (few) drivers.
    population_gen = None
    if config.population > 0:
        from ..workloads import KeySpace, LoadGenerator, WorkloadMetrics
        pop_drivers = [cell.connect_client() for _ in range(
            max(1, min(config.population_drivers, config.population)))]
        pop_keyspace = KeySpace(stream.child("population-keys"), keys,
                                prefix=b"chaos-key")
        population_gen = LoadGenerator(
            sim, pop_drivers, pop_keyspace,
            stream.child("population-load"), WorkloadMetrics())
        fault_targets.extend(c.host for c in pop_drivers)
    injector = FaultInjector(cell, plan, client_hosts=fault_targets)

    procs = [
        sim.process(writer_loop(writers[tag], tag,
                                stream.child(f"w{tag}")))
        for tag in range(len(writers))
    ]
    procs.append(sim.process(reader_loop(stream.child("r"))))
    if pressure_client is not None:
        procs.append(sim.process(pressure_loop(stream.child("pressure"))))
    if config.sor:
        procs.append(sim.process(cold_reader_loop(stream.child("cold"))))
        if config.sor_backfill:
            procs.append(sim.process(backfill_loop()))
    if population_gen is not None:
        procs.extend(population_gen.start_population_gets(
            config.population, config.population_rate, config.duration,
            op_sample_rate=config.population_sample_rate))
    chaos = sim.process(injector.run())
    sim.run(until=chaos)
    done[0] = True
    sim.run(until=sim.all_of(procs))
    # Snapshot the reader's terminal counters before the settle-phase
    # verification sweep adds its own (healed-network) reads.
    foreground["reader_errors"] = reader.stats["get_errors"]
    foreground["reader_inquorate"] = reader.stats["inquorate"]

    # Let repairs settle, then verify full recovery.
    sim.run(until=sim.now + config.settle)

    # Under genuine eviction pressure a MISS is legitimate cache
    # behavior, not a lost write — the full-recovery invariant only
    # demands a HIT when nothing was ever evicted for capacity.
    evicted = sum(b.stats.evictions_capacity + b.stats.evictions_associativity
                  for b in cell.backends.values())

    def verify():
        mismatches = []
        for i in range(keys):
            result = yield from reader.get(key_name(i), deadline=0.5)
            if result.status is not GetStatus.HIT:
                if not (result.status is GetStatus.MISS and evicted):
                    mismatches.append((i, result.status, None))
            elif result.value != last_applied[i] and \
                    result.value not in written[i]:
                mismatches.append((i, result.status, result.value))
        return mismatches

    unrecovered = sim.run(until=sim.process(verify()))

    diverged = []
    for i in range(keys):
        values = {b.lookup_local(key_name(i))[0]
                  for b in cell.serving_backends()
                  if b.alive and b.lookup_local(key_name(i)) is not None}
        if len(values) > 1:
            diverged.append(i)

    exports: List[str] = []
    if plane is not None and config.export_dir:
        os.makedirs(config.export_dir, exist_ok=True)
        ts_path = os.path.join(config.export_dir, "timeseries.json")
        tr_path = os.path.join(config.export_dir, "trace.json")
        plane.write_timeseries(ts_path)
        plane.write_trace(tr_path)
        exports = [ts_path, tr_path]

    # Postmortem: a run that ended badly freezes its debugging state to
    # export_dir before anything is torn down. Healthy runs write no
    # bundle — CI's smoke job asserts on both halves of that contract.
    bundle = None
    violated = bool(bad_hits or unrecovered or diverged)
    fired = plane.engine.fired() if plane is not None else []
    if config.export_dir and (violated or fired):
        from ..observe.postmortem import write_postmortem_bundle
        reason = "invariant-violation" if violated else "slo-alert"
        bundle = write_postmortem_bundle(
            config.export_dir, reason, cell=cell, plane=plane,
            detail={
                "bad_hits": len(bad_hits),
                "unrecovered": len(unrecovered),
                "diverged": len(diverged),
                "alerts_fired": len(fired),
                "injected": [f"t={at:.3f}s {event.kind} [{outcome}]"
                             for at, event, outcome in injector.injected],
            })
        exports.append(bundle)
    if plane is not None:
        plane.stop()

    return SoakReport(
        config=config,
        plan_lines=plan.schedule_lines(),
        injected=[f"t={at:.3f}s {event.kind} [{outcome}] " +
                  " ".join(f"{k}={v:.3g}" if isinstance(v, float)
                           else f"{k}={v}"
                           for k, v in sorted(event.args.items()))
                  for at, event, outcome in injector.injected],
        bad_hits=bad_hits,
        unrecovered=unrecovered,
        diverged=diverged,
        metric_totals=_registry_totals(cell.metrics),
        snapshot=cell.metrics.snapshot(),
        alerts=[e.to_dict() for e in plane.engine.events]
        if plane is not None else [],
        sli=plane.sli_summary() if plane is not None else None,
        timeseries=plane.scraper.to_dict() if plane is not None else None,
        exports=exports,
        bundle=bundle,
        foreground=dict(foreground),
        resize_stats=None if config.resize is None else {
            "controller": vars(cell.resize.stats).copy(),
            "resize_events": cell.metrics.total(
                "cliquemap_resize_events_total"),
            "backfill_entries": cell.metrics.total(
                "cliquemap_resize_backfill_entries_total"),
            "shadow_writes": cell.metrics.total(
                "cliquemap_shadow_writes_total"),
            "migration_rpc_errors": cell.metrics.total(
                "cliquemap_migration_rpc_errors_total"),
            "pressure": dict(pressure_counts)
            if pressure_client is not None else None,
        },
        population_stats=None if population_gen is None else {
            "modeled_clients": config.population,
            "drivers": len(population_gen.clients),
            "rate_per_client": config.population_rate,
            "op_sample_rate": config.population_sample_rate,
            "offered": population_gen.metrics.offered,
            "shed": population_gen.metrics.shed,
            "thinned": population_gen.metrics.thinned,
            "delivered": population_gen.metrics.gets,
            "hits": population_gen.metrics.hits,
            "hit_rate": population_gen.metrics.hit_rate,
            "errors": population_gen.metrics.get_errors,
            "shed_rate": population_gen.metrics.shed_rate,
        },
        sor_stats=None if coordinator is None else {
            "coordinator": dict(coordinator.stats),
            "coalescing_ratio": coordinator.coalescing_ratio(),
            "dirty_depth": coordinator.dirty_depth,
            "backfill_shed": coordinator.backfill_budget.shed,
            "sor_reads": sor.reads,
            "sor_writes": sor.writes,
            "sor_throttled": sor.throttled,
            "cold_reads": dict(sor_counts),
        })
