"""First-class fault injection: plans, injectors, and chaos soaks."""

from .plan import DEFAULT_KINDS, FaultEvent, FaultInjector, FaultPlan
from .soak import (RESIZE_SCENARIOS, SoakConfig, SoakReport, resize_plan,
                   run_soak)

__all__ = [
    "DEFAULT_KINDS", "FaultEvent", "FaultInjector", "FaultPlan",
    "RESIZE_SCENARIOS", "SoakConfig", "SoakReport", "resize_plan",
    "run_soak",
]
