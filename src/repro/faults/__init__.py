"""First-class fault injection: plans, injectors, and chaos soaks."""

from .plan import DEFAULT_KINDS, FaultEvent, FaultInjector, FaultPlan
from .soak import SoakConfig, SoakReport, run_soak

__all__ = [
    "DEFAULT_KINDS", "FaultEvent", "FaultInjector", "FaultPlan",
    "SoakConfig", "SoakReport", "run_soak",
]
