"""Simulated hosts: CPU core pools, per-component CPU accounting, C-states.

A :class:`Host` owns a pool of cores. Any component that burns CPU (RPC
framework, CliqueMap client/backend code, Pony Express engines, language
shims) does so by yielding from :meth:`Host.execute`, which charges the
cost to a named component in the host's :class:`CpuLedger`. The ledger is
what the CPU-efficiency figures (Fig 6b, Fig 7, Fig 19) read out.

The C-state model reproduces the power-saving effect the paper observes in
the 1RMA ramp (Fig 16/17): after a host has been idle longer than
``idle_threshold``, the next execution pays ``wakeup_latency`` before doing
useful work, so the *lowest* offered load sees the *highest* latency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, Optional

from ..sim import Resource, Simulator


@dataclass
class CStateModel:
    """Idle-state wake-up penalty model."""

    enabled: bool = False
    idle_threshold: float = 200e-6   # idle longer than this enters deep C-state
    wakeup_latency: float = 40e-6    # cost to exit the deep C-state


class CpuLedger:
    """Accumulates CPU-seconds per named component."""

    def __init__(self):
        self._seconds: Dict[str, float] = {}

    def charge(self, component: str, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("cannot charge negative CPU time")
        self._seconds[component] = self._seconds.get(component, 0.0) + seconds

    def seconds(self, component: str) -> float:
        return self._seconds.get(component, 0.0)

    def total(self) -> float:
        return sum(self._seconds.values())

    def snapshot(self) -> Dict[str, float]:
        return dict(self._seconds)

    def components(self):
        return sorted(self._seconds)


@dataclass
class HostConfig:
    """Static host parameters."""

    cores: int = 8
    c_state: CStateModel = field(default_factory=CStateModel)
    # Multiplier on all CPU work; >1 models a slower machine.
    cpu_slowdown: float = 1.0


class Host:
    """One machine: cores + CPU ledger + a NIC attachment point."""

    def __init__(self, sim: Simulator, name: str,
                 config: Optional[HostConfig] = None):
        self.sim = sim
        self.name = name
        self.config = config or HostConfig()
        self.cores = Resource(sim, capacity=self.config.cores,
                              name=f"{name}.cores")
        self.ledger = CpuLedger()
        self.nic = None  # attached by the fabric
        self.zone = "local"  # datacenter; reassigned by the fabric
        self._last_busy = sim.now
        self._alive = True

    # -- liveness (crash / restart modeling) --------------------------------

    @property
    def alive(self) -> bool:
        return self._alive

    def crash(self) -> None:
        """Mark the host dead: future executes fail fast."""
        self._alive = False

    def restart(self) -> None:
        self._alive = True
        self._last_busy = self.sim.now

    # -- CPU execution -------------------------------------------------------

    def execute(self, cpu_seconds: float, component: str,
                priority: int = 0) -> Generator:
        """Run ``cpu_seconds`` of work on some core, charging ``component``.

        A generator; drive it with ``yield from``. Includes queueing for a
        free core and any C-state wake-up penalty.
        """
        if not self._alive:
            raise HostDownError(self.name)
        req = self.cores.request(priority=priority)
        yield req
        try:
            if not self._alive:
                raise HostDownError(self.name)
            wake = self._wakeup_penalty()
            work = cpu_seconds * self.config.cpu_slowdown
            if wake + work > 0:
                yield self.sim.timeout(wake + work)
            self.ledger.charge(component, work)
            self._last_busy = self.sim.now
        finally:
            self.cores.release(req)

    def _wakeup_penalty(self) -> float:
        cs = self.config.c_state
        if not cs.enabled:
            return 0.0
        idle = self.sim.now - self._last_busy
        if idle > cs.idle_threshold and self.cores.count <= 1:
            return cs.wakeup_latency
        return 0.0

    def charge_inline(self, cpu_seconds: float, component: str) -> None:
        """Account CPU time without modeling core contention.

        Used for costs already covered by another timing path (e.g. NIC
        engine service time) where only the ledger entry is needed.
        """
        self.ledger.charge(component, cpu_seconds * self.config.cpu_slowdown)

    def utilization(self) -> float:
        return self.cores.utilization()

    def __repr__(self) -> str:
        return f"Host({self.name!r}, cores={self.config.cores})"


class HostDownError(Exception):
    """An operation touched a crashed host."""

    def __init__(self, host_name: str):
        super().__init__(f"host {host_name} is down")
        self.host_name = host_name
