"""NIC and link models: serialization delay, FIFO queueing, byte counters.

A :class:`Link` is a single serializing server: a transfer of N wire bytes
holds the link for ``N / rate`` simulated seconds, and competing transfers
queue FIFO (or by priority). Each host gets a NIC with an independent
egress and ingress link — which is exactly what makes *incast* (many
senders converging on one receiver's ingress link, Fig 12) and *antagonist
load* (a bandwidth hog on one server's NIC, Fig 11) emerge naturally.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Generator

from ..sim import Resource, Simulator


def gbps(value: float) -> float:
    """Convert gigabits/second to bytes/second."""
    return value * 1e9 / 8.0


@dataclass
class MtuConfig:
    """Framing parameters; payloads are split into MTU-sized frames."""

    mtu_bytes: int = 5000          # 5KB MTU, as in the paper's testbed (§7.2.4)
    header_bytes: int = 66         # per-frame header/trailer overhead

    def wire_bytes(self, payload: int) -> int:
        """Total bytes on the wire for a payload, including frame headers."""
        if payload <= 0:
            return self.header_bytes
        frames = math.ceil(payload / self.mtu_bytes)
        return payload + frames * self.header_bytes

    def frames(self, payload: int) -> int:
        return max(1, math.ceil(payload / self.mtu_bytes))


class Link:
    """A unidirectional serializing link of fixed rate."""

    def __init__(self, sim: Simulator, rate_bytes_per_sec: float,
                 name: str = ""):
        if rate_bytes_per_sec <= 0:
            raise ValueError("link rate must be positive")
        self.sim = sim
        self.name = name
        self.rate = rate_bytes_per_sec
        self._server = Resource(sim, capacity=1, name=f"link:{name}")
        self.bytes_carried = 0

    def transmit(self, wire_bytes: int, priority: int = 0) -> Generator:
        """Serialize ``wire_bytes`` through the link (a generator)."""
        req = self._server.request(priority=priority)
        yield req
        try:
            yield self.sim.timeout(wire_bytes / self.rate)
            self.bytes_carried += wire_bytes
        finally:
            self._server.release(req)

    def utilization(self) -> float:
        return self._server.utilization()

    @property
    def queue_len(self) -> int:
        return self._server.queue_len


class Nic:
    """A host's network interface: an egress link and an ingress link."""

    def __init__(self, sim: Simulator, host_name: str,
                 rate_bytes_per_sec: float, mtu: MtuConfig):
        self.sim = sim
        self.host_name = host_name
        self.mtu = mtu
        self.egress = Link(sim, rate_bytes_per_sec, f"{host_name}.egress")
        self.ingress = Link(sim, rate_bytes_per_sec, f"{host_name}.ingress")

    @property
    def bytes_sent(self) -> int:
        return self.egress.bytes_carried

    @property
    def bytes_received(self) -> int:
        return self.ingress.bytes_carried
