"""Network substrate: hosts, CPUs, NICs, links, and the datacenter fabric."""

from .fabric import (CrossShardLink, Fabric, FabricConfig, LinkFault,
                     NetworkDropError)
from .host import CpuLedger, CStateModel, Host, HostConfig, HostDownError
from .nic import Link, MtuConfig, Nic, gbps

__all__ = [
    "CrossShardLink", "Fabric", "FabricConfig", "LinkFault",
    "NetworkDropError",
    "Host", "HostConfig", "HostDownError", "CpuLedger", "CStateModel",
    "Link", "MtuConfig", "Nic", "gbps",
]
