"""Datacenter fabric: hosts wired together with propagation + queueing.

The fabric owns host creation and message delivery. Delivery of a payload
from host A to host B is modeled as::

    serialize through A.egress  ->  propagation delay (+jitter)
        ->  serialize through B.ingress

which captures the three effects the paper's controlled experiments rely
on: sender bottlenecks, receiver incast, and base round-trip latency. The
core fabric is assumed non-blocking (as in a full-bisection CLOS), so
contention only occurs at host NICs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, Optional

from ..sim import Process, RandomStream, Simulator
from ..telemetry import NULL_SPAN
from .host import Host, HostConfig
from .nic import MtuConfig, Nic, gbps


class NetworkDropError(Exception):
    """Delivery dropped (partition or loss); detected by timeout."""

    def __init__(self, src: str, dst: str, reason: str = "partition"):
        super().__init__(f"packets from {src} to {dst} are being dropped "
                         f"({reason})")
        self.src = src
        self.dst = dst
        self.reason = reason


@dataclass(frozen=True)
class LinkFault:
    """A gray-failure model applied to deliveries on a link or host.

    Unlike a partition (binary, total) a gray fault degrades: a fraction
    of packets are lost, a fraction arrive corrupted, and/or propagation
    is slowed by a multiplier (an overloaded or mis-negotiated link).
    Losses behave like partitions for the affected delivery — the sender
    burns the retransmit-timeout delay and raises
    :class:`NetworkDropError`. Corruption is surfaced to RMA callers as
    a flag on the delivery (see :meth:`Fabric.deliver`), which transports
    translate into flipped payload bytes for the client's checksum
    validation to catch; RPC payloads are carried by a transport with
    its own integrity layer and are not corrupted.
    """

    loss_probability: float = 0.0
    corrupt_probability: float = 0.0
    latency_multiplier: float = 1.0

    def __post_init__(self):
        if not 0.0 <= self.loss_probability <= 1.0:
            raise ValueError(
                f"loss_probability must be in [0, 1], "
                f"got {self.loss_probability}")
        if not 0.0 <= self.corrupt_probability <= 1.0:
            raise ValueError(
                f"corrupt_probability must be in [0, 1], "
                f"got {self.corrupt_probability}")
        if self.latency_multiplier < 1.0:
            raise ValueError(
                f"latency_multiplier must be >= 1, "
                f"got {self.latency_multiplier}")

    @property
    def degraded(self) -> bool:
        return (self.loss_probability > 0 or self.corrupt_probability > 0
                or self.latency_multiplier != 1.0)

    def combine(self, other: "LinkFault") -> "LinkFault":
        """Stack two faults: independent losses/corruption, serial slowdown."""
        return LinkFault(
            loss_probability=1.0 - (1.0 - self.loss_probability) *
            (1.0 - other.loss_probability),
            corrupt_probability=1.0 - (1.0 - self.corrupt_probability) *
            (1.0 - other.corrupt_probability),
            latency_multiplier=self.latency_multiplier *
            other.latency_multiplier)


@dataclass
class FabricConfig:
    """Fabric-wide parameters."""

    host_rate_bytes_per_sec: float = gbps(50.0)   # 50 Gbps sustained (§7.2.4)
    one_way_delay: float = 4e-6                   # propagation + switching
    delay_jitter: float = 0.5e-6                  # uniform jitter bound
    # Cross-zone (WAN) one-way delay between datacenters; RMA is not
    # applicable across the WAN — only RPC traffic crosses zones.
    inter_zone_delay: float = 15e-3
    # How long a sender waits before concluding its packets are being
    # dropped (retransmission timeout stand-in).
    partition_detect_delay: float = 150e-6
    mtu: MtuConfig = field(default_factory=MtuConfig)
    seed: int = 1


class CrossShardLink:
    """The WAN link between two shards of a sharded simulation.

    When a federation is split one-zone-per-shard
    (:mod:`repro.core.parallelfed`), cross-zone traffic no longer rides a
    shared :class:`Fabric` — each side has its own fabric — so this
    adapter models the inter-datacenter hop instead: a message sent at
    ``t`` arrives at ``t + min_latency (+ jitter)``. ``min_latency`` is
    the latency the fabric itself would charge a cross-zone delivery
    (:attr:`FabricConfig.inter_zone_delay`) and doubles as the
    conservative lookahead the shard coordinator synchronizes on — the
    guarantee that no message can arrive sooner than ``min_latency``
    after it was sent is exactly what lets every shard run
    ``min_latency`` ahead of its neighbours.

    Arrival times are deterministic in (seed, src, dst, message index):
    jitter comes from the link's own seeded stream, never a shard's
    fabric stream, so they are identical whether the shards run
    sequentially in one process or in parallel workers.
    """

    def __init__(self, src_zone: str, dst_zone: str,
                 min_latency: float, jitter: float = 0.0, seed: int = 1):
        if min_latency <= 0:
            raise ValueError(
                f"cross-shard min_latency must be > 0 (it is the "
                f"conservative lookahead), got {min_latency!r}")
        if jitter < 0:
            raise ValueError(f"jitter must be >= 0, got {jitter!r}")
        self.src_zone = src_zone
        self.dst_zone = dst_zone
        self.min_latency = min_latency
        self.jitter = jitter
        self._rand = RandomStream(seed, f"wan:{src_zone}->{dst_zone}")
        self.messages = 0

    @classmethod
    def from_config(cls, config: FabricConfig, src_zone: str,
                    dst_zone: str) -> "CrossShardLink":
        """The link a shared-fabric federation would have charged: WAN
        one-way delay plus the fabric's uniform jitter bound."""
        return cls(src_zone, dst_zone,
                   min_latency=config.inter_zone_delay,
                   jitter=config.delay_jitter, seed=config.seed)

    def arrival(self, send_time: float) -> float:
        """Arrival time at the destination shard for a message sent now.

        Always ``>= send_time + min_latency`` — the lookahead contract.
        """
        self.messages += 1
        delay = self.min_latency
        if self.jitter:
            delay += self._rand.uniform(0.0, self.jitter)
        return send_time + delay


class Fabric:
    """A set of hosts and the links between them."""

    def __init__(self, sim: Simulator, config: Optional[FabricConfig] = None):
        self.sim = sim
        self.config = config or FabricConfig()
        self.hosts: Dict[str, Host] = {}
        self._rand = RandomStream(self.config.seed, "fabric")
        self._partitions: set = set()
        self._link_faults: Dict[frozenset, LinkFault] = {}
        self._host_faults: Dict[str, LinkFault] = {}
        # Optional MetricsRegistry (set by Cell): drop/corrupt/slow events
        # are counted here so a chaos run is readable from render_metrics().
        self.registry = None
        self._series_cache: Dict[tuple, object] = {}
        self._series_registry = None

    def _count(self, name: str, help_text: str, **labels) -> None:
        registry = self.registry
        if registry is None:
            return
        if registry is not self._series_registry:
            # Cell assigns the registry after construction; drop handles
            # bound against a previous one.
            self._series_cache = {}
            self._series_registry = registry
        key = (name,) + tuple(sorted(labels.items()))
        series = self._series_cache.get(key)
        if series is None:
            series = self._series_cache[key] = \
                registry.counter(name, help_text).labels(**labels)
        series.inc()

    def _count_drop(self, reason: str) -> None:
        self._count("cliquemap_fabric_dropped_total",
                    "Deliveries dropped by the fabric, by cause",
                    reason=reason)

    # -- topology -----------------------------------------------------------

    def add_host(self, name: str,
                 host_config: Optional[HostConfig] = None,
                 nic_rate: Optional[float] = None,
                 zone: str = "local") -> Host:
        """Create a host with an attached NIC and register it.

        ``zone`` names the datacenter; deliveries between zones pay the
        WAN delay instead of the intra-fabric delay."""
        if name in self.hosts:
            raise ValueError(f"duplicate host name {name!r}")
        host = Host(self.sim, name, host_config)
        host.zone = zone
        rate = nic_rate if nic_rate is not None \
            else self.config.host_rate_bytes_per_sec
        host.nic = Nic(self.sim, name, rate, self.config.mtu)
        self.hosts[name] = host
        return host

    def host(self, name: str) -> Host:
        return self.hosts[name]

    # -- delivery -------------------------------------------------------------

    def deliver(self, src: Host, dst: Host, payload_bytes: int,
                priority: int = 0, trace=None, parts: int = 1) -> Generator:
        """Move ``payload_bytes`` from ``src`` to ``dst`` (a generator).

        Completes when the last byte has been received; returns ``True``
        when an injected gray fault corrupted the delivery in flight (the
        caller decides what "corrupted" means for its payload — RMA
        transports flip response bytes, RPC ignores the flag). Loopback
        delivery (src is dst) skips the NIC entirely. When ``trace`` (a
        telemetry span) is given, the delivery decomposes into
        egress-queueing, propagation, and ingress-queueing child spans.

        ``parts`` declares how many logical operations this single
        transfer coalesces (batched multi-key ops, §7.1): the wire cost is
        still one transfer — that is the point — but the coalescing is
        counted so dashboards can attribute fabric savings to batching.
        """
        span = (trace or NULL_SPAN).child("fabric.deliver", src=src.name,
                                          dst=dst.name, bytes=payload_bytes)
        if parts > 1:
            span.annotate(parts=parts)
            self._count("cliquemap_fabric_coalesced_total",
                        "Fabric transfers carrying a coalesced multi-op "
                        "payload")
        try:
            if src is dst:
                yield self.sim.timeout(1e-7)
                return False
            if self.is_partitioned(src, dst):
                # Packets vanish; the sender learns via (re)transmit timeout.
                span.annotate(dropped=True, reason="partition")
                self._count_drop("partition")
                yield self.sim.timeout(self.config.partition_detect_delay)
                raise NetworkDropError(src.name, dst.name, "partition")
            fault = self.fault_between(src, dst)
            corrupted = False
            if fault is not None:
                if fault.loss_probability and \
                        self._rand.bernoulli(fault.loss_probability):
                    span.annotate(dropped=True, reason="loss")
                    self._count_drop("loss")
                    yield self.sim.timeout(
                        self.config.partition_detect_delay)
                    raise NetworkDropError(src.name, dst.name, "loss")
                if fault.corrupt_probability and \
                        self._rand.bernoulli(fault.corrupt_probability):
                    corrupted = True
                    span.annotate(corrupted=True)
                    self._count("cliquemap_fabric_corrupted_total",
                                "Deliveries corrupted in flight by an "
                                "injected gray fault")
            wire = self.config.mtu.wire_bytes(payload_bytes)
            egress = span.child("egress")
            yield from src.nic.egress.transmit(wire, priority)
            egress.finish()
            delay = self.config.one_way_delay if src.zone == dst.zone \
                else self.config.inter_zone_delay
            if self.config.delay_jitter:
                delay += self._rand.uniform(0.0, self.config.delay_jitter)
            if fault is not None and fault.latency_multiplier != 1.0:
                delay *= fault.latency_multiplier
                span.annotate(slowed=fault.latency_multiplier)
                self._count("cliquemap_fabric_slowed_total",
                            "Deliveries delayed by an injected slow-link "
                            "fault")
            propagate = span.child("propagate")
            yield self.sim.timeout(delay)
            propagate.finish()
            ingress = span.child("ingress")
            yield from dst.nic.ingress.transmit(wire, priority)
            ingress.finish()
            return corrupted
        finally:
            span.finish()

    def corrupt(self, data: bytes) -> bytes:
        """Flip one seeded-random byte of ``data`` (a corrupted delivery)."""
        if not data:
            return data
        i = self._rand.randint(0, len(data) - 1)
        return data[:i] + bytes([data[i] ^ 0xFF]) + data[i + 1:]

    # -- partitions -----------------------------------------------------------

    def partition(self, a: Host, b: Host) -> None:
        """Drop all traffic between ``a`` and ``b`` (both directions)."""
        self._partitions.add(frozenset((a.name, b.name)))

    def heal(self, a: Host, b: Host) -> None:
        self._partitions.discard(frozenset((a.name, b.name)))

    def heal_all(self) -> None:
        self._partitions.clear()

    def is_partitioned(self, a: Host, b: Host) -> bool:
        if not self._partitions:  # the common healthy-fabric case
            return False
        return frozenset((a.name, b.name)) in self._partitions

    # -- gray failures --------------------------------------------------------

    def degrade(self, a: Host, b: Host, fault: LinkFault) -> None:
        """Apply ``fault`` to all deliveries between ``a`` and ``b``."""
        self._link_faults[frozenset((a.name, b.name))] = fault

    def clear_degrade(self, a: Host, b: Host) -> None:
        self._link_faults.pop(frozenset((a.name, b.name)), None)

    def degrade_host(self, host: Host, fault: LinkFault) -> None:
        """Apply ``fault`` to every delivery to or from ``host``."""
        self._host_faults[host.name] = fault

    def clear_host_fault(self, host: Host) -> None:
        self._host_faults.pop(host.name, None)

    def host_fault(self, host: Host) -> Optional[LinkFault]:
        return self._host_faults.get(host.name)

    def clear_faults(self) -> None:
        self._link_faults.clear()
        self._host_faults.clear()

    def fault_between(self, src: Host, dst: Host) -> Optional[LinkFault]:
        """The effective (stacked) gray fault for one delivery, or None."""
        if not self._link_faults and not self._host_faults:
            return None  # the common healthy-fabric case
        fault = None
        for candidate in (self._link_faults.get(
                              frozenset((src.name, dst.name))),
                          self._host_faults.get(src.name),
                          self._host_faults.get(dst.name)):
            if candidate is None:
                continue
            fault = candidate if fault is None else fault.combine(candidate)
        return fault

    # -- background antagonist traffic ---------------------------------------

    def start_antagonist(self, target: Host, offered_bytes_per_sec: float,
                         direction: str = "both",
                         chunk_bytes: int = 64 * 1024) -> Process:
        """Offer competing traffic through ``target``'s NIC.

        Models the §7.2.1 antagonist that pushes ~95 Gbps of demand through
        one backend's NIC. Traffic is an open loop of fixed-size chunks at
        the offered rate; chunks queue behind (and delay) CliqueMap's own
        transfers on the same links.
        """
        if direction not in ("egress", "ingress", "both"):
            raise ValueError(f"bad antagonist direction {direction!r}")

        def chunk_sender(link):
            yield from link.transmit(chunk_bytes)

        def antagonist():
            interval = chunk_bytes / offered_bytes_per_sec
            rand = self._rand.child(f"antagonist:{target.name}")
            while True:
                if direction in ("egress", "both"):
                    self.sim.process(chunk_sender(target.nic.egress))
                if direction in ("ingress", "both"):
                    self.sim.process(chunk_sender(target.nic.ingress))
                yield self.sim.timeout(rand.expovariate(1.0 / interval))

        proc = self.sim.process(antagonist(),
                                name=f"antagonist:{target.name}")
        proc.defused = True
        return proc
