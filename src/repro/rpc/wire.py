"""Wire-format modeling: message envelopes, sizes, protocol versioning.

The simulation does not serialize real protobufs; what matters to the
reproduction is (a) how many bytes cross the fabric, (b) how much CPU the
framework charges, and (c) that protocol *versioning* behaves like a
production RPC stack: servers advertise a supported version range, clients
carry a version, and unknown payload fields are carried through untouched
(forward/backward compatibility). CliqueMap leans on that tolerance for
its hundred-plus post-deployment protocol changes (§6).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

ENVELOPE_OVERHEAD_BYTES = 96  # headers, auth token, method name, tracing


def estimate_size(value: Any) -> int:
    """Rough serialized size, in bytes, of a payload value."""
    if value is None:
        return 1
    if isinstance(value, bool):
        return 1
    if isinstance(value, int):
        return 8
    if isinstance(value, float):
        return 8
    if isinstance(value, (bytes, bytearray, memoryview)):
        return len(value)
    if isinstance(value, str):
        return len(value.encode("utf-8"))
    if isinstance(value, dict):
        return sum(estimate_size(k) + estimate_size(v) + 2
                   for k, v in value.items())
    if isinstance(value, (list, tuple, set, frozenset)):
        return sum(estimate_size(v) + 2 for v in value)
    # Dataclass-ish objects with __dict__; fall back to repr length.
    inner = getattr(value, "__dict__", None)
    if inner is not None:
        return estimate_size(inner)
    return len(repr(value))


@dataclass(frozen=True, order=True)
class ProtocolVersion:
    """A (major, minor) protocol version."""

    major: int = 1
    minor: int = 0

    def compatible_with(self, lo: "ProtocolVersion",
                        hi: "ProtocolVersion") -> bool:
        return lo <= self <= hi

    def __str__(self) -> str:
        return f"{self.major}.{self.minor}"


@dataclass
class Message:
    """An RPC request or response envelope."""

    method: str
    payload: Dict[str, Any] = field(default_factory=dict)
    metadata: Dict[str, Any] = field(default_factory=dict)
    version: ProtocolVersion = field(default_factory=ProtocolVersion)
    # Explicit size override for payloads whose bytes are modeled, not held.
    size_override: Optional[int] = None

    @property
    def wire_size(self) -> int:
        if self.size_override is not None:
            body = self.size_override
        else:
            body = estimate_size(self.payload)
        return ENVELOPE_OVERHEAD_BYTES + body + estimate_size(self.metadata)
