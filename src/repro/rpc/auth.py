"""Application-layer authentication (ALTS-like) for the RPC framework.

Production Stubby authenticates application-to-application with ALTS and
enforces per-RPC ACLs (§2.1). The simulation models the parts that matter
to CliqueMap: a handshake cost when a channel is established, a principal
identity carried on every call, and per-method ACL checks that reject
unauthenticated callers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Set


@dataclass(frozen=True)
class Principal:
    """An authenticated application identity."""

    name: str

    def __str__(self) -> str:
        return self.name


class PermissionDeniedError(Exception):
    """The caller's principal is not authorized for the method."""

    def __init__(self, principal: Principal, method: str):
        super().__init__(f"{principal} is not allowed to call {method}")
        self.principal = principal
        self.method = method


@dataclass
class Acl:
    """Per-method allow-lists; an empty ACL allows every principal."""

    # method -> allowed principal names; "*" entry applies to all methods.
    rules: Dict[str, Set[str]] = field(default_factory=dict)
    # method -> allowed principal-name prefixes (for fleets of internal
    # principals like "repair@backend-3").
    prefix_rules: Dict[str, Set[str]] = field(default_factory=dict)

    def allow(self, method: str, principal_name: str) -> None:
        self.rules.setdefault(method, set()).add(principal_name)

    def allow_prefix(self, method: str, principal_prefix: str) -> None:
        self.prefix_rules.setdefault(method, set()).add(principal_prefix)

    def check(self, principal: Principal, method: str) -> None:
        if not self.rules and not self.prefix_rules:
            return
        allowed = self.rules.get(method, set()) | self.rules.get("*", set())
        if principal.name in allowed:
            return
        prefixes = self.prefix_rules.get(method, set()) | \
            self.prefix_rules.get("*", set())
        if any(principal.name.startswith(p) for p in prefixes):
            return
        raise PermissionDeniedError(principal, method)


@dataclass
class AuthConfig:
    """Handshake cost model for channel establishment."""

    handshake_cpu: float = 30e-6     # per-side CPU for the ALTS handshake
    handshake_rtts: int = 2          # extra round trips at connect time
    enabled: bool = True


class Authenticator:
    """Issues channel credentials after a simulated handshake."""

    def __init__(self, config: Optional[AuthConfig] = None):
        self.config = config or AuthConfig()
        self.handshakes = 0

    def handshake_cost(self) -> float:
        """CPU seconds charged to each side at connect time."""
        if not self.config.enabled:
            return 0.0
        self.handshakes += 1
        return self.config.handshake_cpu

    @property
    def extra_rtts(self) -> int:
        return self.config.handshake_rtts if self.config.enabled else 0
