"""Stubby-like RPC framework: channels, servers, auth, versioning."""

from .auth import (Acl, AuthConfig, Authenticator, PermissionDeniedError,
                   Principal)
from .stubby import (ApplicationError, DeadlineExceededError, HandlerContext,
                     MethodNotFoundError, RpcChannel, RpcCostModel, RpcError,
                     RpcMetrics, RpcServer, UnavailableError,
                     VersionMismatchError, connect)
from .wire import ENVELOPE_OVERHEAD_BYTES, Message, ProtocolVersion, estimate_size

__all__ = [
    "Acl", "AuthConfig", "Authenticator", "PermissionDeniedError", "Principal",
    "ApplicationError", "DeadlineExceededError", "HandlerContext",
    "MethodNotFoundError", "RpcChannel", "RpcCostModel", "RpcError",
    "RpcMetrics", "RpcServer", "UnavailableError", "VersionMismatchError",
    "connect",
    "ENVELOPE_OVERHEAD_BYTES", "Message", "ProtocolVersion", "estimate_size",
]
