"""A production-grade-shaped RPC framework over the simulated fabric.

This plays the role of Stubby in the paper: feature-rich (auth, ACLs,
deadlines, protocol versioning, metadata) and therefore *expensive* —
roughly 50 CPU-microseconds of framework and transport code across client
and server per call (§1, §2.1), which is exactly the cost CliqueMap's
RMA-based GET path avoids.

Calls are generators driven inside simulation processes::

    channel = connect(sim, fabric, client_host, server, principal)
    reply = yield from channel.call("Set", payload, deadline=10e-3)
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Dict, Generator, Optional

from ..net import Fabric, Host, HostDownError, NetworkDropError
from ..sim import Simulator
from ..telemetry import NULL_SPAN
from .auth import Acl, AuthConfig, Authenticator, Principal
from .wire import Message, ProtocolVersion


# ---------------------------------------------------------------------------
# Errors
# ---------------------------------------------------------------------------

class RpcError(Exception):
    """Base class for RPC-layer failures."""

    retryable = False


class DeadlineExceededError(RpcError):
    """The call did not complete within its deadline."""

    retryable = True


class UnavailableError(RpcError):
    """The server is unreachable (crashed host, stopped server)."""

    retryable = True


class MethodNotFoundError(RpcError):
    """No handler registered for the requested method."""


class VersionMismatchError(RpcError):
    """Client protocol version is outside the server's supported range."""


class ApplicationError(RpcError):
    """The handler raised; carries the application-level cause."""

    def __init__(self, cause: BaseException):
        super().__init__(f"handler failed: {cause!r}")
        self.cause = cause


# ---------------------------------------------------------------------------
# Cost model and metrics
# ---------------------------------------------------------------------------

@dataclass
class RpcCostModel:
    """Per-call CPU charges for framework + transport code.

    Defaults sum to ~52 us across client and server, matching the paper's
    ">50 CPU-us even for an empty RPC".
    """

    client_send_cpu: float = 14e-6
    client_recv_cpu: float = 12e-6
    server_recv_cpu: float = 14e-6
    server_send_cpu: float = 12e-6
    per_kilobyte_cpu: float = 0.15e-6   # marshalling cost per KB each side

    def client_cpu(self, req_bytes: int, resp_bytes: int) -> float:
        return (self.client_send_cpu + self.client_recv_cpu +
                (req_bytes + resp_bytes) / 1024.0 * self.per_kilobyte_cpu)

    def server_cpu(self, req_bytes: int, resp_bytes: int) -> float:
        return (self.server_recv_cpu + self.server_send_cpu +
                (req_bytes + resp_bytes) / 1024.0 * self.per_kilobyte_cpu)


@dataclass
class RpcMetrics:
    """Byte/call counters; the maintenance figures plot these over time."""

    calls: int = 0
    errors: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0

    def record(self, req_bytes: int, resp_bytes: int, ok: bool) -> None:
        self.calls += 1
        if not ok:
            self.errors += 1
        self.bytes_sent += req_bytes
        self.bytes_received += resp_bytes

    @property
    def total_bytes(self) -> int:
        return self.bytes_sent + self.bytes_received


# ---------------------------------------------------------------------------
# Server
# ---------------------------------------------------------------------------

class HandlerContext:
    """What a handler sees about the call it is serving."""

    def __init__(self, server: "RpcServer", principal: Principal,
                 metadata: Dict[str, Any], version: ProtocolVersion,
                 span=NULL_SPAN):
        self.server = server
        self.sim = server.sim
        self.host = server.host
        self.principal = principal
        self.metadata = metadata
        self.version = version
        # The server-side telemetry span; handlers may attach children.
        self.span = span
        # Handlers set this to model large replies whose bytes aren't held.
        self.response_size_override: Optional[int] = None


Handler = Callable[[Dict[str, Any], HandlerContext], Generator]


class RpcServer:
    """A named service on a host: method handlers + ACL + version range."""

    def __init__(self, sim: Simulator, host: Host, name: str,
                 acl: Optional[Acl] = None,
                 min_version: ProtocolVersion = ProtocolVersion(1, 0),
                 max_version: ProtocolVersion = ProtocolVersion(1, 99),
                 cost_model: Optional[RpcCostModel] = None):
        self.sim = sim
        self.host = host
        self.name = name
        self.acl = acl or Acl()
        self.min_version = min_version
        self.max_version = max_version
        self.cost_model = cost_model or RpcCostModel()
        self.metrics = RpcMetrics()
        self._handlers: Dict[str, Handler] = {}
        self._serving = True

    def register(self, method: str, handler: Handler) -> None:
        """Register a generator handler: ``handler(payload, context)``."""
        self._handlers[method] = handler

    def unregister(self, method: str) -> None:
        self._handlers.pop(method, None)

    @property
    def serving(self) -> bool:
        return self._serving and self.host.alive

    def stop(self) -> None:
        self._serving = False

    def start(self) -> None:
        self._serving = True

    def handler_for(self, method: str) -> Handler:
        try:
            return self._handlers[method]
        except KeyError:
            raise MethodNotFoundError(
                f"{self.name} has no method {method!r}") from None


# ---------------------------------------------------------------------------
# Channel
# ---------------------------------------------------------------------------

_call_ids = itertools.count(1)


class RpcChannel:
    """A client's connection to one server."""

    def __init__(self, sim: Simulator, fabric: Fabric, client_host: Host,
                 server: RpcServer, principal: Principal,
                 version: ProtocolVersion = ProtocolVersion(1, 0),
                 authenticator: Optional[Authenticator] = None,
                 client_component: str = "rpc-client"):
        self.sim = sim
        self.fabric = fabric
        self.client_host = client_host
        self.server = server
        self.principal = principal
        self.version = version
        self.authenticator = authenticator or Authenticator(
            AuthConfig(enabled=False))
        self.client_component = client_component
        self.metrics = RpcMetrics()
        self._connected = False

    def connect(self) -> Generator:
        """Establish the channel: handshake RTTs + per-side auth CPU."""
        cost = self.authenticator.handshake_cost()
        if cost:
            yield from self.client_host.execute(cost, self.client_component)
            yield from self.server.host.execute(cost, f"rpc-server:{self.server.name}")
        for _ in range(self.authenticator.extra_rtts):
            yield from self.fabric.deliver(self.client_host, self.server.host, 128)
            yield from self.fabric.deliver(self.server.host, self.client_host, 128)
        self._connected = True

    def call(self, method: str, payload: Dict[str, Any],
             deadline: Optional[float] = None,
             metadata: Optional[Dict[str, Any]] = None,
             request_size: Optional[int] = None,
             trace=None) -> Generator:
        """Issue an RPC; returns the response payload or raises RpcError.

        ``request_size`` overrides the estimated payload size for requests
        whose bulk bytes are modeled rather than held (e.g. value blobs).
        ``trace`` (a telemetry span) receives an ``rpc.call`` child span
        covering the whole call, including the deadline-expiry path.
        """
        span = (trace or NULL_SPAN).child("rpc.call", method=method,
                                          server=self.server.name)
        inner = self.sim.process(
            self._call_inner(method, payload, metadata or {}, request_size,
                             span),
            name=f"rpc:{method}")
        try:
            if deadline is None:
                try:
                    result = yield inner
                except RpcError:
                    raise
                except (HostDownError, NetworkDropError) as exc:
                    raise UnavailableError(str(exc)) from exc
                return result

            timer = self.sim.timeout(deadline)
            try:
                event, value = yield self.sim.any_of([inner, timer])
            except (HostDownError, NetworkDropError) as exc:
                raise UnavailableError(str(exc)) from exc
            if event is inner:
                return value
            inner.defused = True
            span.annotate(deadline_exceeded=True)
            raise DeadlineExceededError(
                f"{method} exceeded deadline of {deadline * 1e3:.2f} ms")
        finally:
            span.finish()

    # -- internals -----------------------------------------------------------

    def _call_inner(self, method: str, payload: Dict[str, Any],
                    metadata: Dict[str, Any],
                    request_size: Optional[int],
                    span=NULL_SPAN) -> Generator:
        if not self._connected:
            yield from self.connect()

        request = Message(method=method, payload=payload, metadata=metadata,
                          version=self.version, size_override=request_size)
        req_bytes = request.wire_size

        # Client-side marshal + send.
        try:
            yield from self.client_host.execute(
                self.cost_for_client(req_bytes, 0), self.client_component)
        except HostDownError as exc:
            raise UnavailableError(str(exc)) from exc

        yield from self.fabric.deliver(self.client_host, self.server.host,
                                       req_bytes, trace=span)

        ok = False
        resp_bytes = 0
        try:
            response = yield from self._serve(request, span)
            resp_bytes = response.wire_size
            ok = True
        finally:
            self.metrics.record(req_bytes, resp_bytes, ok)
            self.server.metrics.record(req_bytes, resp_bytes, ok)

        yield from self.fabric.deliver(self.server.host, self.client_host,
                                       resp_bytes, trace=span)
        yield from self.client_host.execute(
            self.cost_for_client(0, resp_bytes), self.client_component)
        return response.payload

    def cost_for_client(self, req_bytes: int, resp_bytes: int) -> float:
        model = self.server.cost_model
        half = (model.client_send_cpu if req_bytes else 0.0) + \
               (model.client_recv_cpu if resp_bytes else 0.0)
        return half + (req_bytes + resp_bytes) / 1024.0 * model.per_kilobyte_cpu

    def _serve(self, request: Message, span=NULL_SPAN) -> Generator:
        server = self.server
        if not server.serving:
            # A connection reset: a short wait, then failure back to client.
            yield self.sim.timeout(50e-6)
            raise UnavailableError(f"{server.name} is not serving")
        if not request.version.compatible_with(server.min_version,
                                               server.max_version):
            raise VersionMismatchError(
                f"client {request.version} outside server range "
                f"[{server.min_version}, {server.max_version}]")
        server.acl.check(self.principal, request.method)
        handler = server.handler_for(request.method)

        serve_span = span.child("backend.serve", host=server.host.name,
                                method=request.method)
        component = f"rpc-server:{server.name}"
        model = server.cost_model
        try:
            yield from server.host.execute(
                model.server_recv_cpu +
                request.wire_size / 1024.0 * model.per_kilobyte_cpu,
                component)

            context = HandlerContext(server, self.principal, request.metadata,
                                     request.version, span=serve_span)
            try:
                result = yield from handler(request.payload, context)
            except RpcError:
                raise
            except HostDownError as exc:
                raise UnavailableError(str(exc)) from exc
            except Exception as exc:  # noqa: BLE001 - application failure
                raise ApplicationError(exc) from exc

            response = Message(method=request.method, payload=result or {},
                               version=self.version,
                               size_override=context.response_size_override)
            yield from server.host.execute(
                model.server_send_cpu +
                response.wire_size / 1024.0 * model.per_kilobyte_cpu,
                component)
        finally:
            serve_span.finish()
        return response


def connect(sim: Simulator, fabric: Fabric, client_host: Host,
            server: RpcServer, principal: Principal,
            **kwargs: Any) -> RpcChannel:
    """Convenience constructor for an :class:`RpcChannel`."""
    return RpcChannel(sim, fabric, client_host, server, principal, **kwargs)
