"""Experiment-harness utilities for tests, benchmarks, and user studies.

Small helpers that every controlled experiment needs: driving a generator
to completion, preloading keys, issuing measured GET loops, pinning keys
to shards, and snapshotting CPU. Used by this repo's own benchmark suite
(``benchmarks/_common.py``) and exported for downstream experiments.
"""

from __future__ import annotations

from typing import Generator, Iterable, List, Sequence

from .analysis import LatencyRecorder
from .core import Cell, CliqueMapClient, GetStatus, SetStatus


def drive(cell: Cell, gen: Generator):
    """Run one generator to completion; returns its value."""
    return cell.sim.run(until=cell.sim.process(gen))


def preload_keys(cell: Cell, client: CliqueMapClient,
                 keys: Sequence[bytes], value_bytes: int) -> None:
    """Install ``keys`` with fixed-size values; asserts every SET lands."""

    def setup():
        for key in keys:
            result = yield from client.set(key, bytes(value_bytes))
            assert result.status is SetStatus.APPLIED, (key, result)

    drive(cell, setup())


def measure_gets(cell: Cell, client: CliqueMapClient,
                 keys: Sequence[bytes], count: int,
                 interval: float = 0.0) -> LatencyRecorder:
    """Issue ``count`` sequential GETs round-robin over ``keys``; every
    one must hit. Returns the latency recorder."""
    recorder = LatencyRecorder()

    def loop():
        for i in range(count):
            result = yield from client.get(keys[i % len(keys)])
            assert result.status is GetStatus.HIT, result
            recorder.record(result.latency)
            if interval:
                yield cell.sim.timeout(interval)

    drive(cell, loop())
    return recorder


def key_with_primary_shard(cell: Cell, shard: int,
                           prefix: bytes = b"pin") -> bytes:
    """Find a key whose primary replica lands on ``shard`` — lets an
    experiment aim load (or faults) at a specific backend."""
    placement = cell.placement
    for i in range(100000):
        key = prefix + b"-%d" % i
        if placement.primary_shard(placement.key_hash(key)) == shard:
            return key
    raise RuntimeError("no key found for shard")


def total_cpu(*hosts) -> float:
    """Sum of all CPU-seconds charged on the given hosts."""
    return sum(h.ledger.total() for h in hosts)


def cell_cpu_hosts(cell: Cell) -> List:
    """The hosts whose CPU a whole-cell efficiency measurement should sum."""
    return [b.host for b in cell.backends.values()]


def run_closed_loop(cell: Cell, clients: Iterable[CliqueMapClient],
                    keys: Sequence[bytes], ops_per_worker: int,
                    workers_per_client: int = 1) -> LatencyRecorder:
    """Closed-loop GET load from several clients; returns latencies."""
    recorder = LatencyRecorder()
    sim = cell.sim

    def worker(client):
        for i in range(ops_per_worker):
            result = yield from client.get(keys[i % len(keys)])
            if result.status is GetStatus.HIT:
                recorder.record(result.latency)

    procs = [sim.process(worker(c))
             for c in clients for _ in range(workers_per_client)]
    sim.run(until=sim.all_of(procs))
    return recorder
