"""Entry point: ``python -m repro.tools <command>``."""

import sys

from .cli import main

sys.exit(main())
