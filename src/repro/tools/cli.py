"""Operator command-line tools.

Run with ``python -m repro.tools <command>``:

* ``quickstart``   — stand up a cell, run basic ops, print latencies.
* ``ads`` / ``geo`` — run the production-shaped workloads and print the
  Figure 8/9-style summaries.
* ``drill``        — planned + unplanned maintenance drills (Figs 13/14).
* ``snapshot``     — run a short mixed workload and print the monitoring
  dashboard snapshot.
* ``metrics``      — print the telemetry registry of a live cell
  (``--demo`` runs a small workload first and renders an op trace).
* ``chaos``        — seeded fault-injection soak: print the fault plan,
  the injected events, and the reaction metric tables.
* ``observe``      — run a probed workload under the observability plane
  (time-series scraping + SLO burn-rate alerting), optionally with an
  injected fault; writes ``timeseries.json``/``trace.json`` and prints
  the SLI and alert tables.
* ``perf``         — batched-vs-singleton multiget measurement; emits
  ``BENCH_multiget.json`` for the perf trajectory.
* ``perf profile`` — run a scale workload under cProfile and print the
  top-N hot spots (the starting point for optimization work).
* ``perf history`` — aggregate every ``BENCH_*.json`` into one
  perf-trajectory table and fail on floors.
* ``trace``        — synthesize/replay op traces; with ``--stitch`` /
  ``--flight`` / ``--federation-demo``, stitch cross-zone distributed
  traces and query postmortem flight-recorder dumps.
* ``model-check``  — explicit-state check of the R=3.2 protocol.
"""

from __future__ import annotations

import argparse
import sys


def cmd_quickstart(args: argparse.Namespace) -> int:
    from ..core import Cell, CellSpec, LookupStrategy, ReplicationMode

    cell = Cell(CellSpec(mode=ReplicationMode.R3_2,
                         num_shards=args.shards, transport=args.transport))
    client = cell.connect_client()
    rpc_client = cell.connect_client(strategy=LookupStrategy.RPC)

    def app():
        yield from client.set(b"k", b"v" * 128)
        rma = yield from client.get(b"k")
        rpc = yield from rpc_client.get(b"k")
        return rma, rpc

    rma, rpc = cell.sim.run(until=cell.sim.process(app()))
    print(f"RMA GET: {rma.status.name} in {rma.latency * 1e6:.1f} us")
    print(f"RPC GET: {rpc.status.name} in {rpc.latency * 1e6:.1f} us")
    print(f"speedup: {rpc.latency / rma.latency:.1f}x")
    return 0


def cmd_ads(args: argparse.Namespace) -> int:
    from ..analysis import render_table
    from ..workloads import AdsScenario, AdsWorkload

    scenario = AdsScenario(duration=args.duration, num_keys=args.keys)
    workload = AdsWorkload(scenario)
    workload.preload()
    metrics = workload.run()
    print(render_table(
        "ads", ["metric", "value"],
        [["GETs", metrics.gets],
         ["hit rate", f"{metrics.hit_rate:.3f}"],
         ["p50 us", f"{metrics.get_latency.percentile(50) * 1e6:.0f}"],
         ["p99.9 us", f"{metrics.get_latency.percentile(99.9) * 1e6:.0f}"],
         ["SETs", metrics.sets],
         ["backfill SETs", workload.backfill_sets]]))
    return 0


def cmd_geo(args: argparse.Namespace) -> int:
    from ..analysis import render_series
    from ..workloads import GeoScenario, GeoWorkload

    scenario = GeoScenario(duration=args.duration, num_keys=args.keys)
    workload = GeoWorkload(scenario)
    workload.preload()
    metrics = workload.run()
    print(render_series("geo GET rate (diurnal)",
                        metrics.get_timeline.rate_series(),
                        x_label="t", y_label="GET/s"))
    return 0


def cmd_drill(args: argparse.Namespace) -> int:
    from ..core import (Cell, CellSpec, GetStatus, MaintenanceConfig,
                        ReplicationMode)

    cell = Cell(CellSpec(
        mode=ReplicationMode.R3_2, num_shards=3, num_spares=1,
        transport="pony",
        maintenance_config=MaintenanceConfig(restart_delay=0.3)))
    client = cell.connect_client()
    sim = cell.sim

    def app():
        for i in range(50):
            yield from client.set(b"k-%d" % i, b"v")
        if args.kind == "planned":
            yield from cell.maintenance.planned_restart(0)
        else:
            yield from cell.maintenance.unplanned_crash(0,
                                                        restart_delay=0.3)
        hits = 0
        for i in range(50):
            result = yield from client.get(b"k-%d" % i)
            hits += result.status is GetStatus.HIT
        return hits

    hits = sim.run(until=sim.process(app()))
    print(f"{args.kind} drill: {hits}/50 keys readable after the event")
    return 0 if hits == 50 else 1


def cmd_snapshot(args: argparse.Namespace) -> int:
    from ..analysis import snapshot_cell
    from ..core import Cell, CellSpec, ReplicationMode

    cell = Cell(CellSpec(mode=ReplicationMode.R3_2,
                         num_shards=args.shards, transport="pony"))
    client = cell.connect_client()

    def app():
        for i in range(100):
            yield from client.set(b"k-%d" % i, b"x" * 256)
        for i in range(300):
            yield from client.get(b"k-%d" % (i % 100))

    cell.sim.run(until=cell.sim.process(app()))
    print(snapshot_cell(cell, clients=[client]).render())
    return 0


def cmd_metrics(args: argparse.Namespace) -> int:
    from ..analysis import render_metrics
    from ..core import Cell, CellSpec, ReplicationMode

    cell = Cell(CellSpec(mode=ReplicationMode.R3_2, num_shards=args.shards,
                         transport=args.transport))
    with cell:
        with cell.connect_client() as client:

            def app():
                for i in range(args.keys):
                    yield from client.set(b"k-%d" % i, b"x" * 128)
                for i in range(args.ops):
                    # ~1/4 of GETs miss: exercise both status series.
                    yield from client.get(
                        b"k-%d" % (i % (args.keys + args.keys // 3 + 1)))

            cell.sim.run(until=cell.sim.process(app()))
        print(render_metrics(cell.metrics.snapshot(),
                             title=f"cell {cell.spec.name!r}"))
        if args.demo:
            last = cell.tracer.last()
            if last is not None:
                print()
                print(f"last op trace ({last.name}):")
                print(last.render())
    return 0


def _trace_filters(args: argparse.Namespace, traces):
    from ..analysis import filter_traces

    return filter_traces(
        traces, zone=args.zone or None, op=args.op or None,
        min_latency=args.min_latency, errors_only=args.errors_only)


def _print_stitched(args: argparse.Namespace, traces) -> None:
    cross = sum(1 for t in traces if t.cross_zone)
    print(f"{len(traces)} trace(s) after filters ({cross} cross-zone)")
    for trace in traces[:args.limit]:
        print()
        print(trace.render())
    if len(traces) > args.limit:
        print(f"\n... {len(traces) - args.limit} more "
              f"(raise --limit to see them)")
    if args.out:
        from ..analysis import write_stitched_chrome_trace
        events = write_stitched_chrome_trace(args.out, traces)
        print(f"\nwrote {events} trace events to {args.out} "
              f"(load in Perfetto / chrome://tracing)")


def _trace_stitch(args: argparse.Namespace) -> int:
    """Stitch per-zone span trees from a JSON export or bundle."""
    import json as _json

    from ..analysis import stitch_traces

    with open(args.stitch) as fh:
        doc = _json.load(fh)
    if "zones" in doc:
        zone_traces = doc["zones"]
    elif "traces" in doc:
        # A postmortem bundle's traces.json: one cell, one zone.
        zone_traces = {"cell": doc["traces"]}
    else:
        print(f"unrecognized trace file {args.stitch!r}: expected a "
              f"'zones' map or a bundle's 'traces' list")
        return 1
    traces = _trace_filters(args, stitch_traces(zone_traces))
    _print_stitched(args, traces)
    return 0


def _trace_flight(args: argparse.Namespace) -> int:
    """Query a flight-recorder dump from a postmortem bundle."""
    import json as _json
    import os as _os

    path = args.flight
    if _os.path.isdir(path):
        path = _os.path.join(path, "flight.json")
    with open(path) as fh:
        doc = _json.load(fh)
    events = doc.get("events", [])
    if args.kind:
        events = [e for e in events if e["kind"] == args.kind]
    if args.origin:
        events = [e for e in events if args.origin in e.get("origin", "")]
    if args.last is not None:
        events = events[-args.last:]
    print(f"{len(events)} event(s) (ring recorded "
          f"{doc.get('recorded', '?')} total)")
    for e in events:
        fields = " ".join(f"{k}={v}" for k, v in
                          sorted(e.get("fields", {}).items()))
        print(f"[{e['t']:12.6f}s #{e['seq']:>6}] {e['kind']:<11} "
              f"{e.get('origin', ''):<24} {fields}".rstrip())
    return 0


def _trace_federation_demo(args: argparse.Namespace) -> int:
    """Run a small sharded federation and stitch its cross-zone traces."""
    import json as _json

    from ..analysis import (run_federation_arm, stitch_traces,
                            zone_traces_from_digests)
    from ..core import CellSpec
    from ..core.parallelfed import ZoneWorkloadSpec

    zones = [f"dc-{chr(ord('a') + i)}" for i in range(args.zones)]
    workload = ZoneWorkloadSpec(clients=2, shared_keys=16, private_keys=4,
                                seed=args.seed, export_traces=True)
    report = run_federation_arm(
        zones, cell_spec=CellSpec(num_shards=4), workload=workload,
        duration=args.duration, mode="sequential")
    zone_traces = zone_traces_from_digests(report.digests)
    if args.save:
        with open(args.save, "w") as fh:
            _json.dump({"zones": zone_traces}, fh)
        print(f"wrote raw per-zone traces to {args.save}")
    traces = _trace_filters(args, stitch_traces(zone_traces))
    _print_stitched(args, traces)
    cross = [t for t in traces if t.cross_zone]
    if args.assert_cross_zone and not cross:
        print("FAIL: expected at least one stitched cross-zone trace")
        return 1
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    from ..analysis import render_table
    from ..core import Cell, CellSpec, ReplicationMode
    from ..sim import RandomStream
    from ..workloads import Trace, TraceReplayer, synthesize_trace

    if args.federation_demo:
        return _trace_federation_demo(args)
    if args.stitch:
        return _trace_stitch(args)
    if args.flight:
        return _trace_flight(args)
    if args.input:
        with open(args.input) as fp:
            trace = Trace.load(fp)
    else:
        trace = synthesize_trace(RandomStream(args.seed, "cli-trace"),
                                 num_keys=args.keys, ops=args.ops,
                                 get_fraction=args.get_fraction)
    if args.output:
        with open(args.output, "w") as fp:
            trace.dump(fp)
        print(f"wrote {len(trace)} ops to {args.output}")
        return 0

    cell = Cell(CellSpec(mode=ReplicationMode.R3_2, num_shards=4,
                         transport="pony"))
    client = cell.connect_client()
    replayer = TraceReplayer(client, trace, time_scale=args.time_scale)
    report = cell.sim.run(until=cell.sim.process(replayer.replay()))
    print(render_table(
        "trace replay", ["metric", "value"],
        [["ops", len(trace)],
         ["GETs", report.gets], ["hit rate", f"{report.hit_rate:.3f}"],
         ["SETs", report.sets], ["erases", report.erases],
         ["errors", report.errors],
         ["GET p50 (us)",
          f"{report.get_latency.percentile(50) * 1e6:.1f}"
          if report.gets else "-"],
         ["replay duration (s)", f"{report.duration:.3f}"]]))
    return 0


def _add_population_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--population", type=int, default=0,
                   help="superpose an aggregate population of N modeled "
                        "clients issuing zipf GETs over the chaos keys "
                        "(0 = off; see repro.workloads.population)")
    p.add_argument("--population-rate", type=float, default=40.0,
                   help="offered GETs/s per modeled client")
    p.add_argument("--population-sample-rate", type=float, default=1.0,
                   help="fraction of offered ops actually driven "
                        "(Poisson thinning; counts are scaled back up "
                        "in reporting)")


def _population_rows(stats: dict) -> list:
    return [["modeled clients", f"{stats['modeled_clients']}"],
            ["driver processes", f"{stats['drivers']}"],
            ["offered key-ops", f"{stats['offered']}"],
            ["delivered", f"{stats['delivered']}"],
            ["thinned (sampled out)", f"{stats['thinned']}"],
            ["shed (outstanding cap)", f"{stats['shed']}"],
            ["shed rate", f"{stats['shed_rate']:.4f}"],
            ["hit rate", f"{stats['hit_rate']:.4f}"],
            ["errors", f"{stats['errors']}"]]


def cmd_chaos(args: argparse.Namespace) -> int:
    from ..analysis import render_table
    from ..faults import DEFAULT_KINDS, SoakConfig, run_soak

    kinds = tuple(DEFAULT_KINDS)
    if args.sor:
        # Opt-in: draw SoR brownouts alongside the usual fault kinds and
        # run the cold-keyspace + backfill herd against the miss path.
        kinds = kinds + ("sor_brownout",)
    backend_config = None
    if args.resize == "pressure":
        # Shrink the data arena so the pressure writer actually forces
        # capacity evictions mid-handoff.
        from ..core import BackendConfig
        backend_config = BackendConfig(data_initial_bytes=256 * 1024,
                                       data_virtual_limit=256 * 1024)
    report = run_soak(SoakConfig(
        seed=args.seed, duration=args.duration, settle=args.settle,
        num_shards=args.shards, num_keys=args.keys,
        transport=args.transport, kinds=kinds,
        sor=args.sor, sor_backfill=args.sor,
        resize=args.resize, backend_config=backend_config,
        pressure_value_bytes=2048,
        population=args.population,
        population_rate=args.population_rate,
        population_sample_rate=args.population_sample_rate,
        flight=args.flight, export_dir=args.export_dir or None))
    print(render_table(f"fault plan (seed={args.seed})", ["event"],
                       [[line] for line in report.plan_lines]))
    print()
    print(render_table("injected faults", ["event"], report.fault_rows()))
    print()
    print(render_table("reactions", ["metric family", "total"],
                       report.reaction_rows()))
    print()
    if report.sor_stats is not None:
        stats = report.sor_stats
        print(render_table(
            "miss path (read-through coordinator)", ["stat", "value"],
            [["fetches", f"{stats['coordinator']['fetches']}"],
             ["coalesced", f"{stats['coordinator']['coalesced']}"],
             ["backfill shed", f"{stats['backfill_shed']:g}"],
             ["SoR reads", f"{stats['sor_reads']}"],
             ["SoR throttled", f"{stats['sor_throttled']}"],
             ["cold-key bad hits",
              f"{stats['cold_reads']['bad_hits']}"]]))
        print()
    if report.resize_stats is not None:
        ctl = report.resize_stats["controller"]
        rows = [["grows", f"{ctl['grows']}"],
                ["shrinks", f"{ctl['shrinks']}"],
                ["aborted", f"{ctl['aborted']}"],
                ["backfill sweeps", f"{ctl['sweeps']}"],
                ["entries backfilled", f"{ctl['entries_backfilled']}"],
                ["entries purged", f"{ctl['entries_purged']}"],
                ["shadow writes",
                 f"{report.resize_stats['shadow_writes']:g}"],
                ["writer SET failures",
                 f"{report.foreground['writer_set_failures']}"],
                ["reader inquorate retries",
                 f"{report.foreground['reader_inquorate']}"]]
        if report.resize_stats["pressure"] is not None:
            rows.append(["pressure writes",
                         f"{report.resize_stats['pressure']['writes']}"])
        print(render_table(f"resize ({args.resize})", ["stat", "value"],
                           rows))
        print()
    if report.population_stats is not None:
        print(render_table(
            f"client population (N={args.population})", ["stat", "value"],
            _population_rows(report.population_stats)))
        print()
    if report.bundle:
        print(f"postmortem bundle: {report.bundle}")
        print()
    if report.ok:
        print("invariants hold: no bad hits, all keys recovered, "
              "replicas converged")
        return 0
    for i, value in report.bad_hits:
        print(f"BAD HIT: key {i} returned unwritten value {value!r}")
    for i, status, value in report.unrecovered:
        print(f"UNRECOVERED: key {i} -> {status} "
              f"(value={value!r})" if value is not None
              else f"UNRECOVERED: key {i} -> {status}")
    for i in report.diverged:
        print(f"DIVERGED: key {i} replicas disagree after settle")
    return 1


def cmd_observe(args: argparse.Namespace) -> int:
    from ..analysis import render_alerts, render_sli, render_timeseries
    from ..faults import FaultPlan, SoakConfig, run_soak

    # Handcrafted plan: the soak's client_hosts are writers (0..1),
    # reader (2), then probers — so client=3 targets the first prober.
    prober_index = 3
    plan = FaultPlan()
    fault_end = args.fault_at + args.fault_duration
    if args.fault == "partition":
        # Cut the prober off from quorum-many backends (2 of R=3): a
        # single partition would be quorum-masked and invisible.
        plan.add(args.fault_at, "partition", client=prober_index, shard=0)
        plan.add(args.fault_at, "partition", client=prober_index, shard=1)
        plan.add(fault_end, "heal_all")
    elif args.fault == "gray-loss":
        plan.add(args.fault_at, "gray", duration=args.fault_duration,
                 shard=0, loss_probability=0.5)
    elif args.fault == "gray-slow":
        plan.add(args.fault_at, "gray", duration=args.fault_duration,
                 shard=0, latency_multiplier=8.0)
    elif args.fault == "sor-brownout":
        # Degrade the system of record's provisioned capacity while a
        # backfill sweep hammers the miss path: the backfill admission
        # budget should shed load so foreground SLOs stay green.
        plan.add(args.fault_at, "sor_brownout", factor=0.1,
                 duration=args.fault_duration)
    elif args.fault == "resize":
        # Online grow then shrink under the probed workload: the
        # handoff must stay invisible to the SLO plane (pair with
        # --assert-no-alerts in CI).
        plan.add(args.fault_at, "resize", action="grow", count=1)
        plan.add(args.fault_at + args.fault_duration, "resize",
                 action="shrink", count=1)
    plan.add(args.duration, "heal_all")

    with_sor = args.fault == "sor-brownout"
    report = run_soak(SoakConfig(
        seed=args.seed, duration=args.duration, settle=args.settle,
        num_shards=args.shards, transport=args.transport,
        observe=True, plan=plan, export_dir=args.out_dir,
        sor=with_sor, sor_backfill=with_sor,
        resize="cycle" if args.fault == "resize" else None,
        population=args.population,
        population_rate=args.population_rate,
        population_sample_rate=args.population_sample_rate,
        flight=args.flight))

    probe_series = [s for s in report.timeseries["series"]
                    if s["name"].startswith("cliquemap_probe_ops_total")]
    print(render_timeseries("probe op series (scraped)", probe_series))
    print()
    print(render_sli("SLIs (prober vantage)", report.sli))
    print()
    print(render_alerts("SLO alert transitions", report.alerts))
    if report.sor_stats is not None:
        from ..analysis import render_table
        stats = report.sor_stats
        coord = stats["coordinator"]
        print()
        print(render_table(
            "miss path (read-through coordinator)", ["stat", "value"],
            [["fetches", f"{coord['fetches']}"],
             ["coalesced", f"{coord['coalesced']}"],
             ["backfill shed", f"{stats['backfill_shed']:g}"],
             ["SoR reads", f"{stats['sor_reads']}"],
             ["SoR writes", f"{stats['sor_writes']}"],
             ["SoR throttled", f"{stats['sor_throttled']}"],
             ["cold-key hits", f"{stats['cold_reads']['hits']}"],
             ["cold-key bad hits", f"{stats['cold_reads']['bad_hits']}"]]))
    if report.resize_stats is not None:
        from ..analysis import render_table
        ctl = report.resize_stats["controller"]
        print()
        print(render_table(
            "resize under observation", ["stat", "value"],
            [["grows", f"{ctl['grows']}"],
             ["shrinks", f"{ctl['shrinks']}"],
             ["aborted", f"{ctl['aborted']}"],
             ["entries backfilled", f"{ctl['entries_backfilled']}"],
             ["shadow writes",
              f"{report.resize_stats['shadow_writes']:g}"],
             ["writer SET failures",
              f"{report.foreground['writer_set_failures']}"],
             ["reader inquorate retries",
              f"{report.foreground['reader_inquorate']}"]]))
    if report.population_stats is not None:
        from ..analysis import render_table
        print()
        print(render_table(
            f"client population (N={args.population})", ["stat", "value"],
            _population_rows(report.population_stats)))
    for path in report.exports:
        print(f"wrote {path}")
    if report.bundle:
        print(f"postmortem bundle: {report.bundle}")

    if not report.ok:
        print("FAIL: soak invariants violated")
        return 1
    fired = {a["objective"] for a in report.alerts if a["kind"] == "fire"}
    if args.assert_alert and args.assert_alert not in fired:
        print(f"FAIL: expected the {args.assert_alert!r} alert to fire "
              f"(fired: {sorted(fired) or 'none'})")
        return 1
    if args.assert_no_alerts and fired:
        print(f"FAIL: expected no alerts, but fired: {sorted(fired)}")
        return 1
    print("invariants hold: no bad hits, all keys recovered, "
          "replicas converged")
    return 0


def cmd_perf(args: argparse.Namespace) -> int:
    from ..analysis import (render_multiget_table, run_multiget_benchmark,
                            write_bench_json)

    if args.mode == "profile":
        return cmd_perf_profile(args)
    if args.mode == "history":
        from ..analysis import perf_history
        history = perf_history(args.root)
        print(history["rendered"])
        if history["regressions"]:
            print(f"FAIL: {len(history['regressions'])} metric(s) under "
                  f"their recorded floors")
            return 1
        return 0
    result = run_multiget_benchmark(num_keys=args.keys,
                                    transport=args.transport,
                                    value_bytes=args.value_bytes,
                                    num_shards=args.shards, seed=args.seed)
    print(render_multiget_table(result))
    if args.output:
        write_bench_json(result, args.output)
        print(f"wrote {args.output}")
    ok = (result["engine_cpu_speedup"] >= 2.0 and
          result["latency_speedup"] >= 1.5)
    if not ok:
        print("FAIL: batching speedup below the 2x CPU / 1.5x latency "
              "floors")
    return 0 if ok else 1


def cmd_perf_profile(args: argparse.Namespace) -> int:
    from ..analysis import profile_hotspots

    if args.parallel:
        # Sharded run: every worker profiles its own shard; the per-shard
        # cProfile dumps are aggregated into one top-N table so hotspot
        # analysis reads the same as a single-process profile.
        from ..analysis import profile_parallel_hotspots
        zones = [f"dc-{chr(ord('a') + i)}" for i in range(args.zones)]
        profile_parallel_hotspots(zones=zones, top=args.top,
                                  sort=args.sort,
                                  duration=args.parallel_duration)
        return 0
    result = profile_hotspots(top=args.top, transport=args.transport,
                              num_hosts=args.hosts, ops=args.ops,
                              seed=args.seed, sort=args.sort)
    print(f"workload: transport={args.transport} hosts={args.hosts} "
          f"ops={result['ops']:,} events={result['events']:,} "
          f"wall={result['wall_seconds']:.2f}s "
          f"events/s={result['events_per_sec']:,.0f}")
    return 0


def cmd_model_check(args: argparse.Namespace) -> int:
    from ..model import check

    result = check(max_sets=args.sets, max_erases=args.erases,
                   max_cas=args.cas, allow_crash=not args.no_crash)
    print(f"states explored: {result.states_explored}")
    print(f"transitions:     {result.transitions}")
    if result.ok:
        print("all invariants hold (I1 durability, I2 monotonicity, "
              "I3 no-resurrection, I4 quorum-exists, I5 no-lost-update)")
        return 0
    print(f"VIOLATION: {result.counterexample.detail}")
    print("trace:")
    for step in result.counterexample.trace:
        print(f"  {step}")
    return 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools",
        description="CliqueMap reproduction: operator tools")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("quickstart", help="basic ops + RMA-vs-RPC latency")
    p.add_argument("--shards", type=int, default=6)
    p.add_argument("--transport", default="pony",
                   choices=["pony", "1rma", "rdma"])
    p.set_defaults(func=cmd_quickstart)

    p = sub.add_parser("ads", help="Ads-shaped workload (Fig 8)")
    p.add_argument("--duration", type=float, default=2.0)
    p.add_argument("--keys", type=int, default=500)
    p.set_defaults(func=cmd_ads)

    p = sub.add_parser("geo", help="Geo-shaped diurnal workload (Fig 9)")
    p.add_argument("--duration", type=float, default=4.0)
    p.add_argument("--keys", type=int, default=500)
    p.set_defaults(func=cmd_geo)

    p = sub.add_parser("drill", help="maintenance drill (Figs 13/14)")
    p.add_argument("kind", choices=["planned", "unplanned"])
    p.set_defaults(func=cmd_drill)

    p = sub.add_parser("snapshot", help="monitoring dashboard snapshot")
    p.add_argument("--shards", type=int, default=4)
    p.set_defaults(func=cmd_snapshot)

    p = sub.add_parser("metrics",
                       help="telemetry registry snapshot of a live cell")
    p.add_argument("--shards", type=int, default=4)
    p.add_argument("--transport", default="pony",
                   choices=["pony", "1rma", "rdma"])
    p.add_argument("--keys", type=int, default=60)
    p.add_argument("--ops", type=int, default=240)
    p.add_argument("--demo", action="store_true",
                   help="also render the span tree of the last operation")
    p.set_defaults(func=cmd_metrics)

    p = sub.add_parser("trace",
                       help="synthesize/replay op traces; stitch and "
                            "query distributed traces and flight "
                            "recorders (--stitch / --flight / "
                            "--federation-demo)")
    p.add_argument("--input", help="trace file to replay")
    p.add_argument("--output", help="write a synthesized trace here")
    p.add_argument("--ops", type=int, default=2000)
    p.add_argument("--keys", type=int, default=200)
    p.add_argument("--get-fraction", type=float, default=0.95)
    p.add_argument("--time-scale", type=float, default=1.0)
    p.add_argument("--seed", type=int, default=1)
    # Distributed-trace tooling (repro.analysis.stitch). These modes
    # leave the legacy synthesize/replay path as the default.
    p.add_argument("--stitch", default="",
                   help="stitch per-zone span trees from a JSON file (a "
                        "'zones' map as written by --save, or a "
                        "postmortem bundle's traces.json) and "
                        "pretty-print them")
    p.add_argument("--flight", default="",
                   help="print a flight-recorder dump (a bundle dir or "
                        "its flight.json); combine with --kind/--origin/"
                        "--last")
    p.add_argument("--federation-demo", action="store_true",
                   help="run a small sharded federation with tracing on, "
                        "stitch the per-zone traces, and pretty-print "
                        "cross-zone op journeys")
    p.add_argument("--zones", type=int, default=2,
                   help="federation demo: number of zones")
    p.add_argument("--duration", type=float, default=0.08,
                   help="federation demo: simulated seconds of workload")
    p.add_argument("--save", default="",
                   help="federation demo: also write the raw per-zone "
                        "span trees to this JSON path (input for "
                        "--stitch)")
    p.add_argument("--assert-cross-zone", action="store_true",
                   help="federation demo: exit non-zero unless a "
                        "stitched trace crosses zones")
    p.add_argument("--zone", default="",
                   help="filter: only traces touching this zone")
    p.add_argument("--op", default="",
                   help="filter: only traces containing this span name "
                        "or op label (e.g. 'fed.get')")
    p.add_argument("--min-latency", type=float, default=None,
                   help="filter: only traces at least this long "
                        "(simulated seconds)")
    p.add_argument("--errors-only", action="store_true",
                   help="filter: only traces containing an error status")
    p.add_argument("--limit", type=int, default=3,
                   help="pretty-print at most this many traces")
    p.add_argument("--out", default="",
                   help="write the stitched traces as a Perfetto/Chrome "
                        "trace-event JSON (flow arrows across zones)")
    p.add_argument("--kind", default="",
                   help="flight query: only events of this kind")
    p.add_argument("--origin", default="",
                   help="flight query: only events whose origin contains "
                        "this substring")
    p.add_argument("--last", type=int, default=None,
                   help="flight query: only the last N matching events")
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser("chaos",
                       help="seeded fault-injection soak with invariant "
                            "checks")
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--duration", type=float, default=2.0,
                   help="fault-injection window (simulated seconds)")
    p.add_argument("--settle", type=float, default=2.0,
                   help="post-heal convergence window before verification")
    p.add_argument("--shards", type=int, default=3)
    p.add_argument("--keys", type=int, default=12)
    p.add_argument("--sor", action="store_true",
                   help="attach a system of record, draw SoR brownouts, "
                        "and run the cold-keyspace/backfill herd")
    p.add_argument("--resize", default=None,
                   choices=["cycle", "partition", "gray", "target_crash",
                            "pressure"],
                   help="run a resize chaos scenario (online grow+shrink "
                        "under traffic) instead of the seeded random plan")
    p.add_argument("--transport", default="pony",
                   choices=["pony", "1rma", "rdma"])
    p.add_argument("--flight", action="store_true",
                   help="arm the cell's flight recorder (its event ring "
                        "lands in the postmortem bundle on failure)")
    p.add_argument("--export-dir", default="",
                   help="write a postmortem bundle here if the soak "
                        "ends badly ('' = no bundle)")
    _add_population_args(p)
    p.set_defaults(func=cmd_chaos)

    p = sub.add_parser("observe",
                       help="probed workload under the observability "
                            "plane: scraping, SLIs, burn-rate alerts, "
                            "timeseries/trace export")
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--duration", type=float, default=1.6,
                   help="workload window (simulated seconds)")
    p.add_argument("--settle", type=float, default=0.5)
    p.add_argument("--shards", type=int, default=3)
    p.add_argument("--transport", default="pony",
                   choices=["pony", "1rma", "rdma"])
    p.add_argument("--fault", default="none",
                   choices=["none", "partition", "gray-loss", "gray-slow",
                            "sor-brownout", "resize"],
                   help="inject one fault against the prober/cell "
                        "(sor-brownout attaches a system of record and "
                        "runs the thundering-herd/backfill scenario; "
                        "resize drives an online grow+shrink cycle)")
    p.add_argument("--fault-at", type=float, default=0.8,
                   help="fault injection time (simulated seconds)")
    p.add_argument("--fault-duration", type=float, default=0.6)
    p.add_argument("--out-dir", default=".",
                   help="where to write timeseries.json / trace.json "
                        "('' to skip writing)")
    p.add_argument("--assert-alert", default="",
                   help="exit non-zero unless this SLO objective fired "
                        "(e.g. 'availability')")
    p.add_argument("--assert-no-alerts", action="store_true",
                   help="exit non-zero if any alert fired")
    p.add_argument("--flight", action="store_true",
                   help="arm the cell's flight recorder; its event ring "
                        "lands in the postmortem bundle when an alert "
                        "fires or an invariant breaks")
    _add_population_args(p)
    p.set_defaults(func=cmd_observe)

    p = sub.add_parser("perf",
                       help="perf tooling: multiget datapoint (default, "
                            "writes BENCH_multiget.json) or 'profile' to "
                            "run a workload under cProfile")
    p.add_argument("mode", nargs="?", default="multiget",
                   choices=["multiget", "profile", "history"],
                   help="'multiget' (default) measures batched-vs-"
                        "singleton; 'profile' prints top-N cProfile hot "
                        "spots of a scale workload; 'history' renders "
                        "every BENCH_*.json as one perf-trajectory table "
                        "and fails if any metric is under its floor")
    p.add_argument("--keys", type=int, default=32)
    p.add_argument("--value-bytes", type=int, default=128)
    p.add_argument("--shards", type=int, default=6)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--transport", default="pony",
                   choices=["pony", "1rma", "rdma"])
    p.add_argument("--output", default="BENCH_multiget.json",
                   help="perf-trajectory JSON path ('' to skip writing)")
    p.add_argument("--top", type=int, default=25,
                   help="profile mode: number of hot spots to print")
    p.add_argument("--sort", default="cumulative",
                   choices=["cumulative", "tottime", "ncalls"],
                   help="profile mode: pstats sort order")
    p.add_argument("--hosts", type=int, default=24,
                   help="profile mode: cell size for the workload")
    p.add_argument("--ops", type=int, default=2000,
                   help="profile mode: ops to drive under the profiler")
    p.add_argument("--parallel", action="store_true",
                   help="profile mode: profile a sharded (one worker "
                        "process per zone) federation instead; per-shard "
                        "cProfile output is aggregated into one table")
    p.add_argument("--zones", type=int, default=4,
                   help="profile mode with --parallel: number of zones")
    p.add_argument("--parallel-duration", type=float, default=0.2,
                   help="profile mode with --parallel: simulated seconds "
                        "of federated workload to profile")
    p.add_argument("--root", default=".",
                   help="history mode: directory holding the "
                        "BENCH_*.json files")
    p.set_defaults(func=cmd_perf)

    p = sub.add_parser("model-check",
                       help="explicit-state check of R=3.2 (§5.1)")
    p.add_argument("--sets", type=int, default=2)
    p.add_argument("--erases", type=int, default=1)
    p.add_argument("--cas", type=int, default=0)
    p.add_argument("--no-crash", action="store_true")
    p.set_defaults(func=cmd_model_check)

    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
