"""Operator command-line tools (run with ``python -m repro.tools``)."""

from .cli import build_parser, main

__all__ = ["build_parser", "main"]
