"""Discrete-event simulation kernel.

This is the substrate every other subsystem runs on: simulated hosts, NICs,
transports, RPCs, and the CliqueMap cell itself are all processes scheduled
by the :class:`Simulator` here.

The model follows the classic generator-process style (as popularized by
simpy, re-implemented from scratch): a *process* is a generator that yields
:class:`Event` objects and is resumed when the yielded event triggers.
Simulated time is a float number of seconds.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, List, Optional


class SimulationError(Exception):
    """Raised for misuse of the simulation kernel."""


class Interrupt(Exception):
    """Thrown into a process when another process interrupts it.

    The ``cause`` attribute carries the value supplied to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class StopSimulation(Exception):
    """Internal: raised to stop :meth:`Simulator.run` at an ``until`` event."""


class Event:
    """A one-shot occurrence in simulated time.

    An event starts *pending*, becomes *triggered* when :meth:`succeed` or
    :meth:`fail` is called, and is *processed* once its callbacks have run.
    Processes wait on events by yielding them.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_triggered",
                 "_processed", "defused")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._ok: bool = True
        self._triggered = False
        self._processed = False
        # A failed event with no callbacks re-raises inside run() unless it
        # has been explicitly defused (e.g. fire-and-forget processes).
        self.defused = False

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def processed(self) -> bool:
        return self._processed

    @property
    def ok(self) -> bool:
        if not self._triggered:
            raise SimulationError("event has not been triggered")
        return self._ok

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimulationError("event has not been triggered")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._triggered:
            raise SimulationError("event already triggered")
        self._triggered = True
        self._ok = True
        self._value = value
        self.sim._schedule_event(self)
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Trigger the event as failed with exception ``exc``."""
        if not isinstance(exc, BaseException):
            raise SimulationError("fail() requires an exception instance")
        if self._triggered:
            raise SimulationError("event already triggered")
        self._triggered = True
        self._ok = False
        self._value = exc
        self.sim._schedule_event(self)
        return self

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Run ``fn(event)`` when the event is processed.

        If the event has already been processed the callback is scheduled to
        run immediately (at the current simulated time).
        """
        if self.callbacks is None:
            self.sim.call_soon(fn, self)
        else:
            self.callbacks.append(fn)

    def _process(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        self._processed = True
        if not self._ok and not callbacks and not self.defused:
            raise self._value
        for fn in callbacks or ():
            fn(self)


class Timeout(Event):
    """An event that triggers ``delay`` seconds in the future."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(sim)
        self._triggered = True
        self._ok = True
        self._value = value
        sim._schedule_event(self, delay)


class Process(Event):
    """A running generator process; also an event that triggers on exit.

    The process succeeds with the generator's return value, or fails with
    the exception that escaped it.
    """

    __slots__ = ("_gen", "_wait_serial", "name")

    def __init__(self, sim: "Simulator", gen: Generator, name: str = ""):
        super().__init__(sim)
        if not hasattr(gen, "send"):
            raise SimulationError("process() requires a generator")
        self._gen = gen
        self.name = name or getattr(gen, "__name__", "process")
        # Serial number of the wait we are parked on; bumped by interrupt()
        # so that a late-firing original event cannot double-resume us.
        self._wait_serial = 0
        sim.call_soon(self._resume_with, None, self._wait_serial)

    @property
    def is_alive(self) -> bool:
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self._triggered:
            return
        self._wait_serial += 1
        self.sim.call_soon(self._throw_with, Interrupt(cause),
                           self._wait_serial)

    def _on_wait_done(self, serial: int, event: Event) -> None:
        if serial != self._wait_serial or self._triggered:
            return  # stale wake-up (we were interrupted meanwhile)
        if event.ok:
            self._resume_with(event.value, serial)
        else:
            event.defused = True
            self._throw_with(event.value, serial)

    def _resume_with(self, value: Any, serial: int) -> None:
        if serial != self._wait_serial or self._triggered:
            return
        self._step(lambda: self._gen.send(value))

    def _throw_with(self, exc: BaseException, serial: int) -> None:
        if self._triggered:
            return
        self._step(lambda: self._gen.throw(exc))

    def _step(self, advance: Callable[[], Any]) -> None:
        try:
            target = advance()
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - process died
            self.fail(exc)
            return
        if not isinstance(target, Event):
            self.fail(SimulationError(
                f"process {self.name!r} yielded non-event {target!r}"))
            return
        if target is self:
            self.fail(SimulationError("process cannot wait on itself"))
            return
        self._wait_serial += 1
        serial = self._wait_serial
        target.add_callback(lambda ev: self._on_wait_done(serial, ev))


class Condition(Event):
    """Base for composite events over a set of child events."""

    __slots__ = ("_events", "_remaining")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self._events = list(events)
        self._remaining = len(self._events)
        if not self._events:
            self.succeed([])
            return
        for ev in self._events:
            ev.add_callback(self._child_done)

    def _child_done(self, event: Event) -> None:
        raise NotImplementedError


class AllOf(Condition):
    """Triggers when every child has triggered; value is the list of values.

    Fails (with the first failure) if any child fails.
    """

    __slots__ = ()

    def _child_done(self, event: Event) -> None:
        if self._triggered:
            if not event.ok:
                event.defused = True
            return
        if not event.ok:
            event.defused = True
            self.fail(event.value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([ev.value for ev in self._events])


class AnyOf(Condition):
    """Triggers when the first child triggers; value is ``(event, value)``.

    Fails if the first child to trigger failed. Later children are defused.
    """

    __slots__ = ()

    def _child_done(self, event: Event) -> None:
        if self._triggered:
            if not event.ok:
                event.defused = True
            return
        if event.ok:
            self.succeed((event, event.value))
        else:
            event.defused = True
            self.fail(event.value)


class Simulator:
    """The event loop: a priority queue of (time, seq, action) entries."""

    def __init__(self):
        self.now: float = 0.0
        self._heap: list = []
        self._seq = 0
        self._running = False

    # -- scheduling ------------------------------------------------------

    def _push(self, delay: float, action: Callable[[], None]) -> None:
        if delay < 0:
            # An entry before ``now`` would make simulated time run
            # backwards for everyone already scheduled.
            raise SimulationError(f"cannot schedule {delay!r}s in the past")
        self._seq += 1
        heapq.heappush(self._heap, (self.now + delay, self._seq, action))

    def _schedule_event(self, event: Event, delay: float = 0.0) -> None:
        self._push(delay, event._process)

    def call_soon(self, fn: Callable, *args: Any) -> None:
        """Run ``fn(*args)`` at the current simulated time."""
        self._push(0.0, lambda: fn(*args))

    def call_in(self, delay: float, fn: Callable, *args: Any) -> None:
        """Run ``fn(*args)`` after ``delay`` simulated seconds."""
        self._push(delay, lambda: fn(*args))

    # -- event constructors ----------------------------------------------

    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, gen: Generator, name: str = "") -> Process:
        return Process(self, gen, name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- running ----------------------------------------------------------

    def run(self, until: Any = None) -> Any:
        """Run the simulation.

        ``until`` may be ``None`` (run until no events remain), a number
        (run until that simulated time), or an :class:`Event` (run until it
        triggers; its value is returned).
        """
        if self._running:
            raise SimulationError("simulator is already running")
        stop_event: Optional[Event] = None
        deadline: Optional[float] = None
        if isinstance(until, Event):
            stop_event = until
            stop_event.add_callback(self._stop_callback)
        elif until is not None:
            deadline = float(until)
            if deadline < self.now:
                raise SimulationError("until lies in the past")

        self._running = True
        try:
            while self._heap:
                at, _seq, action = self._heap[0]
                if deadline is not None and at > deadline:
                    break
                heapq.heappop(self._heap)
                self.now = at
                try:
                    action()
                except StopSimulation:
                    break
            if deadline is not None and self.now < deadline:
                self.now = deadline
        finally:
            self._running = False

        if stop_event is not None:
            if not stop_event.triggered:
                raise SimulationError(
                    "simulation ended before the until-event triggered")
            if not stop_event.ok:
                raise stop_event.value
            return stop_event.value
        return None

    @staticmethod
    def _stop_callback(event: Event) -> None:
        raise StopSimulation

    def peek(self) -> float:
        """Time of the next scheduled action, or ``inf`` when idle."""
        return self._heap[0][0] if self._heap else float("inf")
