"""Discrete-event simulation kernel.

This is the substrate every other subsystem runs on: simulated hosts, NICs,
transports, RPCs, and the CliqueMap cell itself are all processes scheduled
by the :class:`Simulator` here.

The model follows the classic generator-process style (as popularized by
simpy, re-implemented from scratch): a *process* is a generator that yields
:class:`Event` objects and is resumed when the yielded event triggers.
Simulated time is a float number of seconds.

Scheduling is closure-free on the hot path: every queue entry is a
``(time, seq, fn, args)`` tuple, zero-delay actions bypass the heap through
a same-time FIFO ready-queue, and :meth:`Simulator.sleep` recycles timeout
objects through a pool for tight retry/backoff loops. The global execution
order is still exactly sort-by-``(time, seq)`` — the ready-queue is an
ordering-preserving fast path, so a given seed produces the same event
sequence as a pure-heap kernel.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Generator, Iterable, List, Optional, Tuple

# What a process "waits on" before its first step has run; lets
# interrupt() cancel the pending start the same way it cancels any
# other pending wake-up (by changing the identity the callback checks).
_PENDING_START = object()

class SimulationError(Exception):
    """Raised for misuse of the simulation kernel."""

class Interrupt(Exception):
    """Thrown into a process when another process interrupts it.

    The ``cause`` attribute carries the value supplied to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause

class StopSimulation(Exception):
    """Internal: raised to stop :meth:`Simulator.run` at an ``until`` event."""

class Event:
    """A one-shot occurrence in simulated time.

    An event starts *pending*, becomes *triggered* when :meth:`succeed` or
    :meth:`fail` is called, and is *processed* once its callbacks have run.
    Processes wait on events by yielding them.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_triggered",
                 "_processed", "defused")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: Optional[List[Tuple[Callable, tuple]]] = []
        self._value: Any = None
        self._ok: bool = True
        self._triggered = False
        self._processed = False
        # A failed event with no callbacks re-raises inside run() unless it
        # has been explicitly defused (e.g. fire-and-forget processes).
        self.defused = False

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def processed(self) -> bool:
        return self._processed

    @property
    def ok(self) -> bool:
        if not self._triggered:
            raise SimulationError("event has not been triggered")
        return self._ok

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimulationError("event has not been triggered")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._triggered:
            raise SimulationError(
                f"event already triggered (now={self.sim.now!r})")
        self._triggered = True
        self._ok = True
        self._value = value
        # Inlined sim._schedule_event(self): a zero-delay ready-queue
        # append — every event trigger in the system passes through here.
        sim = self.sim
        sim._seq += 1
        sim._ready.append((sim._seq, self._process, ()))
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Trigger the event as failed with exception ``exc``."""
        if not isinstance(exc, BaseException):
            raise SimulationError("fail() requires an exception instance")
        if self._triggered:
            raise SimulationError(
                f"event already triggered (now={self.sim.now!r})")
        self._triggered = True
        self._ok = False
        self._value = exc
        sim = self.sim
        sim._seq += 1
        sim._ready.append((sim._seq, self._process, ()))
        return self

    def add_callback(self, fn: Callable, *args: Any) -> None:
        """Run ``fn(event, *args)`` when the event is processed.

        If the event has already been processed the callback is scheduled to
        run immediately (at the current simulated time).
        """
        if self.callbacks is None:
            self.sim.call_soon(fn, self, *args)
        else:
            self.callbacks.append((fn, args))

    def _process(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        self._processed = True
        if not self._ok and not callbacks and not self.defused:
            raise self._value
        for fn, args in callbacks or ():
            fn(self, *args)

class Timeout(Event):
    """An event that triggers ``delay`` seconds in the future.

    Negative delays are validated exactly once, here at scheduling time
    (mirroring :meth:`Simulator._push`), instead of the pre-rewrite
    double check in both the event constructor and the scheduler.
    """

    __slots__ = ()

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        # Inlined Event.__init__ + trigger + Simulator._push: timeouts are
        # the single most allocated event type, so skip the double field
        # initialization and the extra scheduling call frame.
        self.sim = sim
        self.callbacks = []
        self._value = value
        self._ok = True
        self._triggered = True
        self._processed = False
        self.defused = False
        if delay < 0:
            raise SimulationError(
                f"cannot schedule {delay!r}s in the past (now={sim.now!r})")
        sim._seq += 1
        if delay == 0:
            sim._ready.append((sim._seq, self._process, ()))
        else:
            heapq.heappush(
                sim._heap, (sim.now + delay, sim._seq, self._process, ()))

    def _process(self) -> None:
        # Timeouts always succeed, so the base class's unhandled-failure
        # bookkeeping is dead weight here.
        callbacks, self.callbacks = self.callbacks, None
        self._processed = True
        for fn, args in callbacks or ():
            fn(self, *args)

class _PooledTimeout(Timeout):
    """A recyclable timeout for one-shot sleeps (see :meth:`Simulator.sleep`).

    After its callbacks run, the object is returned to the simulator's pool
    and may be re-armed with a new value. It must therefore only be consumed
    by the single process that yields it, never stored, re-yielded, or handed
    to :meth:`Simulator.any_of` / :meth:`Simulator.all_of` (conditions read
    child values after later children fire, by which time a pooled timeout
    may already carry the value of an unrelated sleep).
    """

    __slots__ = ("_bound_process",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        super().__init__(sim, delay, value)
        # Bound once: re-arming from the pool schedules this handle
        # without creating a fresh bound method per sleep.
        self._bound_process = self._process

    def _process(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        self._processed = True
        for fn, args in callbacks or ():
            fn(self, *args)
        # Inlined Simulator._recycle: reset and return to the pool.
        sim = self.sim
        pool = sim._timeout_pool
        if len(pool) < sim._POOL_MAX:
            self.callbacks = []
            self._value = None
            self._triggered = False
            self._processed = False
            self.defused = False
            pool.append(self)

class Process(Event):
    """A running generator process; also an event that triggers on exit.

    The process succeeds with the generator's return value, or fails with
    the exception that escaped it.
    """

    __slots__ = ("_gen", "_send", "_throw", "_wait_cb", "_waiting_on",
                 "name")

    def __init__(self, sim: "Simulator", gen: Generator, name: str = ""):
        super().__init__(sim)
        if not hasattr(gen, "send"):
            raise SimulationError("process() requires a generator")
        self._gen = gen
        # Bound once per process: every resume/wait re-uses these handles
        # instead of allocating a bound method (or closure) per step.
        self._send = gen.send
        self._throw = gen.throw
        self._wait_cb = self._on_wait_done
        self.name = name or getattr(gen, "__name__", "process")
        # Identity of the event we are parked on; cleared by interrupt()
        # so that a late-firing original event cannot double-resume us.
        # (Replaces the old per-wait serial number: an identity check
        # costs no allocation on the wait registration path.)
        self._waiting_on: Any = _PENDING_START
        sim.call_soon(self._start)

    @property
    def is_alive(self) -> bool:
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self._triggered:
            return
        self._waiting_on = None  # invalidate any pending wake-up
        self.sim.call_soon(self._throw_with, Interrupt(cause))

    def _start(self) -> None:
        if self._waiting_on is not _PENDING_START or self._triggered:
            return  # interrupted (or killed) before the first step
        self._step(self._send, None)

    def _on_wait_done(self, event: Event) -> None:
        if event is not self._waiting_on or self._triggered:
            return  # stale wake-up (we were interrupted meanwhile)
        # Body of _step() inlined: this is the resume path every process
        # wait in the simulation funnels through.
        try:
            if event._ok:
                target = self._send(event._value)
            else:
                event.defused = True
                target = self._throw(event._value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - process died
            self.fail(exc)
            return
        if not isinstance(target, Event):
            self.fail(SimulationError(
                f"process {self.name!r} yielded non-event {target!r}"))
            return
        if target is self:
            self.fail(SimulationError("process cannot wait on itself"))
            return
        self._waiting_on = target
        cbs = target.callbacks
        if cbs is None:
            self.sim.call_soon(self._wait_cb, target)
        else:
            cbs.append((self._wait_cb, ()))

    def _throw_with(self, exc: BaseException) -> None:
        if self._triggered:
            return
        self._step(self._throw, exc)

    def _step(self, advance: Callable[[Any], Any], arg: Any) -> None:
        try:
            target = advance(arg)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - process died
            self.fail(exc)
            return
        if not isinstance(target, Event):
            self.fail(SimulationError(
                f"process {self.name!r} yielded non-event {target!r}"))
            return
        if target is self:
            self.fail(SimulationError("process cannot wait on itself"))
            return
        self._waiting_on = target
        # Inlined target.add_callback(self._wait_cb) — this is the single
        # hottest call site in the kernel.
        cbs = target.callbacks
        if cbs is None:
            self.sim.call_soon(self._wait_cb, target)
        else:
            cbs.append((self._wait_cb, ()))

class Condition(Event):
    """Base for composite events over a set of child events."""

    __slots__ = ("_events", "_remaining")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self._events = list(events)
        self._remaining = len(self._events)
        if not self._events:
            self.succeed([])
            return
        child_done = self._child_done  # bound once for the whole fan-out
        for ev in self._events:
            cbs = ev.callbacks
            if cbs is None:
                sim.call_soon(child_done, ev)
            else:
                cbs.append((child_done, ()))

    def _child_done(self, event: Event) -> None:
        raise NotImplementedError

class AllOf(Condition):
    """Triggers when every child has triggered; value is the list of values.

    Fails (with the first failure) if any child fails.
    """

    __slots__ = ()

    def _child_done(self, event: Event) -> None:
        if self._triggered:
            if not event._ok:
                event.defused = True
            return
        if not event._ok:
            event.defused = True
            self.fail(event._value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([ev._value for ev in self._events])

class AnyOf(Condition):
    """Triggers when the first child triggers; value is ``(event, value)``.

    Fails if the first child to trigger failed. Later children are defused.
    """

    __slots__ = ()

    def _child_done(self, event: Event) -> None:
        if self._triggered:
            if not event._ok:
                event.defused = True
            return
        if event._ok:
            self.succeed((event, event._value))
        else:
            event.defused = True
            self.fail(event._value)

class Simulator:
    """The event loop: a time-ordered queue of ``(time, seq, fn, args)``.

    Two structures back the queue: a binary heap for future entries and a
    FIFO deque (the *ready queue*) for entries at the current time. The
    zero-delay storm of process resumes and event callbacks never touches
    the heap; the run loop interleaves the two by ``(time, seq)`` so the
    observable order is identical to a single sorted queue.
    """

    _POOL_MAX = 256

    def __init__(self):
        self.now: float = 0.0
        self._heap: list = []
        self._ready: deque = deque()
        self._seq = 0
        self._running = False
        self._timeout_pool: list = []
        # Clock taps: periodic observer callbacks fired synchronously as
        # simulated time advances. They never touch the scheduling queue
        # (no sequence numbers, no events), so a tapped run executes the
        # exact same event order as an untapped one — the property the
        # telemetry scraper's seed-for-seed parity guarantee rests on.
        # With no taps registered the run loop pays one float compare
        # per time advance.
        self._taps: list = []                  # [next_at, interval, fn]
        self._next_tap_at: float = float("inf")

    # -- scheduling ------------------------------------------------------

    def _push(self, delay: float, fn: Callable, args: tuple) -> None:
        """Single validation point for all scheduling."""
        if delay < 0:
            # An entry before ``now`` would make simulated time run
            # backwards for everyone already scheduled.
            raise SimulationError(
                f"cannot schedule {delay!r}s in the past (now={self.now!r})")
        self._seq += 1
        if delay == 0:
            self._ready.append((self._seq, fn, args))
        else:
            heapq.heappush(self._heap, (self.now + delay, self._seq, fn, args))

    def _schedule_event(self, event: Event, delay: float = 0.0) -> None:
        self._push(delay, event._process, ())

    def call_soon(self, fn: Callable, *args: Any) -> None:
        """Run ``fn(*args)`` at the current simulated time."""
        self._seq += 1
        self._ready.append((self._seq, fn, args))

    def call_in(self, delay: float, fn: Callable, *args: Any) -> None:
        """Run ``fn(*args)`` after ``delay`` simulated seconds."""
        self._push(delay, fn, args)

    # -- clock taps -------------------------------------------------------

    def add_tap(self, interval: float, fn: Callable[[float], Any],
                first_at: Optional[float] = None) -> list:
        """Register a periodic observer fired as simulated time advances.

        ``fn(tick_time)`` runs synchronously inside the run loop whenever
        time is about to advance past a tick (every ``interval`` seconds,
        first at ``first_at`` or ``now + interval``). ``sim.now`` reads as
        the tick time during the call. Taps are for *observation* —
        sampling metrics, evaluating alert rules — and must not schedule
        events or processes: they consume no scheduling sequence numbers,
        which is what keeps a tapped run's event order and count identical
        to an untapped run of the same seed.

        Returns a handle for :meth:`remove_tap`.
        """
        if interval <= 0:
            raise SimulationError(
                f"tap interval must be > 0, got {interval!r}")
        start = self.now + interval if first_at is None \
            else max(first_at, self.now)
        tap = [start, interval, fn]
        self._taps.append(tap)
        if start < self._next_tap_at:
            self._next_tap_at = start
        return tap

    def remove_tap(self, tap: list) -> bool:
        """Deregister a tap handle; True if it was registered."""
        try:
            self._taps.remove(tap)
        except ValueError:
            return False
        self._next_tap_at = min((t[0] for t in self._taps),
                                default=float("inf"))
        return True

    def _fire_taps(self, limit: float) -> None:
        """Fire every tap tick due at or before ``limit``, in tick order."""
        saved_now = self.now
        while True:
            due = None
            for tap in self._taps:
                if tap[0] <= limit and (due is None or tap[0] < due[0]):
                    due = tap
            if due is None:
                break
            at = due[0]
            due[0] = at + due[1]
            # Ticks read as "now" so tap callbacks that consult the clock
            # (e.g. gauges stamped with sample time) see the tick instant.
            self.now = at
            due[2](at)
        self.now = saved_now
        self._next_tap_at = min((t[0] for t in self._taps),
                                default=float("inf"))

    # -- event constructors ----------------------------------------------

    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def sleep(self, delay: float, value: Any = None) -> Timeout:
        """A pooled one-shot timeout for retry/backoff loops.

        The returned event is recycled as soon as its callbacks have run:
        yield it from exactly one process and do not store it, re-yield it,
        or pass it to :meth:`any_of` / :meth:`all_of` — use :meth:`timeout`
        for anything longer-lived than a single ``yield``.
        """
        pool = self._timeout_pool
        if pool:
            if delay < 0:
                raise SimulationError(
                    f"cannot schedule {delay!r}s in the past "
                    f"(now={self.now!r})")
            ev = pool.pop()
            ev._triggered = True
            ev._value = value
            self._seq += 1
            if delay == 0:
                self._ready.append((self._seq, ev._bound_process, ()))
            else:
                heapq.heappush(
                    self._heap,
                    (self.now + delay, self._seq, ev._bound_process, ()))
            return ev
        return _PooledTimeout(self, delay, value)

    def process(self, gen: Generator, name: str = "") -> Process:
        return Process(self, gen, name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- running ----------------------------------------------------------

    def run(self, until: Any = None) -> Any:
        """Run the simulation.

        ``until`` may be ``None`` (run until no events remain), a number
        (run until that simulated time), or an :class:`Event` (run until it
        triggers; its value is returned).
        """
        if self._running:
            raise SimulationError("simulator is already running")
        stop_event: Optional[Event] = None
        deadline: Optional[float] = None
        if isinstance(until, Event):
            stop_event = until
            stop_event.add_callback(self._stop_callback)
        elif until is not None:
            deadline = float(until)
            if deadline < self.now:
                raise SimulationError(
                    f"until={deadline!r} lies in the past (now={self.now!r})")

        heap = self._heap
        ready = self._ready
        heappop = heapq.heappop
        self._running = True
        try:
            while True:
                if ready:
                    # Interleave with heap entries already due at ``now``:
                    # global order is exactly sort-by-(time, seq).
                    if heap and heap[0][0] <= self.now \
                            and heap[0][1] < ready[0][0]:
                        _at, _seq, fn, args = heappop(heap)
                    else:
                        _seq, fn, args = ready.popleft()
                elif heap:
                    at = heap[0][0]
                    if deadline is not None and at > deadline:
                        break
                    if at >= self._next_tap_at:
                        self._fire_taps(at)
                    _at, _seq, fn, args = heappop(heap)
                    self.now = at
                else:
                    break
                try:
                    fn(*args)
                except StopSimulation:
                    break
            if deadline is not None and self.now < deadline:
                if deadline >= self._next_tap_at:
                    self._fire_taps(deadline)
                self.now = deadline
        finally:
            self._running = False

        if stop_event is not None:
            if not stop_event.triggered:
                raise SimulationError(
                    "simulation ended before the until-event triggered "
                    f"(now={self.now!r})")
            if not stop_event.ok:
                raise stop_event.value
            return stop_event.value
        return None

    @staticmethod
    def _stop_callback(event: Event) -> None:
        raise StopSimulation

    def peek(self) -> float:
        """Time of the next scheduled action, or ``inf`` when idle."""
        if self._ready:
            return self.now
        return self._heap[0][0] if self._heap else float("inf")

    # -- sharded execution (see repro.sim.parallel) -----------------------

    def run_until(self, horizon: float) -> float:
        """Run every action due at or before ``horizon``; clock ends there.

        The bounded-window primitive conservative parallel simulation is
        built on: a shard coordinator advances each shard's kernel in
        lookahead-sized windows by calling ``run_until`` repeatedly.
        Actions scheduled exactly at ``horizon`` execute (the window is
        half-open on the left: ``(prev_horizon, horizon]``), and on
        return ``now == horizon`` even if the shard went idle earlier,
        so clock taps fire and every shard leaves the window at the same
        instant. Returns the new ``now``.
        """
        if horizon < self.now:
            raise SimulationError(
                f"run_until({horizon!r}) lies in the past "
                f"(now={self.now!r})")
        self.run(until=horizon)
        return self.now

    def lower_bound(self) -> float:
        """Lower-bound timestamp (LBTS) of this kernel.

        No not-yet-executed local action can run earlier than this time,
        so no locally-generated message can carry an earlier send time.
        A neighbour shard with lookahead ``L`` on the connecting link may
        therefore safely advance to ``lower_bound() + L``. Identical to
        :meth:`peek`; named separately so the synchronization protocol
        reads as what it is.
        """
        if self._ready:
            return self.now
        return self._heap[0][0] if self._heap else float("inf")

    def inject(self, at: float, fn: Callable, *args: Any) -> None:
        """Schedule ``fn(*args)`` at the absolute simulated time ``at``.

        The externally-sourced-event path: cross-shard deliveries enter
        the kernel here, between windows, with their original arrival
        timestamp. The entry takes the next sequence number at injection
        time, so a deterministic injection order — the coordinator sorts
        deliveries by ``(time, shard_id, seq)`` — yields a deterministic
        ``(time, seq)`` total order against local events. ``at`` must
        not lie in the shard's past; the conservative lookahead protocol
        guarantees arrivals never do, and this guard turns any protocol
        violation into a loud error instead of silent time travel.
        """
        if at < self.now:
            raise SimulationError(
                f"cannot inject at {at!r}, in the past (now={self.now!r})")
        self._seq += 1
        if at == self.now:
            self._ready.append((self._seq, fn, args))
        else:
            heapq.heappush(self._heap, (at, self._seq, fn, args))
