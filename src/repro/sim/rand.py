"""Deterministic random streams and workload distributions.

Every stochastic component draws from its own named :class:`RandomStream`
derived from a single experiment seed, so simulations are reproducible and
individual components can be re-seeded without perturbing others.
"""

from __future__ import annotations

import bisect
import hashlib
import math
import random
from typing import List, Sequence, Tuple


class RandomStream:
    """A seeded random source with the distributions the workloads need."""

    def __init__(self, seed: int, name: str = ""):
        digest = hashlib.blake2b(
            f"{seed}/{name}".encode(), digest_size=8).digest()
        self._rng = random.Random(int.from_bytes(digest, "big"))
        self.name = name

    def child(self, name: str) -> "RandomStream":
        """Derive an independent stream for a sub-component."""
        return RandomStream(self._rng.randrange(2 ** 62), name)

    # -- basic draws --------------------------------------------------------

    def uniform(self, lo: float, hi: float) -> float:
        return self._rng.uniform(lo, hi)

    def randint(self, lo: int, hi: int) -> int:
        return self._rng.randint(lo, hi)

    def random(self) -> float:
        return self._rng.random()

    def random_n(self, n: int) -> List[float]:
        """``n`` uniform draws in one call (same stream as :meth:`random`)."""
        rand = self._rng.random
        return [rand() for _ in range(n)]

    def choice(self, seq: Sequence):
        return self._rng.choice(seq)

    def sample(self, seq: Sequence, k: int):
        return self._rng.sample(seq, k)

    def shuffle(self, seq: List) -> None:
        self._rng.shuffle(seq)

    def expovariate(self, rate: float) -> float:
        """Exponential inter-arrival time for a Poisson process of ``rate``."""
        return self._rng.expovariate(rate)

    def lognormal(self, mu: float, sigma: float) -> float:
        return self._rng.lognormvariate(mu, sigma)

    def gauss(self, mu: float, sigma: float) -> float:
        return self._rng.gauss(mu, sigma)

    def bytes(self, n: int) -> bytes:
        return self._rng.randbytes(n)

    def bernoulli(self, p: float) -> bool:
        return self._rng.random() < p


class ZipfSampler:
    """Draws ranks in ``[0, n)`` with probability proportional to 1/(r+1)^s.

    Uses a precomputed CDF with binary search, which is exact and fast for
    the corpus sizes simulated here.
    """

    def __init__(self, stream: RandomStream, n: int, s: float = 0.99):
        if n < 1:
            raise ValueError("n must be >= 1")
        self._stream = stream
        self.n = n
        self.s = s
        weights = [1.0 / (r + 1) ** s for r in range(n)]
        total = math.fsum(weights)
        cdf = []
        acc = 0.0
        for w in weights:
            acc += w / total
            cdf.append(acc)
        cdf[-1] = 1.0
        self._cdf = cdf

    def sample(self) -> int:
        u = self._stream.random()
        return bisect.bisect_left(self._cdf, u)

    def sample_n(self, n: int) -> List[int]:
        """``n`` ranks in one bulk draw; same sequence as ``n`` samples."""
        cdf = self._cdf
        search = bisect.bisect_left
        return [search(cdf, u) for u in self._stream.random_n(n)]


class MixtureSizeDistribution:
    """Object sizes drawn from a weighted mixture of lognormal components.

    Used to shape the Ads / Geo object-size CDFs of Figure 10: a body of
    small objects with a tail of much larger ones.
    """

    def __init__(self, stream: RandomStream,
                 components: Sequence[Tuple[float, float, float]],
                 min_size: int = 8, max_size: int = 8 * 1024 * 1024):
        """``components`` is a list of ``(weight, mu, sigma)`` for lognormals
        over bytes."""
        if not components:
            raise ValueError("at least one mixture component required")
        total = sum(w for w, _mu, _sig in components)
        self._components = [(w / total, mu, sig) for w, mu, sig in components]
        self._stream = stream
        self.min_size = min_size
        self.max_size = max_size

    def sample(self) -> int:
        u = self._stream.random()
        acc = 0.0
        mu = sigma = 0.0
        for w, m, s in self._components:
            acc += w
            mu, sigma = m, s
            if u <= acc:
                break
        size = int(self._stream.lognormal(mu, sigma))
        return max(self.min_size, min(self.max_size, size))

    def cdf_points(self, samples: int = 20000) -> List[Tuple[int, float]]:
        """Empirical CDF as (size, fraction<=size) points for reporting."""
        draws = sorted(self.sample() for _ in range(samples))
        step = max(1, samples // 200)
        return [(draws[i], (i + 1) / samples)
                for i in range(0, samples, step)] + [(draws[-1], 1.0)]


def percentile(sorted_values: Sequence[float], p: float) -> float:
    """Nearest-rank percentile over pre-sorted values; ``p`` in [0, 100]."""
    if not sorted_values:
        raise ValueError("no values")
    if p <= 0:
        return sorted_values[0]
    if p >= 100:
        return sorted_values[-1]
    rank = max(0, min(len(sorted_values) - 1,
                      math.ceil(p / 100.0 * len(sorted_values)) - 1))
    return sorted_values[rank]
