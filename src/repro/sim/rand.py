"""Deterministic random streams and workload distributions.

Every stochastic component draws from its own named :class:`RandomStream`
derived from a single experiment seed, so simulations are reproducible and
individual components can be re-seeded without perturbing others.
"""

from __future__ import annotations

import bisect
import hashlib
import math
import random
from array import array
from itertools import accumulate
from typing import List, Sequence, Tuple


class RandomStream:
    """A seeded random source with the distributions the workloads need."""

    def __init__(self, seed: int, name: str = ""):
        digest = hashlib.blake2b(
            f"{seed}/{name}".encode(), digest_size=8).digest()
        self._rng = random.Random(int.from_bytes(digest, "big"))
        self.name = name

    def child(self, name: str) -> "RandomStream":
        """Derive an independent stream for a sub-component."""
        return RandomStream(self._rng.randrange(2 ** 62), name)

    # -- basic draws --------------------------------------------------------

    def uniform(self, lo: float, hi: float) -> float:
        return self._rng.uniform(lo, hi)

    def randint(self, lo: int, hi: int) -> int:
        return self._rng.randint(lo, hi)

    def random(self) -> float:
        return self._rng.random()

    def random_n(self, n: int) -> List[float]:
        """``n`` uniform draws in one call (same stream as :meth:`random`)."""
        rand = self._rng.random
        return [rand() for _ in range(n)]

    def choice(self, seq: Sequence):
        return self._rng.choice(seq)

    def sample(self, seq: Sequence, k: int):
        return self._rng.sample(seq, k)

    def shuffle(self, seq: List) -> None:
        self._rng.shuffle(seq)

    def expovariate(self, rate: float) -> float:
        """Exponential inter-arrival time for a Poisson process of ``rate``."""
        return self._rng.expovariate(rate)

    def lognormal(self, mu: float, sigma: float) -> float:
        return self._rng.lognormvariate(mu, sigma)

    def gauss(self, mu: float, sigma: float) -> float:
        return self._rng.gauss(mu, sigma)

    def bytes(self, n: int) -> bytes:
        return self._rng.randbytes(n)

    def bernoulli(self, p: float) -> bool:
        return self._rng.random() < p


class ZipfSampler:
    """Draws ranks in ``[0, n)`` with probability proportional to 1/(r+1)^s.

    Two regimes, split at ``head`` (default 65536 ranks):

    * ``n <= head`` — a precomputed CDF (an ``array('d')``, 8 bytes per
      rank instead of a boxed-float list) with binary search. The float
      operations match the original list-based CDF term for term, so
      draws are seed-for-seed identical to every earlier release.
    * ``n > head`` — a **two-level** sampler: the hot head keeps its
      exact CDF table, and tail ranks (``head <= r < n``) are drawn by
      inverting the continuous density ``x^-s`` over ``[head+1, n+1]``
      and thinning with a rejection step that corrects the continuous
      envelope to the discrete pmf. Construction is O(head) in time and
      memory — a 10^7-key corpus builds in milliseconds with a 512 KB
      table where the single-level CDF took tens of seconds and ~GBs.
      The tail's total mass uses an Euler-Maclaurin estimate of the
      generalized harmonic remainder (relative error ~1e-9 at the
      default split). Tail draws consume extra uniforms, so the draw
      *sequence* differs from the exact regime; the *distribution* is
      the same (see tests), and which regime runs is a pure function of
      ``(n, head)`` — deterministic for a given configuration.
    """

    #: Ranks covered by the exact head table in two-level mode (and the
    #: largest corpus the single-level exact CDF is built for).
    HEAD_RANKS = 65536

    def __init__(self, stream: RandomStream, n: int, s: float = 0.99,
                 head: int = None):
        if n < 1:
            raise ValueError("n must be >= 1")
        head = self.HEAD_RANKS if head is None else head
        if head < 1:
            raise ValueError("head must be >= 1")
        self._stream = stream
        self.n = n
        self.s = s
        self.head = min(n, head)
        # Weight of rank r is value k = r+1 to the -s. The 1.0/(k**s)
        # spelling (not k**-s) is load-bearing: it reproduces the
        # original CDF bit for bit in the exact regime.
        weights = [1.0 / (r + 1) ** s for r in range(self.head)]
        head_sum = math.fsum(weights)
        if self.n <= self.head:
            total = head_sum
            self._tail_start = 1.0       # head covers all of [0, 1)
        else:
            tail_sum = self._harmonic_tail(self.head + 1, self.n, s)
            total = head_sum + tail_sum
            self._tail_start = head_sum / total
            self._init_tail()
        cdf = array("d", accumulate(w / total for w in weights))
        if self.n <= self.head:
            cdf[-1] = 1.0
        self._cdf = cdf

    @staticmethod
    def _harmonic_tail(a: int, b: int, s: float) -> float:
        """Euler-Maclaurin estimate of ``sum(k^-s for k in [a, b])``."""
        if s == 1.0:
            integral = math.log(b / a)
        else:
            integral = (b ** (1.0 - s) - a ** (1.0 - s)) / (1.0 - s)
        ends = 0.5 * (a ** -s + b ** -s)
        slope = (s / 12.0) * (a ** (-s - 1.0) - b ** (-s - 1.0))
        return integral + ends + slope

    def _init_tail(self) -> None:
        # Tail draws propose a continuous x ~ density x^-s on
        # [a, b+1) (a = head+1 = first tail value, b = n = last), take
        # k = floor(x), and accept with probability proportional to
        # k^-s / integral(x^-s over [k, k+1)). That ratio decreases
        # monotonically in k toward 1, so normalizing by its value at
        # k=a makes the acceptance test exact; at the default split the
        # acceptance rate is ~1 - 1e-5, i.e. one extra uniform per draw.
        a, b, s = self.head + 1, self.n, self.s
        self._tail_a = a
        if s == 1.0:
            self._tail_log_ratio = math.log((b + 1.0) / a)
        else:
            self._tail_x_lo = a ** (1.0 - s)
            self._tail_x_span = (b + 1.0) ** (1.0 - s) - self._tail_x_lo
            self._tail_exp = 1.0 / (1.0 - s)
        self._tail_ratio_max = (a ** -s) / self._interval_mass(a)

    def _interval_mass(self, k: int) -> float:
        """``integral(x^-s over [k, k+1))`` — the continuous envelope's
        mass on the interval that maps to value ``k``."""
        s = self.s
        if s == 1.0:
            return math.log((k + 1.0) / k)
        return ((k + 1.0) ** (1.0 - s) - k ** (1.0 - s)) / (1.0 - s)

    def _sample_tail(self) -> int:
        s = self.s
        rand = self._stream.random
        while True:
            u = rand()
            if s == 1.0:
                x = self._tail_a * math.exp(u * self._tail_log_ratio)
            else:
                x = (self._tail_x_lo +
                     u * self._tail_x_span) ** self._tail_exp
            k = int(x)
            if k > self.n:       # float round-up at the upper edge
                k = self.n
            accept = (k ** -s) / (self._interval_mass(k) *
                                  self._tail_ratio_max)
            if rand() < accept:
                return k - 1     # value k -> rank k-1

    def sample(self) -> int:
        u = self._stream.random()
        if u < self._tail_start:
            return bisect.bisect_left(self._cdf, u)
        return self._sample_tail()

    def sample_n(self, n: int) -> List[int]:
        """``n`` ranks in one bulk draw; same sequence as ``n`` samples."""
        if self._tail_start == 1.0:
            cdf = self._cdf
            search = bisect.bisect_left
            return [search(cdf, u) for u in self._stream.random_n(n)]
        sample = self.sample
        return [sample() for _ in range(n)]


class MixtureSizeDistribution:
    """Object sizes drawn from a weighted mixture of lognormal components.

    Used to shape the Ads / Geo object-size CDFs of Figure 10: a body of
    small objects with a tail of much larger ones.
    """

    def __init__(self, stream: RandomStream,
                 components: Sequence[Tuple[float, float, float]],
                 min_size: int = 8, max_size: int = 8 * 1024 * 1024):
        """``components`` is a list of ``(weight, mu, sigma)`` for lognormals
        over bytes."""
        if not components:
            raise ValueError("at least one mixture component required")
        total = sum(w for w, _mu, _sig in components)
        self._components = [(w / total, mu, sig) for w, mu, sig in components]
        self._stream = stream
        self.min_size = min_size
        self.max_size = max_size

    def sample(self) -> int:
        u = self._stream.random()
        acc = 0.0
        mu = sigma = 0.0
        for w, m, s in self._components:
            acc += w
            mu, sigma = m, s
            if u <= acc:
                break
        size = int(self._stream.lognormal(mu, sigma))
        return max(self.min_size, min(self.max_size, size))

    def cdf_points(self, samples: int = 20000) -> List[Tuple[int, float]]:
        """Empirical CDF as (size, fraction<=size) points for reporting."""
        draws = sorted(self.sample() for _ in range(samples))
        step = max(1, samples // 200)
        return [(draws[i], (i + 1) / samples)
                for i in range(0, samples, step)] + [(draws[-1], 1.0)]


def percentile(sorted_values: Sequence[float], p: float) -> float:
    """Nearest-rank percentile over pre-sorted values; ``p`` in [0, 100]."""
    if not sorted_values:
        raise ValueError("no values")
    if p <= 0:
        return sorted_values[0]
    if p >= 100:
        return sorted_values[-1]
    rank = max(0, min(len(sorted_values) - 1,
                      math.ceil(p / 100.0 * len(sorted_values)) - 1))
    return sorted_values[rank]
