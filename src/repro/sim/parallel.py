"""Sharded parallel simulation: conservative lookahead over shard kernels.

The kernel retires ~1.3M events/sec on one core (BENCH_kernel.json); a
federation of N datacenters therefore tops out at 1/N of that per zone
when the whole world shares one event loop. This module splits the world
into *shards* — one :class:`~repro.sim.Simulator` per zone, each in its
own worker process — and keeps them causally consistent with the classic
conservative parallel-discrete-event recipe (DRackSim-style, see
PAPERS.md): every cross-shard interaction rides a link with a declared
minimum latency ``L`` (the *lookahead*), so a shard whose neighbours
have all reached lower-bound timestamp ``E`` can safely run ahead to
``E + L`` without ever receiving a message in its past.

The synchronization protocol (window-barrier variant):

1. every shard sits at the same barrier time ``H``;
2. the coordinator gathers each shard's lower-bound timestamp
   (:meth:`Simulator.lower_bound`) plus the arrival times of routed but
   undelivered messages, and takes the global minimum ``E``;
3. the next barrier is ``H' = min(horizon, E + L)`` — when every shard
   is idle, ``E`` jumps ahead and whole idle stretches cost one round;
4. pending messages with ``arrival <= H'`` are delivered, sorted by
   ``(arrival, src_shard, seq)``, through :meth:`Simulator.inject` —
   the deterministic external-event path — and every shard runs
   ``run_until(H')``;
5. messages sent during the window have ``arrival >= send + L >= E + L
   = H'``, i.e. never in any shard's past: the conservative guarantee.

Because the coordinator's decisions depend only on values that are
bit-identical whether shards run in worker processes or sequentially in
one process, a parallel run is *digest-identical* to the same-seed
sequential run — the cross-process honesty check
:mod:`repro.analysis.parallel` builds on.

The engine is model-agnostic: anything implementing
:class:`ShardProgram` can be sharded. The CliqueMap federation binding
(one cell per zone, WAN RPCs as cross-shard messages) lives in
:mod:`repro.core.parallelfed`.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from .core import SimulationError, Simulator

#: How long the coordinator waits on a worker reply before declaring the
#: fleet wedged (wall-clock seconds; generous — windows are short).
_WORKER_TIMEOUT = 600.0


@dataclass(frozen=True)
class ShardMessage:
    """One cross-shard event in flight.

    ``arrival`` is absolute simulated time at the destination; ``seq``
    is the sender's monotonically increasing message number, which makes
    ``(arrival, src, seq)`` a deterministic total order for same-time
    deliveries.
    """

    arrival: float
    src: int
    dst: int
    seq: int
    kind: str
    payload: tuple = ()
    # Distributed-trace propagation: the sending span's cross-zone
    # reference — (trace_id, origin_zone, span_id) — or None when the
    # sender is untraced. Plain picklable primitives; carried verbatim,
    # never consulted by the window protocol, so tracing on/off cannot
    # change routing or ordering.
    trace: Optional[tuple] = None


class ShardProgram:
    """One shard's world: a kernel plus the model running on it.

    Subclasses build their simulator and model in :meth:`build` (called
    inside the worker process — everything reachable from the instance
    after ``__init__`` must be picklable, which is why programs are
    constructed from spec dataclasses), start their workload in
    :meth:`start`, and exchange :class:`ShardMessage` traffic through
    :meth:`receive` / the ``outbox`` list.
    """

    #: Assigned by the coordinator before build().
    index: int = 0

    def __init__(self):
        self.sim: Optional[Simulator] = None
        self.outbox: List[ShardMessage] = []
        self._msg_seq = 0

    # -- lifecycle (called by the executor) ------------------------------

    def build(self) -> None:
        """Construct the simulator and model (may advance the clock)."""
        raise NotImplementedError

    def start(self) -> None:
        """Start the workload; called once, at the aligned start time."""

    def receive(self, message: ShardMessage) -> None:
        """Deliver one inbound message (inject at ``message.arrival``)."""
        raise NotImplementedError

    def digest(self) -> Dict[str, Any]:
        """Final, picklable run summary (op digests, counters, ...)."""
        return {}

    # -- helpers ----------------------------------------------------------

    def send(self, dst: int, kind: str, payload: tuple,
             arrival: float, trace: Optional[tuple] = None) -> None:
        """Queue an outbound message; the coordinator routes it at the
        next barrier. ``arrival`` must respect the link's lookahead."""
        self._msg_seq += 1
        self.outbox.append(ShardMessage(
            arrival=arrival, src=self.index, dst=dst, seq=self._msg_seq,
            kind=kind, payload=payload, trace=trace))

    def drain_outbox(self) -> List[ShardMessage]:
        out, self.outbox = self.outbox, []
        return out

    def next_time(self) -> float:
        return self.sim.lower_bound()


# ---------------------------------------------------------------------------
# Executors: the same protocol over in-process shards or worker processes.
# ---------------------------------------------------------------------------


class _SequentialExecutor:
    """All shards in this process, run round-robin inside each window."""

    def __init__(self, builders: List[Tuple[Callable, tuple]],
                 profile_dir: Optional[str] = None):
        self._builders = builders
        self._profile_dir = profile_dir
        self._profiler = None
        self.programs: List[ShardProgram] = []

    def build_all(self) -> List[float]:
        if self._profile_dir is not None:
            import cProfile
            self._profiler = cProfile.Profile()
            self._profiler.enable()
        nows = []
        for index, (factory, args) in enumerate(self._builders):
            program = factory(*args)
            program.index = index
            program.build()
            self.programs.append(program)
            nows.append(program.sim.now)
        return nows

    def start_all(self, at: float
                  ) -> List[Tuple[List[ShardMessage], float]]:
        results = []
        for program in self.programs:
            program.sim.run_until(at)
            program.start()
            results.append((program.drain_outbox(), program.next_time()))
        return results

    def window(self, horizon: float,
               deliveries: Dict[int, List[ShardMessage]]
               ) -> List[Tuple[List[ShardMessage], float, float]]:
        results = []
        for program in self.programs:
            cpu0 = time.process_time()
            for message in deliveries.get(program.index, ()):
                program.receive(message)
            program.sim.run_until(horizon)
            cpu = time.process_time() - cpu0
            results.append((program.drain_outbox(), program.next_time(),
                            cpu))
        return results

    def finish(self) -> List[Dict[str, Any]]:
        digests = []
        for program in self.programs:
            summary = program.digest()
            summary["events"] = program.sim._seq
            summary["final_now"] = program.sim.now
            digests.append(summary)
        if self._profiler is not None:
            self._profiler.disable()
            path = os.path.join(self._profile_dir, "shard-all.prof")
            self._profiler.dump_stats(path)
        return digests

    @property
    def leaked_children(self) -> bool:
        return False


def _shard_worker(conn, profile_path: Optional[str]) -> None:
    """Worker main: build a program from the spec sent over the pipe,
    then serve window commands until told to finish."""
    profiler = None
    if profile_path is not None:
        import cProfile
        profiler = cProfile.Profile()
        profiler.enable()
    program = None
    try:
        while True:
            command = conn.recv()
            op = command[0]
            if op == "build":
                _op, factory, args, index = command
                program = factory(*args)
                program.index = index
                program.build()
                conn.send(("ok", program.sim.now))
            elif op == "start":
                program.sim.run_until(command[1])
                program.start()
                conn.send(("ok", (program.drain_outbox(),
                                  program.next_time())))
            elif op == "window":
                _op, horizon, messages = command
                cpu0 = time.process_time()
                for message in messages:
                    program.receive(message)
                program.sim.run_until(horizon)
                cpu = time.process_time() - cpu0
                conn.send(("ok", (program.drain_outbox(),
                                  program.next_time(), cpu)))
            elif op == "finish":
                summary = program.digest()
                summary["events"] = program.sim._seq
                summary["final_now"] = program.sim.now
                if profiler is not None:
                    profiler.disable()
                    profiler.dump_stats(profile_path)
                    profiler = None
                conn.send(("ok", summary))
                return
            else:
                raise SimulationError(f"unknown worker command {op!r}")
    except EOFError:
        return
    except BaseException as exc:  # noqa: BLE001 - shipped to coordinator
        import traceback
        try:
            conn.send(("error", f"{exc!r}\n{traceback.format_exc()}"))
        except (BrokenPipeError, OSError):
            pass


class _ProcessExecutor:
    """One worker process per shard, command/reply over pipes.

    Specs and messages cross the pipes pickled even under the fork start
    method, so the pickle-safety of every config dataclass is exercised
    on every parallel run, not just under spawn.
    """

    def __init__(self, builders: List[Tuple[Callable, tuple]],
                 profile_dir: Optional[str] = None):
        self._builders = builders
        self._profile_dir = profile_dir
        self._pipes: list = []
        self._workers: list = []
        self.leaked_children = False

    def _rpc_all(self, commands) -> list:
        for conn, command in zip(self._pipes, commands):
            conn.send(command)
        replies = []
        for index, conn in enumerate(self._pipes):
            if not conn.poll(_WORKER_TIMEOUT):
                self._terminate()
                raise SimulationError(
                    f"shard worker {index} did not reply within "
                    f"{_WORKER_TIMEOUT:.0f}s")
            status, value = conn.recv()
            if status != "ok":
                self._terminate()
                raise SimulationError(
                    f"shard worker {index} failed:\n{value}")
            replies.append(value)
        return replies

    def build_all(self) -> List[float]:
        for index, (factory, args) in enumerate(self._builders):
            parent, child = multiprocessing.Pipe()
            profile_path = None
            if self._profile_dir is not None:
                profile_path = os.path.join(self._profile_dir,
                                            f"shard-{index}.prof")
            worker = multiprocessing.Process(
                target=_shard_worker, args=(child, profile_path),
                name=f"shard-{index}", daemon=True)
            worker.start()
            child.close()
            self._pipes.append(parent)
            self._workers.append(worker)
        return self._rpc_all([("build", factory, args, index)
                              for index, (factory, args)
                              in enumerate(self._builders)])

    def start_all(self, at: float
                  ) -> List[Tuple[List[ShardMessage], float]]:
        return self._rpc_all([("start", at)] * len(self._pipes))

    def window(self, horizon: float,
               deliveries: Dict[int, List[ShardMessage]]
               ) -> List[Tuple[List[ShardMessage], float, float]]:
        return self._rpc_all([("window", horizon, deliveries.get(i, []))
                              for i in range(len(self._pipes))])

    def finish(self) -> List[Dict[str, Any]]:
        digests = self._rpc_all([("finish",)] * len(self._pipes))
        for worker in self._workers:
            worker.join(timeout=30.0)
        self.leaked_children = any(w.is_alive() for w in self._workers)
        if self.leaked_children:
            self._terminate()
        for conn in self._pipes:
            conn.close()
        return digests

    def _terminate(self) -> None:
        for worker in self._workers:
            if worker.is_alive():
                worker.terminate()
                worker.join(timeout=5.0)


# ---------------------------------------------------------------------------
# The coordinator.
# ---------------------------------------------------------------------------


@dataclass
class ShardRunReport:
    """Everything one coordinated run produced."""

    mode: str                       # "sequential" | "parallel"
    digests: List[Dict[str, Any]]
    windows: int = 0
    start: float = 0.0
    horizon: float = 0.0
    events: int = 0
    wall_seconds: float = 0.0
    #: Coordinator-process CPU during the run (routing, barriers,
    #: pickling; in sequential mode this includes all shard work).
    coordinator_cpu_seconds: float = 0.0
    #: Per-shard CPU totals, measured inside each shard's process.
    shard_cpu_seconds: List[float] = field(default_factory=list)
    #: Sum over windows of the slowest shard's CPU in that window, plus
    #: the coordinator's own CPU: the run's critical path — the
    #: wall-clock a machine with one core per shard would need. On a
    #: single-core container (where workers time-slice) this is the
    #: honest parallel-capacity metric; on a many-core box it converges
    #: to measured wall time.
    critical_path_seconds: float = 0.0
    messages_routed: int = 0
    leaked_children: bool = False

    @property
    def events_per_critical_sec(self) -> float:
        if self.critical_path_seconds <= 0:
            return 0.0
        return self.events / self.critical_path_seconds


class ShardCoordinator:
    """Drives N :class:`ShardProgram` kernels under conservative sync.

    ``builders`` is a list of ``(factory, args)`` pairs — ``factory``
    must be a module-level callable and ``args`` picklable, because in
    parallel mode both cross the pipe into the worker. ``lookahead`` is
    the minimum cross-shard latency declared by the link adapter
    (:class:`~repro.net.CrossShardLink`); ``run_for`` is how much
    simulated time to run past the aligned start.
    """

    def __init__(self, builders: List[Tuple[Callable, tuple]],
                 lookahead: float, run_for: float,
                 profile_dir: Optional[str] = None):
        if lookahead <= 0:
            raise SimulationError(
                f"conservative sync needs lookahead > 0, got {lookahead!r}")
        if run_for <= 0:
            raise SimulationError(f"run_for must be > 0, got {run_for!r}")
        self.builders = builders
        self.lookahead = lookahead
        self.run_for = run_for
        self.profile_dir = profile_dir

    def run(self, parallel: bool) -> ShardRunReport:
        executor = (_ProcessExecutor if parallel else _SequentialExecutor)(
            self.builders, self.profile_dir)
        report = ShardRunReport(
            mode="parallel" if parallel else "sequential", digests=[])
        wall0 = time.perf_counter()
        cpu0 = time.process_time()
        try:
            build_nows = executor.build_all()
            # Align every shard to a common barrier before the workload
            # starts: build may advance clocks unevenly (client connects,
            # preloads), and the window protocol's safety argument needs
            # all shards level at each barrier.
            start = max(build_nows)
            horizon = start + self.run_for
            report.start, report.horizon = start, horizon

            num_shards = len(self.builders)
            shard_cpu = [0.0] * num_shards
            # Messages sent during start() must seed the pending set
            # before the first window's safe bound is computed — their
            # send time (== start) predates every shard's first event.
            pending: List[ShardMessage] = []
            next_times = []
            for outbox, next_time in executor.start_all(start):
                pending.extend(outbox)
                next_times.append(next_time)
            while True:
                lower = min(next_times) if next_times else float("inf")
                for message in pending:
                    if message.arrival < lower:
                        lower = message.arrival
                if lower > horizon:
                    # Nothing left inside the horizon: one final advance
                    # so every shard ends exactly at the horizon.
                    executor.window(horizon, {})
                    break
                next_h = min(horizon, lower + self.lookahead)
                deliveries: Dict[int, List[ShardMessage]] = {}
                held: List[ShardMessage] = []
                for message in pending:
                    if message.arrival <= next_h:
                        deliveries.setdefault(message.dst, []).append(
                            message)
                    else:
                        held.append(message)
                for batch in deliveries.values():
                    batch.sort(key=lambda m: (m.arrival, m.src, m.seq))
                    report.messages_routed += len(batch)
                results = executor.window(next_h, deliveries)
                pending = held
                next_times = []
                window_max_cpu = 0.0
                for index, (outbox, next_time, cpu) in enumerate(results):
                    pending.extend(outbox)
                    next_times.append(next_time)
                    shard_cpu[index] += cpu
                    if cpu > window_max_cpu:
                        window_max_cpu = cpu
                report.critical_path_seconds += window_max_cpu
                report.windows += 1

            report.digests = executor.finish()
            report.shard_cpu_seconds = shard_cpu
            report.events = sum(d["events"] for d in report.digests)
        finally:
            report.leaked_children = executor.leaked_children
            report.wall_seconds = time.perf_counter() - wall0
            report.coordinator_cpu_seconds = time.process_time() - cpu0
        # The coordinator is on the critical path too (routing and
        # barrier bookkeeping serialize against the fleet).
        report.critical_path_seconds += report.coordinator_cpu_seconds
        if not parallel:
            # Sequentially, everything ran in this process: the critical
            # path IS the coordinator's CPU.
            report.critical_path_seconds = report.coordinator_cpu_seconds
        return report


__all__ = ["ShardMessage", "ShardProgram", "ShardCoordinator",
           "ShardRunReport"]
