"""Shared-resource primitives for simulation processes.

:class:`Resource` models a pool of interchangeable servers (CPU cores, NIC
engines, link slots): processes request a slot, hold it for some simulated
time, and release it. :class:`Store` is a FIFO queue of items between
producer and consumer processes.

Both track utilization so higher layers (Pony Express scale-out, CPU
accounting) can make load-driven decisions.
"""

from __future__ import annotations

import bisect
from collections import deque
from typing import Any, Deque, List, Optional

from .core import Event, SimulationError, Simulator


class Request(Event):
    """A pending or granted claim on a :class:`Resource` slot."""

    __slots__ = ("resource", "priority", "_seq")

    def __init__(self, resource: "Resource", priority: int, seq: int):
        # Inlined Event.__init__: one Request per RPC hop makes this one
        # of the hottest allocation sites in a cell run.
        self.sim = resource.sim
        self.callbacks = []
        self._value = None
        self._ok = True
        self._triggered = False
        self._processed = False
        self.defused = False
        self.resource = resource
        self.priority = priority
        self._seq = seq

    def sort_key(self):
        return (self.priority, self._seq)


class Resource:
    """A pool of ``capacity`` identical slots with a priority/FIFO queue."""

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = ""):
        if capacity < 1:
            raise SimulationError("capacity must be >= 1")
        self.sim = sim
        self.name = name
        self._capacity = capacity
        self._users: List[Request] = []
        self._queue: List[Request] = []
        self._seq = 0
        # Utilization accounting: integral of busy slots over time.
        self._busy_integral = 0.0
        self._last_change = sim.now

    # -- capacity ---------------------------------------------------------

    @property
    def capacity(self) -> int:
        return self._capacity

    def set_capacity(self, capacity: int) -> None:
        """Grow or shrink the pool; shrinking never evicts current users."""
        if capacity < 1:
            raise SimulationError("capacity must be >= 1")
        self._account()
        self._capacity = capacity
        self._grant()

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self._users)

    @property
    def queue_len(self) -> int:
        return len(self._queue)

    # -- accounting ---------------------------------------------------------

    def _account(self) -> None:
        now = self.sim.now
        if now != self._last_change:
            self._busy_integral += \
                len(self._users) * (now - self._last_change)
            self._last_change = now

    def utilization(self, since_integral: float = 0.0,
                    since_time: float = 0.0) -> float:
        """Mean busy-slot count per slot since the given checkpoint."""
        self._account()
        elapsed = self.sim.now - since_time
        if elapsed <= 0:
            return 0.0
        return (self._busy_integral - since_integral) / elapsed / self._capacity

    def checkpoint(self):
        """Return an opaque checkpoint for :meth:`utilization`."""
        self._account()
        return (self._busy_integral, self.sim.now)

    def utilization_since(self, checkpoint) -> float:
        return self.utilization(*checkpoint)

    @property
    def busy_slot_seconds(self) -> float:
        self._account()
        return self._busy_integral

    # -- request/release ---------------------------------------------------

    def request(self, priority: int = 0) -> Request:
        """Claim a slot; the returned event triggers when it is granted."""
        self._seq += 1
        req = Request(self, priority, self._seq)
        if not self._queue and len(self._users) < self._capacity:
            # Uncontended fast path: an idle slot and nobody queued ahead
            # means _grant() would hand the new request straight through —
            # skip the insort/pop round-trip it would take to get there.
            self._account()
            self._users.append(req)
            req.succeed(req)
        else:
            bisect.insort(self._queue, req, key=Request.sort_key)
            self._grant()
        return req

    def release(self, request: Request) -> None:
        """Return a previously-granted slot to the pool."""
        if request in self._users:
            self._account()
            self._users.remove(request)
            self._grant()
        elif request in self._queue:
            self._queue.remove(request)
        else:
            raise SimulationError("release of unknown request")

    def _grant(self) -> None:
        while self._queue and len(self._users) < self._capacity:
            req = self._queue.pop(0)
            self._account()
            self._users.append(req)
            req.succeed(req)


class Store:
    """An unbounded FIFO of items; ``get`` blocks until an item arrives."""

    def __init__(self, sim: Simulator, name: str = ""):
        self.sim = sim
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Deposit an item, waking the oldest waiting getter if any."""
        while self._getters:
            getter = self._getters.popleft()
            if not getter.triggered:
                getter.succeed(item)
                return
        self._items.append(item)

    def get(self) -> Event:
        """Return an event that triggers with the next available item."""
        ev = self.sim.event()
        if self._items:
            ev.succeed(self._items.popleft())
        else:
            self._getters.append(ev)
        return ev

    def try_get(self) -> Optional[Any]:
        """Non-blocking get; returns ``None`` when empty."""
        if self._items:
            return self._items.popleft()
        return None
