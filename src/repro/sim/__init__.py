"""Discrete-event simulation kernel (events, processes, resources, RNG)."""

from .core import (AllOf, AnyOf, Event, Interrupt, Process, SimulationError,
                   Simulator, Timeout)
from .parallel import (ShardCoordinator, ShardMessage, ShardProgram,
                       ShardRunReport)
from .rand import MixtureSizeDistribution, RandomStream, ZipfSampler, percentile
from .resources import Request, Resource, Store

__all__ = [
    "AllOf", "AnyOf", "Event", "Interrupt", "Process", "SimulationError",
    "Simulator", "Timeout", "Request", "Resource", "Store",
    "RandomStream", "ZipfSampler", "MixtureSizeDistribution", "percentile",
    "ShardCoordinator", "ShardMessage", "ShardProgram", "ShardRunReport",
]
